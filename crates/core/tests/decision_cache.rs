//! Integration tests for the PCP decision cache: memoization of identical
//! flows and — the part that matters for security — event-driven
//! invalidation that exactly tracks binding churn and policy flushes.

use dfi_core::events::{topic, DfiEvent, SnapshotWitness};
use dfi_core::policy::{EndpointPattern, PolicyRule};
use dfi_core::{Dfi, DfiConfig};
use dfi_dataplane::{Network, Switch, SwitchConfig, Tx};
use dfi_packet::headers::build;
use dfi_packet::MacAddr;
use dfi_simnet::{Dist, Sim};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;
use std::time::Duration;

const LAT: Duration = Duration::from_micros(50);

fn mac(i: u32) -> MacAddr {
    MacAddr::from_index(i)
}

fn ip(i: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 1, i)
}

fn test_config() -> DfiConfig {
    DfiConfig {
        proxy_latency: Dist::constant_ms(0.16),
        pcp_service: Dist::constant_ms(0.39),
        binding_query: Dist::constant_ms(2.41),
        policy_query: Dist::constant_ms(2.52),
        bus_latency: Dist::constant_ms(0.3),
        ..DfiConfig::default()
    }
}

struct Rig {
    sim: Sim,
    dfi: Dfi,
    sw: Switch,
    tx: Vec<Tx>,
}

/// One switch, three hosts (ports 1..=3), DFI interposed before a reactive
/// controller.
fn rig() -> Rig {
    let mut sim = Sim::new(7);
    let mut net = Network::new();
    let sw = net.add_switch(SwitchConfig::new(0xD1));
    let mut tx = Vec::new();
    for port in 1..=3u32 {
        tx.push(net.attach_host(&sw, port, LAT, Rc::new(|_, _| {})));
    }
    let ctrl = dfi_controller::Controller::reactive();
    let dfi = Dfi::new(test_config());
    dfi.interpose(&mut sim, &sw, move |sim, sink| ctrl.connect(sim, sink));
    sim.run();
    Rig { sim, dfi, sw, tx }
}

fn syn(src: u32, dst: u32, dport: u16) -> Vec<u8> {
    build::tcp_syn(
        mac(src),
        mac(dst),
        ip(src as u8),
        ip(dst as u8),
        50_000,
        dport,
    )
}

fn publish(r: &mut Rig, topic: &str, ev: DfiEvent) {
    let bus = r.dfi.bus().clone();
    bus.publish(&mut r.sim, topic, ev);
    r.sim.run();
}

fn session(user: &str, host: &str, logged_on: bool) -> DfiEvent {
    DfiEvent::Session {
        user: user.into(),
        host: host.into(),
        logged_on,
    }
}

fn name(hostname: &str, addr: Ipv4Addr) -> DfiEvent {
    DfiEvent::Name {
        hostname: hostname.into(),
        ip: addr,
        removed: false,
    }
}

#[test]
fn burst_of_identical_flows_hits_the_memo() {
    let mut r = rig();
    r.dfi
        .insert_policy(&mut r.sim, PolicyRule::allow_all(), 1, "test");
    r.sim.run();
    // Three copies of the same flow arrive before the first decision's
    // switch rule is installed: every one becomes a packet-in, but only
    // the first pays for entity resolution and the policy query.
    for _ in 0..3 {
        r.tx[0].send(&mut r.sim, syn(1, 2, 445));
    }
    r.sim.run();
    let m = r.dfi.metrics();
    assert_eq!(m.packet_ins, 3);
    assert_eq!(m.allowed, 3);
    assert_eq!(m.decision_cache_misses, 1);
    assert_eq!(m.decision_cache_hits, 2);
    assert_eq!(m.decision_cache_entries, 1);
}

#[test]
fn distinct_flows_do_not_share_entries() {
    let mut r = rig();
    r.dfi
        .insert_policy(&mut r.sim, PolicyRule::allow_all(), 1, "test");
    r.sim.run();
    r.tx[0].send(&mut r.sim, syn(1, 2, 80));
    r.tx[0].send(&mut r.sim, syn(1, 2, 443)); // different dst port
    r.tx[2].send(&mut r.sim, syn(3, 2, 80)); // different src host
    r.sim.run();
    let m = r.dfi.metrics();
    assert_eq!(
        m.decision_cache_misses, 3,
        "each canonical tuple decided once"
    );
    assert_eq!(m.decision_cache_hits, 0);
    assert_eq!(m.decision_cache_entries, 3);
}

/// The stale-decision regression test: a binding expiration must
/// invalidate exactly the cached decisions that resolved through it —
/// no fewer (stale allows would outlive the log-off) and no more
/// (unrelated flows keep their entries).
#[test]
fn session_expiry_invalidates_exactly_the_affected_decisions() {
    let mut r = rig();
    // DNS: h1 → ip1, h3 → ip3. SIEM: alice on h1, carol on h3 (session
    // events use short machine names; DNS publishes FQDNs).
    publish(&mut r, topic::NAMES, name("h1.corp.local", ip(1)));
    publish(&mut r, topic::NAMES, name("h3.corp.local", ip(3)));
    publish(&mut r, topic::SESSIONS, session("alice", "h1", true));
    publish(&mut r, topic::SESSIONS, session("carol", "h3", true));
    // Policy: whatever alice and carol are logged onto may start flows.
    let alice_rule = r.dfi.insert_policy(
        &mut r.sim,
        PolicyRule::allow(EndpointPattern::user("alice"), EndpointPattern::any()),
        10,
        "test",
    );
    r.dfi.insert_policy(
        &mut r.sim,
        PolicyRule::allow(EndpointPattern::user("carol"), EndpointPattern::any()),
        10,
        "test",
    );
    r.sim.run();

    r.tx[0].send(&mut r.sim, syn(1, 2, 80));
    r.tx[2].send(&mut r.sim, syn(3, 2, 80));
    r.sim.run();
    let m = r.dfi.metrics();
    assert_eq!(m.allowed, 2);
    assert_eq!(m.decision_cache_entries, 2);
    assert_eq!(m.decision_cache_invalidations, 0);

    // Alice logs off h1. The memoized h1→h2 decision resolved through the
    // alice@h1 binding and must die; carol's flow is untouched.
    publish(&mut r, topic::SESSIONS, session("alice", "h1", false));
    let m = r.dfi.metrics();
    assert_eq!(
        m.decision_cache_invalidations, 1,
        "exactly the alice-dependent entry dropped"
    );
    assert_eq!(m.decision_cache_entries, 1, "carol's entry survives");

    // The real system's S-RBAC PDP reacts to the log-off by flushing the
    // rules derived from alice's policy; model that flush, then replay the
    // flow. It must be re-decided from scratch — nobody is logged onto h1
    // anymore, so the alice rule no longer matches and the flow falls to
    // the default deny. A stale memo hit would have re-allowed it.
    r.dfi.flush_policy_rules(&mut r.sim, alice_rule);
    r.sim.run();
    let allowed_before = r.dfi.metrics().allowed;
    r.tx[0].send(&mut r.sim, syn(1, 2, 80));
    r.sim.run();
    let m = r.dfi.metrics();
    assert_eq!(m.allowed, allowed_before, "stale allow must not be served");
    assert_eq!(m.denied, 1);
    assert_eq!(
        m.decision_cache_misses, 3,
        "replayed flow re-resolved, not served from the memo"
    );
}

#[test]
fn policy_revocation_invalidates_its_decisions() {
    let mut r = rig();
    let rule = r
        .dfi
        .insert_policy(&mut r.sim, PolicyRule::allow_all(), 1, "test");
    r.sim.run();
    r.tx[0].send(&mut r.sim, syn(1, 2, 22));
    r.sim.run();
    assert_eq!(r.dfi.metrics().decision_cache_entries, 1);

    // Revocation drops the switch rules (cookie flush) and the memoized
    // decisions tagged with the revoked policy, in the same breath.
    assert!(r.sw.table0_cookies().contains(&rule.0));
    assert!(r.dfi.revoke_policy(&mut r.sim, rule));
    r.sim.run();
    assert!(!r.sw.table0_cookies().contains(&rule.0));
    let m = r.dfi.metrics();
    assert_eq!(m.decision_cache_entries, 0);
    assert_eq!(m.decision_cache_invalidations, 1);

    // The replay is re-decided under the new (empty) policy: default deny.
    r.tx[0].send(&mut r.sim, syn(1, 2, 22));
    r.sim.run();
    let m = r.dfi.metrics();
    assert_eq!(m.denied, 1);
    assert_eq!(m.decision_cache_misses, 2);
    assert_eq!(m.decision_cache_hits, 0);
}

/// The snapshot-epoch staleness regression test: a decision cached while a
/// refused publication is *deferred* is decided by the old snapshot. When
/// the deferred mutations finally publish (the recovery), that cached
/// verdict must not survive — even though no per-policy flush touches it —
/// because the new snapshot may reverse it. Epoch tagging is the only
/// thing standing between the replayed flow and a stale Allow.
#[test]
fn stale_allow_is_not_served_after_a_deny_snapshot_publishes() {
    let mut r = rig();
    r.dfi
        .insert_policy(&mut r.sim, PolicyRule::allow_all(), 1, "test");
    // A placeholder rule whose later revocation is the "operator resolves
    // the conflict" mutation. It matches nothing in this rig, and —
    // crucially — revoking it flushes only its own id, so the recovery's
    // epoch expiry is the sole defense against the stale entry below.
    let placeholder = r.dfi.insert_policy(
        &mut r.sim,
        PolicyRule::deny(EndpointPattern::user("nobody"), EndpointPattern::any()),
        5,
        "test",
    );
    r.sim.run();

    // Install a certification gate that refuses while `refuse` is set.
    let refuse = Rc::new(RefCell::new(false));
    let flag = Rc::clone(&refuse);
    r.dfi.set_snapshot_gate(Box::new(move |_sim, _dfi| {
        if *flag.borrow() {
            vec![SnapshotWitness {
                kind: "allow-deny-conflict".into(),
                rules: Vec::new(),
                message: "test: publication refused".into(),
            }]
        } else {
            Vec::new()
        }
    }));

    // A blanket Deny arrives but its snapshot is refused: the Policy
    // Manager keeps the rule, the last certified (Allow) snapshot keeps
    // serving flows.
    *refuse.borrow_mut() = true;
    r.dfi.insert_policy(
        &mut r.sim,
        PolicyRule::deny(EndpointPattern::any(), EndpointPattern::any()),
        10,
        "test",
    );
    r.sim.run();
    let m = r.dfi.metrics();
    assert_eq!(m.snapshot_refusals, 1);
    assert_eq!(
        m.snapshots_published, 2,
        "the refused candidate never swapped in"
    );

    // Traffic decided during the deferral is allowed by the stale snapshot
    // (uninterrupted service is the point of deferring) and memoized under
    // the stale epoch.
    r.tx[0].send(&mut r.sim, syn(1, 2, 443));
    r.sim.run();
    let m = r.dfi.metrics();
    assert_eq!(m.allowed, 1);
    assert_eq!(m.decision_cache_entries, 1);

    // The conflict is resolved; the next mutation certifies clean and the
    // deferred Deny finally publishes (the recovery).
    *refuse.borrow_mut() = false;
    assert!(r.dfi.revoke_policy(&mut r.sim, placeholder));
    r.sim.run();
    let m = r.dfi.metrics();
    assert_eq!(m.snapshots_published, 3);
    assert!(m.snapshot_epoch > 2, "recovery advanced the epoch");

    // The replayed flow must be re-decided under the Deny snapshot — the
    // memo entry from the deferral window is expired by epoch, never
    // served.
    r.tx[0].send(&mut r.sim, syn(1, 2, 443));
    r.sim.run();
    let m = r.dfi.metrics();
    assert_eq!(m.allowed, 1, "stale Allow must not be served");
    assert_eq!(m.denied, 1);
    assert_eq!(m.decision_cache_hits, 0);
    assert_eq!(
        m.decision_cache_misses, 2,
        "replay re-decided, not served from the stale-epoch memo"
    );
}

#[test]
fn dhcp_rebind_invalidates_flows_on_that_address() {
    let mut r = rig();
    r.dfi
        .insert_policy(&mut r.sim, PolicyRule::allow_all(), 1, "test");
    r.sim.run();
    r.tx[0].send(&mut r.sim, syn(1, 2, 8080));
    r.sim.run();
    assert_eq!(r.dfi.metrics().decision_cache_entries, 1);
    // ip(1) is re-leased to a different adapter: any decision involving
    // that address may now resolve differently (and the old flow would be
    // a spoof).
    publish(
        &mut r,
        topic::LEASES,
        DfiEvent::Lease {
            mac: mac(9),
            ip: ip(1),
            hostname: None,
            released: false,
        },
    );
    let m = r.dfi.metrics();
    assert_eq!(m.decision_cache_entries, 0);
    assert_eq!(m.decision_cache_invalidations, 1);
}
