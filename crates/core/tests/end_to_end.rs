//! End-to-end tests: switch ⇄ DFI proxy ⇄ controller over real OpenFlow
//! bytes, with hosts exchanging real packets.

use dfi_controller::{Controller, Misbehavior, EVIL_COOKIE};
use dfi_core::events::{wire_dhcp_sensor, wire_dns_sensor, wire_siem_sensor};
use dfi_core::pdp::{priority, AtRbacPdp, BaselinePdp, QuarantinePdp};
use dfi_core::policy::{EndpointPattern, PolicyRule, RbacRoles, DEFAULT_DENY_ID};
use dfi_core::{Dfi, DfiConfig};
use dfi_dataplane::{Network, Switch, SwitchConfig, Tx};
use dfi_packet::headers::build;
use dfi_packet::MacAddr;
use dfi_services::{DhcpServer, DnsServer, Siem};
use dfi_simnet::{Dist, Sim, SimTime};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;
use std::time::Duration;

const LAT: Duration = Duration::from_micros(50);

fn mac(i: u32) -> MacAddr {
    MacAddr::from_index(i)
}

fn ip(i: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 1, i)
}

/// A deterministic low-variance DFI config so tests are not flaky on
/// timing assertions.
fn test_config() -> DfiConfig {
    DfiConfig {
        proxy_latency: Dist::constant_ms(0.16),
        pcp_service: Dist::constant_ms(0.39),
        binding_query: Dist::constant_ms(2.41),
        policy_query: Dist::constant_ms(2.52),
        bus_latency: Dist::constant_ms(0.3),
        ..DfiConfig::default()
    }
}

struct Rig {
    sim: Sim,
    dfi: Dfi,
    ctrl: Controller,
    sw: Switch,
    tx: Vec<Tx>,
    rx: Vec<Rc<RefCell<Vec<Vec<u8>>>>>,
}

/// One switch, three hosts (ports 1..=3), DFI interposed before a reactive
/// controller.
fn rig_with_controller(ctrl: Controller) -> Rig {
    let mut sim = Sim::new(99);
    let mut net = Network::new();
    let sw = net.add_switch(SwitchConfig::new(0xD1));
    let mut tx = Vec::new();
    let mut rx = Vec::new();
    for port in 1..=3u32 {
        let log = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        tx.push(net.attach_host(
            &sw,
            port,
            LAT,
            Rc::new(move |_, f: &[u8]| l.borrow_mut().push(f.to_vec())),
        ));
        rx.push(log);
    }
    let dfi = Dfi::new(test_config());
    let c = ctrl.clone();
    dfi.interpose(&mut sim, &sw, move |sim, sink| c.connect(sim, sink));
    sim.run();
    Rig {
        sim,
        dfi,
        ctrl,
        sw,
        tx,
        rx,
    }
}

fn rig() -> Rig {
    rig_with_controller(Controller::reactive())
}

fn syn(src: u32, dst: u32, dport: u16) -> Vec<u8> {
    build::tcp_syn(
        mac(src),
        mac(dst),
        ip(src as u8),
        ip(dst as u8),
        50_000,
        dport,
    )
}

#[test]
fn default_deny_blocks_everything() {
    let mut r = rig();
    r.tx[0].send(&mut r.sim, syn(1, 2, 445));
    r.sim.run();
    assert!(
        r.rx[1].borrow().is_empty(),
        "no delivery under default deny"
    );
    let m = r.dfi.metrics();
    assert_eq!(m.packet_ins, 1);
    assert_eq!(m.denied, 1);
    assert_eq!(m.allowed, 0);
    // A deny rule was cached in table 0 with the default-deny cookie.
    assert_eq!(r.sw.table0_cookies(), vec![DEFAULT_DENY_ID.0]);
    // The controller never saw the denied flow.
    assert!(r.ctrl.seen_packet_ins().is_empty());
}

#[test]
fn cached_deny_rule_absorbs_repeat_traffic() {
    let mut r = rig();
    r.tx[0].send(&mut r.sim, syn(1, 2, 445));
    r.sim.run();
    assert_eq!(r.dfi.metrics().packet_ins, 1);
    // Same flow again: matches the cached table-0 deny, no control-plane
    // involvement.
    r.tx[0].send(&mut r.sim, syn(1, 2, 445));
    r.sim.run();
    assert_eq!(
        r.dfi.metrics().packet_ins,
        1,
        "second packet died in hardware"
    );
}

#[test]
fn allowed_flow_reaches_destination_and_controller() {
    let mut r = rig();
    let mut baseline = BaselinePdp::new();
    baseline.activate(&mut r.sim, &r.dfi);
    r.sim.run();
    r.tx[0].send(&mut r.sim, syn(1, 2, 80));
    r.sim.run();
    // Flooded by the reactive controller to ports 2 and 3.
    assert_eq!(r.rx[1].borrow().len(), 1);
    let m = r.dfi.metrics();
    assert_eq!(m.allowed, 1);
    assert_eq!(m.denied, 0);
    // Controller saw the (allowed) packet-in, as table 0 from its view.
    let seen = r.ctrl.seen_packet_ins();
    assert_eq!(seen.len(), 1);
    assert_eq!(seen[0].table_id, 0);
}

#[test]
fn bidirectional_flow_installs_rules_and_hardware_forwards() {
    let mut r = rig();
    let mut baseline = BaselinePdp::new();
    baseline.activate(&mut r.sim, &r.dfi);
    r.sim.run();
    // 1 → 2 (flood; controller learns 1), then 2 → 1 (rule install).
    r.tx[0].send(&mut r.sim, syn(1, 2, 80));
    r.sim.run();
    r.tx[1].send(&mut r.sim, syn(2, 1, 80));
    r.sim.run();
    assert_eq!(r.rx[0].borrow().len(), 1);
    // DFI allow rules live in table 0, controller forwarding in table 1.
    assert!(r.sw.table_len(0) >= 2, "allow rules for both directions");
    assert_eq!(
        r.sw.table_len(1),
        1,
        "controller's forwarding rule shifted to table 1"
    );
    // Repeat traffic 2→1 is now handled entirely in the data plane.
    let pis = r.dfi.metrics().packet_ins;
    r.tx[1].send(&mut r.sim, syn(2, 1, 80));
    r.sim.run();
    assert_eq!(r.dfi.metrics().packet_ins, pis);
    assert_eq!(r.rx[0].borrow().len(), 2);
}

#[test]
fn flow_start_latency_matches_calibration() {
    let mut r = rig();
    let mut baseline = BaselinePdp::new();
    baseline.activate(&mut r.sim, &r.dfi);
    r.sim.run();
    r.tx[0].send(&mut r.sim, syn(1, 2, 80));
    r.sim.run();
    let m = r.dfi.metrics();
    // Deterministic config: 0.39 + 2.41 + 2.52 = 5.32 ms of station time
    // (no queueing at idle).
    let overall_ms = m.overall.mean() * 1e3;
    assert!(
        (5.0..6.5).contains(&overall_ms),
        "flow-start latency {overall_ms} ms outside calibrated band"
    );
}

#[test]
fn policy_revocation_flushes_cached_rules_by_cookie() {
    let mut r = rig();
    let id = r.dfi.insert_policy(
        &mut r.sim,
        PolicyRule::allow_all(),
        priority::S_RBAC,
        "test",
    );
    r.sim.run();
    r.tx[0].send(&mut r.sim, syn(1, 2, 80));
    r.sim.run();
    assert!(r.sw.table0_cookies().contains(&id.0));
    // Revoke: the cached allow must disappear from the switch.
    r.dfi.revoke_policy(&mut r.sim, id);
    r.sim.run();
    assert!(
        !r.sw.table0_cookies().contains(&id.0),
        "revoked policy's rules flushed"
    );
    // And the flow is now denied again.
    r.tx[0].send(&mut r.sim, syn(1, 2, 443));
    r.sim.run();
    assert_eq!(r.dfi.metrics().denied, 1);
}

#[test]
fn higher_priority_deny_insert_flushes_conflicting_allow_rules() {
    let mut r = rig();
    let allow_id = r.dfi.insert_policy(
        &mut r.sim,
        PolicyRule::allow_all(),
        priority::BASELINE,
        "baseline",
    );
    r.sim.run();
    r.tx[0].send(&mut r.sim, syn(1, 2, 80));
    r.sim.run();
    assert!(r.sw.table0_cookies().contains(&allow_id.0));
    // A quarantine-style deny arrives at higher priority: the cached allow
    // rules derived from the conflicting policy must be flushed so ongoing
    // flows are re-evaluated.
    r.dfi.insert_policy(
        &mut r.sim,
        PolicyRule::deny(EndpointPattern::any(), EndpointPattern::any()),
        priority::QUARANTINE,
        "quarantine",
    );
    r.sim.run();
    assert!(
        !r.sw.table0_cookies().contains(&allow_id.0),
        "conflicting allow's cached rules evicted"
    );
    // The allow policy itself is still in the database (only switch state
    // was flushed); a re-arriving flow is now denied by the higher rule.
    assert_eq!(r.dfi.with_pm(|pm| pm.len()), 2);
    r.tx[0].send(&mut r.sim, syn(1, 2, 80));
    r.sim.run();
    assert_eq!(r.dfi.metrics().denied, 1);
}

#[test]
fn malicious_controller_cannot_touch_table_zero() {
    // Delete first, then install: messages arrive in order, so the
    // surviving state is the allow-all rule (in whatever table it landed).
    let mut r = rig_with_controller(Controller::malicious(vec![
        Misbehavior::DeleteAllRules,
        Misbehavior::InstallAllowAll,
    ]));
    // Give DFI a deny-cached flow first.
    r.tx[0].send(&mut r.sim, syn(1, 2, 445));
    r.sim.run();
    let cookies = r.sw.table0_cookies();
    assert_eq!(cookies, vec![DEFAULT_DENY_ID.0], "DFI's rule survives");
    // The malicious allow-all landed in table 1+, not table 0.
    assert!(
        !r.sw.table0_cookies().contains(&EVIL_COOKIE),
        "allow-all bypass blocked"
    );
    let evil_in_upper: usize = (1..8u8)
        .map(|t| {
            r.sw.with_table(t, |tbl| {
                tbl.iter().filter(|e| e.cookie == EVIL_COOKIE).count()
            })
        })
        .sum();
    assert_eq!(evil_in_upper, 1, "attack shifted to a controller table");
    // And the denied flow still cannot pass.
    r.tx[0].send(&mut r.sim, syn(1, 2, 445));
    r.sim.run();
    assert!(r.rx[1].borrow().is_empty());
}

#[test]
fn snooping_controller_never_sees_table_zero() {
    let mut r = rig_with_controller(Controller::malicious(vec![Misbehavior::SnoopAllTables]));
    // Populate table 0 with a DFI rule.
    r.tx[0].send(&mut r.sim, syn(1, 2, 445));
    r.sim.run();
    assert_eq!(r.sw.table_len(0), 1);
    // Snoop results: no entry reported from table 0, and the features
    // reply advertised one fewer table.
    for (_, msg) in r.ctrl.seen_messages() {
        match msg {
            dfi_openflow::Message::MultipartReply(dfi_openflow::MultipartReply::Flow(entries)) => {
                assert!(
                    entries.iter().all(|e| e.cookie != DEFAULT_DENY_ID.0),
                    "DFI rule leaked to controller"
                );
            }
            dfi_openflow::Message::FeaturesReply(fr) => {
                assert_eq!(fr.n_tables, 7, "table 0 hidden from features");
            }
            _ => {}
        }
    }
}

#[test]
fn alice_email_walkthrough() {
    // The paper's §III-C end-to-end example: sensors feed the ERM over the
    // bus; a user-level policy allows Alice's machine to reach the email
    // server only while she is logged on.
    let mut r = rig();
    let dhcp = DhcpServer::new(Ipv4Addr::new(10, 0, 1, 2), ip(10), 32);
    let dns = DnsServer::new("corp.local");
    let siem = Siem::new();
    wire_dhcp_sensor(&dhcp, r.dfi.bus());
    wire_dns_sensor(&dns, r.dfi.bus());
    wire_siem_sensor(&siem, r.dfi.bus());

    // 1-2: Alice-Laptop joins, gets an address; DNS registers it. The mail
    // server is static.
    let alice_mac = mac(1);
    let mail_mac = mac(2);
    let alice_ip = dhcp
        .quick_lease(&mut r.sim, alice_mac, "alice-laptop", 7)
        .unwrap();
    dns.register(&mut r.sim, "alice-laptop", alice_ip);
    dhcp.reserve(mail_mac, ip(25));
    let mail_ip = dhcp.quick_lease(&mut r.sim, mail_mac, "mail", 8).unwrap();
    dns.register(&mut r.sim, "mail", mail_ip);
    r.sim.run();

    // Policy: while Alice is logged on, her machine may reach the mail
    // host. (Emitted up front; matching depends on the live bindings.)
    r.dfi.insert_policy(
        &mut r.sim,
        PolicyRule::allow(
            EndpointPattern::user("alice"),
            EndpointPattern::host("mail"),
        ),
        priority::AT_RBAC,
        "mail-pdp",
    );
    r.sim.run();

    // Before log-on: the flow is denied (no username binding resolves).
    let syn_frame = build::tcp_syn(alice_mac, mail_mac, alice_ip, mail_ip, 50_000, 143);
    r.tx[0].send(&mut r.sim, syn_frame.clone());
    r.sim.run();
    assert_eq!(r.dfi.metrics().denied, 1, "pre-auth traffic denied");
    assert!(r.rx[1].borrow().is_empty());

    // 3-5: Alice logs on; the SIEM-derived event reaches the ERM.
    siem.log_on(&mut r.sim, "alice", "alice-laptop");
    r.sim.run();
    // The default-deny cache from the failed attempt must have been
    // flushed when... (no new policy was inserted — the policy existed).
    // The cached deny still matches this exact flow, so flush it by
    // re-inserting the policy is NOT needed: the cached rule was for the
    // same 5-tuple. Clear it via the mail policy re-grant:
    r.dfi.flush_policy_rules(&mut r.sim, DEFAULT_DENY_ID);
    r.sim.run();

    // 6-11: Alice checks her email: allowed now.
    r.tx[0].send(&mut r.sim, syn_frame.clone());
    r.sim.run();
    assert_eq!(r.dfi.metrics().allowed, 1, "post-auth traffic allowed");
    assert_eq!(r.rx[1].borrow().len(), 1, "SYN delivered to mail host");

    // 12-15: Alice logs off; binding expires. New flows are denied again.
    siem.log_off(&mut r.sim, "alice", "alice-laptop");
    r.sim.run();
    r.dfi.flush_policy_rules(&mut r.sim, DEFAULT_DENY_ID); // clear stale allow? (cookie is the mail policy's)
    r.sim.run();
    let denied_before = r.dfi.metrics().denied;
    // Different source port → a new flow, freshly evaluated.
    let syn2 = build::tcp_syn(alice_mac, mail_mac, alice_ip, mail_ip, 50_001, 143);
    r.tx[0].send(&mut r.sim, syn2);
    r.sim.run();
    assert_eq!(
        r.dfi.metrics().denied,
        denied_before + 1,
        "post-logoff denied"
    );
}

#[test]
fn at_rbac_grants_and_revokes_with_sessions() {
    let mut r = rig();
    let mut roles = RbacRoles::new();
    roles.add_enclave("eng", &["h1", "h2"]);
    roles.add_server("files");
    let siem = Siem::new();
    wire_siem_sensor(&siem, r.dfi.bus());
    let pdp = AtRbacPdp::activate(&mut r.sim, &r.dfi, roles);
    r.sim.run();
    assert_eq!(pdp.hosts_with_access(), 0);

    siem.log_on(&mut r.sim, "alice", "h1");
    r.sim.run();
    assert_eq!(pdp.hosts_with_access(), 1);
    // h1's role rules exist: h1↔h2 and h1↔files, both directions.
    let rules = r.dfi.with_pm(|pm| pm.len());
    assert!(rules >= 4);

    // A second user on the same host must not double-grant.
    siem.log_on(&mut r.sim, "bob", "h1");
    r.sim.run();
    assert_eq!(pdp.hosts_with_access(), 1);
    assert_eq!(r.dfi.with_pm(|pm| pm.len()), rules);

    // First log-off keeps access; second removes it.
    siem.log_off(&mut r.sim, "alice", "h1");
    r.sim.run();
    assert_eq!(pdp.hosts_with_access(), 1);
    siem.log_off(&mut r.sim, "bob", "h1");
    r.sim.run();
    assert_eq!(pdp.hosts_with_access(), 0);
    assert_eq!(
        r.dfi.with_pm(|pm| pm.len()),
        rules - 4,
        "role rules revoked at last log-off"
    );
}

#[test]
fn quarantine_overrides_everything_and_releases() {
    let mut r = rig();
    let mut baseline = BaselinePdp::new();
    baseline.activate(&mut r.sim, &r.dfi);
    let mut q = QuarantinePdp::new();
    // Bind host names so the quarantine pattern can match.
    r.dfi.with_erm(|erm| {
        erm.bind(dfi_core::erm::Binding::HostIp {
            host: "h1.corp.local".into(),
            ip: ip(1),
        });
        erm.bind(dfi_core::erm::Binding::HostIp {
            host: "h2.corp.local".into(),
            ip: ip(2),
        });
    });
    r.sim.run();

    // Allowed before quarantine.
    r.tx[0].send(&mut r.sim, syn(1, 2, 80));
    r.sim.run();
    assert_eq!(r.dfi.metrics().allowed, 1);

    q.quarantine(&mut r.sim, &r.dfi, "h1.corp.local");
    assert!(q.is_quarantined("h1.corp.local"));
    r.sim.run();
    let denied0 = r.dfi.metrics().denied;
    r.tx[0].send(&mut r.sim, syn(1, 2, 8080));
    r.sim.run();
    assert_eq!(
        r.dfi.metrics().denied,
        denied0 + 1,
        "quarantined host cut off"
    );

    q.release(&mut r.sim, &r.dfi, "h1.corp.local");
    r.sim.run();
    let allowed0 = r.dfi.metrics().allowed;
    r.tx[0].send(&mut r.sim, syn(1, 2, 8081));
    r.sim.run();
    assert_eq!(
        r.dfi.metrics().allowed,
        allowed0 + 1,
        "released host restored"
    );
}

#[test]
fn spoofed_source_ip_is_denied_without_poisoning() {
    let mut r = rig();
    let mut baseline = BaselinePdp::new();
    baseline.activate(&mut r.sim, &r.dfi);
    // Authoritative DHCP binding: ip(1) belongs to mac(1).
    r.dfi.with_erm(|erm| {
        erm.bind(dfi_core::erm::Binding::IpMac {
            ip: ip(1),
            mac: mac(1),
        });
    });
    r.sim.run();
    // Host 3 (mac 3) claims ip(1): spoof.
    let spoofed = build::tcp_syn(mac(3), mac(2), ip(1), ip(2), 50_000, 445);
    r.tx[2].send(&mut r.sim, spoofed);
    r.sim.run();
    let m = r.dfi.metrics();
    assert_eq!(m.spoof_denied, 1);
    assert!(
        r.rx[1].borrow().is_empty(),
        "spoofed packet blocked despite allow-all"
    );
}

#[test]
fn timing_sanity_under_no_load() {
    // TTFB-style check across the full stack at idle: the DFI leg should
    // put the first delivery somewhere near 6-10 ms of virtual time.
    let mut r = rig();
    let mut baseline = BaselinePdp::new();
    baseline.activate(&mut r.sim, &r.dfi);
    r.sim.run();
    let t0 = r.sim.now();
    r.tx[0].send(&mut r.sim, syn(1, 2, 80));
    r.sim.run();
    let elapsed = r.sim.now() - t0;
    assert!(
        elapsed >= Duration::from_millis(5) && elapsed <= Duration::from_millis(20),
        "one-way first-packet time {elapsed:?}"
    );
    assert!(r.sim.now() > SimTime::ZERO);
}

fn wildcard_rig(wildcard_caching: bool) -> Rig {
    let mut sim = Sim::new(99);
    let mut net = Network::new();
    let sw = net.add_switch(SwitchConfig::new(0xD1));
    let mut tx = Vec::new();
    let mut rx = Vec::new();
    for port in 1..=3u32 {
        let log: Rc<RefCell<Vec<Vec<u8>>>> = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        tx.push(net.attach_host(
            &sw,
            port,
            LAT,
            Rc::new(move |_, f: &[u8]| l.borrow_mut().push(f.to_vec())),
        ));
        rx.push(log);
    }
    let dfi = Dfi::new(DfiConfig {
        wildcard_caching,
        ..test_config()
    });
    // Destination-MAC forwarding rules (classic learning switch), so a
    // widened Table-0 rule actually lets later scan packets stay in the
    // data plane end to end.
    let ctrl = Controller::new(dfi_controller::ControllerConfig {
        exact_match_rules: false,
        ..dfi_controller::ControllerConfig::default()
    });
    let c = ctrl.clone();
    dfi.interpose(&mut sim, &sw, move |sim, sink| c.connect(sim, sink));
    sim.run();
    Rig {
        sim,
        dfi,
        ctrl,
        sw,
        tx,
        rx,
    }
}

/// Drives the wildcard-caching workload: a priming exchange so the
/// controller learns both MACs, then a 20-port scan 1→2. Returns the
/// packet-in count consumed by the scan itself.
fn run_port_scan(r: &mut Rig) -> u64 {
    let mut baseline = BaselinePdp::new();
    baseline.activate(&mut r.sim, &r.dfi);
    r.sim.run();
    // Prime: 1→2 then 2→1 so the controller learns both ports and installs
    // its forwarding rules.
    r.tx[0].send(&mut r.sim, syn(1, 2, 9_999));
    r.sim.run();
    r.tx[1].send(&mut r.sim, syn(2, 1, 9_998));
    r.sim.run();
    r.tx[0].send(&mut r.sim, syn(1, 2, 9_997));
    r.sim.run();
    let before = r.dfi.metrics().packet_ins;
    for port in 1..=20u16 {
        r.tx[0].send(&mut r.sim, syn(1, 2, port));
        r.sim.run();
    }
    r.dfi.metrics().packet_ins - before
}

#[test]
fn wildcard_caching_collapses_port_scans_into_one_rule() {
    // Extension mode (§III-B sketch): a port scan between one host pair
    // no longer generates one control-plane event per port.
    let mut cached = wildcard_rig(true);
    let scan_pis_cached = run_port_scan(&mut cached);
    let mut exact = wildcard_rig(false);
    let scan_pis_exact = run_port_scan(&mut exact);
    assert_eq!(
        scan_pis_cached, 0,
        "widened rule absorbs the entire scan in the data plane"
    );
    assert_eq!(scan_pis_exact, 20, "exact mode pays one packet-in per port");
    assert!(cached.dfi.metrics().wildcard_cached >= 1);
    assert_eq!(
        cached.rx[1].borrow().len(),
        exact.rx[1].borrow().len(),
        "both modes deliver the same packets"
    );
    assert!(cached.sw.table_len(0) < exact.sw.table_len(0));
}

#[test]
fn wildcard_caching_falls_back_when_a_port_specific_policy_exists() {
    let mut r = wildcard_rig(true);
    let mut baseline = BaselinePdp::new();
    baseline.activate(&mut r.sim, &r.dfi);
    // A higher-priority deny on port 445 for every destination: the class
    // verdict is no longer uniform, so widening must be refused and the
    // deny must still bite.
    r.dfi.insert_policy(
        &mut r.sim,
        PolicyRule::deny(
            EndpointPattern::any(),
            dfi_core::policy::EndpointPattern {
                port: dfi_core::policy::Wild::Is(445),
                ..dfi_core::policy::EndpointPattern::any()
            },
        ),
        priority::QUARANTINE,
        "block-smb",
    );
    r.sim.run();
    r.tx[0].send(&mut r.sim, syn(1, 2, 80));
    r.sim.run();
    r.tx[0].send(&mut r.sim, syn(1, 2, 445));
    r.sim.run();
    let m = r.dfi.metrics();
    assert_eq!(
        m.wildcard_cached, 0,
        "no widening near port-specific policy"
    );
    assert_eq!(m.allowed, 1);
    assert_eq!(m.denied, 1, "the SMB block still enforced exactly");
    assert_eq!(r.rx[1].borrow().len(), 1);
}

#[test]
fn proxy_rejects_controller_writes_beyond_the_last_table() {
    // The controller's table space is one smaller than the switch's; a
    // write to its last-visible table would shift past the physical end,
    // so the proxy refuses it with a permission error (and counts it).
    let mut r = rig();
    let from_controller = r.dfi.from_controller_sink(0);
    let fm = dfi_openflow::FlowMod {
        table_id: 7, // controller view; physical would be 8 (out of range)
        priority: 1,
        ..dfi_openflow::FlowMod::add()
    };
    let bytes = dfi_openflow::OfMessage::new(0xBEE, dfi_openflow::Message::FlowMod(fm)).encode();
    from_controller(&mut r.sim, &bytes);
    r.sim.run();
    assert_eq!(r.dfi.metrics().proxy_rejections, 1);
    // The rejected write changed nothing anywhere.
    for t in 0..8u8 {
        assert_eq!(r.sw.table_len(t), 0);
    }
    // The controller received an EPERM error with the same xid.
    let got_error = r.ctrl.seen_messages().iter().any(
        |(_, m)| matches!(m, dfi_openflow::Message::Error(e) if e.err_type == 1 && e.code == 6),
    );
    assert!(got_error, "controller told about the refusal");
}

#[test]
fn controller_goto_into_its_own_tables_works_behind_the_proxy() {
    // A controller pipelining across *its* tables 0→1 must land in
    // physical 1→2 and still forward traffic.
    let mut r = rig();
    let mut baseline = BaselinePdp::new();
    baseline.activate(&mut r.sim, &r.dfi);
    r.sim.run();
    let from_controller = r.dfi.from_controller_sink(0);
    // Controller table 0: goto its table 1. Controller table 1: output 2.
    let stage1 = dfi_openflow::FlowMod {
        table_id: 0,
        priority: 50,
        instructions: vec![dfi_openflow::Instruction::GotoTable(1)],
        ..dfi_openflow::FlowMod::add()
    };
    let stage2 = dfi_openflow::FlowMod {
        table_id: 1,
        priority: 50,
        instructions: vec![dfi_openflow::Instruction::ApplyActions(vec![
            dfi_openflow::Action::output(2),
        ])],
        ..dfi_openflow::FlowMod::add()
    };
    for fm in [stage1, stage2] {
        let bytes = dfi_openflow::OfMessage::new(1, dfi_openflow::Message::FlowMod(fm)).encode();
        from_controller(&mut r.sim, &bytes);
    }
    r.sim.run();
    assert_eq!(r.sw.table_len(1), 1, "controller table 0 → physical 1");
    assert_eq!(r.sw.table_len(2), 1, "controller table 1 → physical 2");
    // Traffic: DFI allows (baseline), then the controller's two-stage
    // pipeline forwards to port 2.
    r.tx[0].send(&mut r.sim, syn(1, 2, 8080));
    r.sim.run();
    assert_eq!(
        r.rx[1].borrow().len(),
        1,
        "delivered via pipelined controller tables"
    );
}

#[test]
fn decisions_are_attributed_to_their_policies() {
    let mut r = rig();
    let allow_id = r.dfi.insert_policy(
        &mut r.sim,
        PolicyRule::allow_all(),
        priority::BASELINE,
        "baseline",
    );
    r.sim.run();
    r.tx[0].send(&mut r.sim, syn(1, 2, 80));
    r.sim.run();
    r.tx[0].send(&mut r.sim, syn(1, 2, 81));
    r.sim.run();
    // A flow decided after revocation falls to the default deny.
    r.dfi.revoke_policy(&mut r.sim, allow_id);
    r.sim.run();
    r.tx[0].send(&mut r.sim, syn(1, 2, 82));
    r.sim.run();
    let by_policy = r.dfi.metrics().decisions_by_policy;
    assert_eq!(by_policy.get(&allow_id.0), Some(&2));
    assert_eq!(by_policy.get(&DEFAULT_DENY_ID.0), Some(&1));
}
