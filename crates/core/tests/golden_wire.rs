//! Golden-byte wire tests: pin the exact OpenFlow 1.3 encoding of the two
//! messages DFI's correctness hangs on — the cookie-carrying `Flow-Mod`
//! (policy id ↔ switch rule linkage, §7.3.4.1) and the proxy's table-shift
//! rewrite — against hand-written hex dumps.
//!
//! Round-trip property tests can't catch a codec that is self-consistently
//! wrong (e.g. little-endian cookies on both paths); these dumps anchor the
//! bytes to the spec so a real switch would agree with us.

use dfi_core::rewrite::{rewrite_controller_to_switch, rewrite_switch_to_controller, Upstream};
use dfi_openflow::{FlowMod, Instruction, Match, Message, OfMessage, PacketIn};
use std::net::Ipv4Addr;

/// Parses "04 0e 00 50 …" (whitespace-separated hex bytes) into bytes.
fn hex(dump: &str) -> Vec<u8> {
    dump.split_whitespace()
        .map(|b| u8::from_str_radix(b, 16).expect("hex byte"))
        .collect()
}

fn diff_offsets(a: &[u8], b: &[u8]) -> Vec<usize> {
    assert_eq!(a.len(), b.len(), "encodings must keep their length");
    (0..a.len()).filter(|&i| a[i] != b[i]).collect()
}

/// A DFI *allow* install, byte for byte: cookie = policy id, match on
/// `eth_type` + `ipv4_src`, single `goto_table 1` instruction.
#[test]
fn flow_mod_add_golden_bytes() {
    let fm = FlowMod {
        cookie: 0xDEAD_BEEF_CAFE_F00D,
        priority: 40_000,
        mat: Match {
            eth_type: Some(0x0800),
            ipv4_src: Some(Ipv4Addr::new(10, 0, 1, 1)),
            ..Match::default()
        },
        instructions: vec![Instruction::GotoTable(1)],
        ..FlowMod::add()
    };
    let got = OfMessage::new(0x1122_3344, Message::FlowMod(fm)).encode();
    let want = hex(
        // ofp_header: version=1.3, type=OFPT_FLOW_MOD(14), len=80, xid
        "04 0e 00 50 11 22 33 44 \
         de ad be ef ca fe f0 0d \
         00 00 00 00 00 00 00 00 \
         00 00 \
         00 00 00 00 9c 40 \
         ff ff ff ff ff ff ff ff ff ff ff ff \
         00 00 00 00 \
         00 01 00 12 \
         80 00 0a 02 08 00 \
         80 00 16 04 0a 00 01 01 \
         00 00 00 00 00 00 \
         00 01 00 08 01 00 00 00",
        // cookie ↑, cookie_mask (8×00, ignored for add), table=0 cmd=ADD,
        // idle/hard timeouts 0, priority 40000; buffer_id/out_port/out_group
        // all 0xffffffff; flags + pad; ofp_match OXM len=18 with
        // OXM_OF_ETH_TYPE=0x0800 and OXM_OF_IPV4_SRC=10.0.1.1 + 6 pad;
        // OFPIT_GOTO_TABLE → table 1.
    );
    assert_eq!(got, want, "Flow-Mod ADD wire layout drifted from OF1.3");
}

/// The policy-revocation flush: delete-by-cookie across all tables. This is
/// the message whose `cookie/cookie_mask` semantics replace timeouts in DFI.
#[test]
fn flow_mod_delete_by_cookie_golden_bytes() {
    let fm = FlowMod::delete_by_cookie(42, u64::MAX);
    let got = OfMessage::new(0xDF1, Message::FlowMod(fm)).encode();
    let want = hex(
        // len=56; cookie=42 under a full mask; table=OFPTT_ALL(0xff),
        // cmd=OFPFC_DELETE(3); empty OXM match (len=4 + 4 pad).
        "04 0e 00 38 00 00 0d f1 \
         00 00 00 00 00 00 00 2a \
         ff ff ff ff ff ff ff ff \
         ff 03 \
         00 00 00 00 00 00 \
         ff ff ff ff ff ff ff ff ff ff ff ff \
         00 00 00 00 \
         00 01 00 04 00 00 00 00",
    );
    assert_eq!(got, want, "delete-by-cookie wire layout drifted from OF1.3");
}

/// The cookie and `cookie_mask` sit big-endian at body offsets 0 and 8
/// (§7.3.4.1) — checked independently of any golden dump so an error in a
/// dump above can't mask an endianness bug.
#[test]
fn cookie_fields_at_spec_offsets() {
    let fm = FlowMod {
        cookie: 0x0102_0304_0506_0708,
        cookie_mask: 0x1112_1314_1516_1718,
        ..FlowMod::add()
    };
    let bytes = OfMessage::new(0, Message::FlowMod(fm)).encode();
    assert_eq!(&bytes[8..16], &0x0102_0304_0506_0708u64.to_be_bytes());
    assert_eq!(&bytes[16..24], &0x1112_1314_1516_1718u64.to_be_bytes());
}

/// The proxy's controller→switch table shift, observed on the wire: exactly
/// two bytes change — the flow-mod's `table_id` (body offset 16) and the
/// `goto_table` operand — and the cookie bytes are untouched.
#[test]
fn rewrite_shifts_table_ids_on_the_wire() {
    const TABLE_ID: usize = 8 + 16; // header + cookie + cookie_mask
    const GOTO_OPERAND: usize = 8 + 40 + 8 + 4; // header + fixed part + empty match + instr hdr
    let fm = FlowMod {
        cookie: 0xC0C0_C0C0_C0C0_C0C0,
        table_id: 0,
        priority: 7,
        instructions: vec![Instruction::GotoTable(1)],
        ..FlowMod::add()
    };
    let original = OfMessage::new(5, Message::FlowMod(fm)).encode();
    let decoded = OfMessage::decode(&original).unwrap();
    let Upstream::Forward(mut out) = rewrite_controller_to_switch(decoded, 8) else {
        panic!("in-range table must forward");
    };
    assert_eq!(out.len(), 1);
    let rewritten = out.pop().unwrap().encode();

    assert_eq!(
        diff_offsets(&original, &rewritten),
        vec![TABLE_ID, GOTO_OPERAND],
        "shift must touch exactly the two table references"
    );
    assert_eq!(original[TABLE_ID], 0);
    assert_eq!(rewritten[TABLE_ID], 1);
    assert_eq!(original[GOTO_OPERAND], 1);
    assert_eq!(rewritten[GOTO_OPERAND], 2);
    assert_eq!(
        &rewritten[8..24],
        &original[8..24],
        "cookie bytes untouched"
    );
}

/// The switch→controller decrement on a packet-in, on the wire: `table_id`
/// lives at body offset 7 (after `buffer_id`, `total_len`, reason) and is the
/// only byte that changes.
#[test]
fn rewrite_decrements_packet_in_table_on_the_wire() {
    const TABLE_ID: usize = 8 + 4 + 2 + 1; // header + buffer_id + total_len + reason
    let pi = PacketIn::table_miss(4, 2, vec![0xAA, 0xBB]);
    let original = OfMessage::new(9, Message::PacketIn(pi)).encode();
    let decoded = OfMessage::decode(&original).unwrap();
    let rewritten = rewrite_switch_to_controller(decoded).unwrap().encode();

    assert_eq!(diff_offsets(&original, &rewritten), vec![TABLE_ID]);
    assert_eq!(original[TABLE_ID], 2);
    assert_eq!(rewritten[TABLE_ID], 1);
}
