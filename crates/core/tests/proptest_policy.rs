//! Property-based tests on the policy model and Policy Manager invariants.

use dfi_core::policy::{
    Decision, EndpointPattern, EndpointView, FlowProperties, FlowView, PolicyAction, PolicyManager,
    PolicyRule, PolicySnapshot, Wild, WildName, DEFAULT_DENY_ID,
};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_name() -> impl Strategy<Value = String> {
    // A small alphabet so matches actually occur; mixed case so the
    // case-insensitive name semantics (and the lowercased bucket index)
    // are exercised.
    "[a-dA-D]{1,3}"
}

fn arb_wildname() -> impl Strategy<Value = WildName> {
    prop_oneof![Just(WildName::Any), arb_name().prop_map(WildName::Is)]
}

fn arb_port() -> impl Strategy<Value = Wild<u16>> {
    prop_oneof![Just(Wild::Any), (1u16..5).prop_map(Wild::Is)]
}

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    (1u8..4).prop_map(|b| Ipv4Addr::new(10, 0, 0, b))
}

fn arb_wild_ip() -> impl Strategy<Value = Wild<Ipv4Addr>> {
    prop_oneof![Just(Wild::Any), arb_ip().prop_map(Wild::Is)]
}

prop_compose! {
    fn arb_pattern()(
        username in arb_wildname(),
        hostname in arb_wildname(),
        ip in arb_wild_ip(),
        port in arb_port(),
    ) -> EndpointPattern {
        EndpointPattern { username, hostname, ip, port, ..EndpointPattern::any() }
    }
}

prop_compose! {
    fn arb_rule()(
        allow in any::<bool>(),
        src in arb_pattern(),
        dst in arb_pattern(),
        tcp_only in any::<bool>(),
    ) -> PolicyRule {
        PolicyRule {
            action: if allow { PolicyAction::Allow } else { PolicyAction::Deny },
            flow: if tcp_only { FlowProperties::tcp() } else { FlowProperties::any() },
            src,
            dst,
        }
    }
}

prop_compose! {
    fn arb_view()(
        users in proptest::collection::vec(arb_name(), 0..3),
        hosts in proptest::collection::vec(arb_name(), 0..3),
        ip in proptest::option::of(arb_ip()),
        port in proptest::option::of(1u16..5),
    ) -> EndpointView {
        EndpointView {
            usernames: users,
            hostnames: hosts,
            ip,
            port,
            ..EndpointView::default()
        }
    }
}

prop_compose! {
    fn arb_flow()(
        src in arb_view(),
        dst in arb_view(),
        tcp in any::<bool>(),
    ) -> FlowView {
        FlowView {
            ethertype: 0x0800,
            ip_proto: Some(if tcp { 6 } else { 17 }),
            src,
            dst,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// If two rules both match some concrete flow, they must be reported
    /// as overlapping — conflict detection can be conservative, but it may
    /// never miss a genuine overlap (that would leave stale switch rules
    /// alive, the bug class the Policy Manager exists to prevent).
    #[test]
    fn matching_rules_always_overlap(r1 in arb_rule(), r2 in arb_rule(), flow in arb_flow()) {
        if r1.matches(&flow) && r2.matches(&flow) {
            prop_assert!(r1.overlaps(&r2), "{r1:?} and {r2:?} both match {flow:?}");
            prop_assert!(r2.overlaps(&r1), "overlap must be symmetric");
        }
    }

    #[test]
    fn allow_all_matches_every_flow(flow in arb_flow()) {
        prop_assert!(PolicyRule::allow_all().matches(&flow));
    }

    #[test]
    fn overlap_is_symmetric(r1 in arb_rule(), r2 in arb_rule()) {
        prop_assert_eq!(r1.overlaps(&r2), r2.overlaps(&r1));
    }

    #[test]
    fn overlap_is_reflexive(r in arb_rule()) {
        prop_assert!(r.overlaps(&r));
    }

    /// The manager's decision always corresponds to a stored rule that
    /// matches the flow (or the default deny), and no stored matching rule
    /// has strictly higher priority than the winner.
    #[test]
    fn decision_is_sound_and_maximal(
        rules in proptest::collection::vec((arb_rule(), 1u32..5), 0..12),
        flow in arb_flow(),
    ) {
        let mut pm = PolicyManager::new();
        for (rule, prio) in &rules {
            pm.insert(rule.clone(), *prio, "prop");
        }
        let Decision { action, policy } = pm.query(&flow);
        if policy == DEFAULT_DENY_ID {
            prop_assert_eq!(action, PolicyAction::Deny);
            for sp in pm.iter() {
                prop_assert!(!sp.rule.matches(&flow), "a matching rule was ignored");
            }
        } else {
            let winner = pm.get(policy).expect("decision references stored policy");
            prop_assert!(winner.rule.matches(&flow));
            prop_assert_eq!(winner.rule.action, action);
            for sp in pm.iter() {
                if sp.rule.matches(&flow) {
                    prop_assert!(
                        sp.priority <= winner.priority,
                        "rule {:?} (prio {}) outranks winner (prio {})",
                        sp.id, sp.priority, winner.priority
                    );
                    if sp.priority == winner.priority && action == PolicyAction::Allow {
                        prop_assert_eq!(
                            sp.rule.action,
                            PolicyAction::Allow,
                            "equal-priority deny must have won"
                        );
                    }
                }
            }
        }
    }

    /// Revoking everything returns the manager to default deny.
    #[test]
    fn revoking_all_rules_restores_default_deny(
        rules in proptest::collection::vec(arb_rule(), 1..8),
        flow in arb_flow(),
    ) {
        let mut pm = PolicyManager::new();
        let ids: Vec<_> = rules
            .into_iter()
            .map(|r| pm.insert(r, 3, "prop").0)
            .collect();
        for id in ids {
            prop_assert!(pm.revoke(id));
        }
        prop_assert!(pm.is_empty());
        let d = pm.query(&flow);
        prop_assert_eq!(d.policy, DEFAULT_DENY_ID);
        prop_assert_eq!(d.action, PolicyAction::Deny);
    }

    /// Conflict reporting: every reported id exists (or is the default
    /// deny), is outranked by the new rule (strictly lower priority, or
    /// equal priority with the new rule a Deny), and has opposite action.
    #[test]
    fn conflict_reports_are_valid(
        existing in proptest::collection::vec((arb_rule(), 1u32..5), 0..8),
        new_rule in arb_rule(),
        new_prio in 1u32..5,
    ) {
        let mut pm = PolicyManager::new();
        for (rule, prio) in &existing {
            pm.insert(rule.clone(), *prio, "prop");
        }
        let snapshot: Vec<_> = pm.iter().map(|sp| (sp.id, sp.priority, sp.rule.clone())).collect();
        let (new_id, flush) = pm.insert(new_rule.clone(), new_prio, "prop");
        for id in flush {
            if id == DEFAULT_DENY_ID {
                prop_assert_eq!(new_rule.action, PolicyAction::Allow);
                continue;
            }
            prop_assert_ne!(id, new_id);
            let (_, prio, rule) = snapshot
                .iter()
                .find(|(sid, _, _)| *sid == id)
                .expect("flush id refers to a pre-existing rule");
            prop_assert!(
                *prio < new_prio
                    || (*prio == new_prio && new_rule.action == PolicyAction::Deny),
                "flushed rule (prio {}) is not outranked by the new {:?} (prio {})",
                prio, new_rule.action, new_prio
            );
            prop_assert_ne!(rule.action, new_rule.action);
            prop_assert!(rule.overlaps(&new_rule));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The bucket-indexed `query`/`query_class` must be **bit-identical**
    /// to the retained linear scans (`query_linear`/`query_class_linear`)
    /// — same winning policy id, not merely the same action — on
    /// arbitrary insert/revoke histories and flows. This is the proof
    /// obligation that lets the indexed path replace the scan on the
    /// packet hot path.
    #[test]
    fn indexed_query_matches_linear_reference(
        ops in proptest::collection::vec((arb_rule(), 1u32..5, any::<bool>()), 0..16),
        flows in proptest::collection::vec(arb_flow(), 1..6),
    ) {
        let mut pm = PolicyManager::new();
        let mut live = Vec::new();
        for (rule, prio, revoke_oldest) in &ops {
            let (id, _) = pm.insert(rule.clone(), *prio, "prop");
            live.push(id);
            // Interleave revocations so bucket removal is exercised too.
            if *revoke_oldest && live.len() > 1 {
                let victim = live.remove(0);
                prop_assert!(pm.revoke(victim));
            }
        }
        for flow in &flows {
            prop_assert_eq!(
                pm.query(flow),
                pm.query_linear(flow),
                "indexed query diverged on {:?}",
                flow
            );
            prop_assert_eq!(
                pm.query_class(flow),
                pm.query_class_linear(flow),
                "indexed query_class diverged on {:?}",
                flow
            );
        }
    }

    /// The tentpole proof obligation of the snapshot data plane: the
    /// compiled immutable classifier must be **bit-identical** — same
    /// winning policy id, not merely the same action — to both the
    /// bucket-indexed query and the retained linear oracle, on arbitrary
    /// insert/revoke histories and flows:
    /// `snapshot.classify ≡ pm.query ≡ pm.query_linear` (and the
    /// port-class triple). This three-way equivalence is what licenses the
    /// hot path to read *only* the snapshot.
    #[test]
    fn snapshot_classify_matches_indexed_and_linear(
        ops in proptest::collection::vec((arb_rule(), 1u32..5, any::<bool>()), 0..16),
        flows in proptest::collection::vec(arb_flow(), 1..6),
    ) {
        let mut pm = PolicyManager::new();
        let mut live = Vec::new();
        for (rule, prio, revoke_oldest) in &ops {
            let (id, _) = pm.insert(rule.clone(), *prio, "prop");
            live.push(id);
            if *revoke_oldest && live.len() > 1 {
                let victim = live.remove(0);
                prop_assert!(pm.revoke(victim));
            }
        }
        let snap = PolicySnapshot::compile(&pm, 1);
        prop_assert_eq!(snap.rule_count(), pm.len());
        prop_assert_eq!(snap.revision(), pm.revision());
        for flow in &flows {
            let linear = pm.query_linear(flow);
            prop_assert_eq!(
                snap.classify(flow),
                linear.clone(),
                "snapshot classify diverged from the linear oracle on {:?}",
                flow
            );
            prop_assert_eq!(pm.query(flow), linear, "bucket index diverged on {:?}", flow);
            let class_linear = pm.query_class_linear(flow);
            prop_assert_eq!(
                snap.classify_class(flow),
                class_linear.clone(),
                "snapshot classify_class diverged from the linear oracle on {:?}",
                flow
            );
            prop_assert_eq!(
                pm.query_class(flow),
                class_linear,
                "bucket-index query_class diverged on {:?}",
                flow
            );
        }
        // Batch classification is defined as the pointwise map.
        let mut out = Vec::new();
        snap.classify_batch(&flows, &mut out);
        prop_assert_eq!(out.len(), flows.len());
        for (flow, batched) in flows.iter().zip(&out) {
            prop_assert_eq!(batched, &snap.classify(flow));
        }
    }

    /// Soundness of the wildcard-caching extension: when `query_class`
    /// declares a flow's port class uniform, every member of the class
    /// (any src/dst port combination) must receive that same verdict from
    /// the per-flow `query`.
    #[test]
    fn query_class_is_sound(
        rules in proptest::collection::vec((arb_rule(), 1u32..5), 0..10),
        flow in arb_flow(),
        probe_ports in proptest::collection::vec((1u16..6, 1u16..6), 1..8),
    ) {
        let mut pm = PolicyManager::new();
        for (rule, prio) in &rules {
            pm.insert(rule.clone(), *prio, "prop");
        }
        if let Some(class) = pm.query_class(&flow) {
            for (sport, dport) in probe_ports {
                let mut member = flow.clone();
                member.src.port = Some(sport);
                member.dst.port = Some(dport);
                let per_flow = pm.query(&member);
                prop_assert_eq!(
                    per_flow.action, class.action,
                    "class said {:?} but member ({},{}) decided {:?}",
                    class, sport, dport, per_flow
                );
            }
        }
    }
}
