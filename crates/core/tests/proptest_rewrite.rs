//! Property-based tests for the proxy's table-reference rewriting: the
//! controller must never reach Table 0, and what the controller sees must
//! be a consistent renaming of what the switch holds.

use dfi_core::rewrite::{rewrite_controller_to_switch, rewrite_switch_to_controller, Upstream};
use dfi_openflow::{
    table, Action, FlowMod, FlowModCommand, FlowStatsEntry, Instruction, Match, Message,
    MultipartReply, OfMessage, TableStatsEntry,
};
use proptest::prelude::*;

const N_TABLES: u8 = 8;

fn arb_instructions() -> impl Strategy<Value = Vec<Instruction>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..N_TABLES).prop_map(Instruction::GotoTable),
            Just(Instruction::ApplyActions(vec![Action::output(3)])),
            Just(Instruction::ClearActions),
        ],
        0..3,
    )
}

prop_compose! {
    fn arb_flow_mod()(
        table_id in 0u8..=255,
        priority in any::<u16>(),
        cookie in any::<u64>(),
        delete in any::<bool>(),
        instructions in arb_instructions(),
    ) -> FlowMod {
        FlowMod {
            table_id,
            priority,
            cookie,
            command: if delete { FlowModCommand::Delete } else { FlowModCommand::Add },
            instructions,
            ..FlowMod::add()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// No controller flow-mod, whatever its table references, ever reaches
    /// physical table 0 — and goto-table targets are shifted consistently.
    #[test]
    fn controller_flow_mods_never_touch_table_zero(fm in arb_flow_mod(), xid in any::<u32>()) {
        match rewrite_controller_to_switch(OfMessage::new(xid, Message::FlowMod(fm)), N_TABLES) {
            Upstream::Forward(msgs) => {
                for m in msgs {
                    prop_assert_eq!(m.xid, xid);
                    let Message::FlowMod(out) = m.body else {
                        prop_assert!(false, "flow-mod stayed a flow-mod");
                        return Ok(());
                    };
                    prop_assert_ne!(out.table_id, 0, "physical table 0 reached");
                    prop_assert!(out.table_id < N_TABLES || out.table_id == table::ALL);
                    for inst in &out.instructions {
                        if let Instruction::GotoTable(t) = inst {
                            prop_assert!(*t >= 1 && *t < N_TABLES);
                        }
                    }
                }
            }
            Upstream::Reject => {} // refusing is always safe
        }
    }

    /// Shifting up then reporting back down is the identity on the
    /// controller's view: a rule the controller installs in its table t is
    /// reported back (via flow stats) in table t.
    #[test]
    fn up_then_down_is_identity_for_controller_tables(
        t in 0u8..(N_TABLES - 1),
        goto_t in proptest::option::of(0u8..(N_TABLES - 2)),
        cookie in any::<u64>(),
    ) {
        let mut instructions = vec![Instruction::ApplyActions(vec![Action::output(1)])];
        if let Some(g) = goto_t {
            instructions.push(Instruction::GotoTable(g));
        }
        let fm = FlowMod {
            table_id: t,
            cookie,
            instructions: instructions.clone(),
            ..FlowMod::add()
        };
        let physical = match rewrite_controller_to_switch(
            OfMessage::new(1, Message::FlowMod(fm)),
            N_TABLES,
        ) {
            Upstream::Forward(mut msgs) => match msgs.pop().unwrap().body {
                Message::FlowMod(fm) => fm,
                _ => unreachable!(),
            },
            Upstream::Reject => {
                // Only possible when the shifted goto falls off the end.
                prop_assert!(goto_t.is_some_and(|g| g + 1 >= N_TABLES) || t + 1 >= N_TABLES);
                return Ok(());
            }
        };
        // The switch reports the rule back through flow stats.
        let entry = FlowStatsEntry {
            table_id: physical.table_id,
            duration_sec: 0,
            duration_nsec: 0,
            priority: physical.priority,
            idle_timeout: 0,
            hard_timeout: 0,
            flags: 0,
            cookie: physical.cookie,
            packet_count: 0,
            byte_count: 0,
            mat: Match::any(),
            instructions: physical.instructions.clone(),
        };
        let down = rewrite_switch_to_controller(OfMessage::new(
            2,
            Message::MultipartReply(MultipartReply::Flow(vec![entry])),
        ))
        .expect("flow stats pass through");
        let Message::MultipartReply(MultipartReply::Flow(entries)) = down.body else {
            prop_assert!(false);
            return Ok(());
        };
        prop_assert_eq!(entries.len(), 1);
        prop_assert_eq!(entries[0].table_id, t, "table renaming not inverse");
        prop_assert_eq!(&entries[0].instructions, &instructions);
        prop_assert_eq!(entries[0].cookie, cookie);
    }

    /// Downward rewriting never lets a table-0 artifact through.
    #[test]
    fn switch_to_controller_hides_all_table_zero_state(
        tables in proptest::collection::vec(0u8..N_TABLES, 0..6),
    ) {
        let entries: Vec<TableStatsEntry> = tables
            .iter()
            .map(|&t| TableStatsEntry {
                table_id: t,
                active_count: 1,
                lookup_count: 1,
                matched_count: 1,
            })
            .collect();
        let out = rewrite_switch_to_controller(OfMessage::new(
            3,
            Message::MultipartReply(MultipartReply::Table(entries)),
        ))
        .expect("table stats pass through");
        let Message::MultipartReply(MultipartReply::Table(seen)) = out.body else {
            panic!("kind preserved");
        };
        let zero_inputs = tables.iter().filter(|&&t| t == 0).count();
        prop_assert_eq!(seen.len(), tables.len() - zero_inputs);
        for e in &seen {
            prop_assert!(e.table_id < N_TABLES - 1);
        }
    }
}
