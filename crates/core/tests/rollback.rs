//! One-command snapshot rollback on the retention ring, in all three
//! execution modes (unsharded, cooperative shards, worker threads).
//!
//! The regression under test: after the certification gate refuses a
//! mutation, the Policy Manager holds uncertified state while the fleet
//! keeps serving the last-good snapshot. `rollback_snapshot(epoch)` must
//! restore the manager to a retained certified epoch's exact rule set,
//! flush everything the restore invalidated, and republish through the
//! normal certify path — leaving every shard on one fresh epoch whose rule
//! set equals the retained one. An epoch that has left the retention ring
//! must be refused (`false`) without touching anything.

use dfi_core::events::SnapshotWitness;
use dfi_core::policy::{EndpointPattern, PolicyId, PolicyRule};
use dfi_core::shard::SNAPSHOT_RETENTION;
use dfi_core::{
    CookieSets, Dfi, DfiConfig, HostDeliveries, ParallelShardedDfi, ShardedDfi, WorkerWorld,
};
use dfi_simnet::Sim;
use std::cell::Cell;
use std::collections::HashMap;
use std::rc::Rc;

const SEED: u64 = 0x0011_B4CC;

fn rule(n: usize) -> PolicyRule {
    PolicyRule::allow(
        EndpointPattern::user(&format!("u{n}")),
        EndpointPattern::any(),
    )
}

/// Ids stored in the manager, ascending — the shape we compare against a
/// snapshot's compiled rule set.
fn pm_ids(ids: &mut Vec<u64>, pm: &mut dfi_core::policy::PolicyManager) {
    ids.clear();
    ids.extend(pm.iter().map(|sp| sp.id.0));
}

#[test]
fn unsharded_rollback_after_refusal_restores_last_good_epoch() {
    let mut sim = Sim::new(SEED);
    let dfi = Dfi::new(DfiConfig::default());
    dfi.set_snapshot_retention(SNAPSHOT_RETENTION);

    let refusing = Rc::new(Cell::new(false));
    {
        let refusing = refusing.clone();
        dfi.set_snapshot_gate(Box::new(move |_, _| {
            if refusing.get() {
                vec![SnapshotWitness {
                    kind: "test-refusal".into(),
                    rules: vec![],
                    message: "refused by test certifier".into(),
                }]
            } else {
                Vec::new()
            }
        }));
    }

    // Two clean certified epochs; the first retires onto the ring.
    let keep = dfi.insert_policy(&mut sim, rule(1), 10, "rollback-test");
    sim.run();
    let good_epoch = dfi.snapshot().epoch();
    dfi.insert_policy(&mut sim, rule(2), 10, "rollback-test");
    sim.run();
    assert!(
        dfi.snapshot_history()
            .iter()
            .any(|s| s.epoch() == good_epoch),
        "the first certified epoch is retained"
    );

    // A refused mutation: the manager takes the rule, the fleet does not.
    refusing.set(true);
    let bad = dfi.insert_policy(&mut sim, rule(3), 10, "rollback-test");
    sim.run();
    let m = dfi.metrics();
    assert_eq!(m.snapshot_refusals, 1);
    let served_during_refusal = dfi.snapshot().epoch();
    assert!(dfi.with_pm(|pm| pm.get(bad).is_some()));

    // One command undoes it: back to the retained good epoch's rule set,
    // republished under a fresh (strictly newer) epoch.
    refusing.set(false);
    assert!(dfi.rollback_snapshot(&mut sim, good_epoch));
    sim.run();
    let mut ids = Vec::new();
    dfi.with_pm(|pm| pm_ids(&mut ids, pm));
    assert_eq!(ids, vec![keep.0], "only the good epoch's rule survives");
    assert!(
        dfi.snapshot().epoch() > served_during_refusal,
        "a rollback republishes under a fresh epoch, it never rewinds the counter"
    );
    assert_eq!(
        dfi.metrics().snapshot_refusals,
        1,
        "the rollback itself certifies"
    );

    // Epochs outside the retention ring are refused untouched.
    let before = dfi.snapshot().epoch();
    assert!(!dfi.rollback_snapshot(&mut sim, 10_000));
    assert_eq!(dfi.snapshot().epoch(), before);
}

#[test]
fn sharded_rollback_restores_the_whole_fleet_at_once() {
    let mut sim = Sim::new(SEED ^ 1);
    let sharded = ShardedDfi::new(4, &DfiConfig::default());

    let refusing = Rc::new(Cell::new(false));
    {
        let refusing = refusing.clone();
        sharded.set_snapshot_gate(Box::new(move |_, _| {
            if refusing.get() {
                vec![SnapshotWitness {
                    kind: "test-refusal".into(),
                    rules: vec![],
                    message: "refused by test certifier".into(),
                }]
            } else {
                Vec::new()
            }
        }));
    }

    let keep = sharded.insert_policy(&mut sim, rule(1), 10, "rollback-test");
    sim.run();
    let good_epoch = sharded.served_epochs()[0];
    sharded.insert_policy(&mut sim, rule(2), 10, "rollback-test");
    sim.run();

    refusing.set(true);
    let bad = sharded.insert_policy(&mut sim, rule(3), 10, "rollback-test");
    sim.run();
    assert!(sharded.epochs_agree(), "a refusal strands no shard");
    let served_during_refusal = sharded.served_epochs()[0];
    assert!(sharded.with_pm(|pm| pm.get(bad).is_some()));

    refusing.set(false);
    assert!(sharded.rollback_snapshot(&mut sim, good_epoch));
    sim.run();
    assert!(
        sharded.epochs_agree(),
        "rollback moves every shard together"
    );
    assert!(sharded.served_epochs()[0] > served_during_refusal);
    let mut ids = Vec::new();
    sharded.with_pm(|pm| pm_ids(&mut ids, pm));
    assert_eq!(ids, vec![keep.0]);
    // Every shard's current snapshot compiles exactly the restored set.
    for shard in sharded.shards() {
        let snap_ids: Vec<u64> = shard.snapshot().rules().map(|(id, _)| id.0).collect();
        assert_eq!(snap_ids, vec![keep.0], "restored rule set on every shard");
    }

    assert!(!sharded.rollback_snapshot(&mut sim, 10_000));
}

/// A do-nothing worker world: no switches, no taps — policy plumbing only.
fn empty_builders(n: usize) -> Vec<dfi_core::WorldBuilder> {
    (0..n)
        .map(|_| {
            Box::new(|_: &mut Sim, _: &Dfi, _: &dfi_core::Outbox| WorkerWorld {
                taps: Vec::new(),
                boundaries: Vec::new(),
                observe: Box::new(|_| (HostDeliveries::new(), CookieSets::new())),
            }) as dfi_core::WorldBuilder
        })
        .collect()
}

#[test]
fn threaded_rollback_crosses_the_epoch_barrier() {
    let mut par = ParallelShardedDfi::new(
        &DfiConfig::default(),
        SEED ^ 2,
        empty_builders(4),
        HashMap::new(),
    );

    let keep: PolicyId = par.insert_policy(rule(1), 10, "rollback-test");
    par.drain();
    let good_epoch = par.served_epochs()[0];
    par.insert_policy(rule(2), 10, "rollback-test");
    par.drain();
    assert!(
        par.snapshot_history()
            .iter()
            .any(|s| s.epoch() == good_epoch),
        "front-end retention ring holds the good epoch"
    );

    // Refuse the next mutation at the front-end gate.
    let refusing = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
    {
        let refusing = refusing.clone();
        par.set_snapshot_gate(Box::new(move |_| {
            if refusing.load(std::sync::atomic::Ordering::Relaxed) {
                vec![SnapshotWitness {
                    kind: "test-refusal".into(),
                    rules: vec![],
                    message: "refused by test certifier".into(),
                }]
            } else {
                Vec::new()
            }
        }));
    }
    par.insert_policy(rule(3), 10, "rollback-test");
    par.drain();
    assert!(par.epochs_agree(), "a refusal strands no worker");
    let served_during_refusal = par.served_epochs()[0];

    refusing.store(false, std::sync::atomic::Ordering::Relaxed);
    assert!(par.rollback_snapshot(good_epoch));
    par.drain();
    assert!(
        par.epochs_agree(),
        "rollback crosses the barrier as one epoch"
    );
    assert!(par.served_epochs()[0] > served_during_refusal);

    // One more clean publish retires the rollback's snapshot onto the
    // ring, where we can see its compiled rule set: the good epoch's
    // exact rules (the refused rule(3) is gone, rule(2) rolled back).
    par.insert_policy(rule(4), 10, "rollback-test");
    par.drain();
    let history = par.snapshot_history();
    let rolled_back = history.last().expect("rollback snapshot retained");
    let ids: Vec<u64> = rolled_back.rules().map(|(id, _)| id.0).collect();
    assert_eq!(
        ids,
        vec![keep.0],
        "rollback restored the good epoch's rule set"
    );

    assert!(!par.rollback_snapshot(10_000), "expired epochs are refused");
    par.shutdown();
}
