//! Differential equivalence: the sharded proxy against the unsharded
//! oracle.
//!
//! One seeded trace — flows, policy inserts/revokes (each a live snapshot
//! swap), DHCP moves, session toggles — replays through the unsharded
//! [`Dfi`] and through [`ShardedDfi`] at 1, 2, 4 and 8 shards, over the
//! same generated leaf-spine fabric with a reactive learning controller.
//! After every step (run to quiescence) the decision deltas must be
//! identical: allowed/denied/spoof counts, per-policy attribution, and
//! per-host deliveries. At the end, every switch's Table-0 cookie set must
//! match the oracle's, all shards must agree on the served epoch, and the
//! trace must have crossed at least 100 live snapshot swaps. Any flow step
//! whose decisions were all denials must deliver nothing (zero forbidden
//! deliveries), in both systems.
//!
//! Every assertion carries a one-line `(seed, spec)` repro.

use dfi_controller::Controller;
use dfi_core::events::topic;
use dfi_core::events::DfiEvent;
use dfi_core::policy::{EndpointPattern, PolicyId, PolicyRule, Wild};
use dfi_core::{Dfi, DfiConfig, ShardedDfi};
use dfi_dataplane::{Network, Switch, Tx};
use dfi_packet::headers::build;
use dfi_packet::MacAddr;
use dfi_simnet::topo::{TopoKind, TopoParams, Topology};
use dfi_simnet::{Dist, Sim, SimRng};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::rc::Rc;
use std::time::Duration;

const LAT: Duration = Duration::from_micros(50);

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Deterministic low-variance calibration so both systems pay identical
/// per-stage costs.
fn test_config() -> DfiConfig {
    DfiConfig {
        proxy_latency: Dist::constant_ms(0.16),
        pcp_service: Dist::constant_ms(0.39),
        binding_query: Dist::constant_ms(2.41),
        policy_query: Dist::constant_ms(2.52),
        bus_latency: Dist::constant_ms(0.3),
        ..DfiConfig::default()
    }
}

/// A single-spine leaf-spine fabric: genuinely multi-switch and
/// multi-path-length, but loop-free so the learning controller's floods
/// terminate.
fn fabric(seed: u64) -> Topology {
    Topology::generate(
        &TopoParams {
            kind: TopoKind::LeafSpine {
                spines: 1,
                leaves: 8,
            },
            hosts: 16,
            users_per_host: 1,
        },
        seed,
    )
}

/// One step of the shared trace.
#[derive(Clone, Debug)]
enum Step {
    /// Host `src` sends a TCP SYN to host `dst`.
    Flow { src: usize, dst: usize, dport: u16 },
    /// Insert a policy rule (always a snapshot swap).
    Insert {
        allow: bool,
        src_pat: Pat,
        dst_pat: Pat,
        priority: u32,
    },
    /// Revoke the k-th live inserted rule (mod live count).
    Revoke { k: usize },
    /// DHCP + DNS move host to a fresh IP.
    Move { host: usize },
    /// Toggle the host's user session (log-off / log-on alternating).
    Toggle { host: usize },
}

/// An endpoint pattern choice, resolved against the topology at replay.
#[derive(Clone, Copy, Debug)]
enum Pat {
    Any,
    User(usize),
    Host(usize),
    Ip(usize),
}

/// Generates the shared trace. Pure function of the seed: both systems
/// replay the identical list.
fn trace(seed: u64, steps: usize, n_hosts: usize) -> Vec<Step> {
    let mut rng = SimRng::new(seed ^ 0x0AC1E);
    let mut live_inserts = 0usize;
    (0..steps)
        .map(|_| {
            let roll = rng.next_f64();
            if roll < 0.40 {
                let src = rng.index(n_hosts);
                let mut dst = rng.index(n_hosts);
                if dst == src {
                    dst = (dst + 1) % n_hosts;
                }
                Step::Flow {
                    src,
                    dst,
                    dport: *rng.choose(&[80, 445, 22]).unwrap(),
                }
            } else if roll < 0.62 || live_inserts == 0 {
                live_inserts += 1;
                let pat = |r: &mut SimRng| match r.index(4) {
                    0 => Pat::Any,
                    1 => Pat::User(r.index(n_hosts)),
                    2 => Pat::Host(r.index(n_hosts)),
                    _ => Pat::Ip(r.index(n_hosts)),
                };
                Step::Insert {
                    allow: rng.chance(0.7),
                    src_pat: pat(&mut rng),
                    dst_pat: pat(&mut rng),
                    priority: 10 * (1 + rng.range_u64(0, 4) as u32),
                }
            } else if roll < 0.77 {
                live_inserts = live_inserts.saturating_sub(1);
                Step::Revoke {
                    k: rng.index(1 << 16),
                }
            } else if roll < 0.89 {
                Step::Move {
                    host: rng.index(n_hosts),
                }
            } else {
                Step::Toggle {
                    host: rng.index(n_hosts),
                }
            }
        })
        .collect()
}

/// Either system under test, behind one replay interface.
enum System {
    Oracle(Dfi),
    Sharded(ShardedDfi),
}

impl System {
    fn publish(&self, sim: &mut Sim, topic: &str, ev: DfiEvent) {
        match self {
            System::Oracle(d) => d.bus().publish(sim, topic, ev),
            System::Sharded(s) => s.bus().publish(sim, topic, ev),
        }
    }

    fn insert(&self, sim: &mut Sim, rule: PolicyRule, priority: u32) -> PolicyId {
        match self {
            System::Oracle(d) => d.insert_policy(sim, rule, priority, "oracle-trace"),
            System::Sharded(s) => s.insert_policy(sim, rule, priority, "oracle-trace"),
        }
    }

    fn revoke(&self, sim: &mut Sim, id: PolicyId) -> bool {
        match self {
            System::Oracle(d) => d.revoke_policy(sim, id),
            System::Sharded(s) => s.revoke_policy(sim, id),
        }
    }

    fn metrics(&self) -> dfi_core::DfiMetrics {
        match self {
            System::Oracle(d) => d.metrics(),
            System::Sharded(s) => s.metrics(),
        }
    }

    fn snapshot_swaps(&self) -> u64 {
        match self {
            System::Oracle(d) => d.metrics().snapshots_published,
            System::Sharded(s) => s.fanout_metrics().snapshot_fanouts,
        }
    }
}

/// The decision-visible state after one step, compared across systems.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
struct StepDelta {
    allowed: u64,
    denied: u64,
    spoof_denied: u64,
    by_policy: BTreeMap<u64, u64>,
    deliveries: Vec<u64>,
}

struct World {
    sim: Sim,
    system: System,
    switches: Vec<Switch>,
    tx: Vec<Tx>,
    rx: Vec<Rc<RefCell<u64>>>,
    /// Replay-tracked current IP per host (moves re-lease).
    host_ip: Vec<Ipv4Addr>,
    /// Replay-tracked session state per host (toggles alternate).
    logged_on: Vec<bool>,
    /// Fresh-IP counter for moves.
    next_fresh: u32,
    /// Live inserted policy ids, in insertion order.
    inserted: Vec<PolicyId>,
    /// Metric readings at the last step boundary.
    last: StepDelta,
}

fn build_world(seed: u64, shards: Option<usize>) -> World {
    let topo = fabric(seed);
    let mut sim = Sim::new(seed);
    let mut net = Network::new();
    let switches = net.build_topology(&topo, LAT);
    let mut tx = Vec::new();
    let mut rx: Vec<Rc<RefCell<u64>>> = Vec::new();
    for h in &topo.hosts {
        let count = Rc::new(RefCell::new(0u64));
        let c = count.clone();
        let sw = &switches[h.dpid as usize - 1];
        tx.push(net.attach_host(
            sw,
            h.port,
            LAT,
            Rc::new(move |_, _f: &[u8]| *c.borrow_mut() += 1),
        ));
        rx.push(count);
    }
    let ctrl = Controller::reactive();
    let system = match shards {
        None => {
            let dfi = Dfi::new(test_config());
            for sw in &switches {
                let c = ctrl.clone();
                dfi.interpose(&mut sim, sw, move |sim, sink| c.connect(sim, sink));
            }
            System::Oracle(dfi)
        }
        Some(n) => {
            let sharded = ShardedDfi::new(n, &test_config());
            for sw in &switches {
                let c = ctrl.clone();
                sharded.interpose(&mut sim, sw, move |sim, sink| c.connect(sim, sink));
            }
            System::Sharded(sharded)
        }
    };
    // Boot: lease + name + session for every host, through the bus like
    // the real sensors.
    for h in &topo.hosts {
        let mac = MacAddr::from_index(h.mac_index);
        system.publish(
            &mut sim,
            topic::LEASES,
            DfiEvent::Lease {
                mac,
                ip: h.ip,
                hostname: Some(h.hostname.clone()),
                released: false,
            },
        );
        system.publish(
            &mut sim,
            topic::NAMES,
            DfiEvent::Name {
                hostname: h.hostname.clone(),
                ip: h.ip,
                removed: false,
            },
        );
        system.publish(
            &mut sim,
            topic::SESSIONS,
            DfiEvent::Session {
                user: h.users[0].clone(),
                host: h.hostname.clone(),
                logged_on: true,
            },
        );
    }
    sim.run();
    let host_ip = topo.hosts.iter().map(|h| h.ip).collect();
    let logged_on = vec![true; topo.hosts.len()];
    World {
        sim,
        system,
        switches,
        tx,
        rx,
        host_ip,
        logged_on,
        next_fresh: 0,
        inserted: Vec::new(),
        last: StepDelta::default(),
    }
}

impl World {
    /// Applies one step, runs to quiescence, returns the decision delta.
    fn apply(&mut self, topo: &Topology, step: &Step) -> StepDelta {
        match step {
            Step::Flow { src, dst, dport } => {
                let s = &topo.hosts[*src];
                let d = &topo.hosts[*dst];
                let frame = build::tcp_syn(
                    MacAddr::from_index(s.mac_index),
                    MacAddr::from_index(d.mac_index),
                    self.host_ip[*src],
                    self.host_ip[*dst],
                    50_000,
                    *dport,
                );
                self.tx[*src].send(&mut self.sim, frame);
            }
            Step::Insert {
                allow,
                src_pat,
                dst_pat,
                priority,
            } => {
                let pat = |p: &Pat| match p {
                    Pat::Any => EndpointPattern::any(),
                    Pat::User(i) => EndpointPattern::user(&topo.hosts[*i].users[0]),
                    Pat::Host(i) => EndpointPattern::host(&topo.hosts[*i].hostname),
                    Pat::Ip(i) => EndpointPattern {
                        ip: Wild::Is(self.host_ip[*i]),
                        ..EndpointPattern::any()
                    },
                };
                let rule = if *allow {
                    PolicyRule::allow(pat(src_pat), pat(dst_pat))
                } else {
                    PolicyRule::deny(pat(src_pat), pat(dst_pat))
                };
                let id = self.system.insert(&mut self.sim, rule, *priority);
                self.inserted.push(id);
            }
            Step::Revoke { k } => {
                if !self.inserted.is_empty() {
                    let id = self.inserted.remove(k % self.inserted.len());
                    self.system.revoke(&mut self.sim, id);
                }
            }
            Step::Move { host } => {
                let h = &topo.hosts[*host];
                let mac = MacAddr::from_index(h.mac_index);
                let old = self.host_ip[*host];
                let new = Ipv4Addr::new(
                    11,
                    (self.next_fresh >> 16) as u8,
                    ((self.next_fresh >> 8) & 0xFF) as u8,
                    (self.next_fresh & 0xFF) as u8,
                );
                self.next_fresh += 1;
                self.host_ip[*host] = new;
                for ev in [
                    DfiEvent::Lease {
                        mac,
                        ip: old,
                        hostname: Some(h.hostname.clone()),
                        released: true,
                    },
                    DfiEvent::Lease {
                        mac,
                        ip: new,
                        hostname: Some(h.hostname.clone()),
                        released: false,
                    },
                ] {
                    self.system.publish(&mut self.sim, topic::LEASES, ev);
                }
                for ev in [
                    DfiEvent::Name {
                        hostname: h.hostname.clone(),
                        ip: old,
                        removed: true,
                    },
                    DfiEvent::Name {
                        hostname: h.hostname.clone(),
                        ip: new,
                        removed: false,
                    },
                ] {
                    self.system.publish(&mut self.sim, topic::NAMES, ev);
                }
            }
            Step::Toggle { host } => {
                let h = &topo.hosts[*host];
                let on = !self.logged_on[*host];
                self.logged_on[*host] = on;
                self.system.publish(
                    &mut self.sim,
                    topic::SESSIONS,
                    DfiEvent::Session {
                        user: h.users[0].clone(),
                        host: h.hostname.clone(),
                        logged_on: on,
                    },
                );
            }
        }
        self.sim.run();
        let m = self.system.metrics();
        let deliveries: Vec<u64> = self.rx.iter().map(|c| *c.borrow()).collect();
        let now = StepDelta {
            allowed: m.allowed,
            denied: m.denied,
            spoof_denied: m.spoof_denied,
            by_policy: m.decisions_by_policy.clone(),
            deliveries,
        };
        let delta = StepDelta {
            allowed: now.allowed - self.last.allowed,
            denied: now.denied - self.last.denied,
            spoof_denied: now.spoof_denied - self.last.spoof_denied,
            by_policy: now
                .by_policy
                .iter()
                .filter_map(|(id, n)| {
                    let before = self.last.by_policy.get(id).copied().unwrap_or(0);
                    (*n > before).then_some((*id, n - before))
                })
                .collect(),
            deliveries: now
                .deliveries
                .iter()
                .zip(self.last.deliveries.iter().chain(std::iter::repeat(&0)))
                .map(|(a, b)| a - b)
                .collect(),
        };
        self.last = now;
        delta
    }

    /// Per-dpid sorted Table-0 cookie sets.
    fn cookie_sets(&self) -> Vec<(u64, Vec<u64>)> {
        self.switches
            .iter()
            .map(|sw| {
                let mut c = sw.table0_cookies();
                c.sort_unstable();
                c.dedup();
                (sw.dpid(), c)
            })
            .collect()
    }
}

#[test]
fn sharded_matches_unsharded_oracle_across_swaps_and_moves() {
    let seed = env_u64("SHARDED_ORACLE_SEED", 0xD51_2019);
    let steps = env_u64("SHARDED_ORACLE_STEPS", 360) as usize;
    let topo = fabric(seed);
    let script = trace(seed, steps, topo.hosts.len());
    let repro = |shards: usize, i: usize, step: &Step| {
        format!(
            "repro: SHARDED_ORACLE_SEED={seed} SHARDED_ORACLE_STEPS={steps} \
             shards={shards} step={i} spec={step:?}"
        )
    };

    // Oracle run, once.
    let mut oracle = build_world(seed, None);
    let expected: Vec<StepDelta> = script.iter().map(|s| oracle.apply(&topo, s)).collect();
    let oracle_cookies = oracle.cookie_sets();
    let swaps = oracle.system.snapshot_swaps();
    assert!(
        swaps >= 100,
        "trace must cross at least 100 live snapshot swaps, got {swaps}; \
         repro: SHARDED_ORACLE_SEED={seed} SHARDED_ORACLE_STEPS={steps}"
    );

    // Zero forbidden deliveries, oracle side: an all-deny flow step
    // delivers nothing anywhere.
    for (i, (step, delta)) in script.iter().zip(&expected).enumerate() {
        if matches!(step, Step::Flow { .. }) && delta.allowed == 0 && delta.denied > 0 {
            assert!(
                delta.deliveries.iter().all(|&d| d == 0),
                "forbidden delivery on denied flow; {}",
                repro(0, i, step)
            );
        }
    }

    for shards in [1usize, 2, 4, 8] {
        let mut world = build_world(seed, Some(shards));
        for (i, step) in script.iter().enumerate() {
            let got = world.apply(&topo, step);
            assert_eq!(
                got,
                expected[i],
                "sharded({shards}) diverged from oracle; {}",
                repro(shards, i, step)
            );
        }
        assert_eq!(
            world.cookie_sets(),
            oracle_cookies,
            "Table-0 cookie sets diverged; repro: SHARDED_ORACLE_SEED={seed} \
             SHARDED_ORACLE_STEPS={steps} shards={shards}"
        );
        if let System::Sharded(s) = &world.system {
            assert!(
                s.epochs_agree(),
                "shards serve different epochs {:?}; repro: SHARDED_ORACLE_SEED={seed} \
                 SHARDED_ORACLE_STEPS={steps} shards={shards}",
                s.served_epochs()
            );
            assert_eq!(
                world.system.snapshot_swaps(),
                swaps,
                "swap count diverged; repro: SHARDED_ORACLE_SEED={seed} \
                 SHARDED_ORACLE_STEPS={steps} shards={shards}"
            );
        }
    }
}
