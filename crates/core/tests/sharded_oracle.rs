//! Differential equivalence: the sharded proxy against the unsharded
//! oracle.
//!
//! One seeded trace — flows, policy inserts/revokes (each a live snapshot
//! swap), DHCP moves, session toggles — replays through the unsharded
//! [`dfi_core::Dfi`] and through [`dfi_core::ShardedDfi`] at 1, 2, 4 and 8
//! shards, over the same generated leaf-spine fabric with a reactive
//! learning controller. After every step (run to quiescence) the decision
//! deltas must be identical: allowed/denied/spoof counts, per-policy
//! attribution, and per-host deliveries. At the end, every switch's
//! Table-0 cookie set must match the oracle's, all shards must agree on
//! the served epoch, and the trace must have crossed at least 100 live
//! snapshot swaps. Any flow step whose decisions were all denials must
//! deliver nothing (zero forbidden deliveries), in both systems.
//!
//! The trace generator, replay world, and step/delta vocabulary live in
//! `common/` and are shared with `threaded_oracle.rs`, which replays the
//! same script through real worker threads.
//!
//! Every assertion carries a one-line `(seed, spec)` repro.

mod common;

use common::{build_world, env_u64, fabric, trace, Step, StepDelta, System};

#[test]
fn sharded_matches_unsharded_oracle_across_swaps_and_moves() {
    let seed = env_u64("SHARDED_ORACLE_SEED", 0xD51_2019);
    let steps = env_u64("SHARDED_ORACLE_STEPS", 360) as usize;
    let topo = fabric(seed);
    let script = trace(seed, steps, topo.hosts.len());
    let repro = |shards: usize, i: usize, step: &Step| {
        format!(
            "repro: SHARDED_ORACLE_SEED={seed} SHARDED_ORACLE_STEPS={steps} \
             shards={shards} step={i} spec={step:?}"
        )
    };

    // Oracle run, once.
    let mut oracle = build_world(seed, None);
    let expected: Vec<StepDelta> = script.iter().map(|s| oracle.apply(&topo, s)).collect();
    let oracle_cookies = oracle.cookie_sets();
    let swaps = oracle.system.snapshot_swaps();
    assert!(
        swaps >= 100,
        "trace must cross at least 100 live snapshot swaps, got {swaps}; \
         repro: SHARDED_ORACLE_SEED={seed} SHARDED_ORACLE_STEPS={steps}"
    );

    // Zero forbidden deliveries, oracle side: an all-deny flow step
    // delivers nothing anywhere.
    for (i, (step, delta)) in script.iter().zip(&expected).enumerate() {
        if matches!(step, Step::Flow { .. }) && delta.allowed == 0 && delta.denied > 0 {
            assert!(
                delta.deliveries.iter().all(|&d| d == 0),
                "forbidden delivery on denied flow; {}",
                repro(0, i, step)
            );
        }
    }

    for shards in [1usize, 2, 4, 8] {
        let mut world = build_world(seed, Some(shards));
        for (i, step) in script.iter().enumerate() {
            let got = world.apply(&topo, step);
            assert_eq!(
                got,
                expected[i],
                "sharded({shards}) diverged from oracle; {}",
                repro(shards, i, step)
            );
        }
        assert_eq!(
            world.cookie_sets(),
            oracle_cookies,
            "Table-0 cookie sets diverged; repro: SHARDED_ORACLE_SEED={seed} \
             SHARDED_ORACLE_STEPS={steps} shards={shards}"
        );
        if let System::Sharded(s) = &world.system {
            assert!(
                s.epochs_agree(),
                "shards serve different epochs {:?}; repro: SHARDED_ORACLE_SEED={seed} \
                 SHARDED_ORACLE_STEPS={steps} shards={shards}",
                s.served_epochs()
            );
            assert_eq!(
                world.system.snapshot_swaps(),
                swaps,
                "swap count diverged; repro: SHARDED_ORACLE_SEED={seed} \
                 SHARDED_ORACLE_STEPS={steps} shards={shards}"
            );
        }
    }
}
