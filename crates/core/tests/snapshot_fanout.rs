//! Snapshot publication fanout under certification refusal, plus the
//! versioned retention window.
//!
//! The invariant under test is the tentpole's atomicity guarantee: no two
//! shards ever serve different certified epochs. A refused publication
//! must leave *all* shards on the same prior epoch (not some on old, some
//! on new), and the first clean publication afterwards must recover the
//! whole fleet at once, re-issuing the flushes deferred at refusal time.
//! Retention must keep the same last-N certified snapshots on every shard
//! — provably the same compilations (pointer identity), not re-compiled
//! per shard.

use dfi_core::events::{topic, DfiEvent, SnapshotWitness};
use dfi_core::policy::{EndpointPattern, PolicyRule};
use dfi_core::shard::SNAPSHOT_RETENTION;
use dfi_core::{DfiConfig, ShardedDfi};
use dfi_simnet::Sim;
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::Arc;

const SEED: u64 = 0xFA_2019;

fn repro(point: &str) -> String {
    format!("repro: snapshot_fanout seed={SEED:#x} shards=4 at={point}")
}

fn rule(n: usize) -> PolicyRule {
    PolicyRule::allow(
        EndpointPattern::user(&format!("u{n}")),
        EndpointPattern::any(),
    )
}

#[test]
fn refused_snapshot_leaves_all_shards_on_the_same_prior_epoch() {
    let mut sim = Sim::new(SEED);
    let sharded = ShardedDfi::new(4, &DfiConfig::default());

    // Observe the bus like the analyzer would.
    let published: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    let refused: Rc<Cell<u64>> = Rc::new(Cell::new(0));
    {
        let published = published.clone();
        let refused = refused.clone();
        sharded
            .bus()
            .subscribe(topic::SNAPSHOTS, move |_, ev| match ev {
                DfiEvent::SnapshotPublished { epoch, .. } => published.borrow_mut().push(*epoch),
                DfiEvent::SnapshotRefused { .. } => refused.set(refused.get() + 1),
                _ => {}
            });
    }

    // A flag-controlled certifier: refuses while `refusing` is set.
    let refusing = Rc::new(Cell::new(false));
    {
        let refusing = refusing.clone();
        sharded.set_snapshot_gate(Box::new(move |_, _| {
            if refusing.get() {
                vec![SnapshotWitness {
                    kind: "test-refusal".into(),
                    rules: vec![],
                    message: "refused by test certifier".into(),
                }]
            } else {
                Vec::new()
            }
        }));
    }

    // Clean insert: every shard moves to the same fresh epoch.
    sharded.insert_policy(&mut sim, rule(1), 10, "fanout-test");
    sim.run();
    assert!(sharded.epochs_agree(), "{}", repro("after-clean-insert"));
    let settled = sharded.served_epochs()[0];

    // Refused insert: publication deferred, NO shard moves. The rule is a
    // higher-priority deny conflicting with rule(1)'s allow, so its flush
    // set is non-empty and lands on the deferred list.
    refusing.set(true);
    let id_b = sharded.insert_policy(
        &mut sim,
        PolicyRule::deny(EndpointPattern::user("u1"), EndpointPattern::any()),
        50,
        "fanout-test",
    );
    sim.run();
    assert_eq!(refused.get(), 1, "{}", repro("after-refused-insert"));
    assert!(sharded.epochs_agree(), "{}", repro("after-refused-insert"));
    assert_eq!(
        sharded.served_epochs(),
        vec![settled; 4],
        "a refusal must leave every shard on the prior epoch; {}",
        repro("after-refused-insert")
    );
    let m = sharded.fanout_metrics();
    assert_eq!(m.snapshot_refusals, 1, "{}", repro("after-refused-insert"));

    // Recovery: the next clean publication moves the whole fleet at once
    // and re-issues the flushes deferred at refusal time.
    refusing.set(false);
    let flushes_before = sharded.fanout_metrics().flush_fanouts;
    sharded.insert_policy(&mut sim, rule(3), 10, "fanout-test");
    sim.run();
    assert!(sharded.epochs_agree(), "{}", repro("after-recovery"));
    let recovered = sharded.served_epochs()[0];
    assert!(
        recovered > settled,
        "recovery must advance the fleet epoch ({recovered} vs {settled}); {}",
        repro("after-recovery")
    );
    assert!(
        sharded.fanout_metrics().flush_fanouts > flushes_before,
        "recovery must re-issue the deferred flushes; {}",
        repro("after-recovery")
    );
    assert_eq!(
        published.borrow().last().copied(),
        Some(recovered),
        "{}",
        repro("after-recovery")
    );
    // The deferred rule is live after recovery.
    assert!(
        sharded.with_pm(|pm| pm.get(id_b).is_some()),
        "{}",
        repro("after-recovery")
    );
}

#[test]
fn retention_window_is_identical_across_shards_by_pointer() {
    let mut sim = Sim::new(SEED ^ 1);
    let sharded = ShardedDfi::new(4, &DfiConfig::default());
    // Enough publications to roll the retention ring over.
    for n in 0..(SNAPSHOT_RETENTION + 3) {
        sharded.insert_policy(&mut sim, rule(n), 10, "fanout-test");
        sim.run();
    }
    let histories: Vec<_> = sharded
        .shards()
        .iter()
        .map(dfi_core::Dfi::snapshot_history)
        .collect();
    assert_eq!(
        histories[0].len(),
        SNAPSHOT_RETENTION,
        "{}",
        repro("retention")
    );
    for (i, h) in histories.iter().enumerate().skip(1) {
        assert_eq!(h.len(), histories[0].len(), "{}", repro("retention"));
        for (a, b) in histories[0].iter().zip(h.iter()) {
            assert!(
                Arc::ptr_eq(a, b),
                "shard {i} retains a different compilation of epoch {}; {}",
                a.epoch(),
                repro("retention")
            );
        }
    }
    // The window is the most recent certified epochs, oldest first.
    let epochs: Vec<u64> = histories[0].iter().map(|s| s.epoch()).collect();
    let newest = sharded.served_epochs()[0];
    let expect: Vec<u64> = (newest - SNAPSHOT_RETENTION as u64..newest).collect();
    assert_eq!(epochs, expect, "{}", repro("retention"));
}
