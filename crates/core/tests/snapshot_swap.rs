//! Live-rig tests for the snapshot data plane: traffic continuity across
//! rapid control-plane snapshot swaps, and burst classification of
//! coalesced packet-in reads against one frozen snapshot.

use dfi_core::policy::{EndpointPattern, PolicyRule};
use dfi_core::{Dfi, DfiConfig};
use dfi_dataplane::{Network, Switch, SwitchConfig, Tx};
use dfi_openflow::{Message, OfMessage, PacketIn};
use dfi_packet::headers::build;
use dfi_packet::MacAddr;
use dfi_simnet::{Dist, Sim};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;
use std::time::Duration;

const LAT: Duration = Duration::from_micros(50);

fn mac(i: u32) -> MacAddr {
    MacAddr::from_index(i)
}

fn ip(i: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 1, i)
}

fn test_config() -> DfiConfig {
    DfiConfig {
        proxy_latency: Dist::constant_ms(0.16),
        pcp_service: Dist::constant_ms(0.39),
        binding_query: Dist::constant_ms(2.41),
        policy_query: Dist::constant_ms(2.52),
        bus_latency: Dist::constant_ms(0.3),
        ..DfiConfig::default()
    }
}

struct Rig {
    sim: Sim,
    dfi: Dfi,
    sw: Switch,
    tx: Vec<Tx>,
    rx: Vec<Rc<RefCell<Vec<Vec<u8>>>>>,
}

/// One switch, three hosts (ports 1..=3) with delivery logs, DFI
/// interposed before a reactive controller.
fn rig() -> Rig {
    let mut sim = Sim::new(31);
    let mut net = Network::new();
    let sw = net.add_switch(SwitchConfig::new(0xD1));
    let mut tx = Vec::new();
    let mut rx = Vec::new();
    for port in 1..=3u32 {
        let log = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        tx.push(net.attach_host(
            &sw,
            port,
            LAT,
            Rc::new(move |_, f: &[u8]| l.borrow_mut().push(f.to_vec())),
        ));
        rx.push(log);
    }
    let ctrl = dfi_controller::Controller::reactive();
    let dfi = Dfi::new(test_config());
    dfi.interpose(&mut sim, &sw, move |sim, sink| ctrl.connect(sim, sink));
    sim.run();
    Rig {
        sim,
        dfi,
        sw,
        tx,
        rx,
    }
}

fn syn(src: u32, dst: u32, dport: u16) -> Vec<u8> {
    build::tcp_syn(
        mac(src),
        mac(dst),
        ip(src as u8),
        ip(dst as u8),
        50_000,
        dport,
    )
}

/// One hundred rapid publish cycles (insert + revoke churn, two swaps per
/// round) while a flow per round traverses the rig: every flow must be
/// decided correctly and delivered — no drops, no mis-decisions — because
/// each in-flight decision reads one immutable snapshot, never a policy
/// store mid-mutation.
#[test]
fn traffic_is_uninterrupted_across_rapid_snapshot_swaps() {
    let mut r = rig();
    r.dfi
        .insert_policy(&mut r.sim, PolicyRule::allow_all(), 1, "test");
    r.sim.run();

    for i in 0..100u32 {
        // Churn: an unrelated per-round rule appears and disappears,
        // publishing a fresh snapshot each time.
        let churn = r.dfi.insert_policy(
            &mut r.sim,
            PolicyRule::allow(
                EndpointPattern::user(&format!("churn-user-{i}")),
                EndpointPattern::any(),
            ),
            10,
            "test",
        );
        assert!(r.dfi.revoke_policy(&mut r.sim, churn));
        // A distinct flow per round (unique dst port) so each one is a
        // fresh packet-in decided against whatever snapshot is current.
        r.tx[0].send(&mut r.sim, syn(1, 2, 1000 + i as u16));
        r.sim.run();
    }

    let m = r.dfi.metrics();
    assert_eq!(m.allowed, 100, "every flow allowed across the swaps");
    assert_eq!(m.denied, 0, "no flow mis-decided to deny");
    assert_eq!(m.packet_ins, 100);
    // 1 seed publish + (insert + revoke) × 100 rounds, none refused.
    assert_eq!(m.snapshots_published, 201);
    assert_eq!(m.snapshot_refusals, 0);
    assert_eq!(m.snapshot_epoch, 201);
    assert_eq!(r.dfi.snapshot().epoch(), 201);
    assert_eq!(
        r.rx[1].borrow().len(),
        100,
        "every allowed flow delivered to the destination host"
    );
}

/// A control-channel read carrying several packet-in frames is admitted as
/// one PCP job and all its cache-missing flows are classified in a single
/// `classify_batch` pass over one frozen snapshot.
#[test]
fn packet_in_burst_is_classified_in_one_batch() {
    let mut r = rig();
    let allow = r
        .dfi
        .insert_policy(&mut r.sim, PolicyRule::allow_all(), 1, "test");
    r.sim.run();

    // Three punts coalesced into one buffer, as a switch under load
    // would batch onto the control channel: two flows from port 1, one
    // from port 3.
    let mut buf = Vec::new();
    for (xid, in_port, frame) in [
        (101u32, 1u32, syn(1, 2, 80)),
        (102, 1, syn(1, 2, 443)),
        (103, 3, syn(3, 2, 80)),
    ] {
        OfMessage::new(
            xid,
            Message::PacketIn(PacketIn::table_miss(in_port, 0, frame)),
        )
        .encode_into(&mut buf);
    }
    let sink = r.dfi.from_switch_sink(0);
    sink(&mut r.sim, &buf);
    r.sim.run();

    let m = r.dfi.metrics();
    assert_eq!(m.packet_in_bursts, 1, "one coalesced read, one burst");
    assert_eq!(m.packet_ins, 3);
    assert_eq!(
        m.burst_flows_classified, 3,
        "all three cache misses classified in the batch"
    );
    assert_eq!(m.allowed, 3);
    assert_eq!(m.denied, 0);
    assert_eq!(m.decision_cache_misses, 3);
    assert_eq!(m.decision_cache_entries, 3);
    // Exact-match rules were installed for each flow under the deciding
    // policy's cookie, and the packets were forwarded on to the
    // destination host.
    assert!(r.sw.table0_cookies().contains(&allow.0));
    assert_eq!(
        r.rx[1].borrow().len(),
        3,
        "all burst packets delivered to the destination"
    );
}

/// A second burst of the same flows is absorbed by the decision memo: the
/// batch-classify pass only sees flows that missed the cache.
#[test]
fn repeat_burst_is_served_from_the_memo() {
    let mut r = rig();
    r.dfi
        .insert_policy(&mut r.sim, PolicyRule::allow_all(), 1, "test");
    r.sim.run();

    let burst = |xids: [u32; 2]| {
        let mut buf = Vec::new();
        for (xid, dport) in xids.into_iter().zip([8080u16, 8443]) {
            OfMessage::new(
                xid,
                Message::PacketIn(PacketIn::table_miss(1, 0, syn(1, 2, dport))),
            )
            .encode_into(&mut buf);
        }
        buf
    };
    let sink = r.dfi.from_switch_sink(0);
    sink(&mut r.sim, &burst([201, 202]));
    r.sim.run();
    sink(&mut r.sim, &burst([203, 204]));
    r.sim.run();

    let m = r.dfi.metrics();
    assert_eq!(m.packet_in_bursts, 2);
    assert_eq!(m.packet_ins, 4);
    assert_eq!(m.allowed, 4);
    assert_eq!(
        m.burst_flows_classified, 2,
        "second burst hit the memo, nothing re-classified"
    );
    assert_eq!(m.decision_cache_hits, 2);
    assert_eq!(m.decision_cache_misses, 2);
}
