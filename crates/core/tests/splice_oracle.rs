//! Differential suite for the zero-copy wire path: the in-place frame
//! rewrites ([`rewrite_controller_frame_in_place`],
//! [`rewrite_switch_frame_in_place`]) must agree byte-for-byte with the
//! retained decode → rewrite → re-encode oracle
//! ([`rewrite_controller_to_switch`], [`rewrite_switch_to_controller`]) on
//! *every* input:
//!
//! * clean encodes of every message family (proptest generators shared
//!   with the codec conformance suite via `dfi-openflow`'s `testgen`
//!   feature),
//! * bit-flipped / truncated / length-lying mutations of those frames
//!   (never a panic, never a patch applied to a frame the oracle drops),
//! * a seeded `SimRng` mutation loop so failures reproduce from a
//!   one-line `DFI_MUT_SEED=… cargo test` command.

use dfi_core::rewrite::{
    remap_packet_out_frame_in_place, rewrite_controller_frame_in_place,
    rewrite_controller_to_switch, rewrite_switch_frame_in_place, rewrite_switch_to_controller,
    ControllerFrame, SwitchFrame, Upstream,
};
use dfi_openflow::testgen::{arb_any_message, arb_packet_out, random_message};
use dfi_openflow::{Message, OfMessage, NO_BUFFER};
use dfi_simnet::SimRng;
use proptest::prelude::*;

/// Cases per proptest family, from `FUZZ_ITERS` (default 1 000).
fn cases() -> u32 {
    std::env::var("FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000)
}

fn config() -> ProptestConfig {
    ProptestConfig::with_cases(cases())
}

/// The header length field of `frame`, if it has one.
fn header_len(frame: &[u8]) -> Option<usize> {
    if frame.len() < 8 {
        return None;
    }
    Some(usize::from(u16::from_be_bytes([frame[2], frame[3]])))
}

/// Runs the controller→switch in-place rewrite on a copy of `frame` and
/// checks full agreement with the decode-based oracle.
fn check_controller_frame(frame: &[u8], n_tables: u8) -> Result<(), TestCaseError> {
    let mut buf = frame.to_vec();
    let verdict = rewrite_controller_frame_in_place(&mut buf, n_tables);
    // The splice path certifies byte-identity only for frames whose header
    // length spans the exact buffer; anything else must take the fallback.
    if verdict == (ControllerFrame::Forward { spliced: true }) {
        prop_assert_eq!(
            header_len(frame),
            Some(frame.len()),
            "spliced a frame whose length field lies"
        );
    }
    match OfMessage::decode(frame) {
        Err(_) => {
            prop_assert_eq!(
                verdict,
                ControllerFrame::Drop,
                "oracle drops, splice path did not"
            );
            prop_assert_eq!(&buf, &frame, "dropped frames must never be patched");
        }
        Ok(msg) => match rewrite_controller_to_switch(msg, n_tables) {
            Upstream::Forward(msgs) => {
                prop_assert!(
                    matches!(verdict, ControllerFrame::Forward { .. }),
                    "oracle forwards, in-place verdict was {verdict:?}"
                );
                let mut oracle = Vec::new();
                for m in &msgs {
                    m.encode_into(&mut oracle);
                }
                prop_assert_eq!(&buf, &oracle, "forwarded bytes differ from oracle");
            }
            Upstream::Reject => {
                prop_assert_eq!(verdict, ControllerFrame::Reject, "oracle rejects");
                prop_assert_eq!(&buf, &frame, "rejected frames must stay untouched");
            }
        },
    }
    Ok(())
}

/// Runs the switch→controller in-place rewrite on a copy of `frame` and
/// checks full agreement with the decode-based oracle.
fn check_switch_frame(frame: &[u8]) -> Result<(), TestCaseError> {
    let mut buf = frame.to_vec();
    let verdict = rewrite_switch_frame_in_place(&mut buf);
    if verdict == (SwitchFrame::Forward { spliced: true }) {
        prop_assert_eq!(
            header_len(frame),
            Some(frame.len()),
            "spliced a frame whose length field lies"
        );
    }
    match OfMessage::decode(frame) {
        Err(_) => {
            prop_assert_eq!(
                verdict,
                SwitchFrame::Drop,
                "oracle drops, splice path did not"
            );
            prop_assert_eq!(&buf, &frame, "dropped frames must never be patched");
        }
        Ok(msg) => match rewrite_switch_to_controller(msg) {
            Some(m) => {
                prop_assert!(
                    matches!(verdict, SwitchFrame::Forward { .. }),
                    "oracle forwards, in-place verdict was {verdict:?}"
                );
                prop_assert_eq!(&buf, &m.encode(), "forwarded bytes differ from oracle");
            }
            None => {
                prop_assert_eq!(verdict, SwitchFrame::Suppress, "oracle suppresses");
            }
        },
    }
    Ok(())
}

/// Table counts worth exercising: the realistic small range plus the
/// extremes where the shift hits `table::MAX` arithmetic.
fn arb_n_tables() -> impl Strategy<Value = u8> {
    prop_oneof![2u8..=16, Just(254u8), Just(255u8)]
}

/// Runs the packet-out buffer remap on a copy of `frame` and checks full
/// agreement with a decode-based reference applying the same semantics:
/// `NO_BUFFER` untouched, live ids remapped, stale ids degraded to
/// `NO_BUFFER` when inline data exists and rejected otherwise.
fn check_remap_frame(
    frame: &[u8],
    remap: impl Fn(u32) -> Option<u32>,
) -> Result<(), TestCaseError> {
    let mut buf = frame.to_vec();
    let verdict = remap_packet_out_frame_in_place(&mut buf, &remap);
    if verdict == (ControllerFrame::Forward { spliced: true }) {
        prop_assert_eq!(
            header_len(frame),
            Some(frame.len()),
            "spliced a frame whose length field lies"
        );
    }
    match OfMessage::decode(frame) {
        Err(_) => {
            prop_assert_eq!(verdict, ControllerFrame::Drop, "reference drops");
            prop_assert_eq!(&buf, &frame, "dropped frames must never be patched");
        }
        Ok(msg) => match msg.body {
            Message::PacketOut(mut po) => {
                let expect_reject = po.buffer_id != NO_BUFFER
                    && remap(po.buffer_id).is_none()
                    && po.data.is_empty();
                if expect_reject {
                    prop_assert_eq!(verdict, ControllerFrame::Reject, "reference rejects");
                    prop_assert_eq!(&buf, &frame, "rejected frames must stay untouched");
                    return Ok(());
                }
                if po.buffer_id != NO_BUFFER {
                    po.buffer_id = remap(po.buffer_id).unwrap_or(NO_BUFFER);
                }
                let reference = OfMessage::new(msg.xid, Message::PacketOut(po)).encode();
                prop_assert!(
                    matches!(verdict, ControllerFrame::Forward { .. }),
                    "reference forwards, in-place verdict was {verdict:?}"
                );
                prop_assert_eq!(&buf, &reference, "forwarded bytes differ from reference");
            }
            _ => {
                prop_assert_eq!(verdict, ControllerFrame::Drop, "non-packet-out must drop");
                prop_assert_eq!(&buf, &frame, "dropped frames must never be patched");
            }
        },
    }
    Ok(())
}

proptest! {
    #![proptest_config(config())]

    /// Clean frames, controller→switch: splice == oracle, byte for byte.
    #[test]
    fn controller_frames_match_oracle(
        xid in any::<u32>(),
        body in arb_any_message(),
        n_tables in arb_n_tables(),
    ) {
        let frame = OfMessage::new(xid, body).encode();
        check_controller_frame(&frame, n_tables)?;
    }

    /// Clean frames, switch→controller: splice == oracle, byte for byte.
    #[test]
    fn switch_frames_match_oracle(
        xid in any::<u32>(),
        body in arb_any_message(),
    ) {
        let frame = OfMessage::new(xid, body).encode();
        check_switch_frame(&frame)?;
    }

    /// Packet-out buffer-id remaps (clean and mutated frames): the splice
    /// fast path agrees byte-for-byte with the decode-based reference for
    /// live, stale, and identity mappings.
    #[test]
    fn packet_out_remaps_match_reference(
        xid in any::<u32>(),
        po in arb_packet_out(),
        offset in any::<u32>(),
        stale in any::<bool>(),
        flips in proptest::collection::vec((any::<usize>(), 0u8..=255), 0..3),
    ) {
        let mut frame = OfMessage::new(xid, dfi_openflow::Message::PacketOut(po)).encode();
        for (at, bits) in flips {
            let idx = at % frame.len();
            frame[idx] ^= bits;
        }
        let remap = |id: u32| (!stale).then(|| id.wrapping_add(offset));
        check_remap_frame(&frame, remap)?;
    }

    /// Bit-flipped frames: both directions still agree with the oracle and
    /// never panic; frames the oracle cannot decode are never patched.
    #[test]
    fn mutated_frames_match_oracle(
        body in arb_any_message(),
        n_tables in arb_n_tables(),
        flips in proptest::collection::vec((any::<usize>(), 1u8..=255), 1..5),
    ) {
        let mut frame = OfMessage::new(0xDF1, body).encode();
        for (at, bits) in flips {
            let idx = at % frame.len();
            frame[idx] ^= bits;
        }
        check_controller_frame(&frame, n_tables)?;
        check_switch_frame(&frame)?;
    }

    /// Frames whose header length field lies (short, long, or pointing
    /// mid-buffer) are handled exactly like the oracle — and the splice
    /// path never certifies them.
    #[test]
    fn length_lying_frames_match_oracle(
        body in arb_any_message(),
        n_tables in arb_n_tables(),
        lie in any::<u16>(),
    ) {
        let mut frame = OfMessage::new(7, body).encode();
        frame[2..4].copy_from_slice(&lie.to_be_bytes());
        check_controller_frame(&frame, n_tables)?;
        check_switch_frame(&frame)?;
    }
}

/// `cargo fuzz`-style mutation loop over both rewrite directions, driven
/// from the seeded simnet RNG so the whole run reproduces from a single
/// `u64` seed independent of proptest.
#[test]
fn seeded_byte_mutator_matches_oracle() {
    let seed: u64 = std::env::var("DFI_MUT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xDF1_5B11);
    let iters = cases() as usize;
    let mut rng = SimRng::new(seed);
    for i in 0..iters {
        let mut frame = OfMessage::new(rng.next_u32(), random_message(&mut rng)).encode();
        let n_tables = 2 + (rng.next_u32() % 254) as u8;
        // Half the iterations run the pristine frame; the rest smash it.
        if rng.chance(0.5) {
            let mutations = 1 + rng.index(8);
            for _ in 0..mutations {
                let at = rng.index(frame.len());
                match rng.index(3) {
                    0 => frame[at] ^= 1 << rng.index(8),
                    1 => frame[at] = rng.next_u32() as u8,
                    _ => {
                        let keep = at.max(4);
                        frame.truncate(keep);
                    }
                }
            }
        }
        let r = check_controller_frame(&frame, n_tables).and_then(|()| check_switch_frame(&frame));
        assert!(
            r.is_ok(),
            "splice/oracle divergence at iteration {i}: {r:?}\nreproduce with:\n  \
             DFI_MUT_SEED={seed} FUZZ_ITERS={iters} cargo test -p dfi-core --test splice_oracle seeded_byte_mutator_matches_oracle"
        );
    }
}
