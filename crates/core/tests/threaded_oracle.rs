//! Differential equivalence across a real thread boundary: the
//! thread-parallel sharded proxy against the unsharded oracle.
//!
//! The same seeded 360-step trace `sharded_oracle.rs` replays through the
//! cooperative shards replays here through [`ParallelShardedDfi`] at 1, 2,
//! 4 and 8 **worker threads**, each owning a complete `Dfi` plus its slice
//! of the leaf-spine fabric and its own controller replica on its own OS
//! thread with its own deterministic clock. Fabric links whose two ends
//! land on different shards are cut at the boundary and carried as relay
//! frames through the front-end's drain fixpoint.
//!
//! After every step the decision delta must be byte-identical to the
//! oracle's: allowed/denied/spoof counts, per-policy attribution, and
//! per-host deliveries. At the end, every switch's Table-0 cookie set must
//! match, all workers must serve the same snapshot epoch, and the
//! snapshot-swap count must equal the oracle's publication count. That is
//! the concurrency proof obligation of the threading refactor: channel
//! nondeterminism and worker-clock drift are confined to intra-epoch
//! ordering, which this trace proves decision-irrelevant.
//!
//! Every assertion carries a one-line `(seed, spec)` repro.

mod common;

use common::{
    boot_events, build_world, env_u64, fabric, fresh_ip, insert_rule, move_events, syn_frame,
    test_config, trace, Step, StepDelta, LAT,
};
use dfi_controller::Controller;
use dfi_core::events::DfiEvent;
use dfi_core::policy::PolicyId;
use dfi_core::{
    binding_op_of_event, CookieSets, FleetReport, ObserveFn, ParallelShardedDfi, WorkerWorld,
    WorldBuilder,
};
use dfi_dataplane::{Network, Switch, SwitchConfig};
use dfi_simnet::topo::{shard_of, Topology};
use std::cell::RefCell;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::Rc;
use std::sync::Arc;

/// Global boundary id for cut link `li`: side 0 is ingress into the
/// `a`-side switch, side 1 ingress into the `b`-side switch.
fn boundary_id(li: usize, side: u64) -> u64 {
    (li as u64) * 2 + side
}

/// Builds worker `w`'s thread-local world: its shard's switches, the local
/// halves of cut fabric links wired to the outbox, its hosts' NICs, and a
/// reactive controller replica behind the shard's own `Dfi`.
fn builder_for(topo: Arc<Topology>, w: usize, n: usize) -> WorldBuilder {
    Box::new(move |sim, dfi, outbox| {
        let mut net = Network::new();
        let mut local: HashMap<u64, Switch> = HashMap::new();
        for spec in &topo.switches {
            if shard_of(spec.dpid, n) == w {
                local.insert(spec.dpid, net.add_switch(SwitchConfig::new(spec.dpid)));
            }
        }
        let mut boundaries = Vec::new();
        for (li, l) in topo.links.iter().enumerate() {
            match (local.get(&l.a_dpid), local.get(&l.b_dpid)) {
                (Some(a), Some(b)) => {
                    let (a, b) = (a.clone(), b.clone());
                    net.link(&a, l.a_port, &b, l.b_port, LAT);
                }
                (Some(a), None) => {
                    a.attach_port(l.a_port, LAT, outbox.sink(boundary_id(li, 1)));
                    boundaries.push((boundary_id(li, 0), a.ingress(l.a_port)));
                }
                (None, Some(b)) => {
                    b.attach_port(l.b_port, LAT, outbox.sink(boundary_id(li, 0)));
                    boundaries.push((boundary_id(li, 1), b.ingress(l.b_port)));
                }
                (None, None) => {}
            }
        }
        let mut taps = Vec::new();
        let mut counters: Vec<(u32, Rc<RefCell<u64>>)> = Vec::new();
        for h in &topo.hosts {
            if let Some(sw) = local.get(&h.dpid) {
                let count = Rc::new(RefCell::new(0u64));
                let c = count.clone();
                taps.push(net.attach_host(
                    sw,
                    h.port,
                    LAT,
                    Rc::new(move |_, _f: &[u8]| *c.borrow_mut() += 1),
                ));
                counters.push((h.index, count));
            }
        }
        let ctrl = Controller::reactive();
        let switches: Vec<Switch> = topo
            .switches
            .iter()
            .filter_map(|s| local.get(&s.dpid).cloned())
            .collect();
        for sw in &switches {
            let c = ctrl.clone();
            dfi.interpose(sim, sw, move |sim, sink| c.connect(sim, sink));
        }
        let observe: ObserveFn = Box::new(move |_sim| {
            let deliveries = counters.iter().map(|(i, c)| (*i, *c.borrow())).collect();
            let cookies = switches
                .iter()
                .map(|sw| {
                    let mut c = sw.table0_cookies();
                    c.sort_unstable();
                    c.dedup();
                    (sw.dpid(), c)
                })
                .collect();
            (deliveries, cookies)
        });
        WorkerWorld {
            taps,
            boundaries,
            observe,
        }
    })
}

/// The threaded replay world: the fleet plus the same replay-tracked state
/// the cooperative `World` carries.
struct ThreadedWorld {
    fleet: ParallelShardedDfi,
    /// Per global host index: `(worker, tap index inside that worker)`.
    tap_of: Vec<(usize, u32)>,
    n_hosts: usize,
    host_ip: Vec<Ipv4Addr>,
    logged_on: Vec<bool>,
    next_fresh: u32,
    inserted: Vec<PolicyId>,
    last: StepDelta,
    cookies: CookieSets,
}

fn build_threaded(seed: u64, threads: usize) -> ThreadedWorld {
    let topo = Arc::new(fabric(seed));
    let builders: Vec<WorldBuilder> = (0..threads)
        .map(|w| builder_for(Arc::clone(&topo), w, threads))
        .collect();
    let mut routes = HashMap::new();
    for (li, l) in topo.links.iter().enumerate() {
        if shard_of(l.a_dpid, threads) != shard_of(l.b_dpid, threads) {
            routes.insert(boundary_id(li, 0), shard_of(l.a_dpid, threads));
            routes.insert(boundary_id(li, 1), shard_of(l.b_dpid, threads));
        }
    }
    let mut fleet = ParallelShardedDfi::new(&test_config(), seed, builders, routes);
    let mut next_tap = vec![0u32; threads];
    let tap_of: Vec<(usize, u32)> = topo
        .hosts
        .iter()
        .map(|h| {
            let w = shard_of(h.dpid, threads);
            let t = next_tap[w];
            next_tap[w] += 1;
            (w, t)
        })
        .collect();
    // Boot: the same lease + name + session sequence the cooperative
    // worlds publish over the bus, fanned out as binding batches.
    for h in &topo.hosts {
        for (_, ev) in boot_events(h) {
            apply_event(&mut fleet, &ev);
        }
    }
    fleet.drain();
    let host_ip = topo.hosts.iter().map(|h| h.ip).collect();
    let n_hosts = topo.hosts.len();
    ThreadedWorld {
        fleet,
        tap_of,
        n_hosts,
        host_ip,
        logged_on: vec![true; n_hosts],
        next_fresh: 0,
        inserted: Vec::new(),
        last: StepDelta::default(),
        cookies: CookieSets::default(),
    }
}

/// One sensor event, routed exactly like the cooperative front-end's bus
/// subscription: one epoch-stamped batch per event.
fn apply_event(fleet: &mut ParallelShardedDfi, ev: &DfiEvent) {
    if let Some(op) = binding_op_of_event(ev) {
        fleet.apply_binding_ops(vec![op]);
    }
}

impl ThreadedWorld {
    /// Applies one step, drains the fleet to its cross-shard fixpoint, and
    /// returns the decision delta.
    fn apply(&mut self, topo: &Topology, step: &Step) -> StepDelta {
        match step {
            Step::Flow { src, dst, dport } => {
                let frame = syn_frame(topo, &self.host_ip, *src, *dst, *dport);
                let (w, tap) = self.tap_of[*src];
                self.fleet.punt(w, tap, frame);
            }
            Step::Insert {
                allow,
                src_pat,
                dst_pat,
                priority,
            } => {
                let rule = insert_rule(topo, &self.host_ip, *allow, src_pat, dst_pat);
                let id = self.fleet.insert_policy(rule, *priority, "oracle-trace");
                self.inserted.push(id);
            }
            Step::Revoke { k } => {
                if !self.inserted.is_empty() {
                    let id = self.inserted.remove(k % self.inserted.len());
                    self.fleet.revoke_policy(id);
                }
            }
            Step::Move { host } => {
                let h = &topo.hosts[*host];
                let old = self.host_ip[*host];
                let new = fresh_ip(self.next_fresh);
                self.next_fresh += 1;
                self.host_ip[*host] = new;
                for (_, ev) in move_events(h, old, new) {
                    apply_event(&mut self.fleet, &ev);
                }
            }
            Step::Toggle { host } => {
                let h = &topo.hosts[*host];
                let on = !self.logged_on[*host];
                self.logged_on[*host] = on;
                apply_event(
                    &mut self.fleet,
                    &DfiEvent::Session {
                        user: h.users[0].clone(),
                        host: h.hostname.clone(),
                        logged_on: on,
                    },
                );
            }
        }
        let report = self.fleet.drain();
        self.delta(&report)
    }

    fn delta(&mut self, report: &FleetReport) -> StepDelta {
        let deliveries = (0..self.n_hosts)
            .map(|i| report.deliveries.get(&(i as u32)).copied().unwrap_or(0))
            .collect();
        let now = StepDelta::cumulative(&report.metrics, deliveries);
        let delta = StepDelta::since(&now, &self.last);
        self.last = now;
        self.cookies.clone_from(&report.cookies);
        delta
    }
}

#[test]
fn worker_threads_match_unsharded_oracle_across_swaps_and_moves() {
    let seed = env_u64("SHARDED_ORACLE_SEED", 0xD51_2019);
    let steps = env_u64("SHARDED_ORACLE_STEPS", 360) as usize;
    let topo = fabric(seed);
    let script = trace(seed, steps, topo.hosts.len());
    let repro = |threads: usize, i: usize, step: &Step| {
        format!(
            "repro: SHARDED_ORACLE_SEED={seed} SHARDED_ORACLE_STEPS={steps} \
             threads={threads} step={i} spec={step:?}"
        )
    };

    // Oracle run, once, on this thread — the identical world
    // `sharded_oracle.rs` replays.
    let mut oracle = build_world(seed, None);
    let expected: Vec<StepDelta> = script.iter().map(|s| oracle.apply(&topo, s)).collect();
    let oracle_cookies = oracle.cookie_sets();
    let swaps = oracle.system.snapshot_swaps();
    assert!(
        swaps >= 100,
        "trace must cross at least 100 live snapshot swaps, got {swaps}; \
         repro: SHARDED_ORACLE_SEED={seed} SHARDED_ORACLE_STEPS={steps}"
    );

    for threads in [1usize, 2, 4, 8] {
        let mut world = build_threaded(seed, threads);
        for (i, step) in script.iter().enumerate() {
            let got = world.apply(&topo, step);
            assert_eq!(
                got,
                expected[i],
                "threaded({threads}) diverged from oracle; {}",
                repro(threads, i, step)
            );
        }
        assert_eq!(
            world.cookies, oracle_cookies,
            "Table-0 cookie sets diverged; repro: SHARDED_ORACLE_SEED={seed} \
             SHARDED_ORACLE_STEPS={steps} threads={threads}"
        );
        assert!(
            world.fleet.epochs_agree(),
            "workers serve different epochs {:?}; repro: SHARDED_ORACLE_SEED={seed} \
             SHARDED_ORACLE_STEPS={steps} threads={threads}",
            world.fleet.served_epochs()
        );
        assert_eq!(
            world.fleet.fanout_metrics().snapshot_fanouts,
            swaps,
            "swap count diverged; repro: SHARDED_ORACLE_SEED={seed} \
             SHARDED_ORACLE_STEPS={steps} threads={threads}"
        );
        world.fleet.shutdown();
    }
}
