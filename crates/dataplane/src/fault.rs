//! Fault-injecting wrappers for control-channel [`ByteSink`]s.
//!
//! [`faulty_sink`] interposes a [`FaultPlan`] between a sender and any
//! existing sink: each message is passed to the plan's [`FaultProcess`],
//! which may drop it, deliver it twice, delay or hold it (reordering it
//! past later messages via the event queue), or detectably corrupt it.
//! Decisions come from the process's private seeded RNG and are scheduled
//! on the deterministic clock, so a faulted scenario replays bit-for-bit
//! from `(sim seed, fault plan)`.
//!
//! ```
//! use dfi_dataplane::{faulty_sink, ByteSink};
//! use dfi_simnet::{FaultPlan, Sim};
//! use std::rc::Rc;
//! use std::cell::RefCell;
//!
//! let mut sim = Sim::new(1);
//! let received: Rc<RefCell<Vec<Vec<u8>>>> = Rc::default();
//! let log = received.clone();
//! let inner: ByteSink = Rc::new(move |_, bytes| log.borrow_mut().push(bytes.to_vec()));
//! let (sink, handle) = faulty_sink(FaultPlan::lossy(7, 1.0), inner);
//! sink(&mut sim, &[1, 2, 3]);
//! sim.run();
//! assert!(received.borrow().is_empty());
//! assert_eq!(handle.stats().dropped, 1);
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use dfi_simnet::{FaultPlan, FaultProcess, FaultStats, Sim};

use crate::switch::ByteSink;

/// Shared view of one channel's injector: stats for assertions and the
/// plan for repro lines.
#[derive(Clone)]
pub struct FaultHandle {
    process: Rc<RefCell<FaultProcess>>,
}

impl FaultHandle {
    /// What the injector has done so far on this channel.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.process.borrow().stats()
    }

    /// The plan driving this channel (its `Display` form is the repro
    /// spec).
    #[must_use]
    pub fn plan(&self) -> FaultPlan {
        self.process.borrow().plan().clone()
    }
}

/// Wraps `inner` with fault injection driven by `plan`.
///
/// Returns the wrapped sink plus a [`FaultHandle`] for observing what the
/// injector did. Messages that survive are forwarded to `inner` after the
/// decided extra delay (zero for a clean pass, in which case no event-queue
/// round-trip is taken and ordering relative to unwrapped sends is
/// unchanged).
pub fn faulty_sink(plan: FaultPlan, inner: ByteSink) -> (ByteSink, FaultHandle) {
    let process = Rc::new(RefCell::new(FaultProcess::new(plan)));
    let handle = FaultHandle {
        process: process.clone(),
    };
    let sink: ByteSink = Rc::new(move |sim: &mut Sim, bytes: &[u8]| {
        let deliveries = process.borrow_mut().decide(sim.now());
        for d in deliveries {
            if d.delay.is_zero() && !d.corrupt {
                // Clean synchronous pass: forward the borrow, no copy.
                inner(sim, bytes);
                continue;
            }
            let mut payload = bytes.to_vec();
            if d.corrupt {
                process.borrow_mut().corrupt(&mut payload);
            }
            if d.delay.is_zero() {
                inner(sim, &payload);
            } else {
                let inner = inner.clone();
                sim.schedule_in(d.delay, move |sim| inner(sim, &payload));
            }
        }
    });
    (sink, handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfi_simnet::SimTime;
    use std::time::Duration;

    type RxLog = Rc<RefCell<Vec<(SimTime, Vec<u8>)>>>;

    fn recording_sink() -> (ByteSink, RxLog) {
        let log: RxLog = Rc::default();
        let l = log.clone();
        let sink: ByteSink =
            Rc::new(move |sim, bytes| l.borrow_mut().push((sim.now(), bytes.to_vec())));
        (sink, log)
    }

    #[test]
    fn clean_plan_forwards_synchronously() {
        let mut sim = Sim::new(1);
        let (inner, log) = recording_sink();
        let (sink, handle) = faulty_sink(FaultPlan::none(), inner);
        sink(&mut sim, &[0xAA]);
        // No event round-trip needed: already delivered.
        assert_eq!(log.borrow().len(), 1);
        assert_eq!(handle.stats().passed, 1);
    }

    #[test]
    fn duplicate_delivers_two_copies() {
        let mut sim = Sim::new(1);
        let (inner, log) = recording_sink();
        let plan = FaultPlan {
            seed: 5,
            duplicate: 1.0,
            ..FaultPlan::none()
        };
        let (sink, handle) = faulty_sink(plan, inner);
        sink(&mut sim, &[1, 2, 3, 4]);
        sim.run();
        assert_eq!(log.borrow().len(), 2);
        assert_eq!(log.borrow()[0].1, log.borrow()[1].1);
        assert_eq!(handle.stats().duplicated, 1);
    }

    #[test]
    fn reorder_lets_later_messages_overtake() {
        let mut sim = Sim::new(1);
        let (inner, log) = recording_sink();
        // Reorder exactly the first message: probability 1 would hold every
        // message equally (no inversion), so hold the first then disable.
        let plan = FaultPlan {
            seed: 8,
            reorder: 1.0,
            reorder_hold: Duration::from_millis(5),
            ..FaultPlan::none()
        }
        .with_window(SimTime::ZERO, SimTime::from_millis(1));
        let (sink, _) = faulty_sink(plan, inner);
        sink(&mut sim, &[1]);
        let s2 = sink.clone();
        sim.schedule_in(Duration::from_millis(2), move |sim| s2(sim, &[2]));
        sim.run();
        let order: Vec<u8> = log.borrow().iter().map(|(_, b)| b[0]).collect();
        assert_eq!(order, vec![2, 1], "held message must arrive second");
    }

    #[test]
    fn corrupted_copy_differs_from_original() {
        let mut sim = Sim::new(1);
        let (inner, log) = recording_sink();
        let plan = FaultPlan {
            seed: 3,
            corrupt: 1.0,
            ..FaultPlan::none()
        };
        let (sink, handle) = faulty_sink(plan, inner);
        let frame = vec![0x04, 0x00, 0x00, 0x08, 0, 0, 0, 1];
        sink(&mut sim, &frame);
        sim.run();
        assert_eq!(log.borrow().len(), 1);
        assert_ne!(log.borrow()[0].1, frame);
        assert_eq!(handle.stats().corrupted, 1);
    }

    #[test]
    fn same_seed_same_fault_timeline() {
        let run = |sim_seed: u64| {
            let mut sim = Sim::new(sim_seed);
            let (inner, log) = recording_sink();
            let (sink, handle) = faulty_sink(FaultPlan::chaos(42), inner);
            for i in 0..200u64 {
                let s = sink.clone();
                sim.schedule_in(Duration::from_micros(i * 37), move |sim| {
                    s(sim, &[i as u8; 16]);
                });
            }
            sim.run();
            let delivered = log.borrow().clone();
            (delivered, handle.stats())
        };
        assert_eq!(run(9), run(9));
    }
}
