//! A single OpenFlow flow table: priority matching, counters, timeouts,
//! and delete-by-cookie — the switch-resident half of DFI's
//! policy↔switch-consistency story.
//!
//! # Lookup performance
//!
//! DFI compiles one *exact-match* rule per flow, so a busy switch holds
//! thousands of rules that can each match exactly one flow. Real switches
//! classify in hardware (TCAM) or with tuple-space search (Open vSwitch);
//! a naive linear scan would make the Figure-4 load sweep quadratic. This
//! table therefore keeps two structures:
//!
//! * an **exact index**: rules whose match pins every field a packet of
//!   that shape carries (the shape produced by
//!   [`Match::exact_from_headers`]) live in a hash map keyed by the match
//!   itself — O(1) lookup;
//! * a **scan list**: every other (wildcarded) rule, kept in priority
//!   order and scanned linearly — in practice a handful of controller
//!   forwarding rules.
//!
//! The candidate from each structure is arbitrated by (priority,
//! insertion order), preserving OpenFlow's highest-priority-wins
//! semantics. One documented divergence from a pure scan: an exact rule
//! installed for an *untagged* flow is not consulted for a VLAN-tagged
//! packet that would only match it by wildcarding the tag (DFI's intent —
//! a rule authorizes exactly the flow that was policy-checked — is
//! preserved; none of the reproduced experiments use VLANs).

use dfi_openflow::{port, FlowMod, Instruction, Match};
use dfi_packet::{EtherType, PacketHeaders};
use dfi_simnet::SimTime;
use std::collections::HashMap;

/// Error returned by [`FlowTable::add`] when the table is at capacity and
/// the flow-mod is not a replacement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableFull;

impl std::fmt::Display for TableFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("flow table full")
    }
}

impl std::error::Error for TableFull {}

/// One installed flow rule plus its counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowEntry {
    /// Match priority (higher wins).
    pub priority: u16,
    /// The match.
    pub mat: Match,
    /// Opaque metadata; DFI stores the deriving policy's id here.
    pub cookie: u64,
    /// Idle timeout in seconds (0 = none).
    pub idle_timeout: u16,
    /// Hard timeout in seconds (0 = none).
    pub hard_timeout: u16,
    /// OFPFF flags.
    pub flags: u16,
    /// Instructions (empty = drop).
    pub instructions: Vec<Instruction>,
    /// Packets matched.
    pub packet_count: u64,
    /// Bytes matched.
    pub byte_count: u64,
    /// Virtual time the rule was installed.
    pub installed_at: SimTime,
    /// Virtual time of the last packet match (for idle timeout).
    pub last_matched: SimTime,
}

impl FlowEntry {
    fn from_flow_mod(fm: &FlowMod, now: SimTime) -> FlowEntry {
        FlowEntry {
            priority: fm.priority,
            mat: fm.mat.clone(),
            cookie: fm.cookie,
            idle_timeout: fm.idle_timeout,
            hard_timeout: fm.hard_timeout,
            flags: fm.flags,
            instructions: fm.instructions.clone(),
            packet_count: 0,
            byte_count: 0,
            installed_at: now,
            last_matched: now,
        }
    }

    /// `true` if this rule outputs to `out_port` (used by delete filters).
    fn outputs_to(&self, out_port: u32) -> bool {
        if out_port == port::ANY {
            return true;
        }
        self.instructions.iter().any(|i| match i {
            Instruction::ApplyActions(actions) | Instruction::WriteActions(actions) => {
                actions.iter().any(
                    |a| matches!(a, dfi_openflow::Action::Output { port, .. } if *port == out_port),
                )
            }
            _ => false,
        })
    }

    fn cookie_matches(&self, cookie: u64, mask: u64) -> bool {
        mask == 0 || (self.cookie & mask) == (cookie & mask)
    }

    /// Hard-timeout deadline, if any.
    #[must_use]
    pub fn hard_deadline(&self) -> Option<SimTime> {
        (self.hard_timeout > 0)
            .then(|| self.installed_at + std::time::Duration::from_secs(self.hard_timeout.into()))
    }

    /// Idle-timeout deadline given the last match, if any.
    #[must_use]
    pub fn idle_deadline(&self) -> Option<SimTime> {
        (self.idle_timeout > 0)
            .then(|| self.last_matched + std::time::Duration::from_secs(self.idle_timeout.into()))
    }
}

/// `true` when a match pins every field a packet of its shape would carry
/// (the canonical exact-match produced by [`Match::exact_from_headers`]);
/// such rules are eligible for the hash index.
fn is_canonical_exact(m: &Match) -> bool {
    let l2 =
        m.in_port.is_some() && m.eth_src.is_some() && m.eth_dst.is_some() && m.eth_type.is_some();
    if !l2 {
        return false;
    }
    match m.eth_type.map(EtherType::from_u16) {
        Some(EtherType::Ipv4) => {
            if m.ipv4_src.is_none() || m.ipv4_dst.is_none() || m.ip_proto.is_none() {
                return false;
            }
            match m.ip_proto {
                Some(6) => m.tcp_src.is_some() && m.tcp_dst.is_some(),
                Some(17) => m.udp_src.is_some() && m.udp_dst.is_some(),
                _ => true,
            }
        }
        Some(EtherType::Arp) => m.arp_spa.is_some() && m.arp_tpa.is_some(),
        _ => true,
    }
}

/// Why [`FlowTable::sweep_expired`] removed an entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExpiryKind {
    /// Idle timeout fired.
    Idle,
    /// Hard timeout fired.
    Hard,
}

/// Identifier of an entry within one table (stable across unrelated
/// insertions and removals).
type EntryId = u64;

/// (priority, insertion sequence, id) — ordered so that higher priority
/// comes first and, within a priority, earlier insertion comes first.
type OrderKey = (u16, u64, EntryId);

fn order_cmp(a: &OrderKey, b: &OrderKey) -> std::cmp::Ordering {
    b.0.cmp(&a.0).then(a.1.cmp(&b.1))
}

/// A priority-ordered flow table with bounded capacity.
///
/// Hardware switches store between 512 and 8192 rules (the paper cites this
/// range as the reason policy cannot be proactively cached in full); the
/// capacity is configurable and adds with a full table fail.
#[derive(Clone, Debug, Default)]
pub struct FlowTable {
    entries: HashMap<EntryId, FlowEntry>,
    /// All entries in match-precedence order.
    order: Vec<OrderKey>,
    /// Non-canonical (wildcarded) entries only, in match-precedence order.
    scan_order: Vec<OrderKey>,
    /// Canonical exact-match entries, keyed by their match.
    exact: HashMap<Match, EntryId>,
    next_seq: u64,
    capacity: usize,
    /// Packets looked up in this table.
    pub lookup_count: u64,
    /// Packets that matched some rule.
    pub matched_count: u64,
}

impl FlowTable {
    /// An empty table bounded at `capacity` rules.
    #[must_use]
    pub fn new(capacity: usize) -> FlowTable {
        FlowTable {
            capacity,
            ..FlowTable::default()
        }
    }

    /// Number of installed rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no rules are installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates over installed rules in match-precedence order (descending
    /// priority, then insertion order).
    pub fn iter(&self) -> impl Iterator<Item = &FlowEntry> {
        self.order.iter().map(move |(_, _, id)| &self.entries[id])
    }

    fn insert_ordered(list: &mut Vec<OrderKey>, key: OrderKey) {
        let pos = list.partition_point(|k| order_cmp(k, &key) == std::cmp::Ordering::Less);
        list.insert(pos, key);
    }

    fn remove_id(&mut self, id: EntryId) -> Option<FlowEntry> {
        let entry = self.entries.remove(&id)?;
        self.order.retain(|&(_, _, i)| i != id);
        self.scan_order.retain(|&(_, _, i)| i != id);
        if self.exact.get(&entry.mat) == Some(&id) {
            self.exact.remove(&entry.mat);
        }
        Some(entry)
    }

    /// Installs a rule from an ADD flow-mod. Per OF1.3 §6.4, an add with
    /// the same match and priority as an existing rule replaces it
    /// (counters reset). Returns [`TableFull`] when the table is full.
    pub fn add(&mut self, fm: &FlowMod, now: SimTime) -> Result<(), TableFull> {
        let new = FlowEntry::from_flow_mod(fm, now);
        // Replace an identical (match, priority) rule.
        let existing = self
            .order
            .iter()
            .find(|&&(prio, _, id)| prio == new.priority && self.entries[&id].mat == new.mat)
            .map(|&(_, _, id)| id);
        if let Some(id) = existing {
            let seq = {
                self.remove_id(id);
                self.next_seq
            };
            self.next_seq += 1;
            self.insert_entry(id_from_seq(seq), new);
            return Ok(());
        }
        if self.entries.len() >= self.capacity {
            return Err(TableFull);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert_entry(id_from_seq(seq), new);
        Ok(())
    }

    fn insert_entry(&mut self, id: EntryId, entry: FlowEntry) {
        let key = (entry.priority, id, id);
        Self::insert_ordered(&mut self.order, key);
        if is_canonical_exact(&entry.mat) {
            match self.exact.get(&entry.mat).copied() {
                // Keep the higher-priority entry in the index; shadowed
                // same-match entries fall back to the scan list.
                Some(old) if self.entries[&old].priority >= entry.priority => {
                    Self::insert_ordered(&mut self.scan_order, key);
                }
                Some(old) => {
                    let old_prio = self.entries[&old].priority;
                    Self::insert_ordered(&mut self.scan_order, (old_prio, old, old));
                    self.exact.insert(entry.mat.clone(), id);
                }
                None => {
                    self.exact.insert(entry.mat.clone(), id);
                }
            }
        } else {
            Self::insert_ordered(&mut self.scan_order, key);
        }
        self.entries.insert(id, entry);
    }

    /// Finds the highest-priority rule matching a packet and bumps its
    /// counters. Returns a clone of the matched entry.
    pub fn lookup(
        &mut self,
        in_port: u32,
        headers: &PacketHeaders,
        frame_len: usize,
        now: SimTime,
    ) -> Option<FlowEntry> {
        self.lookup_count += 1;
        // Exact-index candidate.
        let exact_key = Match::exact_from_headers(in_port, headers);
        let exact_hit: Option<OrderKey> = self.exact.get(&exact_key).map(|&id| {
            let e = &self.entries[&id];
            (e.priority, id, id)
        });
        // Scan candidate: first (highest-precedence) wildcard match.
        let scan_hit: Option<OrderKey> = self
            .scan_order
            .iter()
            .find(|&&(_, _, id)| self.entries[&id].mat.matches(in_port, headers))
            .copied();
        let winner = match (exact_hit, scan_hit) {
            (Some(a), Some(b)) => {
                if order_cmp(&a, &b) == std::cmp::Ordering::Less {
                    a
                } else {
                    b
                }
            }
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => return None,
        };
        let entry = self.entries.get_mut(&winner.2).expect("indexed entry");
        entry.packet_count += 1;
        entry.byte_count += frame_len as u64;
        entry.last_matched = now;
        self.matched_count += 1;
        Some(entry.clone())
    }

    fn remove_where(&mut self, pred: impl Fn(&FlowEntry) -> bool) -> Vec<FlowEntry> {
        let ids: Vec<EntryId> = self
            .order
            .iter()
            .filter(|&&(_, _, id)| pred(&self.entries[&id]))
            .map(|&(_, _, id)| id)
            .collect();
        ids.into_iter()
            .filter_map(|id| self.remove_id(id))
            .collect()
    }

    /// Applies a non-strict DELETE: removes every rule whose match is a
    /// subset of `fm.mat` and whose cookie satisfies `fm.cookie_mask` and
    /// which outputs to `fm.out_port` (when filtered). Returns the removed
    /// entries (for `Flow-Removed` generation).
    pub fn delete(&mut self, fm: &FlowMod) -> Vec<FlowEntry> {
        self.remove_where(|e| {
            e.mat.is_subset_of(&fm.mat)
                && e.cookie_matches(fm.cookie, fm.cookie_mask)
                && e.outputs_to(fm.out_port)
        })
    }

    /// Applies a strict DELETE (exact match and priority).
    pub fn delete_strict(&mut self, fm: &FlowMod) -> Vec<FlowEntry> {
        self.remove_where(|e| {
            e.mat == fm.mat
                && e.priority == fm.priority
                && e.cookie_matches(fm.cookie, fm.cookie_mask)
        })
    }

    /// Applies a MODIFY: rewrites instructions of matching rules (counters
    /// preserved, per OF1.3).
    pub fn modify(&mut self, fm: &FlowMod, strict: bool) {
        for e in self.entries.values_mut() {
            let hit = if strict {
                e.mat == fm.mat && e.priority == fm.priority
            } else {
                e.mat.is_subset_of(&fm.mat) && e.cookie_matches(fm.cookie, fm.cookie_mask)
            };
            if hit {
                e.instructions = fm.instructions.clone();
                e.flags = fm.flags;
            }
        }
    }

    /// Removes entries whose idle or hard timeout has passed at `now`.
    /// Returns them with the reason, for `Flow-Removed` generation.
    pub fn sweep_expired(&mut self, now: SimTime) -> Vec<(FlowEntry, ExpiryKind)> {
        let mut kinds: Vec<ExpiryKind> = Vec::new();
        let removed = self.remove_where(|e| {
            if e.hard_deadline().is_some_and(|t| now >= t) {
                true
            } else {
                e.idle_deadline().is_some_and(|t| now >= t)
            }
        });
        for e in &removed {
            if e.hard_deadline().is_some_and(|t| now >= t) {
                kinds.push(ExpiryKind::Hard);
            } else {
                kinds.push(ExpiryKind::Idle);
            }
        }
        removed.into_iter().zip(kinds).collect()
    }

    /// The earliest pending timeout deadline, used to schedule the next
    /// expiry sweep precisely instead of polling.
    #[must_use]
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.entries
            .values()
            .flat_map(|e| [e.hard_deadline(), e.idle_deadline()])
            .flatten()
            .min()
    }
}

fn id_from_seq(seq: u64) -> EntryId {
    seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfi_openflow::{Action, FlowModCommand};
    use dfi_packet::headers::build;
    use dfi_packet::MacAddr;
    use std::net::Ipv4Addr;
    use std::time::Duration;

    fn headers() -> PacketHeaders {
        let bytes = build::tcp_syn(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            50_000,
            445,
        );
        PacketHeaders::parse(&bytes).unwrap()
    }

    fn add_fm(priority: u16, mat: Match, cookie: u64) -> FlowMod {
        FlowMod {
            priority,
            mat,
            cookie,
            instructions: vec![Instruction::ApplyActions(vec![Action::output(1)])],
            ..FlowMod::add()
        }
    }

    #[test]
    fn highest_priority_wins() {
        let mut t = FlowTable::new(100);
        let h = headers();
        t.add(&add_fm(10, Match::any(), 1), SimTime::ZERO).unwrap();
        t.add(
            &add_fm(
                100,
                Match {
                    eth_type: Some(0x0800),
                    ..Match::default()
                },
                2,
            ),
            SimTime::ZERO,
        )
        .unwrap();
        let hit = t.lookup(1, &h, 64, SimTime::ZERO).unwrap();
        assert_eq!(hit.cookie, 2);
        assert_eq!(t.lookup_count, 1);
        assert_eq!(t.matched_count, 1);
    }

    #[test]
    fn exact_rule_beats_lower_priority_wildcard() {
        let mut t = FlowTable::new(100);
        let h = headers();
        let exact = Match::exact_from_headers(1, &h);
        assert!(is_canonical_exact(&exact));
        t.add(&add_fm(100, exact, 0xAA), SimTime::ZERO).unwrap();
        t.add(&add_fm(10, Match::any(), 0xBB), SimTime::ZERO)
            .unwrap();
        assert_eq!(t.lookup(1, &h, 64, SimTime::ZERO).unwrap().cookie, 0xAA);
    }

    #[test]
    fn wildcard_beats_lower_priority_exact() {
        let mut t = FlowTable::new(100);
        let h = headers();
        let exact = Match::exact_from_headers(1, &h);
        t.add(&add_fm(10, exact, 0xAA), SimTime::ZERO).unwrap();
        t.add(&add_fm(100, Match::any(), 0xFF), SimTime::ZERO)
            .unwrap();
        assert_eq!(t.lookup(1, &h, 64, SimTime::ZERO).unwrap().cookie, 0xFF);
    }

    #[test]
    fn exact_rule_does_not_match_other_flows() {
        let mut t = FlowTable::new(100);
        let h = headers();
        let exact = Match::exact_from_headers(1, &h);
        t.add(&add_fm(100, exact, 0xAA), SimTime::ZERO).unwrap();
        // Same packet, different in-port: no match.
        assert!(t.lookup(2, &h, 64, SimTime::ZERO).is_none());
    }

    #[test]
    fn many_exact_rules_lookup_correctly() {
        // The DFI workload shape: thousands of exact rules, one per flow.
        let mut t = FlowTable::new(100_000);
        let mut hs = Vec::new();
        for i in 0..500u16 {
            let bytes = build::tcp_syn(
                MacAddr::from_index(u32::from(i)),
                MacAddr::from_index(9999),
                Ipv4Addr::new(10, (i >> 8) as u8, i as u8, 1),
                Ipv4Addr::new(10, 9, 9, 9),
                40_000 + i,
                445,
            );
            let h = PacketHeaders::parse(&bytes).unwrap();
            let m = Match::exact_from_headers(3, &h);
            t.add(&add_fm(100, m, u64::from(i)), SimTime::ZERO).unwrap();
            hs.push(h);
        }
        for (i, h) in hs.iter().enumerate() {
            let hit = t.lookup(3, h, 64, SimTime::ZERO).unwrap();
            assert_eq!(hit.cookie, i as u64);
        }
        assert_eq!(t.matched_count, 500);
    }

    #[test]
    fn counters_accumulate() {
        let mut t = FlowTable::new(100);
        let h = headers();
        t.add(&add_fm(1, Match::any(), 7), SimTime::ZERO).unwrap();
        t.lookup(1, &h, 100, SimTime::from_millis(1));
        t.lookup(1, &h, 50, SimTime::from_millis(2));
        let e = t.iter().next().unwrap();
        assert_eq!(e.packet_count, 2);
        assert_eq!(e.byte_count, 150);
        assert_eq!(e.last_matched, SimTime::from_millis(2));
    }

    #[test]
    fn miss_returns_none_and_counts_lookup() {
        let mut t = FlowTable::new(100);
        let h = headers();
        let m = Match {
            ip_proto: Some(17),
            ..Match::default()
        };
        t.add(&add_fm(1, m, 1), SimTime::ZERO).unwrap();
        assert!(t.lookup(1, &h, 64, SimTime::ZERO).is_none());
        assert_eq!(t.lookup_count, 1);
        assert_eq!(t.matched_count, 0);
    }

    #[test]
    fn same_match_same_priority_replaces() {
        let mut t = FlowTable::new(100);
        t.add(&add_fm(5, Match::any(), 1), SimTime::ZERO).unwrap();
        let mut fm2 = add_fm(5, Match::any(), 2);
        fm2.instructions = vec![];
        t.add(&fm2, SimTime::from_secs(1)).unwrap();
        assert_eq!(t.len(), 1);
        let e = t.iter().next().unwrap();
        assert_eq!(e.cookie, 2);
        assert!(e.instructions.is_empty());
    }

    #[test]
    fn exact_rule_replacement_updates_index() {
        let mut t = FlowTable::new(100);
        let h = headers();
        let exact = Match::exact_from_headers(1, &h);
        t.add(&add_fm(100, exact.clone(), 1), SimTime::ZERO)
            .unwrap();
        t.add(&add_fm(100, exact, 2), SimTime::ZERO).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(1, &h, 64, SimTime::ZERO).unwrap().cookie, 2);
    }

    #[test]
    fn capacity_enforced() {
        let mut t = FlowTable::new(2);
        for i in 0..2u64 {
            let m = Match {
                tcp_dst: Some(i as u16),
                ..Match::default()
            };
            t.add(&add_fm(1, m, i), SimTime::ZERO).unwrap();
        }
        let m = Match {
            tcp_dst: Some(99),
            ..Match::default()
        };
        assert!(t.add(&add_fm(1, m, 9), SimTime::ZERO).is_err());
        assert_eq!(t.len(), 2);
        // Replacing an existing rule still works at capacity.
        let m0 = Match {
            tcp_dst: Some(0),
            ..Match::default()
        };
        assert!(t.add(&add_fm(1, m0, 42), SimTime::ZERO).is_ok());
    }

    #[test]
    fn delete_by_cookie_removes_only_matching_cookies() {
        let mut t = FlowTable::new(100);
        for cookie in [0xA1, 0xA2, 0xB1u64] {
            let m = Match {
                tcp_dst: Some(cookie as u16),
                ..Match::default()
            };
            t.add(&add_fm(1, m, cookie), SimTime::ZERO).unwrap();
        }
        // Flush everything whose cookie has high nibble 0xA.
        let fm = FlowMod {
            cookie: 0xA0,
            cookie_mask: 0xF0,
            command: FlowModCommand::Delete,
            ..FlowMod::add()
        };
        let removed = t.delete(&fm);
        assert_eq!(removed.len(), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.iter().next().unwrap().cookie, 0xB1);
    }

    #[test]
    fn delete_by_cookie_removes_exact_indexed_rules() {
        let mut t = FlowTable::new(100);
        let h = headers();
        let exact = Match::exact_from_headers(1, &h);
        t.add(&add_fm(100, exact, 0xD0F1), SimTime::ZERO).unwrap();
        let removed = t.delete(&FlowMod::delete_by_cookie(0xD0F1, u64::MAX));
        assert_eq!(removed.len(), 1);
        assert!(t.lookup(1, &h, 64, SimTime::ZERO).is_none(), "index purged");
    }

    #[test]
    fn delete_respects_match_subset() {
        let mut t = FlowTable::new(100);
        let m1 = Match {
            ipv4_dst: Some(Ipv4Addr::new(10, 0, 0, 1)),
            eth_type: Some(0x0800),
            ..Match::default()
        };
        let m2 = Match {
            ipv4_dst: Some(Ipv4Addr::new(10, 0, 0, 2)),
            eth_type: Some(0x0800),
            ..Match::default()
        };
        t.add(&add_fm(1, m1.clone(), 1), SimTime::ZERO).unwrap();
        t.add(&add_fm(1, m2, 2), SimTime::ZERO).unwrap();
        let fm = FlowMod {
            mat: m1,
            command: FlowModCommand::Delete,
            ..FlowMod::add()
        };
        let removed = t.delete(&fm);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].cookie, 1);
    }

    #[test]
    fn delete_strict_requires_exact_priority() {
        let mut t = FlowTable::new(100);
        t.add(&add_fm(5, Match::any(), 1), SimTime::ZERO).unwrap();
        let mut fm = add_fm(6, Match::any(), 0);
        fm.command = FlowModCommand::DeleteStrict;
        fm.cookie_mask = 0;
        assert!(t.delete_strict(&fm).is_empty());
        fm.priority = 5;
        assert_eq!(t.delete_strict(&fm).len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn delete_filters_by_out_port() {
        let mut t = FlowTable::new(100);
        let mut fm1 = add_fm(
            1,
            Match {
                tcp_dst: Some(1),
                ..Match::default()
            },
            1,
        );
        fm1.instructions = vec![Instruction::ApplyActions(vec![Action::output(3)])];
        let mut fm2 = add_fm(
            1,
            Match {
                tcp_dst: Some(2),
                ..Match::default()
            },
            2,
        );
        fm2.instructions = vec![Instruction::ApplyActions(vec![Action::output(4)])];
        t.add(&fm1, SimTime::ZERO).unwrap();
        t.add(&fm2, SimTime::ZERO).unwrap();
        let del = FlowMod {
            command: FlowModCommand::Delete,
            out_port: 3,
            ..FlowMod::add()
        };
        let removed = t.delete(&del);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].cookie, 1);
    }

    #[test]
    fn modify_rewrites_instructions_preserving_counters() {
        let mut t = FlowTable::new(100);
        let h = headers();
        t.add(&add_fm(1, Match::any(), 1), SimTime::ZERO).unwrap();
        t.lookup(1, &h, 64, SimTime::ZERO);
        let mut fm = add_fm(1, Match::any(), 1);
        fm.instructions = vec![Instruction::GotoTable(1)];
        t.modify(&fm, false);
        let e = t.iter().next().unwrap();
        assert_eq!(e.instructions, vec![Instruction::GotoTable(1)]);
        assert_eq!(e.packet_count, 1, "counters preserved on modify");
    }

    #[test]
    fn hard_timeout_expires() {
        let mut t = FlowTable::new(100);
        let mut fm = add_fm(1, Match::any(), 1);
        fm.hard_timeout = 10;
        t.add(&fm, SimTime::ZERO).unwrap();
        assert_eq!(t.next_deadline(), Some(SimTime::from_secs(10)));
        assert!(t.sweep_expired(SimTime::from_secs(9)).is_empty());
        let expired = t.sweep_expired(SimTime::from_secs(10));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].1, ExpiryKind::Hard);
        assert!(t.is_empty());
    }

    #[test]
    fn idle_timeout_resets_on_traffic() {
        let mut t = FlowTable::new(100);
        let h = headers();
        let mut fm = add_fm(1, Match::any(), 1);
        fm.idle_timeout = 5;
        t.add(&fm, SimTime::ZERO).unwrap();
        // Traffic at t=4 pushes the idle deadline to t=9.
        t.lookup(1, &h, 64, SimTime::from_secs(4));
        assert!(t.sweep_expired(SimTime::from_secs(5)).is_empty());
        let expired = t.sweep_expired(SimTime::from_secs(9));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].1, ExpiryKind::Idle);
    }

    #[test]
    fn next_deadline_is_minimum() {
        let mut t = FlowTable::new(100);
        let mut a = add_fm(
            1,
            Match {
                tcp_dst: Some(1),
                ..Match::default()
            },
            1,
        );
        a.hard_timeout = 30;
        let mut b = add_fm(
            1,
            Match {
                tcp_dst: Some(2),
                ..Match::default()
            },
            2,
        );
        b.idle_timeout = 7;
        t.add(&a, SimTime::ZERO).unwrap();
        t.add(&b, SimTime::from_secs(1)).unwrap();
        assert_eq!(t.next_deadline(), Some(SimTime::from_secs(8)));
    }

    #[test]
    fn zero_timeouts_never_expire() {
        let mut t = FlowTable::new(100);
        t.add(&add_fm(1, Match::any(), 1), SimTime::ZERO).unwrap();
        assert_eq!(t.next_deadline(), None);
        assert!(t
            .sweep_expired(SimTime::ZERO + Duration::from_secs(1_000_000))
            .is_empty());
    }

    #[test]
    fn iter_is_priority_ordered() {
        let mut t = FlowTable::new(100);
        for (prio, cookie) in [(5u16, 1u64), (50, 2), (10, 3)] {
            let m = Match {
                tcp_dst: Some(cookie as u16),
                ..Match::default()
            };
            t.add(&add_fm(prio, m, cookie), SimTime::ZERO).unwrap();
        }
        let cookies: Vec<u64> = t.iter().map(|e| e.cookie).collect();
        assert_eq!(cookies, vec![2, 3, 1]);
    }

    #[test]
    fn canonical_detection() {
        let h = headers();
        assert!(is_canonical_exact(&Match::exact_from_headers(1, &h)));
        assert!(!is_canonical_exact(&Match::any()));
        assert!(!is_canonical_exact(&Match {
            eth_dst: Some(MacAddr::from_index(1)),
            ..Match::default()
        }));
        // IPv4 TCP without ports pinned is not canonical.
        let mut m = Match::exact_from_headers(1, &h);
        m.tcp_dst = None;
        assert!(!is_canonical_exact(&m));
    }
}
