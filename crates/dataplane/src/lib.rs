//! OpenFlow 1.3 data plane for the DFI reproduction: flow tables, a
//! multi-table pipeline software switch (Open vSwitch surrogate), and
//! topology wiring.
//!
//! The paper's testbed ran Open vSwitch 2.5.4 under 14 switches in a star
//! topology. This crate provides the equivalent substrate: a switch that
//! speaks real encoded OpenFlow 1.3 on its control channel and enforces the
//! pipeline semantics DFI relies on — Table 0 first, `goto_table` chaining,
//! table-miss punting to the control plane, cookie-tagged rules, and
//! delete-by-cookie flushing.
//!
//! # Example
//!
//! ```
//! use dfi_dataplane::{Network, SwitchConfig, dfi_allow_rule};
//! use dfi_openflow::Match;
//! use dfi_simnet::Sim;
//! use std::time::Duration;
//!
//! let mut sim = Sim::new(1);
//! let mut net = Network::new();
//! let sw = net.add_switch(SwitchConfig::new(0xD1));
//! let _tx = net.attach_silent_host(&sw, 1, Duration::from_micros(50));
//! sw.install(&mut sim, &dfi_allow_rule(Match::any(), 0xC00C1E, 100));
//! sim.run();
//! assert_eq!(sw.table_len(0), 1);
//! assert_eq!(sw.table0_cookies(), vec![0xC00C1E]);
//! ```

#![warn(missing_docs)]

mod fault;
mod flow_table;
mod network;
mod switch;

pub use fault::{faulty_sink, FaultHandle};
pub use flow_table::{ExpiryKind, FlowEntry, FlowTable, TableFull};
pub use network::{Network, Tx};
pub use switch::{dfi_allow_rule, dfi_deny_rule, ByteSink, Switch, SwitchConfig, SwitchStats};
