//! Topology wiring: switches, inter-switch links, and host attachment
//! points, driven by the simulation kernel.

use crate::switch::{ByteSink, Switch, SwitchConfig};
use dfi_simnet::Sim;
use std::rc::Rc;
use std::time::Duration;

/// A handle for injecting frames into the network at a fixed attachment
/// point (what a host's NIC holds).
#[derive(Clone)]
pub struct Tx {
    sink: ByteSink,
    latency: Duration,
}

impl Tx {
    /// Sends a frame onto the wire; it reaches the switch after the access
    /// link's latency.
    pub fn send(&self, sim: &mut Sim, frame: Vec<u8>) {
        let sink = self.sink.clone();
        sim.schedule_in(self.latency, move |sim| sink(sim, &frame));
    }
}

/// A network of OpenFlow switches plus attachment bookkeeping.
#[derive(Default)]
pub struct Network {
    switches: Vec<Switch>,
}

impl Network {
    /// An empty network.
    #[must_use]
    pub fn new() -> Network {
        Network::default()
    }

    /// Adds a switch, returning its handle.
    pub fn add_switch(&mut self, config: SwitchConfig) -> Switch {
        let sw = Switch::new(config);
        self.switches.push(sw.clone());
        sw
    }

    /// All switches, in creation order.
    #[must_use]
    pub fn switches(&self) -> &[Switch] {
        &self.switches
    }

    /// Connects two switches with a bidirectional link of the given
    /// latency, using the named port on each side.
    pub fn link(&mut self, a: &Switch, port_a: u32, b: &Switch, port_b: u32, latency: Duration) {
        a.attach_port(port_a, latency, b.ingress(port_b));
        b.attach_port(port_b, latency, a.ingress(port_a));
    }

    /// Attaches a host NIC to `switch:port`. Frames the switch outputs on
    /// that port are handed to `rx`; the returned [`Tx`] injects frames
    /// toward the switch. Both directions incur `latency`.
    pub fn attach_host(
        &mut self,
        switch: &Switch,
        port: u32,
        latency: Duration,
        rx: ByteSink,
    ) -> Tx {
        switch.attach_port(port, latency, rx);
        Tx {
            sink: switch.ingress(port),
            latency,
        }
    }

    /// Attaches a host that ignores everything it receives (a traffic sink).
    pub fn attach_silent_host(&mut self, switch: &Switch, port: u32, latency: Duration) -> Tx {
        self.attach_host(switch, port, latency, Rc::new(|_, _| {}))
    }

    /// Materializes a generated fabric spec
    /// ([`dfi_simnet::topo::Topology`]): one switch per spec entry (in
    /// spec order, so `switches()[dpid - 1]` is the switch for a dense
    /// dpid space) and every inter-switch link at `link_latency`. Host
    /// attachment stays with the caller — it needs receive sinks — via
    /// [`Network::attach_host`] at each `HostSpec`'s `(dpid, port)`.
    pub fn build_topology(
        &mut self,
        topo: &dfi_simnet::topo::Topology,
        link_latency: Duration,
    ) -> Vec<Switch> {
        let base = self.switches.len();
        for spec in &topo.switches {
            self.add_switch(SwitchConfig::new(spec.dpid));
        }
        let built = self.switches[base..].to_vec();
        let index: std::collections::HashMap<u64, usize> = built
            .iter()
            .enumerate()
            .map(|(i, s)| (s.dpid(), i))
            .collect();
        let lookup = |dpid: u64| index[&dpid];
        for l in &topo.links {
            let a = built[lookup(l.a_dpid)].clone();
            let b = built[lookup(l.b_dpid)].clone();
            self.link(&a, l.a_port, &b, l.b_port, link_latency);
        }
        built
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_enumerate_switches() {
        let mut net = Network::new();
        let a = net.add_switch(SwitchConfig::new(1));
        let _b = net.add_switch(SwitchConfig::new(2));
        assert_eq!(net.switches().len(), 2);
        assert_eq!(a.dpid(), 1);
        assert_eq!(net.switches()[1].dpid(), 2);
    }
}
