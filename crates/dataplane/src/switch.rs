//! An OpenFlow 1.3 software switch (Open vSwitch surrogate).
//!
//! Implements the multi-table pipeline semantics DFI depends on: packets
//! enter Table 0, `goto_table` chains forward, a table miss punts the packet
//! to the control plane as a `Packet-In`, rules carry cookies and can be
//! flushed by cookie/mask, and flow/table statistics are served over
//! multipart messages. All control-channel traffic is real encoded OpenFlow
//! bytes, so the DFI Proxy genuinely parses and rewrites the wire format.

use crate::flow_table::{ExpiryKind, FlowTable};
use dfi_openflow::{
    port, table, Action, ErrorMsg, FeaturesReply, FlowMod, FlowModCommand, FlowRemoved,
    FlowRemovedReason, FlowStatsEntry, Instruction, Match, Message, MultipartReply,
    MultipartRequest, OfMessage, PacketIn, PacketOut, TableStatsEntry, FLAG_SEND_FLOW_REM,
};
use dfi_packet::PacketHeaders;
use dfi_simnet::{Sim, SimTime};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

/// A callback delivering raw bytes (OpenFlow messages or Ethernet frames).
///
/// Sinks borrow the bytes: a sender that needs the buffer afterwards (for
/// retransmission or buffer pooling) keeps ownership, and a flooded frame
/// is shared by every port's delivery closure instead of being cloned per
/// port. Receivers that defer work copy exactly the bytes they keep.
pub type ByteSink = Rc<dyn Fn(&mut Sim, &[u8])>;

/// Switch configuration.
#[derive(Clone, Debug)]
pub struct SwitchConfig {
    /// Datapath id.
    pub dpid: u64,
    /// Number of pipeline tables.
    pub n_tables: u8,
    /// Rules per table (hardware switches: 512–8192).
    pub table_capacity: usize,
    /// Per-packet pipeline processing latency.
    pub forwarding_latency: Duration,
    /// One-way latency of the control channel to the control plane.
    pub control_latency: Duration,
}

impl SwitchConfig {
    /// A conventional software switch: 8 tables of 8192 rules, 20 µs
    /// pipeline latency, 200 µs control-channel latency.
    #[must_use]
    pub fn new(dpid: u64) -> SwitchConfig {
        SwitchConfig {
            dpid,
            n_tables: 8,
            table_capacity: 8192,
            forwarding_latency: Duration::from_micros(20),
            control_latency: Duration::from_micros(200),
        }
    }
}

/// Counters the experiments read.
#[derive(Clone, Copy, Debug, Default)]
pub struct SwitchStats {
    /// Frames received on data ports.
    pub frames_in: u64,
    /// Frames emitted on data ports.
    pub frames_out: u64,
    /// Frames dropped (no matching rule allows them, or unparseable).
    pub frames_dropped: u64,
    /// `Packet-In`s sent to the control plane.
    pub packet_ins: u64,
    /// Flow-mods applied.
    pub flow_mods: u64,
    /// Errors sent to the control plane.
    pub errors: u64,
}

struct Port {
    latency: Duration,
    peer: ByteSink,
}

struct Inner {
    config: SwitchConfig,
    tables: Vec<FlowTable>,
    ports: HashMap<u32, Port>,
    to_control: Option<ByteSink>,
    stats: SwitchStats,
    next_xid: u32,
    next_sweep: Option<SimTime>,
}

/// Shared handle to a switch; clones refer to the same switch.
#[derive(Clone)]
pub struct Switch {
    inner: Rc<RefCell<Inner>>,
}

impl Switch {
    /// Creates a switch.
    #[must_use]
    pub fn new(config: SwitchConfig) -> Switch {
        let tables = (0..config.n_tables)
            .map(|_| FlowTable::new(config.table_capacity))
            .collect();
        Switch {
            inner: Rc::new(RefCell::new(Inner {
                config,
                tables,
                ports: HashMap::new(),
                to_control: None,
                stats: SwitchStats::default(),
                next_xid: 1,
                next_sweep: None,
            })),
        }
    }

    /// The datapath id.
    #[must_use]
    pub fn dpid(&self) -> u64 {
        self.inner.borrow().config.dpid
    }

    /// Snapshot of counters.
    #[must_use]
    pub fn stats(&self) -> SwitchStats {
        self.inner.borrow().stats
    }

    /// Number of rules currently in `table_id`.
    #[must_use]
    pub fn table_len(&self, table_id: u8) -> usize {
        self.inner.borrow().tables[usize::from(table_id)].len()
    }

    /// Runs `f` over the entries of `table_id` (test/diagnostic hook).
    pub fn with_table<R>(&self, table_id: u8, f: impl FnOnce(&FlowTable) -> R) -> R {
        f(&self.inner.borrow().tables[usize::from(table_id)])
    }

    /// Attaches a data port: frames output on `port_no` are delivered to
    /// `peer` after `latency`.
    pub fn attach_port(&self, port_no: u32, latency: Duration, peer: ByteSink) {
        assert!(port_no > 0 && port_no < port::MAX, "invalid port number");
        self.inner
            .borrow_mut()
            .ports
            .insert(port_no, Port { latency, peer });
    }

    /// Returns a sink that injects frames into this switch at `port_no`
    /// (what a host NIC or the far end of a link holds).
    #[must_use]
    pub fn ingress(&self, port_no: u32) -> ByteSink {
        let sw = self.clone();
        Rc::new(move |sim, frame| sw.input_frame(sim, port_no, frame.to_vec()))
    }

    /// Connects the control channel and performs the switch's half of the
    /// handshake (sends `Hello`).
    pub fn connect_control(&self, sim: &mut Sim, to_control: ByteSink) {
        self.inner.borrow_mut().to_control = Some(to_control);
        self.send_control(sim, Message::Hello, None);
    }

    /// Returns a sink for bytes arriving *from* the control plane.
    #[must_use]
    pub fn control_ingress(&self) -> ByteSink {
        let sw = self.clone();
        Rc::new(move |sim, bytes| sw.handle_control_bytes(sim, bytes))
    }

    /// Handles an Ethernet frame arriving on `in_port`.
    pub fn input_frame(&self, sim: &mut Sim, in_port: u32, frame: Vec<u8>) {
        let delay = {
            let mut inner = self.inner.borrow_mut();
            inner.stats.frames_in += 1;
            inner.config.forwarding_latency
        };
        let sw = self.clone();
        sim.schedule_in(delay, move |sim| sw.run_pipeline(sim, in_port, frame, 0));
    }

    fn run_pipeline(&self, sim: &mut Sim, in_port: u32, frame: Vec<u8>, start_table: u8) {
        // Resolve the pipeline outcome with a single borrow, then perform
        // I/O (which re-enters the switch via closures) without the borrow.
        enum Outcome {
            Deliver(Vec<u32>),
            Punt(u8),
            Drop,
        }
        let Ok(headers) = PacketHeaders::parse(&frame) else {
            self.inner.borrow_mut().stats.frames_dropped += 1;
            return;
        };
        let now = sim.now();
        let outcome = {
            let mut inner = self.inner.borrow_mut();
            let mut t = start_table;
            let mut outputs: Vec<u32> = Vec::new();
            let mut action_set: Vec<Action> = Vec::new();
            loop {
                let hit = inner.tables[usize::from(t)].lookup(in_port, &headers, frame.len(), now);
                match hit {
                    None => {
                        // Table miss: punt to the control plane (the
                        // testbed's switches are configured miss→controller,
                        // which is what lets DFI see every new flow).
                        break Outcome::Punt(t);
                    }
                    Some(entry) => {
                        let mut next_table = None;
                        for inst in &entry.instructions {
                            match inst {
                                Instruction::ApplyActions(actions) => {
                                    for a in actions {
                                        if let Action::Output { port, .. } = a {
                                            outputs.push(*port);
                                        }
                                    }
                                }
                                Instruction::WriteActions(actions) => {
                                    action_set.extend(actions.iter().cloned());
                                }
                                Instruction::ClearActions => action_set.clear(),
                                Instruction::GotoTable(n) => next_table = Some(*n),
                                Instruction::Other { .. } => {}
                            }
                        }
                        match next_table {
                            Some(n) if n > t && usize::from(n) < inner.tables.len() => t = n,
                            Some(_) | None => {
                                // Pipeline ends: execute the action set.
                                for a in &action_set {
                                    if let Action::Output { port, .. } = a {
                                        outputs.push(*port);
                                    }
                                }
                                if outputs.is_empty() {
                                    break Outcome::Drop;
                                }
                                break Outcome::Deliver(outputs);
                            }
                        }
                    }
                }
            }
        };
        match outcome {
            Outcome::Deliver(outputs) => {
                for out in outputs {
                    self.output(sim, in_port, out, &frame);
                }
            }
            Outcome::Punt(table_id) => self.punt_packet_in(sim, in_port, table_id, frame),
            Outcome::Drop => {
                self.inner.borrow_mut().stats.frames_dropped += 1;
            }
        }
    }

    fn output(&self, sim: &mut Sim, in_port: u32, out_port: u32, frame: &[u8]) {
        match out_port {
            port::FLOOD | port::ALL => {
                let mut targets: Vec<u32> = self
                    .inner
                    .borrow()
                    .ports
                    .keys()
                    .copied()
                    .filter(|&p| p != in_port)
                    .collect();
                // Flood in port order: the port map iterates in an
                // arbitrary per-instance order, and emission order decides
                // same-instant event ordering downstream — left unsorted it
                // makes same-seed runs diverge.
                targets.sort_unstable();
                // One shared copy of the payload; every port's delivery
                // closure holds a reference instead of its own clone.
                let shared: Rc<[u8]> = Rc::from(frame);
                for p in targets {
                    self.output_physical(sim, p, Rc::clone(&shared));
                }
            }
            port::IN_PORT => self.output_physical(sim, in_port, Rc::from(frame)),
            port::CONTROLLER => {
                self.punt_packet_in_reason(
                    sim,
                    in_port,
                    0,
                    frame.to_vec(),
                    dfi_openflow::PacketInReason::Action,
                );
            }
            port::TABLE => {
                // Re-submit through the pipeline (valid from packet-out).
                let sw = self.clone();
                let frame = frame.to_vec();
                sim.schedule_now(move |sim| sw.run_pipeline(sim, in_port, frame, 0));
            }
            p if p < port::MAX => self.output_physical(sim, p, Rc::from(frame)),
            _ => {}
        }
    }

    fn output_physical(&self, sim: &mut Sim, port_no: u32, frame: Rc<[u8]>) {
        let (peer, latency) = {
            let mut inner = self.inner.borrow_mut();
            match inner
                .ports
                .get(&port_no)
                .map(|p| (p.peer.clone(), p.latency))
            {
                Some(out) => {
                    inner.stats.frames_out += 1;
                    out
                }
                None => {
                    inner.stats.frames_dropped += 1;
                    return;
                }
            }
        };
        sim.schedule_in(latency, move |sim| peer(sim, &frame));
    }

    fn punt_packet_in(&self, sim: &mut Sim, in_port: u32, table_id: u8, frame: Vec<u8>) {
        self.punt_packet_in_reason(
            sim,
            in_port,
            table_id,
            frame,
            dfi_openflow::PacketInReason::NoMatch,
        );
    }

    fn punt_packet_in_reason(
        &self,
        sim: &mut Sim,
        in_port: u32,
        table_id: u8,
        frame: Vec<u8>,
        reason: dfi_openflow::PacketInReason,
    ) {
        let connected = self.inner.borrow().to_control.is_some();
        if !connected {
            self.inner.borrow_mut().stats.frames_dropped += 1;
            return;
        }
        self.inner.borrow_mut().stats.packet_ins += 1;
        let mut pi = PacketIn::table_miss(in_port, table_id, frame);
        pi.reason = reason;
        self.send_control(sim, Message::PacketIn(pi), None);
    }

    fn send_control(&self, sim: &mut Sim, body: Message, reply_xid: Option<u32>) {
        let (sink, latency, xid) = {
            let mut inner = self.inner.borrow_mut();
            let sink = match &inner.to_control {
                Some(s) => s.clone(),
                None => return,
            };
            let xid = reply_xid.unwrap_or_else(|| {
                inner.next_xid += 1;
                inner.next_xid
            });
            (sink, inner.config.control_latency, xid)
        };
        let bytes = OfMessage::new(xid, body).encode();
        sim.schedule_in(latency, move |sim| sink(sim, &bytes));
    }

    /// Handles bytes arriving from the control plane (may contain several
    /// framed OpenFlow messages).
    pub fn handle_control_bytes(&self, sim: &mut Sim, bytes: &[u8]) {
        let mut offset = 0;
        while offset < bytes.len() {
            let Some(len) = OfMessage::frame_length(&bytes[offset..]) else {
                break;
            };
            if len < 8 || offset + len > bytes.len() {
                break;
            }
            match OfMessage::decode(&bytes[offset..offset + len]) {
                Ok(msg) => self.handle_control_message(sim, msg),
                Err(_) => {
                    let offending = bytes[offset..offset + len.min(64)].to_vec();
                    self.send_control(
                        sim,
                        Message::Error(ErrorMsg {
                            err_type: 1, // OFPET_BAD_REQUEST
                            code: 1,     // OFPBRC_BAD_TYPE
                            data: offending,
                        }),
                        None,
                    );
                    self.inner.borrow_mut().stats.errors += 1;
                }
            }
            offset += len;
        }
    }

    fn handle_control_message(&self, sim: &mut Sim, msg: OfMessage) {
        let xid = msg.xid;
        match msg.body {
            Message::Hello => {} // handshake complete
            Message::EchoRequest(data) => {
                self.send_control(sim, Message::EchoReply(data), Some(xid));
            }
            Message::FeaturesRequest => {
                let (dpid, n_tables) = {
                    let inner = self.inner.borrow();
                    (inner.config.dpid, inner.config.n_tables)
                };
                let reply = FeaturesReply {
                    datapath_id: dpid,
                    n_buffers: 0, // we never buffer; packet-ins carry data
                    n_tables,
                    auxiliary_id: 0,
                    capabilities: 0x1 | 0x2 | 0x4, // FLOW_STATS|TABLE_STATS|PORT_STATS
                };
                self.send_control(sim, Message::FeaturesReply(reply), Some(xid));
            }
            Message::BarrierRequest => {
                self.send_control(sim, Message::BarrierReply, Some(xid));
            }
            Message::FlowMod(fm) => self.apply_flow_mod(sim, &fm),
            Message::PacketOut(po) => self.apply_packet_out(sim, &po),
            Message::MultipartRequest(req) => self.answer_multipart(sim, req, xid),
            // Messages a switch does not expect are ignored (a real OVS
            // would error; silence keeps adversarial-controller tests tidy).
            _ => {}
        }
    }

    fn apply_flow_mod(&self, sim: &mut Sim, fm: &FlowMod) {
        let now = sim.now();
        let mut removed: Vec<(u8, crate::flow_table::FlowEntry)> = Vec::new();
        let mut table_full = false;
        {
            let mut inner = self.inner.borrow_mut();
            inner.stats.flow_mods += 1;
            let n = inner.tables.len();
            let targets: Vec<usize> = if fm.table_id == table::ALL {
                (0..n).collect()
            } else if usize::from(fm.table_id) < n {
                vec![usize::from(fm.table_id)]
            } else {
                vec![]
            };
            match fm.command {
                FlowModCommand::Add => {
                    if let Some(&t) = targets.first() {
                        if inner.tables[t].add(fm, now).is_err() {
                            table_full = true;
                        }
                    }
                }
                FlowModCommand::Modify => {
                    for t in targets {
                        inner.tables[t].modify(fm, false);
                    }
                }
                FlowModCommand::ModifyStrict => {
                    for t in targets {
                        inner.tables[t].modify(fm, true);
                    }
                }
                FlowModCommand::Delete => {
                    for t in targets {
                        for e in inner.tables[t].delete(fm) {
                            removed.push((t as u8, e));
                        }
                    }
                }
                FlowModCommand::DeleteStrict => {
                    for t in targets {
                        for e in inner.tables[t].delete_strict(fm) {
                            removed.push((t as u8, e));
                        }
                    }
                }
            }
        }
        if table_full {
            self.inner.borrow_mut().stats.errors += 1;
            self.send_control(
                sim,
                Message::Error(ErrorMsg {
                    err_type: 5, // OFPET_FLOW_MOD_FAILED
                    code: 0,     // OFPFMFC_TABLE_FULL
                    data: Vec::new(),
                }),
                None,
            );
        }
        let now = sim.now();
        for (table_id, e) in removed {
            if e.flags & FLAG_SEND_FLOW_REM != 0 {
                self.send_flow_removed(sim, table_id, &e, FlowRemovedReason::Delete, now);
            }
        }
        self.reschedule_sweep(sim);
    }

    fn send_flow_removed(
        &self,
        sim: &mut Sim,
        table_id: u8,
        e: &crate::flow_table::FlowEntry,
        reason: FlowRemovedReason,
        now: SimTime,
    ) {
        let dur = now - e.installed_at;
        let fr = FlowRemoved {
            cookie: e.cookie,
            priority: e.priority,
            reason,
            table_id,
            duration_sec: dur.as_secs() as u32,
            duration_nsec: dur.subsec_nanos(),
            idle_timeout: e.idle_timeout,
            hard_timeout: e.hard_timeout,
            packet_count: e.packet_count,
            byte_count: e.byte_count,
            mat: e.mat.clone(),
        };
        self.send_control(sim, Message::FlowRemoved(fr), None);
    }

    fn reschedule_sweep(&self, sim: &mut Sim) {
        let deadline = {
            let inner = self.inner.borrow();
            inner
                .tables
                .iter()
                .filter_map(FlowTable::next_deadline)
                .min()
        };
        let Some(deadline) = deadline else { return };
        {
            let mut inner = self.inner.borrow_mut();
            if inner.next_sweep.is_some_and(|t| t <= deadline) {
                return; // an earlier-or-equal sweep is already scheduled
            }
            inner.next_sweep = Some(deadline);
        }
        let sw = self.clone();
        sim.schedule_at(deadline, move |sim| sw.run_sweep(sim));
    }

    fn run_sweep(&self, sim: &mut Sim) {
        let now = sim.now();
        let mut expired: Vec<(u8, crate::flow_table::FlowEntry, ExpiryKind)> = Vec::new();
        {
            let mut inner = self.inner.borrow_mut();
            inner.next_sweep = None;
            for (t, table) in inner.tables.iter_mut().enumerate() {
                for (e, kind) in table.sweep_expired(now) {
                    expired.push((t as u8, e, kind));
                }
            }
        }
        for (table_id, e, kind) in expired {
            if e.flags & FLAG_SEND_FLOW_REM != 0 {
                let reason = match kind {
                    ExpiryKind::Idle => FlowRemovedReason::IdleTimeout,
                    ExpiryKind::Hard => FlowRemovedReason::HardTimeout,
                };
                self.send_flow_removed(sim, table_id, &e, reason, now);
            }
        }
        self.reschedule_sweep(sim);
    }

    fn apply_packet_out(&self, sim: &mut Sim, po: &PacketOut) {
        let in_port = if po.in_port >= port::MAX {
            0
        } else {
            po.in_port
        };
        for a in &po.actions {
            if let Action::Output { port, .. } = a {
                self.output(sim, in_port, *port, &po.data);
            }
        }
    }

    fn answer_multipart(&self, sim: &mut Sim, req: MultipartRequest, xid: u32) {
        let reply = {
            let inner = self.inner.borrow();
            match req {
                MultipartRequest::Flow {
                    table_id,
                    out_port,
                    out_group: _,
                    cookie,
                    cookie_mask,
                    mat,
                } => {
                    let now_entries: Vec<FlowStatsEntry> = inner
                        .tables
                        .iter()
                        .enumerate()
                        .filter(|(t, _)| table_id == table::ALL || *t == usize::from(table_id))
                        .flat_map(|(t, tbl)| {
                            tbl.iter()
                                .filter(|e| {
                                    e.mat.is_subset_of(&mat)
                                        && (cookie_mask == 0
                                            || (e.cookie & cookie_mask) == (cookie & cookie_mask))
                                        && (out_port == port::ANY || {
                                            e.instructions.iter().any(|i| match i {
                                                Instruction::ApplyActions(actions)
                                                | Instruction::WriteActions(actions) => {
                                                    actions.iter().any(|a| {
                                                        matches!(a, Action::Output { port: p, .. } if *p == out_port)
                                                    })
                                                }
                                                _ => false,
                                            })
                                        })
                                })
                                .map(move |e| FlowStatsEntry {
                                    table_id: t as u8,
                                    duration_sec: 0,
                                    duration_nsec: 0,
                                    priority: e.priority,
                                    idle_timeout: e.idle_timeout,
                                    hard_timeout: e.hard_timeout,
                                    flags: e.flags,
                                    cookie: e.cookie,
                                    packet_count: e.packet_count,
                                    byte_count: e.byte_count,
                                    mat: e.mat.clone(),
                                    instructions: e.instructions.clone(),
                                })
                                .collect::<Vec<_>>()
                        })
                        .collect();
                    MultipartReply::Flow(now_entries)
                }
                MultipartRequest::Table => MultipartReply::Table(
                    inner
                        .tables
                        .iter()
                        .enumerate()
                        .map(|(t, tbl)| TableStatsEntry {
                            table_id: t as u8,
                            active_count: tbl.len() as u32,
                            lookup_count: tbl.lookup_count,
                            matched_count: tbl.matched_count,
                        })
                        .collect(),
                ),
                MultipartRequest::PortDesc => {
                    let mut ports: Vec<u32> = inner.ports.keys().copied().collect();
                    ports.sort_unstable();
                    MultipartReply::PortDesc(
                        ports
                            .into_iter()
                            .map(|p| dfi_openflow::PortDescEntry {
                                port_no: p,
                                hw_addr: [0x02, 0xFE, 0, 0, 0, p as u8],
                                name: format!("port{p}"),
                            })
                            .collect(),
                    )
                }
                MultipartRequest::Other { kind, .. } => MultipartReply::Other {
                    kind,
                    body: Vec::new(),
                },
            }
        };
        self.send_control(sim, Message::MultipartReply(reply), Some(xid));
    }

    /// Installs a flow-mod directly (bypassing the control channel); used
    /// by tests and by in-process harnesses that do not need wire fidelity.
    pub fn install(&self, sim: &mut Sim, fm: &FlowMod) {
        self.apply_flow_mod(sim, fm);
    }

    /// A convenience accessor: every cookie currently installed in table 0
    /// (DFI's table), for consistency assertions in tests.
    #[must_use]
    pub fn table0_cookies(&self) -> Vec<u64> {
        self.inner.borrow().tables[0]
            .iter()
            .map(|e| e.cookie)
            .collect()
    }
}

/// Builds the exact-match *allow* rule DFI installs: match the flow
/// precisely, tag with the policy cookie, and hand allowed packets to the
/// controller's first table.
#[must_use]
pub fn dfi_allow_rule(mat: Match, cookie: u64, priority: u16) -> FlowMod {
    FlowMod {
        cookie,
        priority,
        table_id: 0,
        instructions: vec![Instruction::GotoTable(1)],
        ..FlowMod::add()
    }
    .with_match(mat)
}

/// Builds the exact-match *deny* rule DFI installs: match precisely, no
/// instructions — the packet dies at the end of Table 0.
#[must_use]
pub fn dfi_deny_rule(mat: Match, cookie: u64, priority: u16) -> FlowMod {
    FlowMod {
        cookie,
        priority,
        table_id: 0,
        instructions: vec![],
        ..FlowMod::add()
    }
    .with_match(mat)
}

/// Small builder helper for [`FlowMod`].
trait WithMatch {
    fn with_match(self, mat: Match) -> Self;
}

impl WithMatch for FlowMod {
    fn with_match(mut self, mat: Match) -> Self {
        self.mat = mat;
        self
    }
}
