//! Property-based tests for the flow table: the exact-match index must be
//! behaviorally indistinguishable from a naive priority-ordered scan.

use dfi_dataplane::{FlowEntry, FlowTable};
use dfi_openflow::{Action, FlowMod, FlowModCommand, Instruction, Match};
use dfi_packet::headers::build;
use dfi_packet::{MacAddr, PacketHeaders};
use dfi_simnet::SimTime;
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// The universe is kept tiny so random rules and random packets actually
/// collide: 3 MACs, 3 IPs, 3 ports.
fn mac(i: u8) -> MacAddr {
    MacAddr::from_index(u32::from(i))
}

fn ip(i: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, i + 1)
}

#[derive(Clone, Debug)]
struct Pkt {
    in_port: u32,
    smac: u8,
    dmac: u8,
    sip: u8,
    dip: u8,
    sport: u16,
    dport: u16,
}

fn arb_pkt() -> impl Strategy<Value = Pkt> {
    (1u32..3, 0u8..3, 0u8..3, 0u8..3, 0u8..3, 1u16..4, 1u16..4).prop_map(
        |(in_port, smac, dmac, sip, dip, sport, dport)| Pkt {
            in_port,
            smac,
            dmac,
            sip,
            dip,
            sport,
            dport,
        },
    )
}

fn headers_of(p: &Pkt) -> PacketHeaders {
    let bytes = build::tcp_syn(
        mac(p.smac),
        mac(p.dmac),
        ip(p.sip),
        ip(p.dip),
        p.sport,
        p.dport,
    );
    PacketHeaders::parse(&bytes).unwrap()
}

/// A rule is either the canonical exact match of some packet, or a random
/// wildcard combination.
#[derive(Clone, Debug)]
enum RuleShape {
    Exact(Pkt),
    Wild {
        eth_dst: Option<u8>,
        ip_proto: bool,
        dport: Option<u16>,
    },
}

fn arb_rule() -> impl Strategy<Value = (RuleShape, u16, u64)> {
    let shape = prop_oneof![
        arb_pkt().prop_map(RuleShape::Exact),
        (
            proptest::option::of(0u8..3),
            any::<bool>(),
            proptest::option::of(1u16..4)
        )
            .prop_map(|(eth_dst, ip_proto, dport)| RuleShape::Wild {
                eth_dst,
                ip_proto,
                dport
            }),
    ];
    (shape, 1u16..5, 1u64..1000)
}

fn to_flow_mod(shape: &RuleShape, priority: u16, cookie: u64) -> FlowMod {
    let mat = match shape {
        RuleShape::Exact(p) => Match::exact_from_headers(p.in_port, &headers_of(p)),
        RuleShape::Wild {
            eth_dst,
            ip_proto,
            dport,
        } => Match {
            eth_dst: eth_dst.map(mac),
            eth_type: ip_proto.then_some(0x0800),
            ip_proto: ip_proto.then_some(6),
            tcp_dst: *dport,
            ..Match::default()
        },
    };
    FlowMod {
        priority,
        cookie,
        mat,
        instructions: vec![Instruction::ApplyActions(vec![Action::output(1)])],
        ..FlowMod::add()
    }
}

/// Reference implementation: a plain priority-ordered scan.
fn reference_lookup<'a>(
    entries: &'a [FlowEntry],
    in_port: u32,
    h: &PacketHeaders,
) -> Option<&'a FlowEntry> {
    entries.iter().find(|e| e.mat.matches(in_port, h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The indexed lookup matches the naive scan for every packet, for any
    /// rule population with distinct (match, priority) pairs.
    #[test]
    fn indexed_lookup_equals_reference_scan(
        rules in proptest::collection::vec(arb_rule(), 0..24),
        pkts in proptest::collection::vec(arb_pkt(), 1..16),
    ) {
        let mut table = FlowTable::new(10_000);
        for (shape, priority, cookie) in &rules {
            let fm = to_flow_mod(shape, *priority, *cookie);
            let _ = table.add(&fm, SimTime::ZERO);
        }
        // Snapshot in precedence order for the reference implementation.
        let snapshot: Vec<FlowEntry> = table.iter().cloned().collect();
        for pkt in &pkts {
            let h = headers_of(pkt);
            let expected = reference_lookup(&snapshot, pkt.in_port, &h)
                .map(|e| (e.priority, e.cookie, e.mat.clone()));
            let got = table
                .lookup(pkt.in_port, &h, 64, SimTime::ZERO)
                .map(|e| (e.priority, e.cookie, e.mat));
            // When several same-priority rules match, OpenFlow leaves the
            // winner undefined; we require agreement on (priority, whether
            // matched) and that the returned rule genuinely matches.
            match (&expected, &got) {
                (None, None) => {}
                (Some(e), Some(g)) => {
                    prop_assert_eq!(e.0, g.0, "different winning priority");
                    prop_assert!(g.2.matches(pkt.in_port, &h));
                }
                _ => prop_assert!(false, "index/scan disagree on match existence: {expected:?} vs {got:?}"),
            }
        }
    }

    /// delete-by-cookie removes exactly the rules with that cookie, no
    /// matter which internal structure held them.
    #[test]
    fn delete_by_cookie_is_exact(
        rules in proptest::collection::vec(arb_rule(), 1..24),
        victim in 1u64..1000,
    ) {
        let mut table = FlowTable::new(10_000);
        for (shape, priority, cookie) in &rules {
            let _ = table.add(&to_flow_mod(shape, *priority, *cookie), SimTime::ZERO);
        }
        let before: Vec<u64> = table.iter().map(|e| e.cookie).collect();
        let removed = table.delete(&FlowMod::delete_by_cookie(victim, u64::MAX));
        prop_assert!(removed.iter().all(|e| e.cookie == victim));
        let after: Vec<u64> = table.iter().map(|e| e.cookie).collect();
        prop_assert!(after.iter().all(|&c| c != victim));
        prop_assert_eq!(before.len(), after.len() + removed.len());
    }

    /// len() always equals the number of iterated entries, and iteration
    /// is priority-sorted.
    #[test]
    fn invariants_hold_after_mixed_operations(
        rules in proptest::collection::vec(arb_rule(), 0..24),
        delete_priority in 1u16..5,
    ) {
        let mut table = FlowTable::new(10_000);
        for (shape, priority, cookie) in &rules {
            let _ = table.add(&to_flow_mod(shape, *priority, *cookie), SimTime::ZERO);
        }
        // Strict-delete one priority band via an arbitrary rule shape.
        if let Some((shape, _, cookie)) = rules.first() {
            let mut fm = to_flow_mod(shape, delete_priority, *cookie);
            fm.command = FlowModCommand::DeleteStrict;
            fm.cookie_mask = 0;
            let _ = table.delete_strict(&fm);
        }
        let collected: Vec<u16> = table.iter().map(|e| e.priority).collect();
        prop_assert_eq!(collected.len(), table.len());
        for w in collected.windows(2) {
            prop_assert!(w[0] >= w[1], "iteration not priority-ordered: {collected:?}");
        }
    }
}
