//! Behavioral tests for the OpenFlow switch: pipeline semantics, the
//! control channel, timeouts, and statistics.

use dfi_dataplane::{dfi_allow_rule, dfi_deny_rule, Network, Switch, SwitchConfig};
use dfi_openflow::{
    port, Action, FlowMod, FlowModCommand, Instruction, Match, Message, MultipartReply,
    MultipartRequest, OfMessage, PacketOut, FLAG_SEND_FLOW_REM,
};
use dfi_packet::headers::build;
use dfi_packet::MacAddr;
use dfi_simnet::{Sim, SimTime};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;
use std::time::Duration;

const LAT: Duration = Duration::from_micros(50);

fn mac(i: u32) -> MacAddr {
    MacAddr::from_index(i)
}

fn ip(i: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, i)
}

fn syn_frame(src: u32, dst: u32, dport: u16) -> Vec<u8> {
    build::tcp_syn(
        mac(src),
        mac(dst),
        ip(src as u8),
        ip(dst as u8),
        50_000,
        dport,
    )
}

/// A test harness: one switch, two recorded host ports, a recorded control
/// channel.
struct Rig {
    sim: Sim,
    sw: Switch,
    tx1: dfi_dataplane::Tx,
    rx1: Rc<RefCell<Vec<Vec<u8>>>>,
    rx2: Rc<RefCell<Vec<Vec<u8>>>>,
    control_rx: Rc<RefCell<Vec<OfMessage>>>,
    to_switch: dfi_dataplane::ByteSink,
}

fn rig() -> Rig {
    let mut sim = Sim::new(7);
    let mut net = Network::new();
    let sw = net.add_switch(SwitchConfig::new(0xD1));
    let rx1 = Rc::new(RefCell::new(Vec::new()));
    let rx2 = Rc::new(RefCell::new(Vec::new()));
    let r1 = rx1.clone();
    let r2 = rx2.clone();
    let tx1 = net.attach_host(
        &sw,
        1,
        LAT,
        Rc::new(move |_, f| r1.borrow_mut().push(f.to_vec())),
    );
    let _tx2 = net.attach_host(
        &sw,
        2,
        LAT,
        Rc::new(move |_, f| r2.borrow_mut().push(f.to_vec())),
    );
    let control_rx = Rc::new(RefCell::new(Vec::new()));
    let c = control_rx.clone();
    sw.connect_control(
        &mut sim,
        Rc::new(move |_, bytes: &[u8]| {
            c.borrow_mut().push(OfMessage::decode(bytes).unwrap());
        }),
    );
    let to_switch = sw.control_ingress();
    Rig {
        sim,
        sw,
        tx1,
        rx1,
        rx2,
        control_rx,
        to_switch,
    }
}

fn send_msg(rig: &mut Rig, body: Message) {
    let bytes = OfMessage::new(99, body).encode();
    (rig.to_switch)(&mut rig.sim, &bytes);
}

fn control_msgs(rig: &Rig) -> Vec<Message> {
    rig.control_rx
        .borrow()
        .iter()
        .map(|m| m.body.clone())
        .collect()
}

#[test]
fn switch_says_hello_on_connect() {
    let mut r = rig();
    r.sim.run();
    assert!(matches!(control_msgs(&r)[0], Message::Hello));
}

#[test]
fn table_miss_punts_packet_in_with_port_and_data() {
    let mut r = rig();
    let frame = syn_frame(1, 2, 445);
    r.tx1.send(&mut r.sim, frame.clone());
    r.sim.run();
    let msgs = control_msgs(&r);
    let pi = msgs
        .iter()
        .find_map(|m| match m {
            Message::PacketIn(pi) => Some(pi.clone()),
            _ => None,
        })
        .expect("packet-in");
    assert_eq!(pi.in_port(), Some(1));
    assert_eq!(pi.table_id, 0);
    assert_eq!(pi.data, frame);
    assert_eq!(r.sw.stats().packet_ins, 1);
}

#[test]
fn allow_rule_chains_to_controller_table_then_forwards() {
    let mut r = rig();
    // DFI allow in table 0, forwarding rule in table 1.
    r.sw.install(&mut r.sim, &dfi_allow_rule(Match::any(), 0xA, 100));
    let fwd = FlowMod {
        table_id: 1,
        priority: 10,
        instructions: vec![Instruction::ApplyActions(vec![Action::output(2)])],
        ..FlowMod::add()
    };
    r.sw.install(&mut r.sim, &fwd);
    let frame = syn_frame(1, 2, 80);
    r.tx1.send(&mut r.sim, frame.clone());
    r.sim.run();
    assert_eq!(r.rx2.borrow().len(), 1, "delivered out port 2");
    assert_eq!(r.rx2.borrow()[0], frame);
    assert_eq!(r.rx1.borrow().len(), 0);
    assert_eq!(r.sw.stats().packet_ins, 0);
}

#[test]
fn deny_rule_drops_before_controller_tables() {
    let mut r = rig();
    r.sw.install(&mut r.sim, &dfi_deny_rule(Match::any(), 0xD, 100));
    // Even with a forwarding rule in table 1, the packet must die in 0.
    let fwd = FlowMod {
        table_id: 1,
        priority: 10,
        instructions: vec![Instruction::ApplyActions(vec![Action::output(2)])],
        ..FlowMod::add()
    };
    r.sw.install(&mut r.sim, &fwd);
    r.tx1.send(&mut r.sim, syn_frame(1, 2, 445));
    r.sim.run();
    assert_eq!(r.rx2.borrow().len(), 0);
    assert_eq!(
        r.sw.stats().packet_ins,
        0,
        "denied flows never reach control"
    );
    assert_eq!(r.sw.stats().frames_dropped, 1);
}

#[test]
fn miss_in_controller_table_punts_with_that_table_id() {
    let mut r = rig();
    r.sw.install(&mut r.sim, &dfi_allow_rule(Match::any(), 0xA, 100));
    r.tx1.send(&mut r.sim, syn_frame(1, 2, 80));
    r.sim.run();
    let msgs = control_msgs(&r);
    let pi = msgs
        .iter()
        .find_map(|m| match m {
            Message::PacketIn(pi) => Some(pi),
            _ => None,
        })
        .expect("packet-in from table 1 miss");
    assert_eq!(pi.table_id, 1);
}

#[test]
fn higher_priority_deny_beats_allow() {
    let mut r = rig();
    r.sw.install(&mut r.sim, &dfi_allow_rule(Match::any(), 0xA, 10));
    let deny = dfi_deny_rule(
        Match {
            eth_type: Some(0x0800),
            ip_proto: Some(6),
            tcp_dst: Some(445),
            ..Match::default()
        },
        0xD,
        100,
    );
    r.sw.install(&mut r.sim, &deny);
    let fwd = FlowMod {
        table_id: 1,
        priority: 1,
        instructions: vec![Instruction::ApplyActions(vec![Action::output(2)])],
        ..FlowMod::add()
    };
    r.sw.install(&mut r.sim, &fwd);
    r.tx1.send(&mut r.sim, syn_frame(1, 2, 445)); // denied
    r.tx1.send(&mut r.sim, syn_frame(1, 2, 80)); // allowed
    r.sim.run();
    assert_eq!(r.rx2.borrow().len(), 1);
}

#[test]
fn delete_by_cookie_flushes_only_that_policy() {
    let mut r = rig();
    let m1 = Match {
        tcp_dst: Some(445),
        ..Match::default()
    };
    let m2 = Match {
        tcp_dst: Some(80),
        ..Match::default()
    };
    r.sw.install(&mut r.sim, &dfi_allow_rule(m1, 0xAAAA, 100));
    r.sw.install(&mut r.sim, &dfi_allow_rule(m2, 0xBBBB, 100));
    assert_eq!(r.sw.table_len(0), 2);
    r.sw.install(&mut r.sim, &FlowMod::delete_by_cookie(0xAAAA, u64::MAX));
    r.sim.run();
    assert_eq!(r.sw.table0_cookies(), vec![0xBBBB]);
}

#[test]
fn flow_removed_sent_on_delete_when_flagged() {
    let mut r = rig();
    let mut fm = dfi_allow_rule(Match::any(), 0xF1, 5);
    fm.flags = FLAG_SEND_FLOW_REM;
    r.sw.install(&mut r.sim, &fm);
    r.sw.install(&mut r.sim, &FlowMod::delete_by_cookie(0xF1, u64::MAX));
    r.sim.run();
    let msgs = control_msgs(&r);
    let fr = msgs
        .iter()
        .find_map(|m| match m {
            Message::FlowRemoved(fr) => Some(fr),
            _ => None,
        })
        .expect("flow-removed");
    assert_eq!(fr.cookie, 0xF1);
    assert_eq!(fr.reason, dfi_openflow::FlowRemovedReason::Delete);
}

#[test]
fn no_flow_removed_without_flag() {
    let mut r = rig();
    r.sw.install(&mut r.sim, &dfi_allow_rule(Match::any(), 0xF1, 5));
    r.sw.install(&mut r.sim, &FlowMod::delete_by_cookie(0xF1, u64::MAX));
    r.sim.run();
    assert!(!control_msgs(&r)
        .iter()
        .any(|m| matches!(m, Message::FlowRemoved(_))));
}

#[test]
fn hard_timeout_removes_rule_and_notifies() {
    let mut r = rig();
    let mut fm = dfi_allow_rule(Match::any(), 0x77, 5);
    fm.hard_timeout = 3;
    fm.flags = FLAG_SEND_FLOW_REM;
    r.sw.install(&mut r.sim, &fm);
    assert_eq!(r.sw.table_len(0), 1);
    r.sim.run();
    assert!(r.sim.now() >= SimTime::from_secs(3));
    assert_eq!(r.sw.table_len(0), 0);
    let msgs = control_msgs(&r);
    assert!(msgs.iter().any(|m| matches!(
        m,
        Message::FlowRemoved(fr) if fr.reason == dfi_openflow::FlowRemovedReason::HardTimeout
    )));
}

#[test]
fn idle_timeout_extends_while_traffic_flows() {
    let mut r = rig();
    let mut fm = dfi_allow_rule(Match::any(), 0x88, 5);
    fm.idle_timeout = 2;
    r.sw.install(&mut r.sim, &fm);
    // Keep the rule warm with a packet each second for 3 seconds.
    for s in 1..=3u64 {
        let tx = r.tx1.clone();
        r.sim.schedule_at(SimTime::from_secs(s), move |sim| {
            tx.send(sim, syn_frame(1, 2, 80));
        });
    }
    r.sim.run_until(SimTime::from_secs(4));
    assert_eq!(r.sw.table_len(0), 1, "still warm at t=4");
    r.sim.run();
    assert_eq!(r.sw.table_len(0), 0, "expired after quiet period");
}

#[test]
fn table_full_reports_error() {
    let mut r = {
        let mut sim = Sim::new(1);
        let mut net = Network::new();
        let mut cfg = SwitchConfig::new(0xD2);
        cfg.table_capacity = 1;
        let sw = net.add_switch(cfg);
        let control_rx = Rc::new(RefCell::new(Vec::new()));
        let c = control_rx.clone();
        sw.connect_control(
            &mut sim,
            Rc::new(move |_, bytes: &[u8]| {
                c.borrow_mut().push(OfMessage::decode(bytes).unwrap());
            }),
        );
        let to_switch = sw.control_ingress();
        Rig {
            sim,
            sw,
            tx1: {
                // dummy tx, not used
                let mut net2 = Network::new();
                let sw2 = net2.add_switch(SwitchConfig::new(9));
                net2.attach_silent_host(&sw2, 1, LAT)
            },
            rx1: Rc::new(RefCell::new(Vec::new())),
            rx2: Rc::new(RefCell::new(Vec::new())),
            control_rx,
            to_switch,
        }
    };
    let m1 = Match {
        tcp_dst: Some(1),
        ..Match::default()
    };
    let m2 = Match {
        tcp_dst: Some(2),
        ..Match::default()
    };
    r.sw.install(&mut r.sim, &dfi_allow_rule(m1, 1, 1));
    r.sw.install(&mut r.sim, &dfi_allow_rule(m2, 2, 1));
    r.sim.run();
    assert_eq!(r.sw.table_len(0), 1);
    let msgs = control_msgs(&r);
    assert!(msgs.iter().any(|m| matches!(
        m,
        Message::Error(e) if e.err_type == 5 && e.code == 0
    )));
}

#[test]
fn echo_features_and_barrier_are_answered() {
    let mut r = rig();
    send_msg(&mut r, Message::EchoRequest(b"hi".to_vec()));
    send_msg(&mut r, Message::FeaturesRequest);
    send_msg(&mut r, Message::BarrierRequest);
    r.sim.run();
    let msgs = control_msgs(&r);
    assert!(msgs
        .iter()
        .any(|m| matches!(m, Message::EchoReply(d) if d == b"hi")));
    assert!(msgs.iter().any(|m| matches!(
        m,
        Message::FeaturesReply(fr) if fr.datapath_id == 0xD1 && fr.n_tables == 8
    )));
    assert!(msgs.iter().any(|m| matches!(m, Message::BarrierReply)));
}

#[test]
fn packet_out_to_port_and_flood() {
    let mut r = rig();
    let frame = syn_frame(9, 2, 80);
    send_msg(
        &mut r,
        Message::PacketOut(PacketOut::send(2, frame.clone())),
    );
    r.sim.run();
    assert_eq!(r.rx2.borrow().len(), 1);
    // Flood from in_port 1: only port 2 receives.
    let po = PacketOut {
        buffer_id: dfi_openflow::NO_BUFFER,
        in_port: 1,
        actions: vec![Action::output(port::FLOOD)],
        data: frame,
    };
    send_msg(&mut r, Message::PacketOut(po));
    r.sim.run();
    assert_eq!(r.rx1.borrow().len(), 0);
    assert_eq!(r.rx2.borrow().len(), 2);
}

#[test]
fn packet_out_to_table_runs_pipeline() {
    let mut r = rig();
    r.sw.install(&mut r.sim, &dfi_allow_rule(Match::any(), 0xA, 100));
    let fwd = FlowMod {
        table_id: 1,
        priority: 10,
        instructions: vec![Instruction::ApplyActions(vec![Action::output(2)])],
        ..FlowMod::add()
    };
    r.sw.install(&mut r.sim, &fwd);
    let frame = syn_frame(1, 2, 80);
    let po = PacketOut {
        buffer_id: dfi_openflow::NO_BUFFER,
        in_port: port::CONTROLLER,
        actions: vec![Action::output(port::TABLE)],
        data: frame.clone(),
    };
    send_msg(&mut r, Message::PacketOut(po));
    r.sim.run();
    assert_eq!(r.rx2.borrow().len(), 1);
    assert_eq!(r.rx2.borrow()[0], frame);
}

#[test]
fn flow_stats_filter_by_cookie() {
    let mut r = rig();
    let m1 = Match {
        tcp_dst: Some(1),
        ..Match::default()
    };
    let m2 = Match {
        tcp_dst: Some(2),
        ..Match::default()
    };
    r.sw.install(&mut r.sim, &dfi_allow_rule(m1, 0xAA, 1));
    r.sw.install(&mut r.sim, &dfi_allow_rule(m2, 0xBB, 1));
    send_msg(
        &mut r,
        Message::MultipartRequest(MultipartRequest::Flow {
            table_id: dfi_openflow::table::ALL,
            out_port: port::ANY,
            out_group: dfi_openflow::group::ANY,
            cookie: 0xAA,
            cookie_mask: u64::MAX,
            mat: Match::any(),
        }),
    );
    r.sim.run();
    let msgs = control_msgs(&r);
    let entries = msgs
        .iter()
        .find_map(|m| match m {
            Message::MultipartReply(MultipartReply::Flow(e)) => Some(e.clone()),
            _ => None,
        })
        .expect("flow stats reply");
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].cookie, 0xAA);
}

#[test]
fn table_stats_report_lookups_and_active_counts() {
    let mut r = rig();
    r.sw.install(&mut r.sim, &dfi_allow_rule(Match::any(), 1, 1));
    r.tx1.send(&mut r.sim, syn_frame(1, 2, 80)); // hits table 0, misses 1
    r.sim.run();
    send_msg(&mut r, Message::MultipartRequest(MultipartRequest::Table));
    r.sim.run();
    let msgs = control_msgs(&r);
    let entries = msgs
        .iter()
        .find_map(|m| match m {
            Message::MultipartReply(MultipartReply::Table(e)) => Some(e.clone()),
            _ => None,
        })
        .expect("table stats reply");
    assert_eq!(entries[0].active_count, 1);
    assert_eq!(entries[0].lookup_count, 1);
    assert_eq!(entries[0].matched_count, 1);
    assert_eq!(entries[1].lookup_count, 1);
    assert_eq!(entries[1].matched_count, 0);
}

#[test]
fn two_switch_line_delivers_end_to_end() {
    let mut sim = Sim::new(3);
    let mut net = Network::new();
    let s1 = net.add_switch(SwitchConfig::new(1));
    let s2 = net.add_switch(SwitchConfig::new(2));
    net.link(&s1, 10, &s2, 10, LAT);
    let got = Rc::new(RefCell::new(Vec::new()));
    let g = got.clone();
    let tx = net.attach_host(&s1, 1, LAT, Rc::new(|_, _| {}));
    let _rx = net.attach_host(
        &s2,
        1,
        LAT,
        Rc::new(move |_, f| g.borrow_mut().push(f.to_vec())),
    );
    // Static forwarding: s1 sends everything to s2; s2 to its host.
    let fwd1 = FlowMod {
        priority: 1,
        instructions: vec![Instruction::ApplyActions(vec![Action::output(10)])],
        ..FlowMod::add()
    };
    let fwd2 = FlowMod {
        priority: 1,
        instructions: vec![Instruction::ApplyActions(vec![Action::output(1)])],
        ..FlowMod::add()
    };
    s1.install(&mut sim, &fwd1);
    s2.install(&mut sim, &fwd2);
    let frame = syn_frame(1, 2, 80);
    tx.send(&mut sim, frame.clone());
    sim.run();
    assert_eq!(got.borrow().len(), 1);
    assert_eq!(got.borrow()[0], frame);
    // Latency sanity: 3 hops of wire + 2 switch pipelines.
    assert!(sim.now() >= SimTime::from_micros(150));
}

#[test]
fn unparseable_frame_dropped_not_punted() {
    let mut r = rig();
    r.tx1.send(&mut r.sim, vec![1, 2, 3]); // not a valid Ethernet frame
    r.sim.run();
    assert_eq!(r.sw.stats().packet_ins, 0);
    assert_eq!(r.sw.stats().frames_dropped, 1);
}

#[test]
fn write_actions_execute_at_pipeline_end() {
    let mut r = rig();
    let fm = FlowMod {
        table_id: 0,
        priority: 1,
        instructions: vec![
            Instruction::WriteActions(vec![Action::output(2)]),
            Instruction::GotoTable(1),
        ],
        ..FlowMod::add()
    };
    r.sw.install(&mut r.sim, &fm);
    let fm1 = FlowMod {
        table_id: 1,
        priority: 1,
        instructions: vec![], // end of pipeline; action set should fire
        ..FlowMod::add()
    };
    r.sw.install(&mut r.sim, &fm1);
    r.tx1.send(&mut r.sim, syn_frame(1, 2, 80));
    r.sim.run();
    assert_eq!(r.rx2.borrow().len(), 1);
}

#[test]
fn modify_changes_forwarding() {
    let mut r = rig();
    let fm = FlowMod {
        table_id: 0,
        priority: 1,
        instructions: vec![Instruction::ApplyActions(vec![Action::output(2)])],
        ..FlowMod::add()
    };
    r.sw.install(&mut r.sim, &fm.clone());
    r.tx1.send(&mut r.sim, syn_frame(1, 2, 80));
    r.sim.run();
    assert_eq!(r.rx2.borrow().len(), 1);
    // Modify to drop.
    let mut m = fm;
    m.command = FlowModCommand::Modify;
    m.instructions = vec![];
    r.sw.install(&mut r.sim, &m);
    r.tx1.send(&mut r.sim, syn_frame(1, 2, 80));
    r.sim.run();
    assert_eq!(r.rx2.borrow().len(), 1, "second frame dropped");
}
