//! OpenFlow actions (OF1.3 §7.2.5).
//!
//! The system only ever emits `OUTPUT` actions (forward on a port, flood,
//! or punt to the controller) — denial in DFI is expressed as a rule with
//! *no* instructions, i.e. drop — but the codec keeps unknown actions
//! intact so the proxy can pass controller traffic through unmodified.

use dfi_packet::wire::{Reader, Writer};
use dfi_packet::PacketError;

use crate::Result;

pub(crate) const OFPAT_OUTPUT: u16 = 0;

/// A single action in an instruction's action list.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Action {
    /// Forward the packet out `port` (possibly a reserved port such as
    /// [`crate::port::CONTROLLER`]); `max_len` bounds bytes sent on
    /// controller output.
    Output {
        /// Egress port.
        port: u32,
        /// Bytes to include when outputting to the controller.
        max_len: u16,
    },
    /// Any other action, preserved as raw `(type, body)` for transparent
    /// proxying.
    Other {
        /// Action type code.
        kind: u16,
        /// Raw body bytes (after the 4-byte type/length header, including
        /// any padding).
        body: Vec<u8>,
    },
}

impl Action {
    /// An output action to a (physical or reserved) port.
    #[must_use]
    pub fn output(port: u32) -> Action {
        Action::Output {
            port,
            max_len: 0xFFFF, // OFPCML_NO_BUFFER: send the whole packet
        }
    }

    /// Serializes the action.
    pub fn encode(&self, w: &mut Writer) {
        match self {
            Action::Output { port, max_len } => {
                w.u16(OFPAT_OUTPUT);
                w.u16(16);
                w.u32(*port);
                w.u16(*max_len);
                w.zeros(6);
            }
            Action::Other { kind, body } => {
                w.u16(*kind);
                w.u16((4 + body.len()) as u16);
                w.bytes(body);
            }
        }
    }

    /// Parses one action.
    pub fn decode(r: &mut Reader<'_>) -> Result<Action> {
        let kind = r.u16()?;
        let len = usize::from(r.u16()?);
        if len < 4 {
            return Err(PacketError::BadField {
                field: "action.length",
                value: len as u64,
            });
        }
        let body = r.bytes(len - 4)?;
        match kind {
            OFPAT_OUTPUT => {
                // ofp_action_output is a fixed 16-byte struct (OF1.3
                // §7.2.5); any other length would drop or invent body
                // bytes on re-encode.
                if len != 16 {
                    return Err(PacketError::BadField {
                        field: "action.output.length",
                        value: len as u64,
                    });
                }
                let mut br = Reader::new(body);
                let port = br.u32()?;
                let max_len = br.u16()?;
                Ok(Action::Output { port, max_len })
            }
            other => Ok(Action::Other {
                kind: other,
                body: body.to_vec(),
            }),
        }
    }

    /// Parses a sequence of actions occupying exactly `len` bytes.
    pub fn decode_list(r: &mut Reader<'_>, len: usize) -> Result<Vec<Action>> {
        let mut body = Reader::new(r.bytes(len)?);
        let mut actions = Vec::new();
        while body.remaining() > 0 {
            actions.push(Action::decode(&mut body)?);
        }
        Ok(actions)
    }

    /// Serializes a sequence of actions, returning the bytes written.
    pub fn encode_list(actions: &[Action], w: &mut Writer) -> usize {
        let start = w.len();
        for a in actions {
            a.encode(w);
        }
        w.len() - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port;

    fn round_trip(a: &Action) -> Action {
        let mut w = Writer::new();
        a.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let out = Action::decode(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        out
    }

    #[test]
    fn output_round_trip() {
        let a = Action::output(7);
        assert_eq!(round_trip(&a), a);
        let a = Action::output(port::CONTROLLER);
        assert_eq!(round_trip(&a), a);
    }

    #[test]
    fn output_wire_size_is_16() {
        let mut w = Writer::new();
        Action::output(1).encode(&mut w);
        assert_eq!(w.len(), 16);
    }

    #[test]
    fn unknown_action_preserved_verbatim() {
        let a = Action::Other {
            kind: 11, // OFPAT_PUSH_VLAN
            body: vec![0x81, 0x00, 0, 0],
        };
        assert_eq!(round_trip(&a), a);
    }

    #[test]
    fn list_round_trip() {
        let actions = vec![
            Action::output(1),
            Action::Other {
                kind: 25,
                body: vec![0; 4],
            },
            Action::output(port::FLOOD),
        ];
        let mut w = Writer::new();
        let len = Action::encode_list(&actions, &mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(Action::decode_list(&mut r, len).unwrap(), actions);
    }

    #[test]
    fn short_length_rejected() {
        let mut r = Reader::new(&[0, 0, 0, 2]);
        assert!(Action::decode(&mut r).is_err());
    }

    #[test]
    fn truncated_body_rejected() {
        let mut r = Reader::new(&[0, 0, 0, 16, 0, 0]);
        assert!(Action::decode(&mut r).is_err());
    }

    #[test]
    fn oversize_output_rejected() {
        // OUTPUT with length 24: trailing 8 body bytes would be silently
        // dropped on re-encode. Regression for a bug where any length ≥ 10
        // was accepted.
        let mut bytes = vec![0, 0, 0, 24, 0, 0, 0, 7, 0xFF, 0xFF];
        bytes.extend_from_slice(&[0; 14]);
        let err = Action::decode(&mut Reader::new(&bytes)).unwrap_err();
        assert!(matches!(
            err,
            PacketError::BadField {
                field: "action.output.length",
                ..
            }
        ));
    }

    #[test]
    fn undersize_output_rejected() {
        // OUTPUT with length 10 (no padding): spec mandates exactly 16.
        let bytes = [0, 0, 0, 10, 0, 0, 0, 7, 0xFF, 0xFF];
        assert!(Action::decode(&mut Reader::new(&bytes)).is_err());
    }
}
