//! `Flow-Mod` and `Flow-Removed` messages (OF1.3 §7.3.4.1, §7.4.2).
//!
//! Every DFI-installed rule carries a `cookie` naming the policy it was
//! derived from; revoking that policy issues a `Flow-Mod` *delete* with a
//! matching cookie/mask, which is how the paper achieves policy↔switch
//! consistency without hard or soft timeouts.

use dfi_packet::wire::{Reader, Writer};
use dfi_packet::PacketError;

use crate::instruction::Instruction;
use crate::oxm::Match;
use crate::{group, port, table, Result, NO_BUFFER};

/// Flow-mod command (`ofp_flow_mod_command`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FlowModCommand {
    /// Add a new rule.
    Add,
    /// Modify matching rules.
    Modify,
    /// Modify strictly matching rules (same match and priority).
    ModifyStrict,
    /// Delete matching rules.
    Delete,
    /// Delete strictly matching rules.
    DeleteStrict,
}

impl FlowModCommand {
    fn to_u8(self) -> u8 {
        match self {
            FlowModCommand::Add => 0,
            FlowModCommand::Modify => 1,
            FlowModCommand::ModifyStrict => 2,
            FlowModCommand::Delete => 3,
            FlowModCommand::DeleteStrict => 4,
        }
    }

    fn from_u8(v: u8) -> Result<Self> {
        Ok(match v {
            0 => FlowModCommand::Add,
            1 => FlowModCommand::Modify,
            2 => FlowModCommand::ModifyStrict,
            3 => FlowModCommand::Delete,
            4 => FlowModCommand::DeleteStrict,
            other => {
                return Err(PacketError::BadField {
                    field: "flow_mod.command",
                    value: u64::from(other),
                })
            }
        })
    }
}

/// `OFPFF_SEND_FLOW_REM` flag: ask for a `Flow-Removed` on rule expiry.
pub const FLAG_SEND_FLOW_REM: u16 = 1;

/// A `Flow-Mod` message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowMod {
    /// Opaque rule metadata; DFI stores the policy id here.
    pub cookie: u64,
    /// Cookie mask for modify/delete matching (ignored for add).
    pub cookie_mask: u64,
    /// Target table.
    pub table_id: u8,
    /// What to do.
    pub command: FlowModCommand,
    /// Idle timeout in seconds (0 = permanent).
    pub idle_timeout: u16,
    /// Hard timeout in seconds (0 = permanent).
    pub hard_timeout: u16,
    /// Match priority (higher wins).
    pub priority: u16,
    /// Buffered packet to apply on install, or [`NO_BUFFER`].
    pub buffer_id: u32,
    /// Output-port filter for delete/modify, or [`port::ANY`].
    pub out_port: u32,
    /// Output-group filter for delete/modify, or [`group::ANY`].
    pub out_group: u32,
    /// OFPFF flags.
    pub flags: u16,
    /// The match.
    pub mat: Match,
    /// Instructions (empty list = drop for add commands).
    pub instructions: Vec<Instruction>,
}

impl FlowMod {
    /// A default-initialized ADD (wildcard match, drop, priority 0) to be
    /// customized with struct-update syntax.
    #[must_use]
    pub fn add() -> FlowMod {
        FlowMod {
            cookie: 0,
            cookie_mask: 0,
            table_id: 0,
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: 0,
            buffer_id: NO_BUFFER,
            out_port: port::ANY,
            out_group: group::ANY,
            flags: 0,
            mat: Match::default(),
            instructions: Vec::new(),
        }
    }

    /// A delete of every rule in every table whose cookie matches
    /// `cookie` under `mask` — DFI's policy-revocation flush.
    #[must_use]
    pub fn delete_by_cookie(cookie: u64, mask: u64) -> FlowMod {
        FlowMod {
            cookie,
            cookie_mask: mask,
            table_id: table::ALL,
            command: FlowModCommand::Delete,
            ..FlowMod::add()
        }
    }

    /// Appends the message body (after the OpenFlow header) to `buf`;
    /// allocation-free once `buf` has warm capacity.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let mut w = Writer::from_vec(std::mem::take(buf));
        self.encode_body(&mut w);
        *buf = w.into_bytes();
    }

    /// Serializes the message body (after the OpenFlow header).
    pub fn encode_body(&self, w: &mut Writer) {
        w.u64(self.cookie);
        w.u64(self.cookie_mask);
        w.u8(self.table_id);
        w.u8(self.command.to_u8());
        w.u16(self.idle_timeout);
        w.u16(self.hard_timeout);
        w.u16(self.priority);
        w.u32(self.buffer_id);
        w.u32(self.out_port);
        w.u32(self.out_group);
        w.u16(self.flags);
        w.zeros(2);
        self.mat.encode(w);
        Instruction::encode_list(&self.instructions, w);
    }

    /// Parses the message body.
    pub fn decode_body(r: &mut Reader<'_>) -> Result<FlowMod> {
        let cookie = r.u64()?;
        let cookie_mask = r.u64()?;
        let table_id = r.u8()?;
        let command = FlowModCommand::from_u8(r.u8()?)?;
        let idle_timeout = r.u16()?;
        let hard_timeout = r.u16()?;
        let priority = r.u16()?;
        let buffer_id = r.u32()?;
        let out_port = r.u32()?;
        let out_group = r.u32()?;
        let flags = r.u16()?;
        r.skip(2)?;
        let mat = Match::decode(r)?;
        let instructions = Instruction::decode_list(r)?;
        Ok(FlowMod {
            cookie,
            cookie_mask,
            table_id,
            command,
            idle_timeout,
            hard_timeout,
            priority,
            buffer_id,
            out_port,
            out_group,
            flags,
            mat,
            instructions,
        })
    }
}

/// Why a rule was removed (`ofp_flow_removed_reason`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FlowRemovedReason {
    /// Idle timeout elapsed.
    IdleTimeout,
    /// Hard timeout elapsed.
    HardTimeout,
    /// Deleted by a flow-mod.
    Delete,
}

impl FlowRemovedReason {
    fn to_u8(self) -> u8 {
        match self {
            FlowRemovedReason::IdleTimeout => 0,
            FlowRemovedReason::HardTimeout => 1,
            FlowRemovedReason::Delete => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self> {
        Ok(match v {
            0 => FlowRemovedReason::IdleTimeout,
            1 => FlowRemovedReason::HardTimeout,
            2 => FlowRemovedReason::Delete,
            other => {
                return Err(PacketError::BadField {
                    field: "flow_removed.reason",
                    value: u64::from(other),
                })
            }
        })
    }
}

/// A `Flow-Removed` message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowRemoved {
    /// Cookie of the removed rule.
    pub cookie: u64,
    /// Priority of the removed rule.
    pub priority: u16,
    /// Why it was removed.
    pub reason: FlowRemovedReason,
    /// Table it lived in.
    pub table_id: u8,
    /// Seconds the rule was installed.
    pub duration_sec: u32,
    /// Additional nanoseconds of duration.
    pub duration_nsec: u32,
    /// Rule's idle timeout.
    pub idle_timeout: u16,
    /// Rule's hard timeout.
    pub hard_timeout: u16,
    /// Packets matched.
    pub packet_count: u64,
    /// Bytes matched.
    pub byte_count: u64,
    /// The rule's match.
    pub mat: Match,
}

impl FlowRemoved {
    /// Appends the message body (after the OpenFlow header) to `buf`;
    /// allocation-free once `buf` has warm capacity.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let mut w = Writer::from_vec(std::mem::take(buf));
        self.encode_body(&mut w);
        *buf = w.into_bytes();
    }

    /// Serializes the message body.
    pub fn encode_body(&self, w: &mut Writer) {
        w.u64(self.cookie);
        w.u16(self.priority);
        w.u8(self.reason.to_u8());
        w.u8(self.table_id);
        w.u32(self.duration_sec);
        w.u32(self.duration_nsec);
        w.u16(self.idle_timeout);
        w.u16(self.hard_timeout);
        w.u64(self.packet_count);
        w.u64(self.byte_count);
        self.mat.encode(w);
    }

    /// Parses the message body.
    pub fn decode_body(r: &mut Reader<'_>) -> Result<FlowRemoved> {
        Ok(FlowRemoved {
            cookie: r.u64()?,
            priority: r.u16()?,
            reason: FlowRemovedReason::from_u8(r.u8()?)?,
            table_id: r.u8()?,
            duration_sec: r.u32()?,
            duration_nsec: r.u32()?,
            idle_timeout: r.u16()?,
            hard_timeout: r.u16()?,
            packet_count: r.u64()?,
            byte_count: r.u64()?,
            mat: Match::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;

    fn round_trip_fm(fm: &FlowMod) -> FlowMod {
        let mut w = Writer::new();
        fm.encode_body(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let out = FlowMod::decode_body(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        out
    }

    #[test]
    fn add_round_trip() {
        let fm = FlowMod {
            cookie: 0xDEAD_BEEF,
            table_id: 0,
            priority: 40_000,
            mat: Match {
                eth_type: Some(0x0800),
                ipv4_dst: Some([10, 0, 0, 5].into()),
                ..Match::default()
            },
            instructions: vec![Instruction::GotoTable(1)],
            flags: FLAG_SEND_FLOW_REM,
            ..FlowMod::add()
        };
        assert_eq!(round_trip_fm(&fm), fm);
    }

    #[test]
    fn drop_rule_has_no_instructions() {
        let fm = FlowMod {
            priority: 1,
            ..FlowMod::add()
        };
        let out = round_trip_fm(&fm);
        assert!(out.instructions.is_empty());
        assert_eq!(out.command, FlowModCommand::Add);
    }

    #[test]
    fn delete_by_cookie_round_trip() {
        let fm = FlowMod::delete_by_cookie(42, u64::MAX);
        let out = round_trip_fm(&fm);
        assert_eq!(out.command, FlowModCommand::Delete);
        assert_eq!(out.table_id, table::ALL);
        assert_eq!(out.cookie, 42);
        assert_eq!(out.cookie_mask, u64::MAX);
        assert_eq!(out.out_port, port::ANY);
    }

    #[test]
    fn forward_rule_round_trip() {
        let fm = FlowMod {
            command: FlowModCommand::Add,
            table_id: 1,
            priority: 10,
            instructions: vec![Instruction::ApplyActions(vec![Action::output(4)])],
            ..FlowMod::add()
        };
        assert_eq!(round_trip_fm(&fm), fm);
    }

    #[test]
    fn all_commands_round_trip() {
        for cmd in [
            FlowModCommand::Add,
            FlowModCommand::Modify,
            FlowModCommand::ModifyStrict,
            FlowModCommand::Delete,
            FlowModCommand::DeleteStrict,
        ] {
            let fm = FlowMod {
                command: cmd,
                ..FlowMod::add()
            };
            assert_eq!(round_trip_fm(&fm).command, cmd);
        }
    }

    #[test]
    fn bad_command_rejected() {
        let fm = FlowMod::add();
        let mut w = Writer::new();
        fm.encode_body(&mut w);
        let mut bytes = w.into_bytes();
        bytes[17] = 9; // command byte
        let mut r = Reader::new(&bytes);
        assert!(FlowMod::decode_body(&mut r).is_err());
    }

    #[test]
    fn flow_removed_round_trip() {
        let fr = FlowRemoved {
            cookie: 7,
            priority: 100,
            reason: FlowRemovedReason::Delete,
            table_id: 0,
            duration_sec: 12,
            duration_nsec: 500,
            idle_timeout: 0,
            hard_timeout: 0,
            packet_count: 1234,
            byte_count: 56_789,
            mat: Match {
                in_port: Some(2),
                ..Match::default()
            },
        };
        let mut w = Writer::new();
        fr.encode_body(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(FlowRemoved::decode_body(&mut r).unwrap(), fr);
    }

    #[test]
    fn flow_removed_reasons_round_trip() {
        for reason in [
            FlowRemovedReason::IdleTimeout,
            FlowRemovedReason::HardTimeout,
            FlowRemovedReason::Delete,
        ] {
            assert_eq!(FlowRemovedReason::from_u8(reason.to_u8()).unwrap(), reason);
        }
        assert!(FlowRemovedReason::from_u8(3).is_err());
    }
}
