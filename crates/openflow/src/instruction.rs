//! OpenFlow instructions (OF1.3 §7.2.4).
//!
//! `GotoTable` is the load-bearing instruction for DFI: an *allow* rule in
//! Table 0 is `goto_table 1`, handing the packet to the controller's tables;
//! a *deny* rule has no instructions at all (the packet is dropped at the
//! end of Table 0). The DFI Proxy must also rewrite the table id inside
//! controller `GotoTable` instructions, which is why the codec exposes them
//! structurally rather than as opaque bytes.

use dfi_packet::wire::{Reader, Writer};
use dfi_packet::PacketError;

use crate::action::Action;
use crate::Result;

pub(crate) const OFPIT_GOTO_TABLE: u16 = 1;
pub(crate) const OFPIT_WRITE_ACTIONS: u16 = 3;
pub(crate) const OFPIT_APPLY_ACTIONS: u16 = 4;
pub(crate) const OFPIT_CLEAR_ACTIONS: u16 = 5;

/// One instruction attached to a flow rule.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Continue matching in a later table.
    GotoTable(u8),
    /// Execute the actions immediately.
    ApplyActions(Vec<Action>),
    /// Merge the actions into the packet's action set.
    WriteActions(Vec<Action>),
    /// Clear the packet's action set.
    ClearActions,
    /// Any other instruction, preserved raw for transparent proxying.
    Other {
        /// Instruction type code.
        kind: u16,
        /// Raw body (after the 4-byte type/length header).
        body: Vec<u8>,
    },
}

impl Instruction {
    /// Serializes the instruction.
    pub fn encode(&self, w: &mut Writer) {
        match self {
            Instruction::GotoTable(table_id) => {
                w.u16(OFPIT_GOTO_TABLE);
                w.u16(8);
                w.u8(*table_id);
                w.zeros(3);
            }
            Instruction::ApplyActions(actions) | Instruction::WriteActions(actions) => {
                let kind = if matches!(self, Instruction::ApplyActions(_)) {
                    OFPIT_APPLY_ACTIONS
                } else {
                    OFPIT_WRITE_ACTIONS
                };
                w.u16(kind);
                let len_at = w.len();
                w.u16(0);
                w.zeros(4);
                Action::encode_list(actions, w);
                let total = w.len() - len_at + 2;
                w.patch_u16(len_at, total as u16);
            }
            Instruction::ClearActions => {
                w.u16(OFPIT_CLEAR_ACTIONS);
                w.u16(8);
                w.zeros(4);
            }
            Instruction::Other { kind, body } => {
                w.u16(*kind);
                w.u16((4 + body.len()) as u16);
                w.bytes(body);
            }
        }
    }

    /// Parses one instruction.
    pub fn decode(r: &mut Reader<'_>) -> Result<Instruction> {
        let kind = r.u16()?;
        let len = usize::from(r.u16()?);
        if len < 4 {
            return Err(PacketError::BadField {
                field: "instruction.length",
                value: len as u64,
            });
        }
        let body = r.bytes(len - 4)?;
        let mut br = Reader::new(body);
        // GOTO_TABLE and CLEAR_ACTIONS are fixed 8-byte structs (OF1.3
        // §7.2.4); a longer length would drop its tail on re-encode.
        let fixed_eight = matches!(kind, OFPIT_GOTO_TABLE | OFPIT_CLEAR_ACTIONS);
        if fixed_eight && len != 8 {
            return Err(PacketError::BadField {
                field: "instruction.length",
                value: len as u64,
            });
        }
        match kind {
            OFPIT_GOTO_TABLE => {
                let table_id = br.u8()?;
                Ok(Instruction::GotoTable(table_id))
            }
            OFPIT_APPLY_ACTIONS | OFPIT_WRITE_ACTIONS => {
                br.skip(4)?;
                let actions_len = br.remaining();
                let actions = Action::decode_list(&mut br, actions_len)?;
                if kind == OFPIT_APPLY_ACTIONS {
                    Ok(Instruction::ApplyActions(actions))
                } else {
                    Ok(Instruction::WriteActions(actions))
                }
            }
            OFPIT_CLEAR_ACTIONS => Ok(Instruction::ClearActions),
            other => Ok(Instruction::Other {
                kind: other,
                body: body.to_vec(),
            }),
        }
    }

    /// Parses instructions until the reader is exhausted.
    pub fn decode_list(r: &mut Reader<'_>) -> Result<Vec<Instruction>> {
        let mut out = Vec::new();
        while r.remaining() > 0 {
            out.push(Instruction::decode(r)?);
        }
        Ok(out)
    }

    /// Serializes a sequence of instructions.
    pub fn encode_list(instructions: &[Instruction], w: &mut Writer) {
        for i in instructions {
            i.encode(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(i: &Instruction) -> Instruction {
        let mut w = Writer::new();
        i.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let out = Instruction::decode(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        out
    }

    #[test]
    fn goto_table_round_trip() {
        let i = Instruction::GotoTable(1);
        assert_eq!(round_trip(&i), i);
        let mut w = Writer::new();
        i.encode(&mut w);
        assert_eq!(w.len(), 8);
    }

    #[test]
    fn apply_actions_round_trip() {
        let i = Instruction::ApplyActions(vec![Action::output(3), Action::output(9)]);
        assert_eq!(round_trip(&i), i);
    }

    #[test]
    fn write_actions_round_trip() {
        let i = Instruction::WriteActions(vec![Action::output(3)]);
        assert_eq!(round_trip(&i), i);
    }

    #[test]
    fn empty_apply_actions_round_trip() {
        let i = Instruction::ApplyActions(vec![]);
        assert_eq!(round_trip(&i), i);
    }

    #[test]
    fn clear_actions_round_trip() {
        assert_eq!(
            round_trip(&Instruction::ClearActions),
            Instruction::ClearActions
        );
    }

    #[test]
    fn unknown_instruction_preserved() {
        let i = Instruction::Other {
            kind: 2, // OFPIT_WRITE_METADATA
            body: vec![0; 20],
        };
        assert_eq!(round_trip(&i), i);
    }

    #[test]
    fn list_round_trip() {
        let list = vec![
            Instruction::ApplyActions(vec![Action::output(1)]),
            Instruction::GotoTable(2),
        ];
        let mut w = Writer::new();
        Instruction::encode_list(&list, &mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(Instruction::decode_list(&mut r).unwrap(), list);
    }

    #[test]
    fn short_length_rejected() {
        let mut r = Reader::new(&[0, 1, 0, 3]);
        assert!(Instruction::decode(&mut r).is_err());
    }

    #[test]
    fn oversize_goto_table_rejected() {
        // GOTO_TABLE with length 12: the 4 trailing body bytes would be
        // dropped on re-encode. Regression for a bug where only the first
        // body byte was read and the rest silently ignored.
        let bytes = [0, 1, 0, 12, 5, 0, 0, 0, 0xAA, 0xBB, 0xCC, 0xDD];
        let err = Instruction::decode(&mut Reader::new(&bytes)).unwrap_err();
        assert!(matches!(
            err,
            PacketError::BadField {
                field: "instruction.length",
                ..
            }
        ));
    }

    #[test]
    fn oversize_clear_actions_rejected() {
        let bytes = [0, 5, 0, 16, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8];
        assert!(Instruction::decode(&mut Reader::new(&bytes)).is_err());
    }
}
