//! Hand-rolled OpenFlow 1.3 wire protocol for the DFI reproduction.
//!
//! The paper implements DFI for OpenFlow networks and *requires* OpenFlow
//! 1.3 or later, because the DFI Proxy leans on two 1.3 features:
//! multi-table pipelining (Table 0 is reserved for DFI's access-control
//! rules; `goto_table` chains into the controller's tables) and per-rule
//! `cookie` metadata (used to flush all flow rules derived from a revoked
//! policy). This crate provides byte-accurate encode/decode for the message
//! subset the system exchanges:
//!
//! * connection setup: [`Message::Hello`], [`Message::EchoRequest`]/
//!   [`Message::EchoReply`], [`Message::FeaturesRequest`]/[`FeaturesReply`]
//! * the reactive loop: [`PacketIn`], [`PacketOut`], [`FlowMod`],
//!   [`FlowRemoved`], [`Message::BarrierRequest`]/[`Message::BarrierReply`]
//! * telemetry: multipart flow/table statistics ([`MultipartRequest`],
//!   [`MultipartReply`])
//! * [`Message::Error`]
//!
//! and the supporting structures: OXM [`Match`] TLVs, [`Instruction`]s and
//! [`Action`]s, and the port-number constants in [`port`].
//!
//! # Example
//!
//! ```
//! use dfi_openflow::{FlowMod, Match, Instruction, Message, OfMessage};
//!
//! let fm = FlowMod {
//!     cookie: 0xD0F1,
//!     table_id: 0,
//!     priority: 100,
//!     mat: Match { eth_type: Some(0x0800), ..Match::default() },
//!     instructions: vec![Instruction::GotoTable(1)],
//!     ..FlowMod::add()
//! };
//! let wire = OfMessage::new(7, Message::FlowMod(fm)).encode();
//! let back = OfMessage::decode(&wire).unwrap();
//! assert_eq!(back.xid, 7);
//! match back.body {
//!     Message::FlowMod(fm) => assert_eq!(fm.instructions, vec![Instruction::GotoTable(1)]),
//!     _ => unreachable!(),
//! }
//! ```

#![warn(missing_docs)]
// Decode paths must degrade gracefully on malformed wire input, never
// panic: a truncated OXM TLV from a misbehaving switch must not take the
// proxy down. Enforced here (and turned into a hard error by the
// `-D warnings` clippy gate in scripts/check.sh); tests and doc examples
// are exempt.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod action;
mod flow;
mod instruction;
mod msg;
mod oxm;
pub mod splice;
mod stats;
#[cfg(feature = "testgen")]
pub mod testgen;

pub use action::Action;
pub use flow::{FlowMod, FlowModCommand, FlowRemoved, FlowRemovedReason, FLAG_SEND_FLOW_REM};
pub use instruction::Instruction;
pub use msg::{
    ErrorMsg, FeaturesReply, Message, MsgType, OfMessage, PacketIn, PacketInReason, PacketOut,
    OFP_VERSION,
};
pub use oxm::Match;
pub use splice::Splice;
pub use stats::{FlowStatsEntry, MultipartReply, MultipartRequest, PortDescEntry, TableStatsEntry};

pub use dfi_packet::PacketError;

/// Result alias reusing the packet codec error type (OpenFlow shares the
/// same truncation / bad-field failure modes).
pub type Result<T> = std::result::Result<T, PacketError>;

/// Reserved OpenFlow port numbers (OF1.3 §7.2.1, `ofp_port_no`).
pub mod port {
    /// Maximum number of physical ports.
    pub const MAX: u32 = 0xFFFF_FF00;
    /// Send the packet back out its ingress port.
    pub const IN_PORT: u32 = 0xFFFF_FFF8;
    /// Submit to the flow table (valid in packet-out).
    pub const TABLE: u32 = 0xFFFF_FFF9;
    /// Forward using non-OpenFlow "normal" processing.
    pub const NORMAL: u32 = 0xFFFF_FFFA;
    /// Flood to all ports except ingress.
    pub const FLOOD: u32 = 0xFFFF_FFFB;
    /// All ports except ingress.
    pub const ALL: u32 = 0xFFFF_FFFC;
    /// Send to the controller as a packet-in.
    pub const CONTROLLER: u32 = 0xFFFF_FFFD;
    /// Local openflow port.
    pub const LOCAL: u32 = 0xFFFF_FFFE;
    /// Wildcard in flow-mods and stats requests.
    pub const ANY: u32 = 0xFFFF_FFFF;
}

/// Reserved table numbers.
pub mod table {
    /// Wildcard table in delete flow-mods and stats requests.
    pub const ALL: u8 = 0xFF;
    /// Highest real table id.
    pub const MAX: u8 = 0xFE;
}

/// Reserved group numbers.
pub mod group {
    /// Wildcard group in delete flow-mods and stats requests.
    pub const ANY: u32 = 0xFFFF_FFFF;
}

/// `OFP_NO_BUFFER`: the packet-in carries the full packet, nothing is
/// buffered on the switch.
pub const NO_BUFFER: u32 = 0xFFFF_FFFF;
