//! The OpenFlow message envelope and the remaining message types.

use dfi_packet::wire::{Reader, Writer};
use dfi_packet::PacketError;

use crate::action::Action;
use crate::flow::{FlowMod, FlowRemoved};
use crate::oxm::Match;
use crate::stats::{MultipartReply, MultipartRequest};
use crate::Result;

/// The protocol version this implementation speaks (OpenFlow 1.3).
pub const OFP_VERSION: u8 = 0x04;

/// OpenFlow message type codes (OF1.3 `ofp_type`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum MsgType {
    Hello = 0,
    Error = 1,
    EchoRequest = 2,
    EchoReply = 3,
    FeaturesRequest = 5,
    FeaturesReply = 6,
    PacketIn = 10,
    FlowRemoved = 11,
    PacketOut = 13,
    FlowMod = 14,
    MultipartRequest = 18,
    MultipartReply = 19,
    BarrierRequest = 20,
    BarrierReply = 21,
}

/// Why a packet was sent to the controller (`ofp_packet_in_reason`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PacketInReason {
    /// No matching flow rule (table miss).
    NoMatch,
    /// An explicit output-to-controller action.
    Action,
    /// Invalid TTL.
    InvalidTtl,
}

impl PacketInReason {
    fn to_u8(self) -> u8 {
        match self {
            PacketInReason::NoMatch => 0,
            PacketInReason::Action => 1,
            PacketInReason::InvalidTtl => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self> {
        Ok(match v {
            0 => PacketInReason::NoMatch,
            1 => PacketInReason::Action,
            2 => PacketInReason::InvalidTtl,
            other => {
                return Err(PacketError::BadField {
                    field: "packet_in.reason",
                    value: u64::from(other),
                })
            }
        })
    }
}

/// A `Packet-In`: the first packet of a new flow punted to the control
/// plane. In DFI deployments the proxy intercepts these and consults the
/// Policy Compilation Point *before* the controller ever sees them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PacketIn {
    /// Switch buffer holding the packet, or [`crate::NO_BUFFER`].
    pub buffer_id: u32,
    /// Full length of the original packet.
    pub total_len: u16,
    /// Why the packet was punted.
    pub reason: PacketInReason,
    /// Table that punted it.
    pub table_id: u8,
    /// Cookie of the rule that punted it (or -1 for table miss).
    pub cookie: u64,
    /// Pipeline metadata; carries at least `in_port`.
    pub mat: Match,
    /// The packet bytes (possibly truncated to `miss_send_len`).
    pub data: Vec<u8>,
}

impl PacketIn {
    /// Builds a table-miss packet-in carrying the whole packet.
    #[must_use]
    pub fn table_miss(in_port: u32, table_id: u8, data: Vec<u8>) -> PacketIn {
        PacketIn {
            buffer_id: crate::NO_BUFFER,
            total_len: data.len() as u16,
            reason: PacketInReason::NoMatch,
            table_id,
            cookie: u64::MAX,
            mat: Match {
                in_port: Some(in_port),
                ..Match::default()
            },
            data,
        }
    }

    /// The ingress port, when present in the match metadata.
    #[must_use]
    pub fn in_port(&self) -> Option<u32> {
        self.mat.in_port
    }

    /// Appends the message body (after the OpenFlow header) to `buf`;
    /// allocation-free once `buf` has warm capacity.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let mut w = Writer::from_vec(std::mem::take(buf));
        self.encode_body(&mut w);
        *buf = w.into_bytes();
    }

    fn encode_body(&self, w: &mut Writer) {
        w.u32(self.buffer_id);
        w.u16(self.total_len);
        w.u8(self.reason.to_u8());
        w.u8(self.table_id);
        w.u64(self.cookie);
        self.mat.encode(w);
        w.zeros(2);
        w.bytes(&self.data);
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<PacketIn> {
        let buffer_id = r.u32()?;
        let total_len = r.u16()?;
        let reason = PacketInReason::from_u8(r.u8()?)?;
        let table_id = r.u8()?;
        let cookie = r.u64()?;
        let mat = Match::decode(r)?;
        r.skip(2)?;
        Ok(PacketIn {
            buffer_id,
            total_len,
            reason,
            table_id,
            cookie,
            mat,
            data: r.rest().to_vec(),
        })
    }
}

/// A `Packet-Out`: the control plane injecting a packet into the data plane.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PacketOut {
    /// Buffer to release, or [`crate::NO_BUFFER`] when `data` is supplied.
    pub buffer_id: u32,
    /// Ingress port context ([`crate::port::CONTROLLER`] when none).
    pub in_port: u32,
    /// Actions to apply (typically a single output).
    pub actions: Vec<Action>,
    /// Packet bytes when not buffered.
    pub data: Vec<u8>,
}

impl PacketOut {
    /// Sends `data` out of `out_port`.
    #[must_use]
    pub fn send(out_port: u32, data: Vec<u8>) -> PacketOut {
        PacketOut {
            buffer_id: crate::NO_BUFFER,
            in_port: crate::port::CONTROLLER,
            actions: vec![Action::output(out_port)],
            data,
        }
    }

    /// Appends the message body (after the OpenFlow header) to `buf`;
    /// allocation-free once `buf` has warm capacity.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let mut w = Writer::from_vec(std::mem::take(buf));
        self.encode_body(&mut w);
        *buf = w.into_bytes();
    }

    fn encode_body(&self, w: &mut Writer) {
        w.u32(self.buffer_id);
        w.u32(self.in_port);
        let len_at = w.len();
        w.u16(0);
        w.zeros(6);
        let actions_len = Action::encode_list(&self.actions, w);
        w.patch_u16(len_at, actions_len as u16);
        w.bytes(&self.data);
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<PacketOut> {
        let buffer_id = r.u32()?;
        let in_port = r.u32()?;
        let actions_len = usize::from(r.u16()?);
        r.skip(6)?;
        let actions = Action::decode_list(r, actions_len)?;
        Ok(PacketOut {
            buffer_id,
            in_port,
            actions,
            data: r.rest().to_vec(),
        })
    }
}

/// A `Features-Reply` describing the switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FeaturesReply {
    /// Datapath id (unique switch identity; DFI policies can reference it).
    pub datapath_id: u64,
    /// Packets the switch can buffer.
    pub n_buffers: u32,
    /// Number of flow tables.
    pub n_tables: u8,
    /// Auxiliary connection id.
    pub auxiliary_id: u8,
    /// Capability bitmap.
    pub capabilities: u32,
}

impl FeaturesReply {
    /// Appends the message body (after the OpenFlow header) to `buf`;
    /// allocation-free once `buf` has warm capacity.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let mut w = Writer::from_vec(std::mem::take(buf));
        self.encode_body(&mut w);
        *buf = w.into_bytes();
    }

    fn encode_body(&self, w: &mut Writer) {
        w.u64(self.datapath_id);
        w.u32(self.n_buffers);
        w.u8(self.n_tables);
        w.u8(self.auxiliary_id);
        w.zeros(2);
        w.u32(self.capabilities);
        w.u32(0); // reserved
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<FeaturesReply> {
        let datapath_id = r.u64()?;
        let n_buffers = r.u32()?;
        let n_tables = r.u8()?;
        let auxiliary_id = r.u8()?;
        r.skip(2)?;
        let capabilities = r.u32()?;
        r.skip(4)?;
        Ok(FeaturesReply {
            datapath_id,
            n_buffers,
            n_tables,
            auxiliary_id,
            capabilities,
        })
    }
}

/// An `Error` message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorMsg {
    /// Error type (`ofp_error_type`).
    pub err_type: u16,
    /// Error code within the type.
    pub code: u16,
    /// At least 64 bytes of the offending request.
    pub data: Vec<u8>,
}

impl ErrorMsg {
    /// `OFPET_BAD_REQUEST` / `OFPBRC_EPERM`: the DFI proxy's refusal when a
    /// controller touches Table 0 state it must not see.
    #[must_use]
    pub fn permission_denied(offending: Vec<u8>) -> ErrorMsg {
        ErrorMsg {
            err_type: 1, // OFPET_BAD_REQUEST
            code: 6,     // OFPBRC_EPERM
            data: offending,
        }
    }
}

/// A parsed OpenFlow message body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Version negotiation (body ignored; we speak 1.3 only).
    Hello,
    /// Error report.
    Error(ErrorMsg),
    /// Liveness probe.
    EchoRequest(Vec<u8>),
    /// Liveness response.
    EchoReply(Vec<u8>),
    /// Ask the switch for its identity.
    FeaturesRequest,
    /// The switch's identity.
    FeaturesReply(FeaturesReply),
    /// New-flow notification.
    PacketIn(PacketIn),
    /// Rule-removal notification.
    FlowRemoved(FlowRemoved),
    /// Packet injection.
    PacketOut(PacketOut),
    /// Flow-table modification.
    FlowMod(FlowMod),
    /// Statistics request.
    MultipartRequest(MultipartRequest),
    /// Statistics reply.
    MultipartReply(MultipartReply),
    /// Ordering fence request.
    BarrierRequest,
    /// Ordering fence acknowledgment.
    BarrierReply,
}

impl Message {
    /// The message's wire type code.
    #[must_use]
    pub fn msg_type(&self) -> MsgType {
        match self {
            Message::Hello => MsgType::Hello,
            Message::Error(_) => MsgType::Error,
            Message::EchoRequest(_) => MsgType::EchoRequest,
            Message::EchoReply(_) => MsgType::EchoReply,
            Message::FeaturesRequest => MsgType::FeaturesRequest,
            Message::FeaturesReply(_) => MsgType::FeaturesReply,
            Message::PacketIn(_) => MsgType::PacketIn,
            Message::FlowRemoved(_) => MsgType::FlowRemoved,
            Message::PacketOut(_) => MsgType::PacketOut,
            Message::FlowMod(_) => MsgType::FlowMod,
            Message::MultipartRequest(_) => MsgType::MultipartRequest,
            Message::MultipartReply(_) => MsgType::MultipartReply,
            Message::BarrierRequest => MsgType::BarrierRequest,
            Message::BarrierReply => MsgType::BarrierReply,
        }
    }
}

/// A complete OpenFlow message: transaction id plus body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OfMessage {
    /// Transaction id correlating requests and replies.
    pub xid: u32,
    /// The message body.
    pub body: Message,
}

impl OfMessage {
    /// Wraps a body with a transaction id.
    #[must_use]
    pub fn new(xid: u32, body: Message) -> OfMessage {
        OfMessage { xid, body }
    }

    /// Serializes header + body into a fresh buffer.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        self.encode_into(&mut buf);
        buf
    }

    /// Serializes header + body, appending to `buf`. Several messages can
    /// be framed back-to-back into one buffer (a batched write), and a
    /// pooled buffer with warm capacity makes the encode allocation-free.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let mut w = Writer::from_vec(std::mem::take(buf));
        let start = w.len();
        w.u8(OFP_VERSION);
        w.u8(self.body.msg_type() as u8);
        w.u16(0); // length, patched
        w.u32(self.xid);
        match &self.body {
            Message::Hello
            | Message::FeaturesRequest
            | Message::BarrierRequest
            | Message::BarrierReply => {}
            Message::Error(e) => {
                w.u16(e.err_type);
                w.u16(e.code);
                w.bytes(&e.data);
            }
            Message::EchoRequest(data) | Message::EchoReply(data) => w.bytes(data),
            Message::FeaturesReply(fr) => fr.encode_body(&mut w),
            Message::PacketIn(pi) => pi.encode_body(&mut w),
            Message::FlowRemoved(fr) => fr.encode_body(&mut w),
            Message::PacketOut(po) => po.encode_body(&mut w),
            Message::FlowMod(fm) => fm.encode_body(&mut w),
            Message::MultipartRequest(mr) => mr.encode_body(&mut w),
            Message::MultipartReply(mr) => mr.encode_body(&mut w),
        }
        let len = (w.len() - start) as u16;
        w.patch_u16(start + 2, len);
        *buf = w.into_bytes();
    }

    /// Parses one message from `bytes`, which must contain exactly one
    /// message (as framed by [`OfMessage::frame_length`]).
    pub fn decode(bytes: &[u8]) -> Result<OfMessage> {
        let mut r = Reader::new(bytes);
        let version = r.u8()?;
        if version != OFP_VERSION {
            return Err(PacketError::UnsupportedVersion {
                protocol: "OpenFlow",
                found: version,
            });
        }
        let msg_type = r.u8()?;
        let length = usize::from(r.u16()?);
        if length < 8 || length > bytes.len() {
            return Err(PacketError::BadField {
                field: "ofp_header.length",
                value: length as u64,
            });
        }
        let xid = r.u32()?;
        let mut body = Reader::new(&bytes[8..length]);
        let message = match msg_type {
            0 => Message::Hello,
            1 => {
                let err_type = body.u16()?;
                let code = body.u16()?;
                Message::Error(ErrorMsg {
                    err_type,
                    code,
                    data: body.rest().to_vec(),
                })
            }
            2 => Message::EchoRequest(body.rest().to_vec()),
            3 => Message::EchoReply(body.rest().to_vec()),
            5 => Message::FeaturesRequest,
            6 => Message::FeaturesReply(FeaturesReply::decode_body(&mut body)?),
            10 => Message::PacketIn(PacketIn::decode_body(&mut body)?),
            11 => Message::FlowRemoved(FlowRemoved::decode_body(&mut body)?),
            13 => Message::PacketOut(PacketOut::decode_body(&mut body)?),
            14 => Message::FlowMod(FlowMod::decode_body(&mut body)?),
            18 => Message::MultipartRequest(MultipartRequest::decode_body(&mut body)?),
            19 => Message::MultipartReply(MultipartReply::decode_body(&mut body)?),
            20 => Message::BarrierRequest,
            21 => Message::BarrierReply,
            other => {
                return Err(PacketError::BadField {
                    field: "ofp_header.type",
                    value: u64::from(other),
                })
            }
        };
        // Every decoder above either consumes its fixed layout or takes the
        // rest as payload; leftover body bytes mean the header length lied
        // about the fixed-layout size and re-encoding would drop them.
        if body.remaining() > 0 {
            return Err(PacketError::BadField {
                field: "ofp_body.trailing",
                value: body.remaining() as u64,
            });
        }
        Ok(OfMessage::new(xid, message))
    }

    /// Reads the total frame length from a (possibly partial) buffer
    /// holding at least the 4-byte header prefix. Used to delimit messages
    /// on a byte stream.
    #[must_use]
    pub fn frame_length(bytes: &[u8]) -> Option<usize> {
        if bytes.len() < 4 {
            return None;
        }
        Some(usize::from(u16::from_be_bytes([bytes[2], bytes[3]])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowModCommand;
    use crate::{table, NO_BUFFER};

    fn round_trip(m: &OfMessage) -> OfMessage {
        let bytes = m.encode();
        let decoded = OfMessage::decode(&bytes).unwrap();
        assert_eq!(OfMessage::frame_length(&bytes), Some(bytes.len()));
        decoded
    }

    #[test]
    fn hello_round_trip() {
        let m = OfMessage::new(1, Message::Hello);
        assert_eq!(round_trip(&m), m);
        assert_eq!(m.encode().len(), 8);
    }

    #[test]
    fn echo_round_trip() {
        let m = OfMessage::new(2, Message::EchoRequest(b"ping".to_vec()));
        assert_eq!(round_trip(&m), m);
        let m = OfMessage::new(2, Message::EchoReply(b"ping".to_vec()));
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn features_round_trip() {
        let m = OfMessage::new(3, Message::FeaturesRequest);
        assert_eq!(round_trip(&m), m);
        let fr = FeaturesReply {
            datapath_id: 0xAABB_CCDD_EEFF_0011,
            n_buffers: 256,
            n_tables: 254,
            auxiliary_id: 0,
            capabilities: 0x47,
        };
        let m = OfMessage::new(3, Message::FeaturesReply(fr));
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn packet_in_round_trip() {
        let pi = PacketIn::table_miss(7, 0, vec![0xDE, 0xAD, 0xBE, 0xEF]);
        assert_eq!(pi.in_port(), Some(7));
        let m = OfMessage::new(4, Message::PacketIn(pi));
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn packet_out_round_trip() {
        let po = PacketOut::send(3, vec![1, 2, 3, 4, 5]);
        let m = OfMessage::new(5, Message::PacketOut(po));
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn packet_out_empty_actions_round_trip() {
        let po = PacketOut {
            buffer_id: NO_BUFFER,
            in_port: crate::port::CONTROLLER,
            actions: vec![],
            data: vec![9, 9],
        };
        let m = OfMessage::new(5, Message::PacketOut(po));
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn flow_mod_round_trip() {
        let fm = FlowMod {
            cookie: 1,
            table_id: 0,
            priority: 100,
            command: FlowModCommand::Add,
            instructions: vec![crate::Instruction::GotoTable(1)],
            ..FlowMod::add()
        };
        let m = OfMessage::new(6, Message::FlowMod(fm));
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn flow_removed_round_trip() {
        let fr = FlowRemoved {
            cookie: 9,
            priority: 10,
            reason: crate::FlowRemovedReason::Delete,
            table_id: table::ALL,
            duration_sec: 0,
            duration_nsec: 0,
            idle_timeout: 0,
            hard_timeout: 0,
            packet_count: 0,
            byte_count: 0,
            mat: Match::default(),
        };
        let m = OfMessage::new(7, Message::FlowRemoved(fr));
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn multipart_round_trip() {
        let m = OfMessage::new(8, Message::MultipartRequest(MultipartRequest::all_flows()));
        assert_eq!(round_trip(&m), m);
        let m = OfMessage::new(8, Message::MultipartReply(MultipartReply::Flow(vec![])));
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn barrier_round_trip() {
        for body in [Message::BarrierRequest, Message::BarrierReply] {
            let m = OfMessage::new(9, body);
            assert_eq!(round_trip(&m), m);
        }
    }

    #[test]
    fn error_round_trip() {
        let m = OfMessage::new(
            10,
            Message::Error(ErrorMsg::permission_denied(vec![1, 2, 3])),
        );
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = OfMessage::new(1, Message::Hello).encode();
        bytes[0] = 0x01; // OpenFlow 1.0
        assert!(matches!(
            OfMessage::decode(&bytes),
            Err(PacketError::UnsupportedVersion {
                protocol: "OpenFlow",
                found: 1
            })
        ));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut bytes = OfMessage::new(1, Message::Hello).encode();
        bytes[1] = 99;
        assert!(OfMessage::decode(&bytes).is_err());
    }

    #[test]
    fn lying_length_rejected() {
        let mut bytes = OfMessage::new(1, Message::Hello).encode();
        bytes[3] = 200;
        assert!(OfMessage::decode(&bytes).is_err());
    }

    #[test]
    fn length_below_header_size_rejected() {
        // length = 7 lies below the fixed 8-byte header; slicing
        // bytes[8..7] would panic.
        let mut bytes = OfMessage::new(1, Message::Hello).encode();
        bytes[3] = 7;
        assert!(matches!(
            OfMessage::decode(&bytes).unwrap_err(),
            PacketError::BadField {
                field: "ofp_header.length",
                value: 7,
            }
        ));
    }

    #[test]
    fn length_shorter_than_fixed_body_rejected() {
        // A FeaturesReply whose header length cuts the fixed 24-byte body
        // short must fail typed, not truncate.
        let fr = FeaturesReply {
            datapath_id: 0xD1,
            n_buffers: 0,
            n_tables: 8,
            auxiliary_id: 0,
            capabilities: 0,
        };
        let mut bytes = OfMessage::new(9, Message::FeaturesReply(fr)).encode();
        bytes[3] = 16; // header + only 8 of the 24 body bytes
        assert!(matches!(
            OfMessage::decode(&bytes).unwrap_err(),
            PacketError::Truncated { .. }
        ));
    }

    #[test]
    fn trailing_body_bytes_rejected() {
        // A Hello whose header length claims 4 extra body bytes: re-encoding
        // the decoded message would silently drop them, so decode must
        // refuse. (Stream-level trailing bytes beyond the header length are
        // still fine — see trailing_bytes_beyond_length_ignored.)
        let mut bytes = OfMessage::new(1, Message::Hello).encode();
        bytes.extend_from_slice(&[1, 2, 3, 4]);
        bytes[3] = 12;
        assert!(matches!(
            OfMessage::decode(&bytes).unwrap_err(),
            PacketError::BadField {
                field: "ofp_body.trailing",
                value: 4,
            }
        ));
    }

    #[test]
    fn frame_length_requires_four_bytes() {
        assert_eq!(OfMessage::frame_length(&[4, 0]), None);
        assert_eq!(OfMessage::frame_length(&[4, 0, 0, 8]), Some(8));
    }

    #[test]
    fn trailing_bytes_beyond_length_ignored() {
        // Stream framing: decode should honor the header length even if the
        // buffer holds the start of the next message.
        let mut bytes = OfMessage::new(1, Message::Hello).encode();
        bytes.extend_from_slice(&OfMessage::new(2, Message::BarrierRequest).encode());
        let m = OfMessage::decode(&bytes).unwrap();
        assert_eq!(m.xid, 1);
        assert_eq!(m.body, Message::Hello);
    }

    #[test]
    fn xid_is_preserved() {
        let m = OfMessage::new(0xDEAD_BEEF, Message::BarrierRequest);
        assert_eq!(round_trip(&m).xid, 0xDEAD_BEEF);
    }
}
