//! OXM (OpenFlow Extensible Match) encoding and the [`Match`] structure.
//!
//! DFI's Policy Compilation Point builds *exact-match* rules: every
//! identifier available in the packet (in-port, MACs, EtherType, IP
//! addresses, protocol, L4 ports) is pinned, so each new flow is evaluated
//! against current policy exactly once. The proxy and switch also need to
//! decode arbitrary controller matches, so the codec is complete for the
//! `OFPXMC_OPENFLOW_BASIC` fields used in this system.

use dfi_packet::wire::{Reader, Writer};
use dfi_packet::{EtherType, MacAddr, PacketError, PacketHeaders};
use std::net::Ipv4Addr;

use crate::Result;

pub(crate) const OXM_CLASS_BASIC: u16 = 0x8000;

// OFPXMT_OFB_* field codes (OF1.3 §7.2.3.7).
pub(crate) const F_IN_PORT: u8 = 0;
pub(crate) const F_ETH_DST: u8 = 3;
pub(crate) const F_ETH_SRC: u8 = 4;
pub(crate) const F_ETH_TYPE: u8 = 5;
pub(crate) const F_VLAN_VID: u8 = 6;
pub(crate) const F_IP_PROTO: u8 = 10;
pub(crate) const F_IPV4_SRC: u8 = 11;
pub(crate) const F_IPV4_DST: u8 = 12;
pub(crate) const F_TCP_SRC: u8 = 13;
pub(crate) const F_TCP_DST: u8 = 14;
pub(crate) const F_UDP_SRC: u8 = 15;
pub(crate) const F_UDP_DST: u8 = 16;
pub(crate) const F_ARP_SPA: u8 = 22;
pub(crate) const F_ARP_TPA: u8 = 23;

/// An OpenFlow 1.3 match over the fields this system uses.
///
/// `None` means the field is wildcarded. Encoding writes only present
/// fields, in canonical field order, with correct OXM prerequisites being
/// the caller's responsibility (the helper constructors get them right).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Match {
    /// Ingress port.
    pub in_port: Option<u32>,
    /// Ethernet destination.
    pub eth_dst: Option<MacAddr>,
    /// Ethernet source.
    pub eth_src: Option<MacAddr>,
    /// EtherType.
    pub eth_type: Option<u16>,
    /// VLAN id (without the `OFPVID_PRESENT` bit; it is added on the wire).
    pub vlan_vid: Option<u16>,
    /// IP protocol.
    pub ip_proto: Option<u8>,
    /// IPv4 source.
    pub ipv4_src: Option<Ipv4Addr>,
    /// IPv4 destination.
    pub ipv4_dst: Option<Ipv4Addr>,
    /// TCP source port.
    pub tcp_src: Option<u16>,
    /// TCP destination port.
    pub tcp_dst: Option<u16>,
    /// UDP source port.
    pub udp_src: Option<u16>,
    /// UDP destination port.
    pub udp_dst: Option<u16>,
    /// ARP sender protocol address.
    pub arp_spa: Option<Ipv4Addr>,
    /// ARP target protocol address.
    pub arp_tpa: Option<Ipv4Addr>,
}

impl Match {
    /// The all-wildcard match.
    #[must_use]
    pub fn any() -> Match {
        Match::default()
    }

    /// An exact match pinning every identifier present in `headers`,
    /// received on `in_port` — the rule shape the PCP installs so that
    /// *each new flow* is checked against current policy (paper §III-B).
    #[must_use]
    pub fn exact_from_headers(in_port: u32, headers: &PacketHeaders) -> Match {
        let mut m = Match {
            in_port: Some(in_port),
            eth_src: Some(headers.eth_src),
            eth_dst: Some(headers.eth_dst),
            eth_type: Some(headers.ethertype.to_u16()),
            vlan_vid: headers.vlan,
            ..Match::default()
        };
        match headers.ethertype {
            EtherType::Ipv4 => {
                m.ipv4_src = headers.ipv4_src;
                m.ipv4_dst = headers.ipv4_dst;
                m.ip_proto = headers.ip_proto.map(|p| p.0);
                m.tcp_src = headers.tcp_src;
                m.tcp_dst = headers.tcp_dst;
                m.udp_src = headers.udp_src;
                m.udp_dst = headers.udp_dst;
            }
            EtherType::Arp => {
                m.arp_spa = headers.arp_spa;
                m.arp_tpa = headers.arp_tpa;
            }
            _ => {}
        }
        m
    }

    /// Number of fields present (used by the switch for priority-independent
    /// specificity diagnostics).
    #[must_use]
    pub fn field_count(&self) -> usize {
        let mut n = 0;
        macro_rules! c {
            ($f:expr) => {
                if $f.is_some() {
                    n += 1;
                }
            };
        }
        c!(self.in_port);
        c!(self.eth_dst);
        c!(self.eth_src);
        c!(self.eth_type);
        c!(self.vlan_vid);
        c!(self.ip_proto);
        c!(self.ipv4_src);
        c!(self.ipv4_dst);
        c!(self.tcp_src);
        c!(self.tcp_dst);
        c!(self.udp_src);
        c!(self.udp_dst);
        c!(self.arp_spa);
        c!(self.arp_tpa);
        n
    }

    /// `true` when a packet with the given headers arriving on `in_port`
    /// satisfies every present field.
    #[must_use]
    pub fn matches(&self, in_port: u32, h: &PacketHeaders) -> bool {
        fn ok<T: PartialEq + Copy>(want: Option<T>, got: Option<T>) -> bool {
            match want {
                None => true,
                Some(w) => got == Some(w),
            }
        }
        if let Some(p) = self.in_port {
            if p != in_port {
                return false;
            }
        }
        ok(self.eth_dst, Some(h.eth_dst))
            && ok(self.eth_src, Some(h.eth_src))
            && ok(self.eth_type, Some(h.ethertype.to_u16()))
            && ok(self.vlan_vid, h.vlan)
            && ok(self.ip_proto, h.ip_proto.map(|p| p.0))
            && ok(self.ipv4_src, h.ipv4_src)
            && ok(self.ipv4_dst, h.ipv4_dst)
            && ok(self.tcp_src, h.tcp_src)
            && ok(self.tcp_dst, h.tcp_dst)
            && ok(self.udp_src, h.udp_src)
            && ok(self.udp_dst, h.udp_dst)
            && ok(self.arp_spa, h.arp_spa)
            && ok(self.arp_tpa, h.arp_tpa)
    }

    /// `true` when every flow matched by `self` is also matched by `other`
    /// (i.e. `other` is equal or strictly more general field-by-field).
    #[must_use]
    pub fn is_subset_of(&self, other: &Match) -> bool {
        fn sub<T: PartialEq + Copy>(mine: Option<T>, theirs: Option<T>) -> bool {
            match theirs {
                None => true,
                Some(t) => mine == Some(t),
            }
        }
        sub(self.in_port, other.in_port)
            && sub(self.eth_dst, other.eth_dst)
            && sub(self.eth_src, other.eth_src)
            && sub(self.eth_type, other.eth_type)
            && sub(self.vlan_vid, other.vlan_vid)
            && sub(self.ip_proto, other.ip_proto)
            && sub(self.ipv4_src, other.ipv4_src)
            && sub(self.ipv4_dst, other.ipv4_dst)
            && sub(self.tcp_src, other.tcp_src)
            && sub(self.tcp_dst, other.tcp_dst)
            && sub(self.udp_src, other.udp_src)
            && sub(self.udp_dst, other.udp_dst)
            && sub(self.arp_spa, other.arp_spa)
            && sub(self.arp_tpa, other.arp_tpa)
    }

    /// Encodes the `ofp_match` structure (type `OFPMT_OXM`, padded to a
    /// multiple of 8 bytes).
    pub fn encode(&self, w: &mut Writer) {
        let start = w.len();
        w.u16(1); // OFPMT_OXM
        let len_at = w.len();
        w.u16(0); // patched below
        let put_hdr = |w: &mut Writer, field: u8, len: u8| {
            w.u16(OXM_CLASS_BASIC);
            w.u8(field << 1); // hasmask = 0
            w.u8(len);
        };
        if let Some(v) = self.in_port {
            put_hdr(w, F_IN_PORT, 4);
            w.u32(v);
        }
        if let Some(v) = self.eth_dst {
            put_hdr(w, F_ETH_DST, 6);
            w.bytes(&v.octets());
        }
        if let Some(v) = self.eth_src {
            put_hdr(w, F_ETH_SRC, 6);
            w.bytes(&v.octets());
        }
        if let Some(v) = self.eth_type {
            put_hdr(w, F_ETH_TYPE, 2);
            w.u16(v);
        }
        if let Some(v) = self.vlan_vid {
            put_hdr(w, F_VLAN_VID, 2);
            w.u16(v | 0x1000); // OFPVID_PRESENT
        }
        if let Some(v) = self.ip_proto {
            put_hdr(w, F_IP_PROTO, 1);
            w.u8(v);
        }
        if let Some(v) = self.ipv4_src {
            put_hdr(w, F_IPV4_SRC, 4);
            w.bytes(&v.octets());
        }
        if let Some(v) = self.ipv4_dst {
            put_hdr(w, F_IPV4_DST, 4);
            w.bytes(&v.octets());
        }
        if let Some(v) = self.tcp_src {
            put_hdr(w, F_TCP_SRC, 2);
            w.u16(v);
        }
        if let Some(v) = self.tcp_dst {
            put_hdr(w, F_TCP_DST, 2);
            w.u16(v);
        }
        if let Some(v) = self.udp_src {
            put_hdr(w, F_UDP_SRC, 2);
            w.u16(v);
        }
        if let Some(v) = self.udp_dst {
            put_hdr(w, F_UDP_DST, 2);
            w.u16(v);
        }
        if let Some(v) = self.arp_spa {
            put_hdr(w, F_ARP_SPA, 4);
            w.bytes(&v.octets());
        }
        if let Some(v) = self.arp_tpa {
            put_hdr(w, F_ARP_TPA, 4);
            w.bytes(&v.octets());
        }
        let unpadded = w.len() - start;
        w.patch_u16(len_at, unpadded as u16);
        let pad = (8 - unpadded % 8) % 8;
        w.zeros(pad);
    }

    /// Decodes an `ofp_match`, consuming its padding.
    pub fn decode(r: &mut Reader<'_>) -> Result<Match> {
        let match_type = r.u16()?;
        if match_type != 1 {
            return Err(PacketError::BadField {
                field: "ofp_match.type",
                value: u64::from(match_type),
            });
        }
        let length = usize::from(r.u16()?);
        if length < 4 {
            return Err(PacketError::BadField {
                field: "ofp_match.length",
                value: length as u64,
            });
        }
        let mut body = Reader::new(r.bytes(length - 4)?);
        let mut m = Match::default();
        while body.remaining() > 0 {
            let class = body.u16()?;
            let field_hm = body.u8()?;
            let field = field_hm >> 1;
            let hasmask = field_hm & 1 != 0;
            let len = usize::from(body.u8()?);
            let payload = body.bytes(len)?;
            if class != OXM_CLASS_BASIC {
                continue; // experimenter classes skipped
            }
            if hasmask {
                // This system never emits masked fields; reject rather than
                // silently mis-enforce a match.
                return Err(PacketError::BadField {
                    field: "oxm.hasmask",
                    value: u64::from(field),
                });
            }
            // Known basic fields have exactly one legal payload length
            // (OF1.3 §7.2.3.7); a TLV carrying extra payload bytes would be
            // silently truncated on re-encode, so reject it outright.
            let canonical = match field {
                F_IP_PROTO => Some(1),
                F_ETH_TYPE | F_VLAN_VID | F_TCP_SRC | F_TCP_DST | F_UDP_SRC | F_UDP_DST => Some(2),
                F_IN_PORT | F_IPV4_SRC | F_IPV4_DST | F_ARP_SPA | F_ARP_TPA => Some(4),
                F_ETH_DST | F_ETH_SRC => Some(6),
                _ => None,
            };
            if let Some(expect) = canonical {
                if len != expect {
                    return Err(PacketError::BadField {
                        field: "oxm.length",
                        value: len as u64,
                    });
                }
            }
            // A repeated field would decode last-wins and re-encode as a
            // single TLV — another silent-truncation hazard; reject.
            macro_rules! set {
                ($slot:expr, $val:expr) => {{
                    if $slot.is_some() {
                        return Err(PacketError::BadField {
                            field: "oxm.duplicate",
                            value: u64::from(field),
                        });
                    }
                    $slot = Some($val);
                }};
            }
            let mut pr = Reader::new(payload);
            match field {
                F_IN_PORT => set!(m.in_port, pr.u32()?),
                F_ETH_DST => set!(m.eth_dst, MacAddr::new(pr.array::<6>()?)),
                F_ETH_SRC => set!(m.eth_src, MacAddr::new(pr.array::<6>()?)),
                F_ETH_TYPE => set!(m.eth_type, pr.u16()?),
                F_VLAN_VID => set!(m.vlan_vid, pr.u16()? & 0x0FFF),
                F_IP_PROTO => set!(m.ip_proto, pr.u8()?),
                F_IPV4_SRC => set!(m.ipv4_src, Ipv4Addr::from(pr.array::<4>()?)),
                F_IPV4_DST => set!(m.ipv4_dst, Ipv4Addr::from(pr.array::<4>()?)),
                F_TCP_SRC => set!(m.tcp_src, pr.u16()?),
                F_TCP_DST => set!(m.tcp_dst, pr.u16()?),
                F_UDP_SRC => set!(m.udp_src, pr.u16()?),
                F_UDP_DST => set!(m.udp_dst, pr.u16()?),
                F_ARP_SPA => set!(m.arp_spa, Ipv4Addr::from(pr.array::<4>()?)),
                F_ARP_TPA => set!(m.arp_tpa, Ipv4Addr::from(pr.array::<4>()?)),
                _ => {} // unknown basic field: ignore
            }
        }
        let pad = (8 - length % 8) % 8;
        r.skip(pad)?;
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfi_packet::headers::build;

    fn full_match() -> Match {
        Match {
            in_port: Some(3),
            eth_dst: Some(MacAddr::from_index(2)),
            eth_src: Some(MacAddr::from_index(1)),
            eth_type: Some(0x0800),
            vlan_vid: Some(100),
            ip_proto: Some(6),
            ipv4_src: Some(Ipv4Addr::new(10, 0, 0, 1)),
            ipv4_dst: Some(Ipv4Addr::new(10, 0, 0, 2)),
            tcp_src: Some(49152),
            tcp_dst: Some(445),
            ..Match::default()
        }
    }

    fn round_trip(m: &Match) -> Match {
        let mut w = Writer::new();
        m.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len() % 8, 0, "padded to 8");
        let mut r = Reader::new(&bytes);
        let out = Match::decode(&mut r).unwrap();
        assert_eq!(r.remaining(), 0, "padding consumed");
        out
    }

    #[test]
    fn empty_match_round_trip() {
        assert_eq!(round_trip(&Match::any()), Match::any());
    }

    #[test]
    fn full_match_round_trip() {
        let m = full_match();
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn udp_and_arp_fields_round_trip() {
        let m = Match {
            udp_src: Some(68),
            udp_dst: Some(67),
            arp_spa: Some(Ipv4Addr::new(1, 2, 3, 4)),
            arp_tpa: Some(Ipv4Addr::new(5, 6, 7, 8)),
            ..Match::default()
        };
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn vlan_present_bit_added_and_stripped() {
        let m = Match {
            vlan_vid: Some(42),
            ..Match::default()
        };
        let mut w = Writer::new();
        m.encode(&mut w);
        let bytes = w.into_bytes();
        // find the vlan payload: header(4) + oxm hdr(4) + value(2)
        assert_eq!(u16::from_be_bytes([bytes[8], bytes[9]]), 0x1000 | 42);
        assert_eq!(round_trip(&m).vlan_vid, Some(42));
    }

    #[test]
    fn exact_from_headers_pins_all_tcp_fields() {
        let bytes = build::tcp_syn(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            49152,
            445,
        );
        let h = PacketHeaders::parse(&bytes).unwrap();
        let m = Match::exact_from_headers(7, &h);
        assert_eq!(m.in_port, Some(7));
        assert_eq!(m.eth_type, Some(0x0800));
        assert_eq!(m.ip_proto, Some(6));
        assert_eq!(m.tcp_dst, Some(445));
        assert!(m.matches(7, &h));
        assert!(!m.matches(8, &h), "different in-port must not match");
    }

    #[test]
    fn wildcards_match_anything() {
        let bytes = build::udp(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            68,
            67,
            vec![],
        );
        let h = PacketHeaders::parse(&bytes).unwrap();
        assert!(Match::any().matches(1, &h));
        let m = Match {
            eth_type: Some(0x0800),
            ip_proto: Some(17),
            ..Match::default()
        };
        assert!(m.matches(9, &h));
        let wrong = Match {
            ip_proto: Some(6),
            ..Match::default()
        };
        assert!(!wrong.matches(9, &h));
    }

    #[test]
    fn subset_relation() {
        let specific = full_match();
        let general = Match {
            eth_type: Some(0x0800),
            ip_proto: Some(6),
            ..Match::default()
        };
        assert!(specific.is_subset_of(&general));
        assert!(specific.is_subset_of(&Match::any()));
        assert!(!general.is_subset_of(&specific));
        assert!(specific.is_subset_of(&specific));
        let conflicting = Match {
            ip_proto: Some(17),
            ..Match::default()
        };
        assert!(!specific.is_subset_of(&conflicting));
    }

    #[test]
    fn masked_fields_rejected() {
        let mut w = Writer::new();
        let start = w.len();
        w.u16(1);
        w.u16(0);
        w.u16(OXM_CLASS_BASIC);
        w.u8((F_IPV4_SRC << 1) | 1); // hasmask
        w.u8(8);
        w.bytes(&[10, 0, 0, 0, 255, 255, 255, 0]);
        let len = (w.len() - start) as u16;
        w.patch_u16(2, len);
        w.zeros((8 - (len as usize) % 8) % 8);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(Match::decode(&mut r).is_err());
    }

    #[test]
    fn unknown_class_skipped() {
        let mut w = Writer::new();
        w.u16(1);
        w.u16(4 + 6); // header + one 6-byte TLV
        w.u16(0xFFFF); // experimenter class
        w.u8(0);
        w.u8(2);
        w.u16(0xBEEF);
        w.zeros(6); // pad the 10-byte match body to the 8-byte boundary
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(Match::decode(&mut r).unwrap(), Match::any());
    }

    #[test]
    fn oversize_oxm_payload_rejected() {
        // IN_PORT with length 8 instead of 4: the extra 4 payload bytes
        // would vanish on re-encode (silent truncation). Regression for a
        // bug where known fields accepted any declared length.
        let mut w = Writer::new();
        w.u16(1);
        w.u16(4 + 12); // header + one lying 12-byte TLV
        w.u16(OXM_CLASS_BASIC);
        w.u8(F_IN_PORT << 1);
        w.u8(8); // canonical length is 4
        w.bytes(&[0, 0, 0, 1, 0xDE, 0xAD, 0xBE, 0xEF]);
        let bytes = w.into_bytes();
        let err = Match::decode(&mut Reader::new(&bytes)).unwrap_err();
        assert!(matches!(
            err,
            PacketError::BadField {
                field: "oxm.length",
                ..
            }
        ));
    }

    #[test]
    fn duplicate_oxm_field_rejected() {
        // Two ETH_TYPE TLVs: last-wins decoding re-encodes as one TLV,
        // another silent-truncation hazard. Regression for a bug where
        // duplicates were accepted.
        let mut w = Writer::new();
        w.u16(1);
        w.u16(4 + 6 + 6);
        for ty in [0x0800u16, 0x0806] {
            w.u16(OXM_CLASS_BASIC);
            w.u8(F_ETH_TYPE << 1);
            w.u8(2);
            w.u16(ty);
        }
        let len = w.len();
        w.zeros((8 - len % 8) % 8);
        let bytes = w.into_bytes();
        let err = Match::decode(&mut Reader::new(&bytes)).unwrap_err();
        assert!(matches!(
            err,
            PacketError::BadField {
                field: "oxm.duplicate",
                ..
            }
        ));
    }

    #[test]
    fn non_oxm_match_type_rejected() {
        let mut r = Reader::new(&[0, 0, 0, 4, 0, 0, 0, 0]); // OFPMT_STANDARD
        assert!(Match::decode(&mut r).is_err());
    }

    #[test]
    fn field_count_counts_present_fields() {
        assert_eq!(Match::any().field_count(), 0);
        assert_eq!(full_match().field_count(), 10);
    }
}
