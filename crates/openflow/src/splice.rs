//! In-place table-id splicing over raw OpenFlow 1.3 frames.
//!
//! The DFI proxy's only steady-state mutation is shifting `table_id`
//! references (paper §IV-B): +1 on the controller→switch path, −1 on the
//! switch→controller path. Decoding a whole message, bumping one byte and
//! re-encoding it is semantically clean but costs several allocations per
//! frame. This module is the fast path: a cursor-based scanner that
//! validates the frame byte-by-byte and patches the table ids directly in
//! the wire buffer.
//!
//! # Soundness contract
//!
//! Falling back to the decode path is always safe — the decode→rewrite→
//! re-encode pipeline in `dfi-core` *is* the reference implementation. The
//! scanner therefore only needs to be **sound, not complete**: it may
//! return [`Splice::Fallback`] for any frame, but it must return one of
//! the definitive outcomes only when it is certain the decode path would
//! (a) accept the frame and (b) re-encode it to exactly these bytes with
//! only the table ids changed. Concretely that means every frame certified
//! here must be *canonical*: all padding bytes zero, OXM TLVs in strictly
//! increasing field order with canonical lengths, no experimenter or
//! unknown OXM fields, no masked fields, fixed-size structures at their
//! exact lengths, multipart flags zero, and the header length equal to the
//! buffer length. Anything else — including every malformed frame — falls
//! back, where the decode path either normalizes or rejects it exactly as
//! it did before this module existed.
//!
//! Validation runs in two phases: first the entire frame is scanned and
//! patch offsets are collected; only after the whole frame has been
//! certified are any bytes written. A rejected or fallback frame is never
//! left half-patched.

use crate::action::OFPAT_OUTPUT;
use crate::instruction::{
    OFPIT_APPLY_ACTIONS, OFPIT_CLEAR_ACTIONS, OFPIT_GOTO_TABLE, OFPIT_WRITE_ACTIONS,
};
use crate::oxm::{
    F_ARP_SPA, F_ARP_TPA, F_ETH_DST, F_ETH_SRC, F_ETH_TYPE, F_IN_PORT, F_IPV4_DST, F_IPV4_SRC,
    F_IP_PROTO, F_TCP_DST, F_TCP_SRC, F_UDP_DST, F_UDP_SRC, F_VLAN_VID, OXM_CLASS_BASIC,
};
use crate::stats::{OFPMP_FLOW, OFPMP_PORT_DESC, OFPMP_TABLE};
use crate::{table, NO_BUFFER, OFP_VERSION};

/// Outcome of an in-place splice attempt. See the module docs for the
/// contract behind each variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Splice {
    /// The frame is canonical and carries no table reference that needs
    /// changing; forward it as-is.
    Unchanged,
    /// The frame was canonical and its table references were patched in
    /// place; forward the (mutated) buffer.
    Patched,
    /// The frame must not be forwarded at all (it reveals Table 0 to the
    /// controller). Matches the oracle returning `None`.
    Suppress,
    /// The rewrite cannot be expressed (a table id would shift past the
    /// switch's last table); the proxy must refuse the message. Matches
    /// `Upstream::Reject`. The buffer is untouched.
    Reject,
    /// The scanner cannot certify byte-identity with the decode path;
    /// the caller must run decode→rewrite→re-encode. The buffer is
    /// untouched.
    Fallback,
}

// OpenFlow 1.3 message type codes (mirrors the dispatch in `msg.rs`).
const T_HELLO: u8 = 0;
const T_ERROR: u8 = 1;
const T_ECHO_REQUEST: u8 = 2;
const T_ECHO_REPLY: u8 = 3;
const T_FEATURES_REQUEST: u8 = 5;
const T_FEATURES_REPLY: u8 = 6;
const T_PACKET_IN: u8 = 10;
const T_FLOW_REMOVED: u8 = 11;
const T_PACKET_OUT: u8 = 13;
const T_FLOW_MOD: u8 = 14;
const T_MULTIPART_REQUEST: u8 = 18;
const T_MULTIPART_REPLY: u8 = 19;
const T_BARRIER_REQUEST: u8 = 20;
const T_BARRIER_REPLY: u8 = 21;

/// Upper bound on patch sites collected per frame. A frame with more
/// (only possible for very large stats replies) falls back to the decode
/// path rather than growing the set on the heap.
const MAX_PATCHES: usize = 64;

/// A fixed-capacity set of byte offsets to patch, filled during the
/// validation phase and applied only once the whole frame is certified.
struct Patches {
    offs: [usize; MAX_PATCHES],
    len: usize,
}

impl Patches {
    fn new() -> Self {
        Patches {
            offs: [0; MAX_PATCHES],
            len: 0,
        }
    }

    /// Records an offset; `None` (→ fallback) when the set is full.
    fn push(&mut self, off: usize) -> Option<()> {
        if self.len == MAX_PATCHES {
            return None;
        }
        self.offs[self.len] = off;
        self.len += 1;
        Some(())
    }

    fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.offs[..self.len].iter().copied()
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[inline]
fn u16_at(buf: &[u8], off: usize) -> Option<u16> {
    let hi = *buf.get(off)?;
    let lo = *buf.get(off.checked_add(1)?)?;
    Some(u16::from_be_bytes([hi, lo]))
}

/// `true` iff `buf[start..end]` is in bounds and all zero. Out-of-bounds
/// reads as `false`, which every caller maps to fallback — the same
/// terminal outcome a bounds error deserves.
#[inline]
fn all_zero(buf: &[u8], start: usize, end: usize) -> bool {
    start <= end
        && buf
            .get(start..end)
            .is_some_and(|s| s.iter().all(|&b| b == 0))
}

/// Checks the fixed OpenFlow header and that the header length matches
/// the buffer exactly (the callers frame messages one-to-one; a length
/// mismatch means either truncation or trailing bytes the re-encoder
/// would drop).
fn header_ok(frame: &[u8]) -> bool {
    frame.len() >= 8
        && frame.len() <= usize::from(u16::MAX)
        && frame[0] == OFP_VERSION
        && usize::from(u16::from_be_bytes([frame[2], frame[3]])) == frame.len()
}

/// Canonical payload length for a known basic OXM field (mirrors the
/// table in `oxm.rs`); `None` for unknown fields, which the decoder
/// would silently drop on re-encode.
fn canonical_oxm_len(field: u8) -> Option<usize> {
    match field {
        F_IP_PROTO => Some(1),
        F_ETH_TYPE | F_VLAN_VID | F_TCP_SRC | F_TCP_DST | F_UDP_SRC | F_UDP_DST => Some(2),
        F_IN_PORT | F_IPV4_SRC | F_IPV4_DST | F_ARP_SPA | F_ARP_TPA => Some(4),
        F_ETH_DST | F_ETH_SRC => Some(6),
        _ => None,
    }
}

/// Validates a canonical `ofp_match` starting at `pos` and returns the
/// offset just past its padding. Canonical means: type 1, TLVs tiling the
/// body exactly in strictly increasing field order (which also rules out
/// duplicates), basic class only, no masks, canonical lengths, VLAN VIDs
/// carrying the present bit, and zero padding to the 8-byte boundary.
fn scan_match(frame: &[u8], pos: usize, region_end: usize) -> Option<usize> {
    if region_end > frame.len() {
        return None;
    }
    let mtype = u16_at(frame, pos)?;
    let mlen = usize::from(u16_at(frame, pos.checked_add(2)?)?);
    if mtype != 1 || mlen < 4 {
        return None;
    }
    let body_end = pos.checked_add(mlen)?;
    if body_end > region_end {
        return None;
    }
    let mut cur = pos + 4;
    let mut prev_field: i16 = -1;
    while cur < body_end {
        if body_end - cur < 4 {
            return None;
        }
        if u16_at(frame, cur)? != OXM_CLASS_BASIC {
            return None; // experimenter TLVs are dropped on re-encode
        }
        let field_hasmask = *frame.get(cur + 2)?;
        if field_hasmask & 1 != 0 {
            return None; // masked fields are rejected by the decoder
        }
        let field = field_hasmask >> 1;
        let plen = usize::from(*frame.get(cur + 3)?);
        if plen != canonical_oxm_len(field)? {
            return None;
        }
        // The encoder emits fields in strictly increasing code order;
        // any other order (or a duplicate) re-encodes differently.
        if i16::from(field) <= prev_field {
            return None;
        }
        prev_field = i16::from(field);
        let payload_end = cur + 4 + plen;
        if payload_end > body_end {
            return None;
        }
        if field == F_VLAN_VID {
            // The decoder masks to the low 12 bits and the encoder ORs the
            // present bit back in; only this exact shape round-trips.
            let v = u16_at(frame, cur + 4)?;
            if v & 0xF000 != 0x1000 {
                return None;
            }
        }
        cur = payload_end;
    }
    let pad = (8 - mlen % 8) % 8;
    let padded_end = body_end.checked_add(pad)?;
    if padded_end > region_end || !all_zero(frame, body_end, padded_end) {
        return None;
    }
    Some(padded_end)
}

/// Validates a canonical action list tiling `start..end` exactly.
fn scan_actions(frame: &[u8], start: usize, end: usize) -> Option<()> {
    let mut cur = start;
    while cur < end {
        if end - cur < 4 {
            return None;
        }
        let kind = u16_at(frame, cur)?;
        let alen = usize::from(u16_at(frame, cur + 2)?);
        if alen < 4 {
            return None;
        }
        let aend = cur.checked_add(alen)?;
        if aend > end {
            return None;
        }
        if kind == OFPAT_OUTPUT {
            // Fixed 16-byte struct; the 6 trailing pad bytes are ignored
            // by the decoder and re-emitted as zero.
            if alen != 16 || !all_zero(frame, cur + 10, cur + 16) {
                return None;
            }
        }
        // Other action kinds round-trip verbatim (header + raw body).
        cur = aend;
    }
    Some(())
}

/// Validates a canonical instruction list tiling `start..end` exactly,
/// collecting the absolute offsets of `GotoTable` operand bytes.
fn scan_instructions(frame: &[u8], start: usize, end: usize, gotos: &mut Patches) -> Option<()> {
    let mut cur = start;
    while cur < end {
        if end - cur < 4 {
            return None;
        }
        let kind = u16_at(frame, cur)?;
        let ilen = usize::from(u16_at(frame, cur + 2)?);
        if ilen < 4 {
            return None;
        }
        let iend = cur.checked_add(ilen)?;
        if iend > end {
            return None;
        }
        match kind {
            OFPIT_GOTO_TABLE => {
                if ilen != 8 || !all_zero(frame, cur + 5, cur + 8) {
                    return None;
                }
                gotos.push(cur + 4)?;
            }
            OFPIT_CLEAR_ACTIONS if (ilen != 8 || !all_zero(frame, cur + 4, cur + 8)) => {
                return None;
            }
            OFPIT_APPLY_ACTIONS | OFPIT_WRITE_ACTIONS => {
                if ilen < 8 || !all_zero(frame, cur + 4, cur + 8) {
                    return None;
                }
                scan_actions(frame, cur + 8, iend)?;
            }
            _ => {} // preserved verbatim by the codec
        }
        cur = iend;
    }
    Some(())
}

/// Splices a controller→switch frame in place, shifting every table
/// reference up by one so the controller's "table N" lands in physical
/// table N+1. Mirrors `rewrite_controller_to_switch`: a shift past the
/// switch's last table is [`Splice::Reject`], and a wildcard-table
/// flow-mod (which expands structurally) falls back.
pub fn shift_up(frame: &mut [u8], n_tables: u8) -> Splice {
    if !header_ok(frame) {
        return Splice::Fallback;
    }
    match frame[1] {
        // Body-less messages: the decoder rejects trailing body bytes.
        T_HELLO | T_FEATURES_REQUEST | T_BARRIER_REQUEST | T_BARRIER_REPLY => {
            if frame.len() == 8 {
                Splice::Unchanged
            } else {
                Splice::Fallback
            }
        }
        // Echo bodies round-trip verbatim.
        T_ECHO_REQUEST | T_ECHO_REPLY => Splice::Unchanged,
        // Error: type + code + verbatim data.
        T_ERROR => {
            if frame.len() >= 12 {
                Splice::Unchanged
            } else {
                Splice::Fallback
            }
        }
        T_FLOW_MOD => flow_mod_up(frame, n_tables).unwrap_or(Splice::Fallback),
        T_MULTIPART_REQUEST => multipart_request_up(frame, n_tables).unwrap_or(Splice::Fallback),
        T_PACKET_OUT => packet_out_up(frame).unwrap_or(Splice::Fallback),
        // Anything else upstream is off the hot path; let the decode
        // path normalize or reject it.
        _ => Splice::Fallback,
    }
}

/// Splices a switch→controller frame in place, hiding Table 0: its
/// `FlowRemoved` notifications are suppressed, all other table ids are
/// decremented, and the advertised table count shrinks by one. Mirrors
/// `rewrite_switch_to_controller`; stats replies that must *filter out*
/// a Table-0 entry change length and therefore fall back.
pub fn shift_down(frame: &mut [u8]) -> Splice {
    if !header_ok(frame) {
        return Splice::Fallback;
    }
    match frame[1] {
        T_HELLO | T_FEATURES_REQUEST | T_BARRIER_REQUEST | T_BARRIER_REPLY => {
            if frame.len() == 8 {
                Splice::Unchanged
            } else {
                Splice::Fallback
            }
        }
        T_ECHO_REQUEST | T_ECHO_REPLY => Splice::Unchanged,
        T_ERROR => {
            if frame.len() >= 12 {
                Splice::Unchanged
            } else {
                Splice::Fallback
            }
        }
        T_FEATURES_REPLY => features_reply_down(frame).unwrap_or(Splice::Fallback),
        T_PACKET_IN => packet_in_down(frame).unwrap_or(Splice::Fallback),
        T_FLOW_REMOVED => flow_removed_down(frame).unwrap_or(Splice::Fallback),
        T_MULTIPART_REPLY => multipart_reply_down(frame).unwrap_or(Splice::Fallback),
        _ => Splice::Fallback,
    }
}

// Fixed-offset map (absolute, from frame start) for the bodies below:
// FlowMod:      cookie 8..16, mask 16..24, table 24, command 25,
//               idle/hard/prio 26..32, buffer/port/group 32..44,
//               flags 44..46, pad 46..48, match 48.., instructions.
// PacketIn:     buffer 8..12, total_len 12..14, reason 14, table 15,
//               cookie 16..24, match 24.., pad 2, data.
// FlowRemoved:  cookie 8..16, prio 16..18, reason 18, table 19,
//               durations/timeouts/counts 20..48, match 48..end.
// Multipart:    kind 8..10, flags 10..12, pad 12..16, body 16..
// FeaturesReply: dpid 8..16, buffers 16..20, n_tables 20, aux 21,
//               pad 22..24, capabilities 24..28, reserved 28..32.

fn flow_mod_up(frame: &mut [u8], n_tables: u8) -> Option<Splice> {
    let end = frame.len();
    if end < 56 {
        return None; // header + 40-byte fixed part + empty match
    }
    let table_id = frame[24];
    if table_id == table::ALL {
        return None; // expands to one flow-mod per table: structural
    }
    if frame[25] > 4 {
        return None; // FlowModCommand::from_u8 range
    }
    if !all_zero(frame, 46, 48) {
        return None;
    }
    let match_end = scan_match(frame, 48, end)?;
    let mut gotos = Patches::new();
    scan_instructions(frame, match_end, end, &mut gotos)?;
    // Frame fully certified; now decide and patch.
    if u16::from(table_id) + 1 >= u16::from(n_tables) {
        return Some(Splice::Reject);
    }
    for off in gotos.iter() {
        if u16::from(frame[off]) + 1 >= u16::from(n_tables) {
            return Some(Splice::Reject);
        }
    }
    frame[24] = table_id + 1;
    for off in gotos.iter() {
        frame[off] += 1;
    }
    Some(Splice::Patched)
}

fn multipart_request_up(frame: &mut [u8], n_tables: u8) -> Option<Splice> {
    let end = frame.len();
    let kind = u16_at(frame, 8)?;
    if u16_at(frame, 10)? != 0 || !all_zero(frame, 12, 16) {
        return None; // flags are ignored and re-encoded as zero
    }
    match kind {
        OFPMP_FLOW => {
            if end < 56 {
                return None; // 16 + 32-byte fixed part + empty match
            }
            if !all_zero(frame, 17, 20) || !all_zero(frame, 28, 32) {
                return None;
            }
            if scan_match(frame, 48, end)? != end {
                return None;
            }
            let table_id = frame[16];
            if table_id == table::ALL {
                // Wildcard stays wildcard; the reply path filters.
                return Some(Splice::Unchanged);
            }
            if u16::from(table_id) + 1 >= u16::from(n_tables) {
                return Some(Splice::Reject);
            }
            frame[16] = table_id + 1;
            Some(Splice::Patched)
        }
        // Table / port-desc requests have empty bodies.
        OFPMP_TABLE | OFPMP_PORT_DESC => (end == 16).then_some(Splice::Unchanged),
        // Unknown multipart kinds round-trip verbatim.
        _ => Some(Splice::Unchanged),
    }
}

fn packet_out_up(frame: &mut [u8]) -> Option<Splice> {
    let end = frame.len();
    scan_packet_out(frame, end)?;
    // Trailing packet data rounds-trip verbatim.
    Some(Splice::Unchanged)
}

/// Validates a canonical packet-out body and returns the offset just past
/// the action list (the start of any trailing packet data).
fn scan_packet_out(frame: &[u8], end: usize) -> Option<usize> {
    if end < 24 {
        return None;
    }
    let actions_len = usize::from(u16_at(frame, 16)?);
    if !all_zero(frame, 18, 24) {
        return None;
    }
    let actions_end = 24usize.checked_add(actions_len)?;
    if actions_end > end {
        return None;
    }
    scan_actions(frame, 24, actions_end)?;
    Some(actions_end)
}

/// Rewrites a packet-out's switch-buffer reference in place through
/// `remap`, which translates a controller-visible buffer id to the
/// physical one (or `None` when the reference is stale — e.g. the proxy
/// re-punted the buffered packet under its own id and has since flushed
/// it).
///
/// Outcomes:
///
/// * [`NO_BUFFER`] (the only id the bundled simulated controllers ever
///   emit) passes through [`Splice::Unchanged`];
/// * a live remap patches bytes 8..12 in place ([`Splice::Patched`]);
/// * a stale reference with inline packet data degrades to [`NO_BUFFER`]
///   (the switch replays the inline copy instead of releasing an
///   unvetted buffer);
/// * a stale reference with no inline data is [`Splice::Reject`] — there
///   is nothing safe to emit, and releasing an unknown buffer could
///   replay a packet the current policy epoch has never decided.
///
/// Same two-phase contract as `shift_up`/`shift_down`: the frame is fully
/// certified before any byte is written, and non-canonical frames return
/// [`Splice::Fallback`] untouched for the decode path in `dfi-core`.
pub fn remap_packet_out_buffer(frame: &mut [u8], remap: impl Fn(u32) -> Option<u32>) -> Splice {
    if !header_ok(frame) || frame[1] != T_PACKET_OUT {
        return Splice::Fallback;
    }
    let end = frame.len();
    let Some(actions_end) = scan_packet_out(frame, end) else {
        return Splice::Fallback;
    };
    let buffer_id = u32::from_be_bytes([frame[8], frame[9], frame[10], frame[11]]);
    if buffer_id == NO_BUFFER {
        return Splice::Unchanged;
    }
    let new = match remap(buffer_id) {
        Some(new) => new,
        // Stale reference: fall back to the inline packet data when the
        // frame carries any, otherwise refuse the release outright.
        None if actions_end < end => NO_BUFFER,
        None => return Splice::Reject,
    };
    if new == buffer_id {
        return Splice::Unchanged;
    }
    frame[8..12].copy_from_slice(&new.to_be_bytes());
    Splice::Patched
}

fn features_reply_down(frame: &mut [u8]) -> Option<Splice> {
    if frame.len() != 32 || !all_zero(frame, 22, 24) || !all_zero(frame, 28, 32) {
        return None;
    }
    let n = frame[20];
    if n == 0 {
        return Some(Splice::Unchanged); // saturating: already zero
    }
    frame[20] = n - 1;
    Some(Splice::Patched)
}

fn packet_in_down(frame: &mut [u8]) -> Option<Splice> {
    let end = frame.len();
    if end < 34 {
        return None; // 24-byte fixed part + empty match + 2 pad
    }
    if frame[14] > 2 {
        return None; // PacketInReason::from_u8 range
    }
    let match_end = scan_match(frame, 24, end)?;
    let pad_end = match_end.checked_add(2)?;
    if !all_zero(frame, match_end, pad_end) {
        return None;
    }
    // Packet data (pad_end..end) rounds-trip verbatim.
    let table_id = frame[15];
    if table_id == 0 {
        return Some(Splice::Unchanged); // saturating decrement
    }
    frame[15] = table_id - 1;
    Some(Splice::Patched)
}

fn flow_removed_down(frame: &mut [u8]) -> Option<Splice> {
    let end = frame.len();
    if end < 56 {
        return None; // 48-byte fixed part + empty match
    }
    if frame[18] > 2 {
        return None; // FlowRemovedReason::from_u8 range
    }
    if scan_match(frame, 48, end)? != end {
        return None;
    }
    let table_id = frame[19];
    if table_id == 0 {
        return Some(Splice::Suppress); // the controller never sees Table 0
    }
    frame[19] = table_id - 1;
    Some(Splice::Patched)
}

fn multipart_reply_down(frame: &mut [u8]) -> Option<Splice> {
    let end = frame.len();
    let kind = u16_at(frame, 8)?;
    if u16_at(frame, 10)? != 0 || !all_zero(frame, 12, 16) {
        return None;
    }
    match kind {
        OFPMP_FLOW => {
            // Entry layout (relative): length 0..2, table 2, pad 3,
            // durations 4..12, prio/idle/hard/flags 12..20, pad 20..24,
            // cookie/packets/bytes 24..48, match 48.., instructions.
            let mut tables = Patches::new();
            let mut gotos = Patches::new();
            let mut pos = 16;
            while pos < end {
                let entry_len = usize::from(u16_at(frame, pos)?);
                if entry_len < 56 {
                    return None; // 48-byte fixed part + empty match
                }
                let entry_end = pos.checked_add(entry_len)?;
                if entry_end > end {
                    return None;
                }
                if frame[pos + 2] == 0 {
                    // A Table-0 entry must be filtered out entirely —
                    // that changes the frame length, so fall back.
                    return None;
                }
                if frame[pos + 3] != 0 || !all_zero(frame, pos + 20, pos + 24) {
                    return None;
                }
                let match_end = scan_match(frame, pos + 48, entry_end)?;
                scan_instructions(frame, match_end, entry_end, &mut gotos)?;
                tables.push(pos + 2)?;
                pos = entry_end;
            }
            let mut changed = false;
            for off in tables.iter() {
                frame[off] -= 1; // never zero: checked above
                changed = true;
            }
            for off in gotos.iter() {
                let v = frame[off];
                if v > 0 {
                    frame[off] = v - 1; // saturating, like the oracle
                    changed = true;
                }
            }
            Some(if changed {
                Splice::Patched
            } else {
                Splice::Unchanged
            })
        }
        OFPMP_TABLE => {
            // 24-byte entries: table 0, pad 1..4, counters 4..24.
            if !(end - 16).is_multiple_of(24) {
                return None;
            }
            let mut tables = Patches::new();
            let mut pos = 16;
            while pos < end {
                if frame[pos] == 0 {
                    return None; // filtered out: structural
                }
                if !all_zero(frame, pos + 1, pos + 4) {
                    return None;
                }
                tables.push(pos)?;
                pos += 24;
            }
            let patched = !tables.is_empty();
            for off in tables.iter() {
                frame[off] -= 1;
            }
            Some(if patched {
                Splice::Patched
            } else {
                Splice::Unchanged
            })
        }
        // Port names re-encode through a NUL-trimmed string; certifying
        // byte-identity needs the full string rules. Rare — fall back.
        OFPMP_PORT_DESC => None,
        // Unknown multipart kinds round-trip verbatim.
        _ => Some(Splice::Unchanged),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        Action, FlowMod, Instruction, Match, Message, MultipartRequest, OfMessage, PacketIn,
    };

    const N_TABLES: u8 = 8;

    fn fm_frame(table_id: u8, instructions: Vec<Instruction>) -> Vec<u8> {
        OfMessage::new(
            7,
            Message::FlowMod(FlowMod {
                table_id,
                priority: 10,
                instructions,
                ..FlowMod::add()
            }),
        )
        .encode()
    }

    #[test]
    fn flow_mod_patches_table_and_goto() {
        let mut frame = fm_frame(
            2,
            vec![
                Instruction::ApplyActions(vec![Action::output(3)]),
                Instruction::GotoTable(4),
            ],
        );
        let reference = {
            let decoded = OfMessage::decode(&frame).unwrap();
            match decoded.body {
                Message::FlowMod(mut fm) => {
                    fm.table_id += 1;
                    for i in &mut fm.instructions {
                        if let Instruction::GotoTable(t) = i {
                            *t += 1;
                        }
                    }
                    OfMessage::new(decoded.xid, Message::FlowMod(fm)).encode()
                }
                _ => unreachable!(),
            }
        };
        assert_eq!(shift_up(&mut frame, N_TABLES), Splice::Patched);
        assert_eq!(frame, reference);
    }

    #[test]
    fn flow_mod_at_last_table_rejected_untouched() {
        let mut frame = fm_frame(N_TABLES - 1, vec![]);
        let before = frame.clone();
        assert_eq!(shift_up(&mut frame, N_TABLES), Splice::Reject);
        assert_eq!(frame, before, "reject must not half-patch");
    }

    #[test]
    fn goto_past_last_table_rejected_untouched() {
        let mut frame = fm_frame(0, vec![Instruction::GotoTable(N_TABLES - 1)]);
        let before = frame.clone();
        assert_eq!(shift_up(&mut frame, N_TABLES), Splice::Reject);
        assert_eq!(frame, before);
    }

    #[test]
    fn wildcard_flow_mod_falls_back() {
        let mut frame = fm_frame(table::ALL, vec![]);
        assert_eq!(shift_up(&mut frame, N_TABLES), Splice::Fallback);
    }

    #[test]
    fn length_lying_frame_falls_back_untouched() {
        let mut frame = fm_frame(0, vec![Instruction::GotoTable(1)]);
        // Header claims one byte more than the buffer holds.
        let lied = (frame.len() + 1) as u16;
        frame[2..4].copy_from_slice(&lied.to_be_bytes());
        let before = frame.clone();
        assert_eq!(shift_up(&mut frame, N_TABLES), Splice::Fallback);
        assert_eq!(frame, before);
    }

    #[test]
    fn nonzero_pad_falls_back() {
        let mut frame = fm_frame(0, vec![]);
        frame[46] = 0xAA; // flow-mod pad byte
        assert_eq!(shift_up(&mut frame, N_TABLES), Splice::Fallback);
    }

    #[test]
    fn barrier_and_hello_pass_through() {
        for body in [Message::Hello, Message::BarrierRequest] {
            let mut frame = OfMessage::new(1, body).encode();
            let before = frame.clone();
            assert_eq!(shift_up(&mut frame, N_TABLES), Splice::Unchanged);
            assert_eq!(frame, before);
        }
    }

    #[test]
    fn flow_stats_request_patches_table() {
        let mut frame = OfMessage::new(
            2,
            Message::MultipartRequest(MultipartRequest::Flow {
                table_id: 3,
                out_port: crate::port::ANY,
                out_group: crate::group::ANY,
                cookie: 0,
                cookie_mask: 0,
                mat: Match::any(),
            }),
        )
        .encode();
        assert_eq!(shift_up(&mut frame, N_TABLES), Splice::Patched);
        match OfMessage::decode(&frame).unwrap().body {
            Message::MultipartRequest(MultipartRequest::Flow { table_id, .. }) => {
                assert_eq!(table_id, 4);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wildcard_stats_request_unchanged() {
        let mut frame =
            OfMessage::new(2, Message::MultipartRequest(MultipartRequest::all_flows())).encode();
        let before = frame.clone();
        assert_eq!(shift_up(&mut frame, N_TABLES), Splice::Unchanged);
        assert_eq!(frame, before);
    }

    #[test]
    fn packet_in_decrements_table() {
        let mut frame = OfMessage::new(
            5,
            Message::PacketIn(PacketIn::table_miss(1, 4, vec![9; 20])),
        )
        .encode();
        assert_eq!(shift_down(&mut frame), Splice::Patched);
        match OfMessage::decode(&frame).unwrap().body {
            Message::PacketIn(pi) => assert_eq!(pi.table_id, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn packet_in_table_zero_unchanged() {
        let mut frame =
            OfMessage::new(5, Message::PacketIn(PacketIn::table_miss(1, 0, vec![]))).encode();
        let before = frame.clone();
        assert_eq!(shift_down(&mut frame), Splice::Unchanged);
        assert_eq!(frame, before);
    }

    #[test]
    fn non_canonical_oxm_order_falls_back() {
        // Hand-build a flow-mod whose match has eth_type before in_port:
        // decodes fine, but re-encodes in sorted order → not canonical.
        let mat_tlvs: &[u8] = &[
            0x80,
            0x00,
            0x05 << 1,
            2,
            0x08,
            0x00, // eth_type 0x0800
            0x80,
            0x00,
            0x00,
            4,
            0,
            0,
            0,
            1, // in_port 1
        ];
        let mut body = Vec::new();
        body.extend_from_slice(&[0u8; 16]); // cookie + mask
        body.push(0); // table
        body.push(0); // command Add
        body.extend_from_slice(&[0u8; 20]); // timeouts..flags
        body.extend_from_slice(&[0, 0]); // pad
        body.extend_from_slice(&[0, 1, 0, (4 + mat_tlvs.len()) as u8]);
        body.extend_from_slice(mat_tlvs);
        let pad = (8 - (4 + mat_tlvs.len()) % 8) % 8;
        body.extend_from_slice(&vec![0u8; pad]);
        let mut frame = vec![OFP_VERSION, T_FLOW_MOD, 0, 0, 0, 0, 0, 7];
        frame.extend_from_slice(&body);
        let len = frame.len() as u16;
        frame[2..4].copy_from_slice(&len.to_be_bytes());
        // Sanity: the decoder accepts this frame…
        assert!(OfMessage::decode(&frame).is_ok());
        // …but the splicer must not certify it.
        assert_eq!(shift_up(&mut frame, N_TABLES), Splice::Fallback);
    }
}
