//! Multipart (statistics) messages (OF1.3 §7.3.5): flow and table stats.
//!
//! The DFI Proxy must rewrite table references inside statistics traffic so
//! the controller never learns that Table 0 exists; the codec therefore
//! models flow-stats requests/replies and table-stats replies structurally.

use dfi_packet::wire::{Reader, Writer};
use dfi_packet::PacketError;

use crate::instruction::Instruction;
use crate::oxm::Match;
use crate::{group, port, table, Result};

pub(crate) const OFPMP_FLOW: u16 = 1;
pub(crate) const OFPMP_TABLE: u16 = 3;
pub(crate) const OFPMP_PORT_DESC: u16 = 13;

/// A multipart request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MultipartRequest {
    /// Per-flow statistics for rules in `table_id` (or [`table::ALL`])
    /// matching the filter.
    Flow {
        /// Table to query.
        table_id: u8,
        /// Output-port filter ([`port::ANY`] = no filter).
        out_port: u32,
        /// Output-group filter ([`group::ANY`] = no filter).
        out_group: u32,
        /// Cookie filter value.
        cookie: u64,
        /// Cookie filter mask (0 = no filter).
        cookie_mask: u64,
        /// Match filter.
        mat: Match,
    },
    /// Per-table statistics.
    Table,
    /// Port descriptions (used for topology discovery).
    PortDesc,
    /// Any other multipart type, preserved raw.
    Other {
        /// Multipart type code.
        kind: u16,
        /// Raw body.
        body: Vec<u8>,
    },
}

impl MultipartRequest {
    /// A flow-stats request for every rule in every table.
    #[must_use]
    pub fn all_flows() -> MultipartRequest {
        MultipartRequest::Flow {
            table_id: table::ALL,
            out_port: port::ANY,
            out_group: group::ANY,
            cookie: 0,
            cookie_mask: 0,
            mat: Match::default(),
        }
    }

    /// Appends the message body (after the OpenFlow header) to `buf`;
    /// allocation-free once `buf` has warm capacity.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let mut w = Writer::from_vec(std::mem::take(buf));
        self.encode_body(&mut w);
        *buf = w.into_bytes();
    }

    /// Serializes the body (after the OpenFlow header).
    pub fn encode_body(&self, w: &mut Writer) {
        match self {
            MultipartRequest::Flow {
                table_id,
                out_port,
                out_group,
                cookie,
                cookie_mask,
                mat,
            } => {
                w.u16(OFPMP_FLOW);
                w.u16(0); // flags
                w.zeros(4);
                w.u8(*table_id);
                w.zeros(3);
                w.u32(*out_port);
                w.u32(*out_group);
                w.zeros(4);
                w.u64(*cookie);
                w.u64(*cookie_mask);
                mat.encode(w);
            }
            MultipartRequest::Table => {
                w.u16(OFPMP_TABLE);
                w.u16(0);
                w.zeros(4);
            }
            MultipartRequest::PortDesc => {
                w.u16(OFPMP_PORT_DESC);
                w.u16(0);
                w.zeros(4);
            }
            MultipartRequest::Other { kind, body } => {
                w.u16(*kind);
                w.u16(0);
                w.zeros(4);
                w.bytes(body);
            }
        }
    }

    /// Parses the body.
    pub fn decode_body(r: &mut Reader<'_>) -> Result<MultipartRequest> {
        let kind = r.u16()?;
        let _flags = r.u16()?;
        r.skip(4)?;
        match kind {
            OFPMP_FLOW => {
                let table_id = r.u8()?;
                r.skip(3)?;
                let out_port = r.u32()?;
                let out_group = r.u32()?;
                r.skip(4)?;
                let cookie = r.u64()?;
                let cookie_mask = r.u64()?;
                let mat = Match::decode(r)?;
                Ok(MultipartRequest::Flow {
                    table_id,
                    out_port,
                    out_group,
                    cookie,
                    cookie_mask,
                    mat,
                })
            }
            OFPMP_TABLE => Ok(MultipartRequest::Table),
            OFPMP_PORT_DESC => Ok(MultipartRequest::PortDesc),
            other => Ok(MultipartRequest::Other {
                kind: other,
                body: r.rest().to_vec(),
            }),
        }
    }
}

/// One `ofp_port` entry in a port-description reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortDescEntry {
    /// Port number.
    pub port_no: u32,
    /// The port's hardware address.
    pub hw_addr: [u8; 6],
    /// Interface name (at most 15 bytes are preserved).
    pub name: String,
}

impl PortDescEntry {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.port_no);
        w.zeros(4);
        w.bytes(&self.hw_addr);
        w.zeros(2);
        let mut name = [0u8; 16];
        let bytes = self.name.as_bytes();
        let n = bytes.len().min(15);
        name[..n].copy_from_slice(&bytes[..n]);
        w.bytes(&name);
        // config, state, curr, advertised, supported, peer, curr/max speed
        w.zeros(8 * 4);
    }

    fn decode(r: &mut Reader<'_>) -> Result<PortDescEntry> {
        let port_no = r.u32()?;
        r.skip(4)?;
        let hw_addr = r.array::<6>()?;
        r.skip(2)?;
        let raw = r.array::<16>()?;
        // The name field must be NUL-terminated (so at most 15 name bytes;
        // the encoder can emit no more) and valid UTF-8: `from_utf8_lossy`
        // here used to mangle garbage names into replacement characters
        // that re-encode differently — a silent-corruption hazard.
        let end = raw
            .iter()
            .position(|&b| b == 0)
            .ok_or(PacketError::BadField {
                field: "port.name",
                value: u64::from(raw[15]),
            })?;
        let name = std::str::from_utf8(&raw[..end])
            .map_err(|_| PacketError::BadField {
                field: "port.name",
                value: u64::from(raw[0]),
            })?
            .to_owned();
        r.skip(8 * 4)?;
        Ok(PortDescEntry {
            port_no,
            hw_addr,
            name,
        })
    }
}

/// One entry in a flow-stats reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowStatsEntry {
    /// Table the rule lives in.
    pub table_id: u8,
    /// Seconds installed.
    pub duration_sec: u32,
    /// Additional nanoseconds.
    pub duration_nsec: u32,
    /// Rule priority.
    pub priority: u16,
    /// Idle timeout.
    pub idle_timeout: u16,
    /// Hard timeout.
    pub hard_timeout: u16,
    /// OFPFF flags.
    pub flags: u16,
    /// Rule cookie.
    pub cookie: u64,
    /// Packets matched.
    pub packet_count: u64,
    /// Bytes matched.
    pub byte_count: u64,
    /// Rule match.
    pub mat: Match,
    /// Rule instructions.
    pub instructions: Vec<Instruction>,
}

impl FlowStatsEntry {
    fn encode(&self, w: &mut Writer) {
        let len_at = w.len();
        w.u16(0); // length, patched
        w.u8(self.table_id);
        w.u8(0);
        w.u32(self.duration_sec);
        w.u32(self.duration_nsec);
        w.u16(self.priority);
        w.u16(self.idle_timeout);
        w.u16(self.hard_timeout);
        w.u16(self.flags);
        w.zeros(4);
        w.u64(self.cookie);
        w.u64(self.packet_count);
        w.u64(self.byte_count);
        self.mat.encode(w);
        Instruction::encode_list(&self.instructions, w);
        let len = w.len() - len_at;
        w.patch_u16(len_at, len as u16);
    }

    fn decode(r: &mut Reader<'_>) -> Result<FlowStatsEntry> {
        let start_remaining = r.remaining();
        let length = usize::from(r.u16()?);
        if length < 2 {
            return Err(PacketError::BadField {
                field: "flow_stats.length",
                value: length as u64,
            });
        }
        let table_id = r.u8()?;
        r.skip(1)?;
        let duration_sec = r.u32()?;
        let duration_nsec = r.u32()?;
        let priority = r.u16()?;
        let idle_timeout = r.u16()?;
        let hard_timeout = r.u16()?;
        let flags = r.u16()?;
        r.skip(4)?;
        let cookie = r.u64()?;
        let packet_count = r.u64()?;
        let byte_count = r.u64()?;
        let mat = Match::decode(r)?;
        let consumed = start_remaining - r.remaining();
        if consumed > length {
            return Err(PacketError::BadField {
                field: "flow_stats.length",
                value: length as u64,
            });
        }
        let mut ir = Reader::new(r.bytes(length - consumed)?);
        let instructions = Instruction::decode_list(&mut ir)?;
        Ok(FlowStatsEntry {
            table_id,
            duration_sec,
            duration_nsec,
            priority,
            idle_timeout,
            hard_timeout,
            flags,
            cookie,
            packet_count,
            byte_count,
            mat,
            instructions,
        })
    }
}

/// One entry in a table-stats reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableStatsEntry {
    /// Table id.
    pub table_id: u8,
    /// Rules currently installed.
    pub active_count: u32,
    /// Packets looked up.
    pub lookup_count: u64,
    /// Packets matched.
    pub matched_count: u64,
}

impl TableStatsEntry {
    fn encode(&self, w: &mut Writer) {
        w.u8(self.table_id);
        w.zeros(3);
        w.u32(self.active_count);
        w.u64(self.lookup_count);
        w.u64(self.matched_count);
    }

    fn decode(r: &mut Reader<'_>) -> Result<TableStatsEntry> {
        let table_id = r.u8()?;
        r.skip(3)?;
        Ok(TableStatsEntry {
            table_id,
            active_count: r.u32()?,
            lookup_count: r.u64()?,
            matched_count: r.u64()?,
        })
    }
}

/// A multipart reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MultipartReply {
    /// Flow statistics.
    Flow(Vec<FlowStatsEntry>),
    /// Table statistics.
    Table(Vec<TableStatsEntry>),
    /// Port descriptions.
    PortDesc(Vec<PortDescEntry>),
    /// Any other multipart type, preserved raw.
    Other {
        /// Multipart type code.
        kind: u16,
        /// Raw body.
        body: Vec<u8>,
    },
}

impl MultipartReply {
    /// Appends the message body (after the OpenFlow header) to `buf`;
    /// allocation-free once `buf` has warm capacity.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let mut w = Writer::from_vec(std::mem::take(buf));
        self.encode_body(&mut w);
        *buf = w.into_bytes();
    }

    /// Serializes the body (after the OpenFlow header).
    pub fn encode_body(&self, w: &mut Writer) {
        match self {
            MultipartReply::Flow(entries) => {
                w.u16(OFPMP_FLOW);
                w.u16(0);
                w.zeros(4);
                for e in entries {
                    e.encode(w);
                }
            }
            MultipartReply::Table(entries) => {
                w.u16(OFPMP_TABLE);
                w.u16(0);
                w.zeros(4);
                for e in entries {
                    e.encode(w);
                }
            }
            MultipartReply::PortDesc(entries) => {
                w.u16(OFPMP_PORT_DESC);
                w.u16(0);
                w.zeros(4);
                for e in entries {
                    e.encode(w);
                }
            }
            MultipartReply::Other { kind, body } => {
                w.u16(*kind);
                w.u16(0);
                w.zeros(4);
                w.bytes(body);
            }
        }
    }

    /// Parses the body.
    pub fn decode_body(r: &mut Reader<'_>) -> Result<MultipartReply> {
        let kind = r.u16()?;
        let _flags = r.u16()?;
        r.skip(4)?;
        match kind {
            OFPMP_FLOW => {
                let mut entries = Vec::new();
                while r.remaining() > 0 {
                    entries.push(FlowStatsEntry::decode(r)?);
                }
                Ok(MultipartReply::Flow(entries))
            }
            OFPMP_TABLE => {
                let mut entries = Vec::new();
                while r.remaining() > 0 {
                    entries.push(TableStatsEntry::decode(r)?);
                }
                Ok(MultipartReply::Table(entries))
            }
            OFPMP_PORT_DESC => {
                let mut entries = Vec::new();
                while r.remaining() > 0 {
                    entries.push(PortDescEntry::decode(r)?);
                }
                Ok(MultipartReply::PortDesc(entries))
            }
            other => Ok(MultipartReply::Other {
                kind: other,
                body: r.rest().to_vec(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;

    fn sample_entry(table_id: u8) -> FlowStatsEntry {
        FlowStatsEntry {
            table_id,
            duration_sec: 10,
            duration_nsec: 0,
            priority: 100,
            idle_timeout: 0,
            hard_timeout: 0,
            flags: 0,
            cookie: 0xC0FFEE,
            packet_count: 42,
            byte_count: 4200,
            mat: Match {
                eth_type: Some(0x0800),
                ..Match::default()
            },
            instructions: vec![Instruction::ApplyActions(vec![Action::output(2)])],
        }
    }

    #[test]
    fn flow_request_round_trip() {
        let req = MultipartRequest::all_flows();
        let mut w = Writer::new();
        req.encode_body(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(MultipartRequest::decode_body(&mut r).unwrap(), req);
    }

    #[test]
    fn table_request_round_trip() {
        let req = MultipartRequest::Table;
        let mut w = Writer::new();
        req.encode_body(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(MultipartRequest::decode_body(&mut r).unwrap(), req);
    }

    #[test]
    fn flow_reply_round_trip_multiple_entries() {
        let reply = MultipartReply::Flow(vec![sample_entry(0), sample_entry(1), sample_entry(2)]);
        let mut w = Writer::new();
        reply.encode_body(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(MultipartReply::decode_body(&mut r).unwrap(), reply);
    }

    #[test]
    fn empty_flow_reply_round_trip() {
        let reply = MultipartReply::Flow(vec![]);
        let mut w = Writer::new();
        reply.encode_body(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(MultipartReply::decode_body(&mut r).unwrap(), reply);
    }

    #[test]
    fn table_reply_round_trip() {
        let reply = MultipartReply::Table(vec![
            TableStatsEntry {
                table_id: 0,
                active_count: 5,
                lookup_count: 100,
                matched_count: 90,
            },
            TableStatsEntry {
                table_id: 1,
                active_count: 2,
                lookup_count: 80,
                matched_count: 70,
            },
        ]);
        let mut w = Writer::new();
        reply.encode_body(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(MultipartReply::decode_body(&mut r).unwrap(), reply);
    }

    #[test]
    fn port_desc_round_trip() {
        let req = MultipartRequest::PortDesc;
        let mut w = Writer::new();
        req.encode_body(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(MultipartRequest::decode_body(&mut r).unwrap(), req);
        let reply = MultipartReply::PortDesc(vec![
            PortDescEntry {
                port_no: 1,
                hw_addr: [2, 0, 0, 0, 0, 1],
                name: "eth1".into(),
            },
            PortDescEntry {
                port_no: 100,
                hw_addr: [2, 0, 0, 0, 0, 2],
                name: "uplink-to-core".into(),
            },
        ]);
        let mut w = Writer::new();
        reply.encode_body(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(MultipartReply::decode_body(&mut r).unwrap(), reply);
    }

    #[test]
    fn port_desc_name_truncates_to_15_bytes() {
        let e = PortDescEntry {
            port_no: 1,
            hw_addr: [0; 6],
            name: "a-very-long-interface-name".into(),
        };
        let reply = MultipartReply::PortDesc(vec![e]);
        let mut w = Writer::new();
        reply.encode_body(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        match MultipartReply::decode_body(&mut r).unwrap() {
            MultipartReply::PortDesc(es) => {
                assert_eq!(es[0].name, "a-very-long-int");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn garbage_port_name_rejected() {
        // A port entry whose 16-byte name field holds non-UTF-8 bytes used
        // to decode via from_utf8_lossy into replacement characters that
        // re-encode differently (silent corruption). Now a typed error.
        let e = PortDescEntry {
            port_no: 1,
            hw_addr: [0; 6],
            name: "eth0".into(),
        };
        let mut w = Writer::new();
        MultipartReply::PortDesc(vec![e]).encode_body(&mut w);
        let mut bytes = w.into_bytes();
        bytes[8 + 16] = 0xFF; // first name byte: invalid UTF-8
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            MultipartReply::decode_body(&mut r).unwrap_err(),
            PacketError::BadField {
                field: "port.name",
                ..
            }
        ));
    }

    #[test]
    fn unterminated_port_name_rejected() {
        // All 16 name bytes non-NUL: the encoder can never produce this
        // (it preserves at most 15 bytes), so decoding it would truncate.
        let e = PortDescEntry {
            port_no: 1,
            hw_addr: [0; 6],
            name: "eth0".into(),
        };
        let mut w = Writer::new();
        MultipartReply::PortDesc(vec![e]).encode_body(&mut w);
        let mut bytes = w.into_bytes();
        for b in &mut bytes[8 + 16..8 + 32] {
            *b = b'x';
        }
        let mut r = Reader::new(&bytes);
        assert!(MultipartReply::decode_body(&mut r).is_err());
    }

    #[test]
    fn unknown_multipart_type_preserved() {
        let req = MultipartRequest::Other {
            kind: 19, // some experimenter stat
            body: vec![],
        };
        let mut w = Writer::new();
        req.encode_body(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(MultipartRequest::decode_body(&mut r).unwrap(), req);
    }

    #[test]
    fn flow_entry_with_no_instructions_round_trips() {
        let mut e = sample_entry(0);
        e.instructions.clear();
        let reply = MultipartReply::Flow(vec![e.clone()]);
        let mut w = Writer::new();
        reply.encode_body(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        match MultipartReply::decode_body(&mut r).unwrap() {
            MultipartReply::Flow(entries) => assert_eq!(entries, vec![e]),
            _ => panic!("wrong reply kind"),
        }
    }

    #[test]
    fn truncated_entry_rejected() {
        let reply = MultipartReply::Flow(vec![sample_entry(0)]);
        let mut w = Writer::new();
        reply.encode_body(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..bytes.len() - 4]);
        assert!(MultipartReply::decode_body(&mut r).is_err());
    }
}
