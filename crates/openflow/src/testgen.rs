//! Test-only message generators (enabled by the `testgen` feature).
//!
//! Two flavors, shared by this crate's codec conformance suite and by
//! downstream differential tests (the splice-vs-oracle table-shift
//! proptest in `dfi-core`):
//!
//! * [`proptest`] strategies (`arb_*`) covering every message family the
//!   codec speaks, including unknown-kind actions/instructions/stats
//!   carried verbatim.
//! * [`random_message`], a generator driven directly from the seeded
//!   simnet RNG so whole fuzz runs reproduce from a single `u64` seed
//!   independent of proptest.

// Test-only module: generator plumbing may assert on impossible states.
#![allow(clippy::expect_used)]

use crate::{
    Action, ErrorMsg, FeaturesReply, FlowMod, FlowModCommand, FlowRemoved, FlowRemovedReason,
    FlowStatsEntry, Instruction, Match, Message, MultipartReply, MultipartRequest, PacketIn,
    PacketInReason, PacketOut, PortDescEntry, TableStatsEntry,
};
use dfi_packet::MacAddr;
use dfi_simnet::SimRng;
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// Strategy for a MAC address.
pub fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr::new)
}

/// Strategy for an IPv4 address.
pub fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

prop_compose! {
    /// Strategy for an OXM match with any subset of supported fields.
    pub fn arb_match()(
        in_port in proptest::option::of(any::<u32>()),
        eth_dst in proptest::option::of(arb_mac()),
        eth_src in proptest::option::of(arb_mac()),
        eth_type in proptest::option::of(any::<u16>()),
        vlan_vid in proptest::option::of(0u16..4096),
        ip_proto in proptest::option::of(any::<u8>()),
        ipv4_src in proptest::option::of(arb_ip()),
        ipv4_dst in proptest::option::of(arb_ip()),
        tcp_src in proptest::option::of(any::<u16>()),
        tcp_dst in proptest::option::of(any::<u16>()),
        udp_src in proptest::option::of(any::<u16>()),
        udp_dst in proptest::option::of(any::<u16>()),
        arp_spa in proptest::option::of(arb_ip()),
        arp_tpa in proptest::option::of(arb_ip()),
    ) -> Match {
        Match {
            in_port, eth_dst, eth_src, eth_type, vlan_vid, ip_proto,
            ipv4_src, ipv4_dst, tcp_src, tcp_dst, udp_src, udp_dst,
            arp_spa, arp_tpa,
        }
    }
}

/// Strategy for an action: OUTPUT or an unknown kind carried verbatim.
#[must_use]
pub fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (any::<u32>(), any::<u16>()).prop_map(|(port, max_len)| Action::Output { port, max_len }),
        // Unknown action kinds (anything but OUTPUT = 0), arbitrary bodies
        // including unaligned lengths — the codec must carry them verbatim.
        (1u16..200, proptest::collection::vec(any::<u8>(), 0..21))
            .prop_map(|(kind, body)| Action::Other { kind, body }),
    ]
}

/// Strategy for an instruction, including unknown kinds carried verbatim.
pub fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        any::<u8>().prop_map(Instruction::GotoTable),
        proptest::collection::vec(arb_action(), 0..4).prop_map(Instruction::ApplyActions),
        proptest::collection::vec(arb_action(), 0..4).prop_map(Instruction::WriteActions),
        Just(Instruction::ClearActions),
        // Unknown instruction kinds: 2 (WRITE_METADATA), 6 (METER), and
        // experimenter space; never 1/3/4/5 which decode structurally.
        (
            prop_oneof![Just(2u16), 6u16..200],
            proptest::collection::vec(any::<u8>(), 0..21)
        )
            .prop_map(|(kind, body)| Instruction::Other { kind, body }),
    ]
}

prop_compose! {
    /// Strategy for a flow-mod over all commands and table ids.
    pub fn arb_flow_mod()(
        cookie in any::<u64>(),
        cookie_mask in any::<u64>(),
        table_id in any::<u8>(),
        command in prop_oneof![
            Just(FlowModCommand::Add),
            Just(FlowModCommand::Modify),
            Just(FlowModCommand::ModifyStrict),
            Just(FlowModCommand::Delete),
            Just(FlowModCommand::DeleteStrict),
        ],
        idle_timeout in any::<u16>(),
        hard_timeout in any::<u16>(),
        priority in any::<u16>(),
        buffer_id in any::<u32>(),
        out_port in any::<u32>(),
        out_group in any::<u32>(),
        flags in any::<u16>(),
        mat in arb_match(),
        instructions in proptest::collection::vec(arb_instruction(), 0..4),
    ) -> FlowMod {
        FlowMod {
            cookie, cookie_mask, table_id, command, idle_timeout,
            hard_timeout, priority, buffer_id, out_port, out_group, flags,
            mat, instructions,
        }
    }
}

prop_compose! {
    /// Strategy for a packet-in.
    pub fn arb_packet_in()(
        buffer_id in any::<u32>(),
        total_len in any::<u16>(),
        reason in prop_oneof![
            Just(PacketInReason::NoMatch),
            Just(PacketInReason::Action),
            Just(PacketInReason::InvalidTtl),
        ],
        table_id in any::<u8>(),
        cookie in any::<u64>(),
        mat in arb_match(),
        data in proptest::collection::vec(any::<u8>(), 0..128),
    ) -> PacketIn {
        PacketIn { buffer_id, total_len, reason, table_id, cookie, mat, data }
    }
}

prop_compose! {
    /// Strategy for a packet-out.
    pub fn arb_packet_out()(
        buffer_id in any::<u32>(),
        in_port in any::<u32>(),
        actions in proptest::collection::vec(arb_action(), 0..4),
        data in proptest::collection::vec(any::<u8>(), 0..64),
    ) -> PacketOut {
        PacketOut { buffer_id, in_port, actions, data }
    }
}

prop_compose! {
    /// Strategy for a flow-removed notification.
    pub fn arb_flow_removed()(
        cookie in any::<u64>(),
        priority in any::<u16>(),
        reason in prop_oneof![
            Just(FlowRemovedReason::IdleTimeout),
            Just(FlowRemovedReason::HardTimeout),
            Just(FlowRemovedReason::Delete),
        ],
        table_id in any::<u8>(),
        duration_sec in any::<u32>(),
        duration_nsec in any::<u32>(),
        idle_timeout in any::<u16>(),
        hard_timeout in any::<u16>(),
        packet_count in any::<u64>(),
        byte_count in any::<u64>(),
        mat in arb_match(),
    ) -> FlowRemoved {
        FlowRemoved {
            cookie, priority, reason, table_id, duration_sec, duration_nsec,
            idle_timeout, hard_timeout, packet_count, byte_count, mat,
        }
    }
}

/// Interface names the encoder preserves exactly: ≤ 15 bytes of UTF-8.
#[must_use]
pub fn arb_port_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(prop_oneof![Just(b'-'), b'0'..=b'9', b'a'..=b'z'], 0..16)
        .prop_map(|v| String::from_utf8(v).expect("ascii subset"))
}

prop_compose! {
    /// Strategy for a port-description entry.
    pub fn arb_port_desc()(
        port_no in any::<u32>(),
        hw_addr in any::<[u8; 6]>(),
        name in arb_port_name(),
    ) -> PortDescEntry {
        PortDescEntry { port_no, hw_addr, name }
    }
}

prop_compose! {
    /// Strategy for a flow-stats entry.
    pub fn arb_flow_stats_entry()(
        table_id in any::<u8>(),
        duration_sec in any::<u32>(),
        duration_nsec in any::<u32>(),
        priority in any::<u16>(),
        idle_timeout in any::<u16>(),
        hard_timeout in any::<u16>(),
        flags in any::<u16>(),
        cookie in any::<u64>(),
        packet_count in any::<u64>(),
        byte_count in any::<u64>(),
        mat in arb_match(),
        instructions in proptest::collection::vec(arb_instruction(), 0..3),
    ) -> FlowStatsEntry {
        FlowStatsEntry {
            table_id, duration_sec, duration_nsec, priority, idle_timeout,
            hard_timeout, flags, cookie, packet_count, byte_count, mat,
            instructions,
        }
    }
}

/// Strategy for a multipart request across all structurally decoded kinds.
#[must_use]
pub fn arb_multipart_request() -> impl Strategy<Value = MultipartRequest> {
    prop_oneof![
        Just(MultipartRequest::Table),
        Just(MultipartRequest::PortDesc),
        (
            any::<u8>(),
            any::<u32>(),
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            arb_match()
        )
            .prop_map(
                |(table_id, out_port, out_group, cookie, cookie_mask, mat)| {
                    MultipartRequest::Flow {
                        table_id,
                        out_port,
                        out_group,
                        cookie,
                        cookie_mask,
                        mat,
                    }
                }
            ),
        // Unknown stat kinds; 1/3/13 decode structurally.
        (14u16..200, proptest::collection::vec(any::<u8>(), 0..32))
            .prop_map(|(kind, body)| MultipartRequest::Other { kind, body }),
    ]
}

/// Strategy for a multipart reply across all structurally decoded kinds.
pub fn arb_multipart_reply() -> impl Strategy<Value = MultipartReply> {
    prop_oneof![
        proptest::collection::vec(arb_flow_stats_entry(), 0..4).prop_map(MultipartReply::Flow),
        proptest::collection::vec(
            (any::<u8>(), any::<u32>(), any::<u64>(), any::<u64>()).prop_map(
                |(table_id, active_count, lookup_count, matched_count)| TableStatsEntry {
                    table_id,
                    active_count,
                    lookup_count,
                    matched_count,
                }
            ),
            0..6
        )
        .prop_map(MultipartReply::Table),
        proptest::collection::vec(arb_port_desc(), 0..6).prop_map(MultipartReply::PortDesc),
        (14u16..200, proptest::collection::vec(any::<u8>(), 0..32))
            .prop_map(|(kind, body)| MultipartReply::Other { kind, body }),
    ]
}

/// Strategy for the bodiless/simple control messages.
pub fn arb_control_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        Just(Message::Hello),
        Just(Message::FeaturesRequest),
        Just(Message::BarrierRequest),
        Just(Message::BarrierReply),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Message::EchoRequest),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Message::EchoReply),
        (
            any::<u16>(),
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(|(err_type, code, data)| Message::Error(ErrorMsg {
                err_type,
                code,
                data
            })),
        (
            any::<u64>(),
            any::<u32>(),
            any::<u8>(),
            any::<u8>(),
            any::<u32>()
        )
            .prop_map(
                |(datapath_id, n_buffers, n_tables, auxiliary_id, capabilities)| {
                    Message::FeaturesReply(FeaturesReply {
                        datapath_id,
                        n_buffers,
                        n_tables,
                        auxiliary_id,
                        capabilities,
                    })
                }
            ),
    ]
}

/// Strategy over every message family the codec speaks.
pub fn arb_any_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        arb_control_message(),
        arb_packet_in().prop_map(Message::PacketIn),
        arb_packet_out().prop_map(Message::PacketOut),
        arb_flow_mod().prop_map(Message::FlowMod),
        arb_flow_removed().prop_map(Message::FlowRemoved),
        arb_multipart_request().prop_map(Message::MultipartRequest),
        arb_multipart_reply().prop_map(Message::MultipartReply),
    ]
}

/// Builds a random message directly from the simnet RNG, so a whole
/// mutation run reproduces from a single `u64` seed independent of
/// proptest.
pub fn random_message(rng: &mut SimRng) -> Message {
    fn bytes(rng: &mut SimRng, max: usize) -> Vec<u8> {
        let mut v = vec![0u8; rng.index(max)];
        rng.fill_bytes(&mut v);
        v
    }
    fn mat(rng: &mut SimRng) -> Match {
        let mut m = Match::default();
        if rng.chance(0.5) {
            m.in_port = Some(rng.next_u32());
        }
        if rng.chance(0.5) {
            m.eth_type = Some(rng.next_u32() as u16);
        }
        if rng.chance(0.3) {
            m.ipv4_src = Some(Ipv4Addr::from(rng.next_u32()));
        }
        if rng.chance(0.3) {
            m.ipv4_dst = Some(Ipv4Addr::from(rng.next_u32()));
        }
        if rng.chance(0.3) {
            m.tcp_dst = Some(rng.next_u32() as u16);
        }
        if rng.chance(0.2) {
            let mut mac = [0u8; 6];
            rng.fill_bytes(&mut mac);
            m.eth_src = Some(MacAddr::new(mac));
        }
        m
    }
    match rng.index(8) {
        0 => Message::Hello,
        1 => Message::EchoRequest(bytes(rng, 32)),
        2 => Message::PacketIn(PacketIn {
            buffer_id: rng.next_u32(),
            total_len: rng.next_u32() as u16,
            reason: PacketInReason::NoMatch,
            table_id: rng.next_u32() as u8,
            cookie: rng.next_u64(),
            mat: mat(rng),
            data: bytes(rng, 64),
        }),
        3 => Message::FlowMod(FlowMod {
            cookie: rng.next_u64(),
            cookie_mask: rng.next_u64(),
            table_id: rng.next_u32() as u8,
            priority: rng.next_u32() as u16,
            mat: mat(rng),
            instructions: if rng.chance(0.5) {
                vec![Instruction::GotoTable(rng.next_u32() as u8)]
            } else {
                vec![Instruction::ApplyActions(vec![Action::output(
                    rng.next_u32(),
                )])]
            },
            ..FlowMod::add()
        }),
        4 => Message::PacketOut(PacketOut {
            buffer_id: rng.next_u32(),
            in_port: rng.next_u32(),
            actions: vec![Action::output(rng.next_u32())],
            data: bytes(rng, 64),
        }),
        5 => Message::MultipartRequest(MultipartRequest::all_flows()),
        6 => Message::MultipartReply(MultipartReply::Table(vec![TableStatsEntry {
            table_id: rng.next_u32() as u8,
            active_count: rng.next_u32(),
            lookup_count: rng.next_u64(),
            matched_count: rng.next_u64(),
        }])),
        _ => Message::Error(ErrorMsg {
            err_type: rng.next_u32() as u16,
            code: rng.next_u32() as u16,
            data: bytes(rng, 64),
        }),
    }
}
