//! OpenFlow 1.3 codec conformance suite.
//!
//! Two invariants, checked per message family with `FUZZ_ITERS` cases each
//! (default 10 000; override with `FUZZ_ITERS=200000` for nightly-depth
//! runs):
//!
//! 1. **Canonical round-trip**: `encode → decode → re-encode` is
//!    byte-identical (and the decoded struct equals the original).
//! 2. **No panic, no silent truncation**: decoding arbitrary or mutated
//!    bytes either fails with a typed [`dfi_packet::PacketError`] or yields
//!    a message whose re-encoding decodes back to the *same* message —
//!    nothing the decoder accepted may be dropped on the floor.
//!
//! On top of the proptest generators there is a `cargo fuzz`-style byte
//! mutator driven from the seeded simnet RNG ([`dfi_simnet::SimRng`]), so
//! every failure reproduces from a one-line `DFI_MUT_SEED=… cargo test`
//! command, plus a committed corpus of regression vectors for every decoder
//! bug this suite has found.

use dfi_openflow::testgen::{
    arb_any_message, arb_control_message, arb_flow_mod, arb_flow_removed, arb_multipart_reply,
    arb_multipart_request, arb_packet_in, arb_packet_out, random_message,
};
use dfi_openflow::{Message, OfMessage};
use dfi_simnet::SimRng;
use proptest::prelude::*;

/// Cases per proptest family, from `FUZZ_ITERS` (default 10 000).
fn cases() -> u32 {
    std::env::var("FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000)
}

fn config() -> ProptestConfig {
    ProptestConfig::with_cases(cases())
}

// ---------------------------------------------------------------------------
// Invariant helpers
// ---------------------------------------------------------------------------

/// Invariant 1: encode → decode → re-encode, byte-identical.
fn assert_canonical_round_trip(msg: &OfMessage) -> std::result::Result<(), TestCaseError> {
    let bytes = msg.encode();
    prop_assert_eq!(
        OfMessage::frame_length(&bytes),
        Some(bytes.len()),
        "frame_length must report the encoded size"
    );
    let decoded = OfMessage::decode(&bytes)
        .map_err(|e| TestCaseError::fail(format!("decode of own encoding failed: {e:?}")))?;
    prop_assert_eq!(&decoded, msg, "decoded struct differs");
    let reencoded = decoded.encode();
    prop_assert_eq!(reencoded, bytes, "re-encode is not byte-identical");
    Ok(())
}

/// Invariant 2 (the accept side): whatever the decoder accepts must
/// re-encode to something that decodes back to the same message — i.e. no
/// accepted byte can be silently dropped.
fn assert_no_silent_truncation(bytes: &[u8]) {
    if let Ok(msg) = OfMessage::decode(bytes) {
        let reencoded = msg.encode();
        let again = OfMessage::decode(&reencoded).unwrap_or_else(|e| {
            panic!("re-encoding of accepted frame fails to decode: {e:?}\nframe: {bytes:02x?}")
        });
        assert_eq!(
            again, msg,
            "accepted frame lost information through re-encode\nframe: {bytes:02x?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Per-family round-trip conformance (invariant 1)
// ---------------------------------------------------------------------------

macro_rules! family_round_trip {
    ($name:ident, $strategy:expr) => {
        proptest! {
            #![proptest_config(config())]
            #[test]
            fn $name(xid in any::<u32>(), body in $strategy) {
                assert_canonical_round_trip(&OfMessage::new(xid, body))?;
            }
        }
    };
}

family_round_trip!(control_messages_round_trip, arb_control_message());
family_round_trip!(
    packet_in_round_trips,
    arb_packet_in().prop_map(Message::PacketIn)
);
family_round_trip!(
    packet_out_round_trips,
    arb_packet_out().prop_map(Message::PacketOut)
);
family_round_trip!(
    flow_mod_round_trips,
    arb_flow_mod().prop_map(Message::FlowMod)
);
family_round_trip!(
    flow_removed_round_trips,
    arb_flow_removed().prop_map(Message::FlowRemoved)
);
family_round_trip!(
    multipart_request_round_trips,
    arb_multipart_request().prop_map(Message::MultipartRequest)
);
family_round_trip!(
    multipart_reply_round_trips,
    arb_multipart_reply().prop_map(Message::MultipartReply)
);

// ---------------------------------------------------------------------------
// Adversarial decoding (invariant 2)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(config())]

    #[test]
    fn arbitrary_bytes_never_panic_nor_truncate(
        bytes in proptest::collection::vec(any::<u8>(), 0..512)
    ) {
        assert_no_silent_truncation(&bytes);
    }

    #[test]
    fn mutated_frames_never_panic_nor_truncate(
        body in arb_any_message(),
        flips in proptest::collection::vec((any::<usize>(), 1u8..=255), 1..5),
    ) {
        let mut bytes = OfMessage::new(0xDF1, body).encode();
        for (at, bits) in flips {
            let idx = at % bytes.len();
            bytes[idx] ^= bits;
        }
        assert_no_silent_truncation(&bytes);
    }

    #[test]
    fn truncated_frames_fail_typed(
        body in arb_any_message(),
        cut in any::<usize>(),
    ) {
        // Cutting a frame anywhere strictly inside it must yield a typed
        // error (the length field now exceeds the buffer).
        let bytes = OfMessage::new(7, body).encode();
        let cut = cut % bytes.len();
        if cut < bytes.len() {
            let r = OfMessage::decode(&bytes[..cut]);
            prop_assert!(r.is_err(), "decode of a {cut}-byte prefix of a {}-byte frame succeeded", bytes.len());
        }
    }
}

// ---------------------------------------------------------------------------
// SimRng-driven byte mutator (cargo-fuzz style, seed-reproducible)
// ---------------------------------------------------------------------------

/// `cargo fuzz`-style mutation loop: encode a random valid frame, smash
/// 1–8 random bytes, and require invariant 2. Reproduce any failure with
/// the printed `DFI_MUT_SEED` one-liner.
#[test]
fn seeded_byte_mutator_conformance() {
    let seed: u64 = std::env::var("DFI_MUT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xDF1_F022);
    let iters = cases() as usize;
    let mut rng = SimRng::new(seed);
    for i in 0..iters {
        let mut frame = OfMessage::new(rng.next_u32(), random_message(&mut rng)).encode();
        let mutations = 1 + rng.index(8);
        for _ in 0..mutations {
            let at = rng.index(frame.len());
            match rng.index(3) {
                0 => frame[at] ^= 1 << rng.index(8),
                1 => frame[at] = rng.next_u32() as u8,
                // Truncate instead of flipping, biased toward the tail.
                _ => {
                    let keep = at.max(4);
                    frame.truncate(keep);
                }
            }
        }
        let r = std::panic::catch_unwind(|| assert_no_silent_truncation(&frame));
        assert!(
            r.is_ok(),
            "mutator found a violation at iteration {i}; reproduce with:\n  \
             DFI_MUT_SEED={seed} FUZZ_ITERS={iters} cargo test -p dfi-openflow --test conformance seeded_byte_mutator_conformance"
        );
    }
}

// ---------------------------------------------------------------------------
// Corpus replay: committed regression vectors
// ---------------------------------------------------------------------------

fn hex(s: &str) -> Vec<u8> {
    let clean: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    assert!(clean.len().is_multiple_of(2), "odd hex length");
    (0..clean.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&clean[i..i + 2], 16).unwrap())
        .collect()
}

/// Every decoder bug this suite has found, as wire bytes that must now be
/// rejected. Each entry: (description, hex frame).
const REJECT_CORPUS: &[(&str, &str)] = &[
    (
        "header length below the 8-byte header",
        "04 00 0007 00000001",
    ),
    ("header length beyond the buffer", "04 00 00c8 00000001"),
    (
        "hello with trailing body bytes the re-encode would drop",
        "04 00 000c 00000001 deadbeef",
    ),
    (
        // Bug: Match::decode accepted an IN_PORT TLV with length 8,
        // silently ignoring the 4 trailing payload bytes.
        "flow-mod whose match holds an oversize IN_PORT oxm",
        "04 0e 0040 00000001 \
         0000000000000000 0000000000000000 00 00 0000 0000 0064 \
         ffffffff ffffffff ffffffff 0000 0000 \
         0001 0010 8000 00 08 00000001 deadbeef",
    ),
    (
        // Bug: Match::decode accepted duplicate fields last-wins; the
        // re-encode collapsed them to one TLV.
        "flow-mod whose match repeats ETH_TYPE",
        "04 0e 0040 00000001 \
         0000000000000000 0000000000000000 00 00 0000 0000 0064 \
         ffffffff ffffffff ffffffff 0000 0000 \
         0001 0010 8000 0a 02 0800 8000 0a 02 0806",
    ),
    (
        // Bug: Instruction::decode read only the first body byte of an
        // oversize GOTO_TABLE, dropping the rest on re-encode.
        "flow-mod with a 12-byte GOTO_TABLE instruction",
        "04 0e 0044 00000001 \
         0000000000000000 0000000000000000 00 00 0000 0000 0064 \
         ffffffff ffffffff ffffffff 0000 0000 \
         0001 0004 00000000 \
         0001 000c 01 000000 aabbccdd",
    ),
    (
        // Bug: Action::decode accepted OUTPUT with any length ≥ 10,
        // dropping trailing body bytes on re-encode.
        "packet-out with a 24-byte OUTPUT action",
        "04 0d 0030 00000001 \
         ffffffff fffffffd 0018 000000000000 \
         0000 0018 00000007 ffff 000000000000 aabbccdd00000000",
    ),
    (
        // Bug: PortDescEntry::decode ran garbage names through
        // from_utf8_lossy, silently rewriting them.
        "port-desc reply whose name field is not UTF-8",
        "04 13 0050 00000001 \
         000d 0000 00000000 \
         00000001 00000000 020000000001 0000 \
         ff74683000000000 0000000000000000 \
         0000000000000000 0000000000000000 \
         0000000000000000 0000000000000000",
    ),
];

#[test]
fn reject_corpus_replay() {
    for (what, frame) in REJECT_CORPUS {
        let bytes = hex(frame);
        let r = OfMessage::decode(&bytes);
        assert!(
            r.is_err(),
            "corpus vector should be rejected but decoded: {what}\ngot {r:?}"
        );
    }
}

/// Frames that must keep decoding (guards against over-tightening): each
/// entry is (description, hex frame, expected re-encode hex — empty means
/// identical to the input).
const ACCEPT_CORPUS: &[(&str, &str, &str)] = &[
    ("plain hello", "04 00 0008 00000001", ""),
    (
        "echo request with payload",
        "04 02 000c 00000007 01020304",
        "",
    ),
    ("barrier reply", "04 15 0008 00000b0b", ""),
    (
        // Non-canonical but legal: an experimenter-class oxm is skipped, so
        // re-encoding drops it — the one deliberate normalization, pinned
        // here so a change shows up in review.
        "flow-mod with an experimenter-class oxm (skipped, normalized away)",
        "04 0e 0048 00000001 \
         0000000000000000 0000000000000000 00 00 0000 0000 0064 \
         ffffffff ffffffff ffffffff 0000 0000 \
         0001 000a ffff 00 02 beef 000000000000 \
         0001 0008 01 000000",
        "04 0e 0040 00000001 \
         0000000000000000 0000000000000000 00 00 0000 0000 0064 \
         ffffffff ffffffff ffffffff 0000 0000 \
         0001 0004 00000000 \
         0001 0008 01 000000",
    ),
];

#[test]
fn accept_corpus_replay() {
    for (what, frame, reencoded) in ACCEPT_CORPUS {
        let bytes = hex(frame);
        let msg = OfMessage::decode(&bytes)
            .unwrap_or_else(|e| panic!("corpus vector should decode: {what}\nerror {e:?}"));
        let expect = if reencoded.is_empty() {
            bytes.clone()
        } else {
            hex(reencoded)
        };
        assert_eq!(
            msg.encode(),
            expect,
            "re-encode mismatch for corpus vector: {what}"
        );
    }
}

/// Stream framing stays lenient: bytes after the header length belong to
/// the next frame and must not affect decoding.
#[test]
fn stream_framing_leniency_is_preserved() {
    let mut stream = OfMessage::new(1, Message::Hello).encode();
    stream.extend_from_slice(&OfMessage::new(2, Message::BarrierRequest).encode());
    let first = OfMessage::decode(&stream).unwrap();
    assert_eq!(first.xid, 1);
    assert_eq!(first.body, Message::Hello);
}
