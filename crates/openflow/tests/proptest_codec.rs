//! Property-based round-trip tests for the OpenFlow 1.3 codec: any message
//! this implementation can represent must survive encode → decode intact,
//! and decoding must never panic on arbitrary bytes.

use dfi_openflow::{
    Action, ErrorMsg, FeaturesReply, FlowMod, FlowModCommand, FlowRemoved, FlowRemovedReason,
    FlowStatsEntry, Instruction, Match, Message, MultipartReply, MultipartRequest, OfMessage,
    PacketIn, PacketInReason, PacketOut, TableStatsEntry,
};
use dfi_packet::MacAddr;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr::new)
}

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

prop_compose! {
    fn arb_match()(
        in_port in proptest::option::of(1u32..1000),
        eth_dst in proptest::option::of(arb_mac()),
        eth_src in proptest::option::of(arb_mac()),
        eth_type in proptest::option::of(any::<u16>()),
        vlan_vid in proptest::option::of(0u16..4096),
        ip_proto in proptest::option::of(any::<u8>()),
        ipv4_src in proptest::option::of(arb_ip()),
        ipv4_dst in proptest::option::of(arb_ip()),
        tcp_src in proptest::option::of(any::<u16>()),
        tcp_dst in proptest::option::of(any::<u16>()),
        udp_src in proptest::option::of(any::<u16>()),
        udp_dst in proptest::option::of(any::<u16>()),
        arp_spa in proptest::option::of(arb_ip()),
        arp_tpa in proptest::option::of(arb_ip()),
    ) -> Match {
        Match {
            in_port, eth_dst, eth_src, eth_type, vlan_vid, ip_proto,
            ipv4_src, ipv4_dst, tcp_src, tcp_dst, udp_src, udp_dst,
            arp_spa, arp_tpa,
        }
    }
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (any::<u32>(), any::<u16>()).prop_map(|(port, max_len)| Action::Output { port, max_len }),
        (17u16..60, proptest::collection::vec(any::<u8>(), 0..16)).prop_map(|(kind, mut body)| {
            // Unknown-action bodies must keep the TLV 8-byte aligned the
            // way real encoders do; pad deterministically.
            while (4 + body.len()) % 8 != 0 {
                body.push(0);
            }
            Action::Other { kind, body }
        }),
    ]
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (0u8..254).prop_map(Instruction::GotoTable),
        proptest::collection::vec(arb_action(), 0..4).prop_map(Instruction::ApplyActions),
        proptest::collection::vec(arb_action(), 0..4).prop_map(Instruction::WriteActions),
        Just(Instruction::ClearActions),
    ]
}

prop_compose! {
    fn arb_flow_mod()(
        cookie in any::<u64>(),
        cookie_mask in any::<u64>(),
        table_id in 0u8..=255,
        command in prop_oneof![
            Just(FlowModCommand::Add),
            Just(FlowModCommand::Modify),
            Just(FlowModCommand::ModifyStrict),
            Just(FlowModCommand::Delete),
            Just(FlowModCommand::DeleteStrict),
        ],
        idle_timeout in any::<u16>(),
        hard_timeout in any::<u16>(),
        priority in any::<u16>(),
        buffer_id in any::<u32>(),
        out_port in any::<u32>(),
        out_group in any::<u32>(),
        flags in any::<u16>(),
        mat in arb_match(),
        instructions in proptest::collection::vec(arb_instruction(), 0..4),
    ) -> FlowMod {
        FlowMod {
            cookie, cookie_mask, table_id, command, idle_timeout,
            hard_timeout, priority, buffer_id, out_port, out_group, flags,
            mat, instructions,
        }
    }
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        Just(Message::Hello),
        Just(Message::FeaturesRequest),
        Just(Message::BarrierRequest),
        Just(Message::BarrierReply),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Message::EchoRequest),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Message::EchoReply),
        (
            any::<u16>(),
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(|(err_type, code, data)| Message::Error(ErrorMsg {
                err_type,
                code,
                data
            })),
        (
            any::<u64>(),
            any::<u32>(),
            any::<u8>(),
            any::<u8>(),
            any::<u32>()
        )
            .prop_map(
                |(datapath_id, n_buffers, n_tables, auxiliary_id, capabilities)| {
                    Message::FeaturesReply(FeaturesReply {
                        datapath_id,
                        n_buffers,
                        n_tables,
                        auxiliary_id,
                        capabilities,
                    })
                }
            ),
        (
            arb_match(),
            proptest::collection::vec(any::<u8>(), 0..128),
            0u8..=255,
            any::<u64>()
        )
            .prop_map(|(mat, data, table_id, cookie)| {
                Message::PacketIn(PacketIn {
                    buffer_id: dfi_openflow::NO_BUFFER,
                    total_len: data.len() as u16,
                    reason: PacketInReason::NoMatch,
                    table_id,
                    cookie,
                    mat,
                    data,
                })
            }),
        (
            proptest::collection::vec(arb_action(), 0..4),
            proptest::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(|(actions, data)| {
                Message::PacketOut(PacketOut {
                    buffer_id: dfi_openflow::NO_BUFFER,
                    in_port: dfi_openflow::port::CONTROLLER,
                    actions,
                    data,
                })
            }),
        arb_flow_mod().prop_map(Message::FlowMod),
        (any::<u64>(), any::<u16>(), 0u8..=255, arb_match()).prop_map(
            |(cookie, priority, table_id, mat)| {
                Message::FlowRemoved(FlowRemoved {
                    cookie,
                    priority,
                    reason: FlowRemovedReason::Delete,
                    table_id,
                    duration_sec: 1,
                    duration_nsec: 2,
                    idle_timeout: 3,
                    hard_timeout: 4,
                    packet_count: 5,
                    byte_count: 6,
                    mat,
                })
            }
        ),
        Just(Message::MultipartRequest(MultipartRequest::Table)),
        arb_match().prop_map(|mat| {
            Message::MultipartRequest(MultipartRequest::Flow {
                table_id: 3,
                out_port: dfi_openflow::port::ANY,
                out_group: dfi_openflow::group::ANY,
                cookie: 0,
                cookie_mask: 0,
                mat,
            })
        }),
        proptest::collection::vec(
            (0u8..=254, any::<u32>(), any::<u64>(), any::<u64>()).prop_map(
                |(table_id, active_count, lookup_count, matched_count)| TableStatsEntry {
                    table_id,
                    active_count,
                    lookup_count,
                    matched_count,
                }
            ),
            0..4
        )
        .prop_map(|entries| Message::MultipartReply(MultipartReply::Table(entries))),
        proptest::collection::vec(
            (
                arb_match(),
                proptest::collection::vec(arb_instruction(), 0..3),
                any::<u64>()
            )
                .prop_map(|(mat, instructions, cookie)| FlowStatsEntry {
                    table_id: 1,
                    duration_sec: 0,
                    duration_nsec: 0,
                    priority: 9,
                    idle_timeout: 0,
                    hard_timeout: 0,
                    flags: 0,
                    cookie,
                    packet_count: 1,
                    byte_count: 2,
                    mat,
                    instructions,
                }),
            0..3
        )
        .prop_map(|entries| Message::MultipartReply(MultipartReply::Flow(entries))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn any_message_round_trips(xid in any::<u32>(), body in arb_message()) {
        let msg = OfMessage::new(xid, body);
        let bytes = msg.encode();
        prop_assert_eq!(OfMessage::frame_length(&bytes), Some(bytes.len()));
        let decoded = OfMessage::decode(&bytes).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn decoder_never_panics_on_random_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = OfMessage::decode(&bytes); // Ok or Err, never a panic
    }

    #[test]
    fn decoder_never_panics_on_corrupted_valid_frames(
        body in arb_message(),
        flip_at in any::<usize>(),
        flip_bits in 1u8..=255,
    ) {
        let mut bytes = OfMessage::new(1, body).encode();
        let idx = flip_at % bytes.len();
        bytes[idx] ^= flip_bits;
        let _ = OfMessage::decode(&bytes);
    }

    #[test]
    fn match_subset_is_reflexive(m in arb_match()) {
        prop_assert!(m.is_subset_of(&m));
        prop_assert!(m.is_subset_of(&Match::any()));
    }
}
