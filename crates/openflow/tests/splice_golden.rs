//! Golden-byte regression vectors for the splice fast path.
//!
//! Each vector is a hand-written OF1.3 wire frame pinned as hex, together
//! with the exact [`Splice`] verdict and (for patched frames) the exact
//! output bytes. They nail the boundary behaviors that the differential
//! proptest (`dfi-core`'s `splice_oracle`) explores randomly:
//!
//! * a flow-mod at the last controller-visible table patches up to
//!   `table::MAX` (0xFE); one at `table::MAX` itself must reject,
//! * `GOTO_TABLE` at the 254 boundary — and the two-phase guarantee that a
//!   rejected frame is left untouched even when an *earlier* field had
//!   already been validated as patchable,
//! * multipart flow-stats replies with mixed table ids patch in place,
//!   while a Table-0 entry (which needs structural filtering) falls back.
//!
//! Every input is also run through [`OfMessage::decode`] so a typo in a
//! vector fails loudly rather than testing garbage.

use dfi_openflow::{splice, OfMessage, Splice};

fn hex(s: &str) -> Vec<u8> {
    let clean: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    assert!(clean.len().is_multiple_of(2), "odd hex length");
    (0..clean.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&clean[i..i + 2], 16).unwrap())
        .collect()
}

/// Decodes the vector (validity check), runs `shift_up`, and returns the
/// resulting buffer.
fn up(frame_hex: &str, n_tables: u8, expect: Splice) -> Vec<u8> {
    let mut buf = hex(frame_hex);
    OfMessage::decode(&buf).expect("golden vector must be a valid frame");
    assert_eq!(splice::shift_up(&mut buf, n_tables), expect);
    buf
}

/// Decodes the vector (validity check), runs `shift_down`, and returns the
/// resulting buffer.
fn down(frame_hex: &str, expect: Splice) -> Vec<u8> {
    let mut buf = hex(frame_hex);
    OfMessage::decode(&buf).expect("golden vector must be a valid frame");
    assert_eq!(splice::shift_down(&mut buf), expect);
    buf
}

// ---------------------------------------------------------------------------
// Flow-mod table_id at the top of the table space
// ---------------------------------------------------------------------------

/// Add to table `TT`, priority 100, match-any, no instructions (0x38 bytes).
fn flow_mod(tt: &str) -> String {
    format!(
        "04 0e 0038 00000011 \
         0000000000000000 0000000000000000 \
         {tt} 00 0000 0000 0064 \
         ffffffff ffffffff ffffffff 0000 0000 \
         0001 0004 00000000"
    )
}

#[test]
fn flow_mod_at_penultimate_table_patches_to_max() {
    // Controller table 0xFD lands in physical 0xFE = table::MAX — the very
    // last id the shift may ever produce (n_tables = 255).
    let out = up(&flow_mod("fd"), 255, Splice::Patched);
    assert_eq!(out, hex(&flow_mod("fe")));
}

#[test]
fn flow_mod_at_max_table_rejects_untouched() {
    // Controller table 0xFE would shift to 0xFF = table::ALL; no switch has
    // a table there, so this always rejects — bytes must stay pristine.
    let before = hex(&flow_mod("fe"));
    let out = up(&flow_mod("fe"), 255, Splice::Reject);
    assert_eq!(out, before);
}

#[test]
fn flow_mod_wildcard_table_takes_the_fallback() {
    // table::ALL expands into one delete per table — a structural change
    // the splicer can never express in place.
    let before = hex(&flow_mod("ff"));
    let out = up(&flow_mod("ff"), 255, Splice::Fallback);
    assert_eq!(out, before, "fallback must leave the buffer to the caller");
}

#[test]
fn flow_mod_beyond_last_real_table_rejects() {
    // On an 8-table switch the controller sees 7 tables (1..=7 physical);
    // its table 6 is the last usable one, table 7 is out of range.
    let out = up(&flow_mod("06"), 8, Splice::Patched);
    assert_eq!(out, hex(&flow_mod("07")));
    let before = hex(&flow_mod("07"));
    let out = up(&flow_mod("07"), 8, Splice::Reject);
    assert_eq!(out, before);
}

// ---------------------------------------------------------------------------
// GOTO_TABLE at the 254 boundary
// ---------------------------------------------------------------------------

/// Add to table 0 with a single `GOTO_TABLE(GG)` instruction (0x40 bytes).
fn flow_mod_goto(gg: &str) -> String {
    format!(
        "04 0e 0040 00000011 \
         0000000000000000 0000000000000000 \
         00 00 0000 0000 0064 \
         ffffffff ffffffff ffffffff 0000 0000 \
         0001 0004 00000000 \
         0001 0008 {gg} 000000"
    )
}

/// Same, with the table id already patched to 1 (the expected output).
fn flow_mod_goto_shifted(gg: &str) -> String {
    flow_mod_goto(gg).replacen("00 00 0000 0000 0064", "01 00 0000 0000 0064", 1)
}

#[test]
fn goto_table_patches_up_to_the_254_boundary() {
    let out = up(&flow_mod_goto("fd"), 255, Splice::Patched);
    assert_eq!(out, hex(&flow_mod_goto_shifted("fe")));
}

#[test]
fn goto_table_past_the_boundary_rejects_without_partial_patch() {
    // The flow-mod's own table id (0 → 1) validates *before* the scanner
    // reaches the doomed goto. Two-phase splicing means the reject must
    // leave even that earlier, individually-patchable byte untouched.
    let before = hex(&flow_mod_goto("fe"));
    let out = up(&flow_mod_goto("fe"), 255, Splice::Reject);
    assert_eq!(out, before, "no partial patch on reject");
}

// ---------------------------------------------------------------------------
// Multipart flow-stats replies with mixed table ids
// ---------------------------------------------------------------------------

/// Flow-stats entry, match-any, one `GOTO_TABLE` instruction (0x40 bytes).
fn stats_entry_goto(table: &str, goto: &str) -> String {
    format!(
        "0040 {table} 00 00000000 00000000 0001 0000 0000 0000 00000000 \
         0000000000000002 0000000000000000 0000000000000000 \
         0001 0004 00000000 \
         0001 0008 {goto} 000000"
    )
}

/// Flow-stats entry, match-any, no instructions (0x38 bytes).
fn stats_entry(table: &str) -> String {
    format!(
        "0038 {table} 00 00000000 00000000 0001 0000 0000 0000 00000000 \
         0000000000000005 0000000000000000 0000000000000000 \
         0001 0004 00000000"
    )
}

fn flow_stats_reply(entries: &[String]) -> String {
    let body: String = entries.join(" ");
    let len = 16 + hex(&body).len();
    format!("04 13 {len:04x} 00000021 0001 0000 00000000 {body}")
}

#[test]
fn flow_stats_reply_mixed_tables_patches_every_id() {
    // Physical tables 2 (goto 3) and 5 surface to the controller as tables
    // 1 (goto 2) and 4 — two table-id bytes and one goto byte patched, the
    // other 130 bytes byte-identical.
    let input = flow_stats_reply(&[stats_entry_goto("02", "03"), stats_entry("05")]);
    let expect = flow_stats_reply(&[stats_entry_goto("01", "02"), stats_entry("04")]);
    let out = down(&input, Splice::Patched);
    assert_eq!(out, hex(&expect));
}

#[test]
fn flow_stats_reply_with_table_zero_entry_falls_back() {
    // A Table-0 entry must vanish entirely — an entry-removal the splicer
    // cannot do in place, so the whole frame takes the decode fallback.
    let input = flow_stats_reply(&[stats_entry("00"), stats_entry("02")]);
    let before = hex(&input);
    let out = down(&input, Splice::Fallback);
    assert_eq!(out, before, "fallback must leave the buffer to the caller");
}

// ---------------------------------------------------------------------------
// Multipart table-stats replies
// ---------------------------------------------------------------------------

fn table_stats_reply(tables: &[&str]) -> String {
    let body: String = tables
        .iter()
        .map(|t| format!("{t} 000000 00000001 0000000000000002 0000000000000001 "))
        .collect();
    let len = 16 + hex(&body).len();
    format!("04 13 {len:04x} 00000031 0003 0000 00000000 {body}")
}

#[test]
fn table_stats_reply_mixed_tables_patches_every_id() {
    let out = down(&table_stats_reply(&["01", "03"]), Splice::Patched);
    assert_eq!(out, hex(&table_stats_reply(&["00", "02"])));
}

#[test]
fn table_stats_reply_with_table_zero_falls_back() {
    let input = table_stats_reply(&["00", "01"]);
    let before = hex(&input);
    let out = down(&input, Splice::Fallback);
    assert_eq!(out, before);
}

// ---------------------------------------------------------------------------
// Packet-out buffer-id remaps
// ---------------------------------------------------------------------------

/// Packet-out from the controller port with one `OUTPUT(3)` action and
/// optional trailing packet data (0x28 bytes + data).
fn packet_out(buffer: &str, data: &str) -> String {
    let body = format!(
        "{buffer} fffffffd 0010 000000000000 \
         0000 0010 00000003 ffff 000000000000 {data}"
    );
    let len = 8 + hex(&body).len();
    format!("04 0d {len:04x} 00000051 {body}")
}

/// Decodes the vector (validity check), runs the buffer-id remap, and
/// returns the resulting buffer.
fn remap(frame_hex: &str, f: impl Fn(u32) -> Option<u32>, expect: Splice) -> Vec<u8> {
    let mut buf = hex(frame_hex);
    OfMessage::decode(&buf).expect("golden vector must be a valid frame");
    assert_eq!(splice::remap_packet_out_buffer(&mut buf, f), expect);
    buf
}

#[test]
fn packet_out_live_buffer_patches_in_place() {
    // Controller-visible buffer 0x2a maps to physical 0x019a: exactly the
    // four id bytes change, action list and payload byte-identical.
    let out = remap(
        &packet_out("0000002a", "deadbeef"),
        |id| (id == 0x2a).then_some(0x019a),
        Splice::Patched,
    );
    assert_eq!(out, hex(&packet_out("0000019a", "deadbeef")));
}

#[test]
fn packet_out_no_buffer_short_circuits_unchanged() {
    // NO_BUFFER is never presented to the remap; the frame passes through
    // untouched even when the map would have rewritten it.
    let input = packet_out("ffffffff", "deadbeef");
    let before = hex(&input);
    let out = remap(&input, |_| Some(7), Splice::Unchanged);
    assert_eq!(out, before);
}

#[test]
fn packet_out_identity_remap_stays_unchanged() {
    let input = packet_out("0000002a", "");
    let before = hex(&input);
    let out = remap(&input, Some, Splice::Unchanged);
    assert_eq!(out, before);
}

#[test]
fn packet_out_stale_buffer_with_inline_data_degrades_to_no_buffer() {
    // The reference is stale but the frame carries the packet inline: the
    // switch replays the copy instead of releasing an unvetted buffer.
    let out = remap(
        &packet_out("0000002a", "deadbeef"),
        |_| None,
        Splice::Patched,
    );
    assert_eq!(out, hex(&packet_out("ffffffff", "deadbeef")));
}

#[test]
fn packet_out_stale_buffer_without_data_rejects_untouched() {
    let input = packet_out("0000002a", "");
    let before = hex(&input);
    let out = remap(&input, |_| None, Splice::Reject);
    assert_eq!(out, before, "reject must not half-patch");
}

#[test]
fn packet_out_nonzero_pad_falls_back_untouched() {
    // The decoder skips the 6 pad bytes, so this frame decodes — but it is
    // not canonical, so the splicer must leave it to the decode path.
    let mut buf = hex(&packet_out("0000002a", "deadbeef"));
    OfMessage::decode(&buf).expect("pad bytes are ignored by the decoder");
    buf[18] = 0xaa;
    let before = buf.clone();
    assert_eq!(
        splice::remap_packet_out_buffer(&mut buf, |id| Some(id + 1)),
        Splice::Fallback
    );
    assert_eq!(buf, before, "fallback must leave the buffer to the caller");
}
