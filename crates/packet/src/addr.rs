//! Link-layer addressing.

use std::fmt;
use std::str::FromStr;

/// A 48-bit IEEE 802 MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr([u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// The all-zero address (used as "unset" in ARP requests).
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Creates an address from its six octets.
    #[must_use]
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// A locally administered unicast address derived from a host index —
    /// handy for generating a testbed's worth of distinct MACs.
    #[must_use]
    pub const fn from_index(index: u32) -> Self {
        let b = index.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// The six octets.
    #[must_use]
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }

    /// `true` for the broadcast address.
    #[must_use]
    pub fn is_broadcast(self) -> bool {
        self == MacAddr::BROADCAST
    }

    /// `true` when the group (multicast) bit is set. Broadcast counts.
    #[must_use]
    pub fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// `true` for ordinary unicast addresses.
    #[must_use]
    pub fn is_unicast(self) -> bool {
        !self.is_multicast()
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MacAddr({self})")
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

/// Error returned when parsing a textual MAC address fails.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParseMacError;

impl fmt::Display for ParseMacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address syntax (expected aa:bb:cc:dd:ee:ff)")
    }
}

impl std::error::Error for ParseMacError {}

impl FromStr for MacAddr {
    type Err = ParseMacError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 6];
        let mut parts = s.split(':');
        for octet in &mut octets {
            let part = parts.next().ok_or(ParseMacError)?;
            if part.len() != 2 {
                return Err(ParseMacError);
            }
            *octet = u8::from_str_radix(part, 16).map_err(|_| ParseMacError)?;
        }
        if parts.next().is_some() {
            return Err(ParseMacError);
        }
        Ok(MacAddr(octets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_round_trip() {
        let mac = MacAddr::new([0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01]);
        let text = mac.to_string();
        assert_eq!(text, "de:ad:be:ef:00:01");
        assert_eq!(text.parse::<MacAddr>().unwrap(), mac);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<MacAddr>().is_err());
        assert!("de:ad:be:ef:00".parse::<MacAddr>().is_err());
        assert!("de:ad:be:ef:00:01:02".parse::<MacAddr>().is_err());
        assert!("de:ad:be:ef:00:zz".parse::<MacAddr>().is_err());
        assert!("dead:be:ef:00:01:2".parse::<MacAddr>().is_err());
    }

    #[test]
    fn classification() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        let multicast = MacAddr::new([0x01, 0x00, 0x5E, 0, 0, 1]);
        assert!(multicast.is_multicast());
        assert!(!multicast.is_broadcast());
        let unicast = MacAddr::from_index(7);
        assert!(unicast.is_unicast());
    }

    #[test]
    fn from_index_is_injective_for_distinct_indices() {
        let a = MacAddr::from_index(1);
        let b = MacAddr::from_index(2);
        assert_ne!(a, b);
        assert_eq!(MacAddr::from_index(1), a);
    }
}
