//! ARP for IPv4 over Ethernet (RFC 826).

use crate::addr::MacAddr;
use crate::error::PacketError;
use crate::wire::{Reader, Writer};
use crate::Result;
use std::net::Ipv4Addr;

/// ARP operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArpOp {
    /// Who-has request (1).
    Request,
    /// Is-at reply (2).
    Reply,
}

impl ArpOp {
    fn to_u16(self) -> u16 {
        match self {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        }
    }

    fn from_u16(v: u16) -> Result<Self> {
        match v {
            1 => Ok(ArpOp::Request),
            2 => Ok(ArpOp::Reply),
            other => Err(PacketError::BadField {
                field: "arp.oper",
                value: u64::from(other),
            }),
        }
    }
}

/// An ARP packet for IPv4-over-Ethernet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArpPacket {
    /// Request or reply.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl ArpPacket {
    /// Builds a who-has request.
    #[must_use]
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Self {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// Builds an is-at reply answering `request`.
    #[must_use]
    pub fn reply_to(request: &ArpPacket, my_mac: MacAddr) -> Self {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: my_mac,
            sender_ip: request.target_ip,
            target_mac: request.sender_mac,
            target_ip: request.sender_ip,
        }
    }

    /// Serializes the packet (28 bytes).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(28);
        w.u16(1); // htype: Ethernet
        w.u16(0x0800); // ptype: IPv4
        w.u8(6); // hlen
        w.u8(4); // plen
        w.u16(self.op.to_u16());
        w.bytes(&self.sender_mac.octets());
        w.bytes(&self.sender_ip.octets());
        w.bytes(&self.target_mac.octets());
        w.bytes(&self.target_ip.octets());
        w.into_bytes()
    }

    /// Parses an IPv4-over-Ethernet ARP packet.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let htype = r.u16()?;
        if htype != 1 {
            return Err(PacketError::BadField {
                field: "arp.htype",
                value: u64::from(htype),
            });
        }
        let ptype = r.u16()?;
        if ptype != 0x0800 {
            return Err(PacketError::BadField {
                field: "arp.ptype",
                value: u64::from(ptype),
            });
        }
        let hlen = r.u8()?;
        let plen = r.u8()?;
        if hlen != 6 || plen != 4 {
            return Err(PacketError::BadField {
                field: "arp.addr_len",
                value: u64::from(hlen) << 8 | u64::from(plen),
            });
        }
        let op = ArpOp::from_u16(r.u16()?)?;
        let sender_mac = MacAddr::new(r.array::<6>()?);
        let sender_ip = Ipv4Addr::from(r.array::<4>()?);
        let target_mac = MacAddr::new(r.array::<6>()?);
        let target_ip = Ipv4Addr::from(r.array::<4>()?);
        Ok(ArpPacket {
            op,
            sender_mac,
            sender_ip,
            target_mac,
            target_ip,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> ArpPacket {
        ArpPacket::request(
            MacAddr::from_index(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        )
    }

    #[test]
    fn request_round_trip() {
        let p = sample_request();
        let bytes = p.encode();
        assert_eq!(bytes.len(), 28);
        assert_eq!(ArpPacket::decode(&bytes).unwrap(), p);
    }

    #[test]
    fn reply_answers_request() {
        let req = sample_request();
        let responder = MacAddr::from_index(2);
        let rep = ArpPacket::reply_to(&req, responder);
        assert_eq!(rep.op, ArpOp::Reply);
        assert_eq!(rep.sender_mac, responder);
        assert_eq!(rep.sender_ip, req.target_ip);
        assert_eq!(rep.target_mac, req.sender_mac);
        assert_eq!(rep.target_ip, req.sender_ip);
        let bytes = rep.encode();
        assert_eq!(ArpPacket::decode(&bytes).unwrap(), rep);
    }

    #[test]
    fn rejects_non_ethernet_hardware() {
        let mut bytes = sample_request().encode();
        bytes[1] = 6; // htype = IEEE 802
        assert!(matches!(
            ArpPacket::decode(&bytes),
            Err(PacketError::BadField {
                field: "arp.htype",
                ..
            })
        ));
    }

    #[test]
    fn rejects_bad_op() {
        let mut bytes = sample_request().encode();
        bytes[7] = 9;
        assert!(matches!(
            ArpPacket::decode(&bytes),
            Err(PacketError::BadField {
                field: "arp.oper",
                ..
            })
        ));
    }

    #[test]
    fn rejects_truncated() {
        let bytes = sample_request().encode();
        assert!(ArpPacket::decode(&bytes[..27]).is_err());
    }
}
