//! DHCP (RFC 2131/2132): the exchange the DFI IP↔MAC binding sensor
//! observes at its authoritative source, the DHCP server.

use crate::addr::MacAddr;
use crate::error::PacketError;
use crate::wire::{Reader, Writer};
use crate::Result;
use std::net::Ipv4Addr;

const MAGIC_COOKIE: u32 = 0x6382_5363;

/// DHCP message type (option 53).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DhcpMessageType {
    /// Client looking for servers.
    Discover,
    /// Server offering a lease.
    Offer,
    /// Client requesting an offered lease.
    Request,
    /// Server acknowledging (committing) a lease.
    Ack,
    /// Server refusing a request.
    Nak,
    /// Client releasing its lease.
    Release,
}

impl DhcpMessageType {
    fn to_u8(self) -> u8 {
        match self {
            DhcpMessageType::Discover => 1,
            DhcpMessageType::Offer => 2,
            DhcpMessageType::Request => 3,
            DhcpMessageType::Ack => 5,
            DhcpMessageType::Nak => 6,
            DhcpMessageType::Release => 7,
        }
    }

    fn from_u8(v: u8) -> Result<Self> {
        Ok(match v {
            1 => DhcpMessageType::Discover,
            2 => DhcpMessageType::Offer,
            3 => DhcpMessageType::Request,
            5 => DhcpMessageType::Ack,
            6 => DhcpMessageType::Nak,
            7 => DhcpMessageType::Release,
            other => {
                return Err(PacketError::BadField {
                    field: "dhcp.message_type",
                    value: u64::from(other),
                })
            }
        })
    }
}

/// A decoded DHCP option.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DhcpOption {
    /// Option 1: subnet mask.
    SubnetMask(Ipv4Addr),
    /// Option 12: client hostname.
    Hostname(String),
    /// Option 50: requested IP address.
    RequestedIp(Ipv4Addr),
    /// Option 51: lease time in seconds.
    LeaseTime(u32),
    /// Option 53: message type (also surfaced as
    /// [`DhcpMessage::message_type`]).
    MessageType(DhcpMessageType),
    /// Option 54: server identifier.
    ServerId(Ipv4Addr),
    /// Anything else, carried verbatim as (code, data).
    Other(u8, Vec<u8>),
}

/// A DHCP message (BOOTP fixed fields plus options).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DhcpMessage {
    /// The option-53 message type.
    pub message_type: DhcpMessageType,
    /// Transaction id correlating an exchange.
    pub xid: u32,
    /// Client's current IP (`ciaddr`).
    pub client_ip: Ipv4Addr,
    /// "Your" IP — the address being offered/assigned (`yiaddr`).
    pub your_ip: Ipv4Addr,
    /// Server IP (`siaddr`).
    pub server_ip: Ipv4Addr,
    /// Client hardware address.
    pub client_mac: MacAddr,
    /// All options except the message type, in wire order.
    pub options: Vec<DhcpOption>,
}

impl DhcpMessage {
    /// Builds a client DISCOVER carrying the client hostname (which is how
    /// the AD-joined Windows hosts in the testbed announce themselves).
    #[must_use]
    pub fn discover(xid: u32, client_mac: MacAddr, hostname: &str) -> Self {
        DhcpMessage {
            message_type: DhcpMessageType::Discover,
            xid,
            client_ip: Ipv4Addr::UNSPECIFIED,
            your_ip: Ipv4Addr::UNSPECIFIED,
            server_ip: Ipv4Addr::UNSPECIFIED,
            client_mac,
            options: vec![DhcpOption::Hostname(hostname.to_string())],
        }
    }

    /// Builds a server OFFER for `offered_ip`.
    #[must_use]
    pub fn offer(xid: u32, client_mac: MacAddr, offered_ip: Ipv4Addr, server: Ipv4Addr) -> Self {
        DhcpMessage {
            message_type: DhcpMessageType::Offer,
            xid,
            client_ip: Ipv4Addr::UNSPECIFIED,
            your_ip: offered_ip,
            server_ip: server,
            client_mac,
            options: vec![DhcpOption::ServerId(server), DhcpOption::LeaseTime(86_400)],
        }
    }

    /// Builds a client REQUEST for `requested_ip`.
    #[must_use]
    pub fn request(
        xid: u32,
        client_mac: MacAddr,
        requested_ip: Ipv4Addr,
        server: Ipv4Addr,
        hostname: &str,
    ) -> Self {
        DhcpMessage {
            message_type: DhcpMessageType::Request,
            xid,
            client_ip: Ipv4Addr::UNSPECIFIED,
            your_ip: Ipv4Addr::UNSPECIFIED,
            server_ip: Ipv4Addr::UNSPECIFIED,
            client_mac,
            options: vec![
                DhcpOption::RequestedIp(requested_ip),
                DhcpOption::ServerId(server),
                DhcpOption::Hostname(hostname.to_string()),
            ],
        }
    }

    /// Builds a server ACK committing `assigned_ip`.
    #[must_use]
    pub fn ack(xid: u32, client_mac: MacAddr, assigned_ip: Ipv4Addr, server: Ipv4Addr) -> Self {
        DhcpMessage {
            message_type: DhcpMessageType::Ack,
            xid,
            client_ip: Ipv4Addr::UNSPECIFIED,
            your_ip: assigned_ip,
            server_ip: server,
            client_mac,
            options: vec![DhcpOption::ServerId(server), DhcpOption::LeaseTime(86_400)],
        }
    }

    /// Finds the hostname option, if present.
    #[must_use]
    pub fn hostname(&self) -> Option<&str> {
        self.options.iter().find_map(|o| match o {
            DhcpOption::Hostname(h) => Some(h.as_str()),
            _ => None,
        })
    }

    /// Finds the requested-IP option, if present.
    #[must_use]
    pub fn requested_ip(&self) -> Option<Ipv4Addr> {
        self.options.iter().find_map(|o| match o {
            DhcpOption::RequestedIp(ip) => Some(*ip),
            _ => None,
        })
    }

    /// `true` for messages sent by servers (OFFER/ACK/NAK).
    #[must_use]
    pub fn is_from_server(&self) -> bool {
        matches!(
            self.message_type,
            DhcpMessageType::Offer | DhcpMessageType::Ack | DhcpMessageType::Nak
        )
    }

    /// Serializes the message.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(300);
        let op = if self.is_from_server() { 2 } else { 1 };
        w.u8(op);
        w.u8(1); // htype Ethernet
        w.u8(6); // hlen
        w.u8(0); // hops
        w.u32(self.xid);
        w.u16(0); // secs
        w.u16(0x8000); // flags: broadcast
        w.bytes(&self.client_ip.octets());
        w.bytes(&self.your_ip.octets());
        w.bytes(&self.server_ip.octets());
        w.zeros(4); // giaddr
        w.bytes(&self.client_mac.octets());
        w.zeros(10); // chaddr padding
        w.zeros(64); // sname
        w.zeros(128); // file
        w.u32(MAGIC_COOKIE);
        w.u8(53);
        w.u8(1);
        w.u8(self.message_type.to_u8());
        for opt in &self.options {
            encode_option(&mut w, opt);
        }
        w.u8(255); // end
        w.into_bytes()
    }

    /// Parses a message.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let _op = r.u8()?;
        let htype = r.u8()?;
        let hlen = r.u8()?;
        if htype != 1 || hlen != 6 {
            return Err(PacketError::BadField {
                field: "dhcp.htype",
                value: u64::from(htype),
            });
        }
        let _hops = r.u8()?;
        let xid = r.u32()?;
        let _secs = r.u16()?;
        let _flags = r.u16()?;
        let client_ip = Ipv4Addr::from(r.array::<4>()?);
        let your_ip = Ipv4Addr::from(r.array::<4>()?);
        let server_ip = Ipv4Addr::from(r.array::<4>()?);
        r.skip(4)?; // giaddr
        let client_mac = MacAddr::new(r.array::<6>()?);
        r.skip(10)?; // chaddr padding
        r.skip(64 + 128)?; // sname + file
        let magic = r.u32()?;
        if magic != MAGIC_COOKIE {
            return Err(PacketError::BadField {
                field: "dhcp.magic",
                value: u64::from(magic),
            });
        }
        let mut message_type = None;
        let mut options = Vec::new();
        loop {
            let code = r.u8()?;
            match code {
                0 => continue, // pad
                255 => break,  // end
                _ => {}
            }
            let len = usize::from(r.u8()?);
            let data = r.bytes(len)?;
            match decode_option(code, data)? {
                DhcpOption::MessageType(t) => message_type = Some(t),
                other => options.push(other),
            }
        }
        let message_type = message_type.ok_or(PacketError::BadField {
            field: "dhcp.message_type",
            value: 0,
        })?;
        Ok(DhcpMessage {
            message_type,
            xid,
            client_ip,
            your_ip,
            server_ip,
            client_mac,
            options,
        })
    }
}

fn encode_option(w: &mut Writer, opt: &DhcpOption) {
    match opt {
        DhcpOption::SubnetMask(ip) => {
            w.u8(1);
            w.u8(4);
            w.bytes(&ip.octets());
        }
        DhcpOption::Hostname(h) => {
            w.u8(12);
            w.u8(h.len() as u8);
            w.bytes(h.as_bytes());
        }
        DhcpOption::RequestedIp(ip) => {
            w.u8(50);
            w.u8(4);
            w.bytes(&ip.octets());
        }
        DhcpOption::LeaseTime(secs) => {
            w.u8(51);
            w.u8(4);
            w.u32(*secs);
        }
        DhcpOption::MessageType(t) => {
            w.u8(53);
            w.u8(1);
            w.u8(t.to_u8());
        }
        DhcpOption::ServerId(ip) => {
            w.u8(54);
            w.u8(4);
            w.bytes(&ip.octets());
        }
        DhcpOption::Other(code, data) => {
            w.u8(*code);
            w.u8(data.len() as u8);
            w.bytes(data);
        }
    }
}

fn decode_option(code: u8, data: &[u8]) -> Result<DhcpOption> {
    let ip4 = |data: &[u8]| -> Result<Ipv4Addr> {
        let arr: [u8; 4] = data.try_into().map_err(|_| PacketError::BadField {
            field: "dhcp.option_len",
            value: data.len() as u64,
        })?;
        Ok(Ipv4Addr::from(arr))
    };
    Ok(match code {
        1 => DhcpOption::SubnetMask(ip4(data)?),
        12 => DhcpOption::Hostname(String::from_utf8(data.to_vec()).map_err(|_| {
            PacketError::BadField {
                field: "dhcp.hostname",
                value: 0,
            }
        })?),
        50 => DhcpOption::RequestedIp(ip4(data)?),
        51 => {
            let arr: [u8; 4] = data.try_into().map_err(|_| PacketError::BadField {
                field: "dhcp.option_len",
                value: data.len() as u64,
            })?;
            DhcpOption::LeaseTime(u32::from_be_bytes(arr))
        }
        53 => {
            let v = *data.first().ok_or(PacketError::BadField {
                field: "dhcp.option_len",
                value: 0,
            })?;
            DhcpOption::MessageType(DhcpMessageType::from_u8(v)?)
        }
        54 => DhcpOption::ServerId(ip4(data)?),
        other => DhcpOption::Other(other, data.to_vec()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SERVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    #[test]
    fn discover_round_trip() {
        let m = DhcpMessage::discover(0xABCD, MacAddr::from_index(5), "alice-laptop");
        let decoded = DhcpMessage::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(decoded.hostname(), Some("alice-laptop"));
        assert!(!decoded.is_from_server());
    }

    #[test]
    fn full_dora_exchange_round_trips() {
        let mac = MacAddr::from_index(9);
        let ip = Ipv4Addr::new(10, 0, 1, 77);
        for m in [
            DhcpMessage::discover(1, mac, "h1"),
            DhcpMessage::offer(1, mac, ip, SERVER),
            DhcpMessage::request(1, mac, ip, SERVER, "h1"),
            DhcpMessage::ack(1, mac, ip, SERVER),
        ] {
            assert_eq!(DhcpMessage::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn ack_assigns_ip() {
        let m = DhcpMessage::ack(
            7,
            MacAddr::from_index(1),
            Ipv4Addr::new(10, 0, 0, 50),
            SERVER,
        );
        assert!(m.is_from_server());
        assert_eq!(m.your_ip, Ipv4Addr::new(10, 0, 0, 50));
    }

    #[test]
    fn request_exposes_requested_ip() {
        let ip = Ipv4Addr::new(10, 9, 8, 7);
        let m = DhcpMessage::request(1, MacAddr::ZERO, ip, SERVER, "h");
        assert_eq!(m.requested_ip(), Some(ip));
    }

    #[test]
    fn missing_message_type_rejected() {
        let m = DhcpMessage::discover(1, MacAddr::ZERO, "x");
        let mut bytes = m.encode();
        // Overwrite the message-type option (53) with a pad-compatible
        // unknown option of the same total length.
        let magic_off = 236;
        assert_eq!(bytes[magic_off + 4], 53);
        bytes[magic_off + 4] = 99;
        assert!(matches!(
            DhcpMessage::decode(&bytes),
            Err(PacketError::BadField {
                field: "dhcp.message_type",
                ..
            })
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = DhcpMessage::discover(1, MacAddr::ZERO, "x").encode();
        bytes[236] = 0;
        assert!(matches!(
            DhcpMessage::decode(&bytes),
            Err(PacketError::BadField {
                field: "dhcp.magic",
                ..
            })
        ));
    }

    #[test]
    fn unknown_options_preserved() {
        let mut m = DhcpMessage::discover(1, MacAddr::ZERO, "x");
        m.options.push(DhcpOption::Other(60, b"MSFT 5.0".to_vec()));
        let decoded = DhcpMessage::decode(&m.encode()).unwrap();
        assert!(decoded
            .options
            .contains(&DhcpOption::Other(60, b"MSFT 5.0".to_vec())));
    }

    #[test]
    fn truncated_rejected() {
        let bytes = DhcpMessage::discover(1, MacAddr::ZERO, "x").encode();
        assert!(DhcpMessage::decode(&bytes[..100]).is_err());
    }
}
