//! DNS (RFC 1035): queries and A/PTR answers, as observed by the DFI
//! hostname↔IP binding sensor at its authoritative source, the DNS server.

use crate::error::PacketError;
use crate::wire::{Reader, Writer};
use crate::Result;
use std::net::Ipv4Addr;

/// DNS record types modeled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DnsType {
    /// IPv4 host address (1).
    A,
    /// Pointer / reverse lookup (12).
    Ptr,
    /// Any other type, carried verbatim.
    Other(u16),
}

impl DnsType {
    fn to_u16(self) -> u16 {
        match self {
            DnsType::A => 1,
            DnsType::Ptr => 12,
            DnsType::Other(v) => v,
        }
    }

    fn from_u16(v: u16) -> Self {
        match v {
            1 => DnsType::A,
            12 => DnsType::Ptr,
            other => DnsType::Other(other),
        }
    }
}

/// A DNS question.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DnsQuestion {
    /// Queried name, dotted form without trailing dot (e.g. `alice-laptop.corp.local`).
    pub name: String,
    /// Queried record type.
    pub qtype: DnsType,
}

/// Resource-record payloads modeled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DnsRecordData {
    /// An IPv4 address (A record).
    A(Ipv4Addr),
    /// A domain name (PTR record).
    Ptr(String),
    /// Raw bytes for other types.
    Raw(Vec<u8>),
}

/// A DNS resource record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DnsRecord {
    /// Record owner name.
    pub name: String,
    /// Record type.
    pub rtype: DnsType,
    /// Time to live in seconds.
    pub ttl: u32,
    /// Record payload.
    pub data: DnsRecordData,
}

/// A DNS message holding questions and answers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DnsMessage {
    /// Transaction id.
    pub id: u16,
    /// `true` for responses, `false` for queries.
    pub is_response: bool,
    /// RCODE (0 = no error, 3 = NXDOMAIN).
    pub rcode: u8,
    /// Questions.
    pub questions: Vec<DnsQuestion>,
    /// Answers.
    pub answers: Vec<DnsRecord>,
}

impl DnsMessage {
    /// Builds an A-record query.
    #[must_use]
    pub fn query_a(id: u16, name: &str) -> Self {
        DnsMessage {
            id,
            is_response: false,
            rcode: 0,
            questions: vec![DnsQuestion {
                name: name.to_string(),
                qtype: DnsType::A,
            }],
            answers: Vec::new(),
        }
    }

    /// Builds a response answering `query` with a single A record.
    #[must_use]
    pub fn answer_a(query: &DnsMessage, ip: Ipv4Addr, ttl: u32) -> Self {
        let name = query
            .questions
            .first()
            .map(|q| q.name.clone())
            .unwrap_or_default();
        DnsMessage {
            id: query.id,
            is_response: true,
            rcode: 0,
            questions: query.questions.clone(),
            answers: vec![DnsRecord {
                name,
                rtype: DnsType::A,
                ttl,
                data: DnsRecordData::A(ip),
            }],
        }
    }

    /// Builds an NXDOMAIN response to `query`.
    #[must_use]
    pub fn nxdomain(query: &DnsMessage) -> Self {
        DnsMessage {
            id: query.id,
            is_response: true,
            rcode: 3,
            questions: query.questions.clone(),
            answers: Vec::new(),
        }
    }

    /// The first answered A record, if any.
    #[must_use]
    pub fn first_a(&self) -> Option<(&str, Ipv4Addr)> {
        self.answers.iter().find_map(|r| match r.data {
            DnsRecordData::A(ip) => Some((r.name.as_str(), ip)),
            _ => None,
        })
    }

    /// Serializes the message (names are written uncompressed).
    pub fn encode(&self) -> Result<Vec<u8>> {
        let mut w = Writer::with_capacity(64);
        w.u16(self.id);
        let mut flags: u16 = 0;
        if self.is_response {
            flags |= 0x8000; // QR
            flags |= 0x0400; // AA: our server is authoritative
        }
        flags |= 0x0100; // RD
        flags |= u16::from(self.rcode & 0x0F);
        w.u16(flags);
        w.u16(self.questions.len() as u16);
        w.u16(self.answers.len() as u16);
        w.u16(0); // NS count
        w.u16(0); // AR count
        for q in &self.questions {
            encode_name(&mut w, &q.name)?;
            w.u16(q.qtype.to_u16());
            w.u16(1); // class IN
        }
        for a in &self.answers {
            encode_name(&mut w, &a.name)?;
            w.u16(a.rtype.to_u16());
            w.u16(1); // class IN
            w.u32(a.ttl);
            match &a.data {
                DnsRecordData::A(ip) => {
                    w.u16(4);
                    w.bytes(&ip.octets());
                }
                DnsRecordData::Ptr(name) => {
                    let mut inner = Writer::new();
                    encode_name(&mut inner, name)?;
                    w.u16(inner.len() as u16);
                    w.bytes(inner.as_slice());
                }
                DnsRecordData::Raw(data) => {
                    w.u16(data.len() as u16);
                    w.bytes(data);
                }
            }
        }
        Ok(w.into_bytes())
    }

    /// Parses a message. Compression pointers in names are followed.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let id = r.u16()?;
        let flags = r.u16()?;
        let is_response = flags & 0x8000 != 0;
        let rcode = (flags & 0x0F) as u8;
        let qcount = r.u16()?;
        let acount = r.u16()?;
        let _ns = r.u16()?;
        let _ar = r.u16()?;
        let mut questions = Vec::with_capacity(usize::from(qcount));
        for _ in 0..qcount {
            let name = decode_name(bytes, &mut r)?;
            let qtype = DnsType::from_u16(r.u16()?);
            let _class = r.u16()?;
            questions.push(DnsQuestion { name, qtype });
        }
        let mut answers = Vec::with_capacity(usize::from(acount));
        for _ in 0..acount {
            let name = decode_name(bytes, &mut r)?;
            let rtype = DnsType::from_u16(r.u16()?);
            let _class = r.u16()?;
            let ttl = r.u32()?;
            let rdlen = usize::from(r.u16()?);
            let rd_start = r.position();
            let data = match rtype {
                DnsType::A => {
                    if rdlen != 4 {
                        return Err(PacketError::BadField {
                            field: "dns.rdlength",
                            value: rdlen as u64,
                        });
                    }
                    DnsRecordData::A(Ipv4Addr::from(r.array::<4>()?))
                }
                DnsType::Ptr => {
                    let name = decode_name(bytes, &mut r)?;
                    r.seek(rd_start + rdlen)?;
                    DnsRecordData::Ptr(name)
                }
                DnsType::Other(_) => DnsRecordData::Raw(r.bytes(rdlen)?.to_vec()),
            };
            answers.push(DnsRecord {
                name,
                rtype,
                ttl,
                data,
            });
        }
        Ok(DnsMessage {
            id,
            is_response,
            rcode,
            questions,
            answers,
        })
    }
}

fn encode_name(w: &mut Writer, name: &str) -> Result<()> {
    if !name.is_empty() {
        for label in name.split('.') {
            let bytes = label.as_bytes();
            if bytes.is_empty() || bytes.len() > 63 {
                return Err(PacketError::BadName("label length must be 1..=63"));
            }
            w.u8(bytes.len() as u8);
            w.bytes(bytes);
        }
    }
    w.u8(0);
    Ok(())
}

fn decode_name<'a>(full: &'a [u8], r: &mut Reader<'a>) -> Result<String> {
    let mut labels: Vec<String> = Vec::new();
    let mut jumps = 0usize;
    // When we follow a pointer we continue reading from a clone; the real
    // cursor stays just past the pointer.
    let mut local = r.clone();
    let mut jumped = false;
    loop {
        let len = local.u8()?;
        if len == 0 {
            break;
        }
        if len & 0xC0 == 0xC0 {
            let lo = local.u8()?;
            if !jumped {
                *r = local.clone();
            }
            jumped = true;
            jumps += 1;
            if jumps > 16 {
                return Err(PacketError::BadName("compression pointer loop"));
            }
            let offset = usize::from(u16::from_be_bytes([len & 0x3F, lo]));
            let mut target = Reader::new(full);
            target.seek(offset)?;
            local = target;
            continue;
        }
        if len > 63 {
            return Err(PacketError::BadName("label length above 63"));
        }
        let raw = local.bytes(usize::from(len))?;
        let label =
            std::str::from_utf8(raw).map_err(|_| PacketError::BadName("label is not UTF-8"))?;
        labels.push(label.to_string());
    }
    if !jumped {
        *r = local;
    }
    Ok(labels.join("."))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_round_trip() {
        let q = DnsMessage::query_a(0x1234, "alice-laptop.corp.local");
        let bytes = q.encode().unwrap();
        assert_eq!(DnsMessage::decode(&bytes).unwrap(), q);
    }

    #[test]
    fn answer_round_trip_and_accessor() {
        let q = DnsMessage::query_a(9, "mail.corp.local");
        let a = DnsMessage::answer_a(&q, Ipv4Addr::new(10, 0, 2, 25), 300);
        let decoded = DnsMessage::decode(&a.encode().unwrap()).unwrap();
        assert_eq!(decoded, a);
        assert_eq!(
            decoded.first_a(),
            Some(("mail.corp.local", Ipv4Addr::new(10, 0, 2, 25)))
        );
        assert!(decoded.is_response);
        assert_eq!(decoded.rcode, 0);
    }

    #[test]
    fn nxdomain_carries_rcode() {
        let q = DnsMessage::query_a(1, "nope.corp.local");
        let n = DnsMessage::nxdomain(&q);
        let decoded = DnsMessage::decode(&n.encode().unwrap()).unwrap();
        assert_eq!(decoded.rcode, 3);
        assert!(decoded.answers.is_empty());
        assert_eq!(decoded.first_a(), None);
    }

    #[test]
    fn ptr_record_round_trip() {
        let m = DnsMessage {
            id: 2,
            is_response: true,
            rcode: 0,
            questions: vec![],
            answers: vec![DnsRecord {
                name: "5.1.0.10.in-addr.arpa".into(),
                rtype: DnsType::Ptr,
                ttl: 60,
                data: DnsRecordData::Ptr("alice-laptop.corp.local".into()),
            }],
        };
        assert_eq!(DnsMessage::decode(&m.encode().unwrap()).unwrap(), m);
    }

    #[test]
    fn compression_pointer_followed() {
        // Hand-build: header, one answer whose name is a pointer to offset
        // of a name we embed after the header... simpler: question name
        // literal, answer name pointer to question name at offset 12.
        let q = DnsMessage::query_a(7, "h.x");
        let mut bytes = q.encode().unwrap();
        // Fix counts: 1 answer.
        bytes[7] = 1;
        // Append answer: pointer 0xC00C, type A, class IN, ttl, rdlen 4, ip.
        bytes.extend_from_slice(&[0xC0, 0x0C, 0, 1, 0, 1, 0, 0, 0, 60, 0, 4, 10, 0, 0, 1]);
        let decoded = DnsMessage::decode(&bytes).unwrap();
        assert_eq!(decoded.answers[0].name, "h.x");
        assert_eq!(decoded.first_a(), Some(("h.x", Ipv4Addr::new(10, 0, 0, 1))));
    }

    #[test]
    fn pointer_loop_rejected() {
        let q = DnsMessage::query_a(7, "h.x");
        let mut bytes = q.encode().unwrap();
        bytes[7] = 1;
        let self_ptr_off = bytes.len() as u16;
        let ptr = 0xC000u16 | self_ptr_off;
        bytes.extend_from_slice(&ptr.to_be_bytes());
        bytes.extend_from_slice(&[0, 1, 0, 1, 0, 0, 0, 60, 0, 4, 10, 0, 0, 1]);
        assert_eq!(
            DnsMessage::decode(&bytes),
            Err(PacketError::BadName("compression pointer loop"))
        );
    }

    #[test]
    fn empty_label_rejected_on_encode() {
        let q = DnsMessage::query_a(7, "bad..name");
        assert!(q.encode().is_err());
    }

    #[test]
    fn oversized_label_rejected_on_encode() {
        let long = "a".repeat(64);
        assert!(DnsMessage::query_a(7, &long).encode().is_err());
    }

    #[test]
    fn a_record_with_wrong_rdlength_rejected() {
        let q = DnsMessage::query_a(7, "h.x");
        let a = DnsMessage::answer_a(&q, Ipv4Addr::new(1, 2, 3, 4), 60);
        let mut bytes = a.encode().unwrap();
        let len = bytes.len();
        bytes[len - 5] = 3; // rdlength 4 → 3
        assert!(DnsMessage::decode(&bytes).is_err());
    }

    #[test]
    fn truncated_rejected() {
        let bytes = DnsMessage::query_a(7, "h.x").encode().unwrap();
        assert!(DnsMessage::decode(&bytes[..10]).is_err());
    }
}
