//! Packet codec errors.

use std::error::Error;
use std::fmt;

/// Errors produced while parsing or validating packet bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PacketError {
    /// The buffer ended before a field could be read.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A field held a value the decoder cannot represent.
    BadField {
        /// Which field was malformed.
        field: &'static str,
        /// The offending raw value.
        value: u64,
    },
    /// A version field did not match the supported version.
    UnsupportedVersion {
        /// Protocol whose version was wrong.
        protocol: &'static str,
        /// The version found.
        found: u8,
    },
    /// A checksum failed verification.
    BadChecksum {
        /// Protocol whose checksum failed.
        protocol: &'static str,
    },
    /// A DNS name was malformed (bad label length, looping pointer, …).
    BadName(&'static str),
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated packet: needed {needed} bytes, had {available}"
                )
            }
            PacketError::BadField { field, value } => {
                write!(f, "bad value {value:#x} for field {field}")
            }
            PacketError::UnsupportedVersion { protocol, found } => {
                write!(f, "unsupported {protocol} version {found}")
            }
            PacketError::BadChecksum { protocol } => {
                write!(f, "{protocol} checksum verification failed")
            }
            PacketError::BadName(why) => write!(f, "malformed DNS name: {why}"),
        }
    }
}

impl Error for PacketError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = PacketError::Truncated {
            needed: 4,
            available: 1,
        };
        assert_eq!(e.to_string(), "truncated packet: needed 4 bytes, had 1");
        let e = PacketError::UnsupportedVersion {
            protocol: "IPv4",
            found: 6,
        };
        assert!(e.to_string().contains("IPv4"));
        let e = PacketError::BadChecksum { protocol: "TCP" };
        assert!(e.to_string().contains("TCP"));
    }

    #[test]
    fn is_std_error() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(PacketError::BadName("loop"));
    }
}
