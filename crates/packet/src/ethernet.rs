//! Ethernet II framing with optional 802.1Q VLAN tagging.

use crate::addr::MacAddr;
use crate::error::PacketError;
use crate::wire::{Reader, Writer};
use crate::Result;

/// EtherType values the DFI data plane understands.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EtherType {
    /// IPv4 (`0x0800`).
    Ipv4,
    /// ARP (`0x0806`).
    Arp,
    /// IPv6 (`0x86DD`). Parsed but not interpreted further.
    Ipv6,
    /// Anything else, carried verbatim.
    Other(u16),
}

impl EtherType {
    /// The 16-bit wire value.
    #[must_use]
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Ipv6 => 0x86DD,
            EtherType::Other(v) => v,
        }
    }

    /// Interprets a 16-bit wire value.
    #[must_use]
    pub fn from_u16(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x86DD => EtherType::Ipv6,
            other => EtherType::Other(other),
        }
    }
}

const VLAN_TPID: u16 = 0x8100;

/// An Ethernet II frame, optionally 802.1Q-tagged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// VLAN identifier (12 bits used) when the frame carries an 802.1Q tag.
    pub vlan: Option<u16>,
    /// Payload protocol.
    pub ethertype: EtherType,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl EthernetFrame {
    /// Builds an untagged frame.
    #[must_use]
    pub fn new(src: MacAddr, dst: MacAddr, ethertype: EtherType, payload: Vec<u8>) -> Self {
        EthernetFrame {
            dst,
            src,
            vlan: None,
            ethertype,
            payload,
        }
    }

    /// Builds an untagged IPv4 frame.
    #[must_use]
    pub fn ipv4(src: MacAddr, dst: MacAddr, payload: Vec<u8>) -> Self {
        EthernetFrame::new(src, dst, EtherType::Ipv4, payload)
    }

    /// Builds an untagged ARP frame (broadcast destination by default for
    /// requests is up to the caller).
    #[must_use]
    pub fn arp(src: MacAddr, dst: MacAddr, payload: Vec<u8>) -> Self {
        EthernetFrame::new(src, dst, EtherType::Arp, payload)
    }

    /// Serializes the frame (without FCS; the simulated links do not model
    /// bit errors).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(18 + self.payload.len());
        w.bytes(&self.dst.octets());
        w.bytes(&self.src.octets());
        if let Some(vid) = self.vlan {
            w.u16(VLAN_TPID);
            w.u16(vid & 0x0FFF);
        }
        w.u16(self.ethertype.to_u16());
        w.bytes(&self.payload);
        w.into_bytes()
    }

    /// Parses a frame.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let dst = MacAddr::new(r.array::<6>()?);
        let src = MacAddr::new(r.array::<6>()?);
        let mut ethertype = r.u16()?;
        let mut vlan = None;
        if ethertype == VLAN_TPID {
            let tci = r.u16()?;
            vlan = Some(tci & 0x0FFF);
            ethertype = r.u16()?;
        }
        if ethertype < 0x0600 {
            // 802.3 length field rather than an EtherType — out of scope.
            return Err(PacketError::BadField {
                field: "ethertype",
                value: u64::from(ethertype),
            });
        }
        Ok(EthernetFrame {
            dst,
            src,
            vlan,
            ethertype: EtherType::from_u16(ethertype),
            payload: r.rest().to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(i: u32) -> MacAddr {
        MacAddr::from_index(i)
    }

    #[test]
    fn untagged_round_trip() {
        let f = EthernetFrame::ipv4(mac(1), mac(2), vec![1, 2, 3]);
        let bytes = f.encode();
        assert_eq!(bytes.len(), 14 + 3);
        assert_eq!(EthernetFrame::decode(&bytes).unwrap(), f);
    }

    #[test]
    fn tagged_round_trip() {
        let f = EthernetFrame {
            dst: mac(2),
            src: mac(1),
            vlan: Some(42),
            ethertype: EtherType::Arp,
            payload: vec![9; 28],
        };
        let bytes = f.encode();
        assert_eq!(bytes.len(), 18 + 28);
        assert_eq!(EthernetFrame::decode(&bytes).unwrap(), f);
    }

    #[test]
    fn vlan_id_is_masked_to_12_bits() {
        let f = EthernetFrame {
            dst: mac(2),
            src: mac(1),
            vlan: Some(0xFFFF),
            ethertype: EtherType::Ipv4,
            payload: vec![],
        };
        let decoded = EthernetFrame::decode(&f.encode()).unwrap();
        assert_eq!(decoded.vlan, Some(0x0FFF));
    }

    #[test]
    fn ethertype_mapping() {
        assert_eq!(EtherType::from_u16(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from_u16(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from_u16(0x86DD), EtherType::Ipv6);
        assert_eq!(EtherType::from_u16(0x88CC), EtherType::Other(0x88CC));
        assert_eq!(EtherType::Other(0x88CC).to_u16(), 0x88CC);
    }

    #[test]
    fn truncated_header_is_error() {
        assert!(EthernetFrame::decode(&[0; 13]).is_err());
    }

    #[test]
    fn ieee_802_3_length_field_rejected() {
        let mut bytes = vec![0u8; 14];
        bytes[12] = 0x00;
        bytes[13] = 0x2E; // length 46, not an EtherType
        assert!(matches!(
            EthernetFrame::decode(&bytes),
            Err(PacketError::BadField {
                field: "ethertype",
                ..
            })
        ));
    }

    #[test]
    fn empty_payload_ok() {
        let f = EthernetFrame::new(mac(1), MacAddr::BROADCAST, EtherType::Arp, vec![]);
        let decoded = EthernetFrame::decode(&f.encode()).unwrap();
        assert!(decoded.payload.is_empty());
        assert!(decoded.dst.is_broadcast());
    }
}
