//! A one-call parse of a raw frame into the header fields DFI matches on.
//!
//! The Policy Compilation Point receives the first packet of every new flow
//! inside an OpenFlow `Packet-In`; this view extracts every identifier that
//! can appear in a flow rule or be enriched by the Entity Resolution Manager.

use crate::arp::ArpPacket;
use crate::ethernet::{EtherType, EthernetFrame};
use crate::ipv4::{IpProtocol, Ipv4Packet};
use crate::tcp::{TcpFlags, TcpSegment};
use crate::udp::UdpDatagram;
use crate::{MacAddr, Result};
use std::net::Ipv4Addr;

/// Every matchable header field of one packet, flattened.
///
/// Fields are `None` when the corresponding layer is absent (e.g. no
/// TCP ports on an ARP packet).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PacketHeaders {
    /// Ethernet source address.
    pub eth_src: MacAddr,
    /// Ethernet destination address.
    pub eth_dst: MacAddr,
    /// VLAN id when 802.1Q-tagged.
    pub vlan: Option<u16>,
    /// EtherType of the payload.
    pub ethertype: EtherType,
    /// IPv4 source address.
    pub ipv4_src: Option<Ipv4Addr>,
    /// IPv4 destination address.
    pub ipv4_dst: Option<Ipv4Addr>,
    /// IP protocol.
    pub ip_proto: Option<IpProtocol>,
    /// TCP source port.
    pub tcp_src: Option<u16>,
    /// TCP destination port.
    pub tcp_dst: Option<u16>,
    /// TCP flags (for SYN detection in the TTFB probe).
    pub tcp_flags: Option<TcpFlags>,
    /// UDP source port.
    pub udp_src: Option<u16>,
    /// UDP destination port.
    pub udp_dst: Option<u16>,
    /// For ARP packets: sender protocol address (used by anti-spoofing).
    pub arp_spa: Option<Ipv4Addr>,
    /// For ARP packets: target protocol address.
    pub arp_tpa: Option<Ipv4Addr>,
}

impl PacketHeaders {
    /// Parses a raw Ethernet frame down through L4.
    ///
    /// Unknown L3/L4 protocols are not an error — their fields simply stay
    /// `None` — but malformed bytes at a recognized layer are.
    pub fn parse(bytes: &[u8]) -> Result<Self> {
        let eth = EthernetFrame::decode(bytes)?;
        let mut h = PacketHeaders {
            eth_src: eth.src,
            eth_dst: eth.dst,
            vlan: eth.vlan,
            ethertype: eth.ethertype,
            ipv4_src: None,
            ipv4_dst: None,
            ip_proto: None,
            tcp_src: None,
            tcp_dst: None,
            tcp_flags: None,
            udp_src: None,
            udp_dst: None,
            arp_spa: None,
            arp_tpa: None,
        };
        match eth.ethertype {
            EtherType::Ipv4 => {
                let ip = Ipv4Packet::decode(&eth.payload)?;
                h.ipv4_src = Some(ip.src);
                h.ipv4_dst = Some(ip.dst);
                h.ip_proto = Some(ip.protocol);
                match ip.protocol {
                    IpProtocol::TCP => {
                        let tcp = TcpSegment::decode(&ip.payload)?;
                        h.tcp_src = Some(tcp.src_port);
                        h.tcp_dst = Some(tcp.dst_port);
                        h.tcp_flags = Some(tcp.flags);
                    }
                    IpProtocol::UDP => {
                        let udp = UdpDatagram::decode(&ip.payload)?;
                        h.udp_src = Some(udp.src_port);
                        h.udp_dst = Some(udp.dst_port);
                    }
                    _ => {}
                }
            }
            EtherType::Arp => {
                let arp = ArpPacket::decode(&eth.payload)?;
                h.arp_spa = Some(arp.sender_ip);
                h.arp_tpa = Some(arp.target_ip);
                // For policy purposes an ARP's protocol addresses act as the
                // packet's L3 endpoints.
                h.ipv4_src = Some(arp.sender_ip);
                h.ipv4_dst = Some(arp.target_ip);
            }
            _ => {}
        }
        Ok(h)
    }

    /// The L4 source port, TCP or UDP.
    #[must_use]
    pub fn l4_src(&self) -> Option<u16> {
        self.tcp_src.or(self.udp_src)
    }

    /// The L4 destination port, TCP or UDP.
    #[must_use]
    pub fn l4_dst(&self) -> Option<u16> {
        self.tcp_dst.or(self.udp_dst)
    }

    /// `true` when this is a bare TCP SYN (a new connection attempt).
    #[must_use]
    pub fn is_tcp_syn(&self) -> bool {
        self.tcp_flags
            .is_some_and(|f| f.contains(TcpFlags::SYN) && !f.contains(TcpFlags::ACK))
    }
}

/// Convenience builders producing fully encoded frames for common testbed
/// traffic. Each returns raw bytes ready to inject into the data plane.
pub mod build {
    use super::*;
    use crate::tcp::TcpSegment;

    /// An encoded TCP SYN frame.
    #[must_use]
    pub fn tcp_syn(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
    ) -> Vec<u8> {
        let tcp = TcpSegment::syn(src_port, dst_port);
        let ip = Ipv4Packet::new(
            src_ip,
            dst_ip,
            IpProtocol::TCP,
            tcp.encode_with_pseudo(src_ip, dst_ip),
        );
        EthernetFrame::ipv4(src_mac, dst_mac, ip.encode()).encode()
    }

    /// An encoded TCP SYN-ACK frame answering the given endpoints.
    #[must_use]
    pub fn tcp_syn_ack(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
    ) -> Vec<u8> {
        let mut tcp = TcpSegment::syn(src_port, dst_port);
        tcp.flags = TcpFlags::SYN_ACK;
        let ip = Ipv4Packet::new(
            src_ip,
            dst_ip,
            IpProtocol::TCP,
            tcp.encode_with_pseudo(src_ip, dst_ip),
        );
        EthernetFrame::ipv4(src_mac, dst_mac, ip.encode()).encode()
    }

    /// An encoded UDP frame.
    #[must_use]
    pub fn udp(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: Vec<u8>,
    ) -> Vec<u8> {
        let udp = UdpDatagram::new(src_port, dst_port, payload);
        let ip = Ipv4Packet::new(
            src_ip,
            dst_ip,
            IpProtocol::UDP,
            udp.encode_with_pseudo(src_ip, dst_ip),
        );
        EthernetFrame::ipv4(src_mac, dst_mac, ip.encode()).encode()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(i: u32) -> MacAddr {
        MacAddr::from_index(i)
    }
    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 2, 2);

    #[test]
    fn parses_tcp_syn_fields() {
        let bytes = build::tcp_syn(mac(1), mac(2), A, B, 50_000, 445);
        let h = PacketHeaders::parse(&bytes).unwrap();
        assert_eq!(h.eth_src, mac(1));
        assert_eq!(h.eth_dst, mac(2));
        assert_eq!(h.ipv4_src, Some(A));
        assert_eq!(h.ipv4_dst, Some(B));
        assert_eq!(h.ip_proto, Some(IpProtocol::TCP));
        assert_eq!(h.l4_src(), Some(50_000));
        assert_eq!(h.l4_dst(), Some(445));
        assert!(h.is_tcp_syn());
    }

    #[test]
    fn syn_ack_is_not_a_new_connection() {
        let bytes = build::tcp_syn_ack(mac(2), mac(1), B, A, 445, 50_000);
        let h = PacketHeaders::parse(&bytes).unwrap();
        assert!(!h.is_tcp_syn());
        assert_eq!(h.tcp_src, Some(445));
    }

    #[test]
    fn parses_udp_fields() {
        let bytes = build::udp(mac(1), mac(2), A, B, 68, 67, vec![1, 2]);
        let h = PacketHeaders::parse(&bytes).unwrap();
        assert_eq!(h.ip_proto, Some(IpProtocol::UDP));
        assert_eq!(h.udp_src, Some(68));
        assert_eq!(h.udp_dst, Some(67));
        assert_eq!(h.tcp_src, None);
        assert_eq!(h.l4_dst(), Some(67));
    }

    #[test]
    fn parses_arp_protocol_addresses() {
        let arp = ArpPacket::request(mac(1), A, B);
        let frame = EthernetFrame::arp(mac(1), MacAddr::BROADCAST, arp.encode());
        let h = PacketHeaders::parse(&frame.encode()).unwrap();
        assert_eq!(h.ethertype, EtherType::Arp);
        assert_eq!(h.arp_spa, Some(A));
        assert_eq!(h.arp_tpa, Some(B));
        assert_eq!(h.ipv4_src, Some(A));
        assert_eq!(h.l4_src(), None);
    }

    #[test]
    fn unknown_ethertype_leaves_l3_empty() {
        let frame = EthernetFrame::new(mac(1), mac(2), EtherType::Other(0x88CC), vec![1, 2, 3]);
        let h = PacketHeaders::parse(&frame.encode()).unwrap();
        assert_eq!(h.ipv4_src, None);
        assert_eq!(h.ip_proto, None);
        assert!(!h.is_tcp_syn());
    }

    #[test]
    fn unknown_ip_protocol_leaves_l4_empty() {
        let ip = Ipv4Packet::new(A, B, IpProtocol(89), vec![0; 8]);
        let frame = EthernetFrame::ipv4(mac(1), mac(2), ip.encode());
        let h = PacketHeaders::parse(&frame.encode()).unwrap();
        assert_eq!(h.ip_proto, Some(IpProtocol(89)));
        assert_eq!(h.l4_src(), None);
    }

    #[test]
    fn corrupt_inner_layer_is_an_error() {
        let ip = Ipv4Packet::new(A, B, IpProtocol::TCP, vec![0; 5]); // truncated TCP
        let frame = EthernetFrame::ipv4(mac(1), mac(2), ip.encode());
        assert!(PacketHeaders::parse(&frame.encode()).is_err());
    }
}
