//! ICMP (RFC 792): echo request/reply and destination-unreachable, the
//! message kinds the testbed traffic generator and worm reconnaissance use.

use crate::error::PacketError;
use crate::wire::{internet_checksum, Reader, Writer};
use crate::Result;

/// The ICMP message kinds modeled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IcmpKind {
    /// Echo reply (type 0).
    EchoReply,
    /// Destination unreachable (type 3) with code.
    DestinationUnreachable(u8),
    /// Echo request (type 8).
    EchoRequest,
    /// Any other type/code pair, carried verbatim.
    Other(u8, u8),
}

impl IcmpKind {
    fn type_code(self) -> (u8, u8) {
        match self {
            IcmpKind::EchoReply => (0, 0),
            IcmpKind::DestinationUnreachable(code) => (3, code),
            IcmpKind::EchoRequest => (8, 0),
            IcmpKind::Other(t, c) => (t, c),
        }
    }

    fn from_type_code(t: u8, c: u8) -> Self {
        match (t, c) {
            (0, 0) => IcmpKind::EchoReply,
            (3, code) => IcmpKind::DestinationUnreachable(code),
            (8, 0) => IcmpKind::EchoRequest,
            (t, c) => IcmpKind::Other(t, c),
        }
    }
}

/// An ICMP message. For echo kinds, `identifier`/`sequence` are meaningful;
/// other kinds carry the rest-of-header verbatim in those fields.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IcmpMessage {
    /// Message kind.
    pub kind: IcmpKind,
    /// Echo identifier (or high half of rest-of-header).
    pub identifier: u16,
    /// Echo sequence (or low half of rest-of-header).
    pub sequence: u16,
    /// Trailing data.
    pub payload: Vec<u8>,
}

impl IcmpMessage {
    /// Builds an echo request.
    #[must_use]
    pub fn echo_request(identifier: u16, sequence: u16) -> Self {
        IcmpMessage {
            kind: IcmpKind::EchoRequest,
            identifier,
            sequence,
            payload: b"dfi-ping".to_vec(),
        }
    }

    /// Builds the echo reply answering `request`.
    #[must_use]
    pub fn reply_to(request: &IcmpMessage) -> Self {
        IcmpMessage {
            kind: IcmpKind::EchoReply,
            identifier: request.identifier,
            sequence: request.sequence,
            payload: request.payload.clone(),
        }
    }

    /// Serializes with a correct ICMP checksum.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let (t, c) = self.kind.type_code();
        let mut w = Writer::with_capacity(8 + self.payload.len());
        w.u8(t);
        w.u8(c);
        w.u16(0); // checksum placeholder
        w.u16(self.identifier);
        w.u16(self.sequence);
        w.bytes(&self.payload);
        let ck = internet_checksum(w.as_slice());
        let mut out = w.into_bytes();
        out[2..4].copy_from_slice(&ck.to_be_bytes());
        out
    }

    /// Parses and checksum-verifies a message.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        if bytes.len() >= 8 && internet_checksum(bytes) != 0 {
            return Err(PacketError::BadChecksum { protocol: "ICMP" });
        }
        let mut r = Reader::new(bytes);
        let t = r.u8()?;
        let c = r.u8()?;
        let _ck = r.u16()?;
        let identifier = r.u16()?;
        let sequence = r.u16()?;
        Ok(IcmpMessage {
            kind: IcmpKind::from_type_code(t, c),
            identifier,
            sequence,
            payload: r.rest().to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_round_trip() {
        let m = IcmpMessage::echo_request(0x1234, 7);
        let bytes = m.encode();
        assert_eq!(IcmpMessage::decode(&bytes).unwrap(), m);
    }

    #[test]
    fn reply_mirrors_request() {
        let req = IcmpMessage::echo_request(1, 2);
        let rep = IcmpMessage::reply_to(&req);
        assert_eq!(rep.kind, IcmpKind::EchoReply);
        assert_eq!(rep.identifier, 1);
        assert_eq!(rep.sequence, 2);
        assert_eq!(rep.payload, req.payload);
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut bytes = IcmpMessage::echo_request(1, 1).encode();
        bytes[7] ^= 0xFF;
        assert_eq!(
            IcmpMessage::decode(&bytes),
            Err(PacketError::BadChecksum { protocol: "ICMP" })
        );
    }

    #[test]
    fn unreachable_kind_round_trips() {
        let m = IcmpMessage {
            kind: IcmpKind::DestinationUnreachable(3), // port unreachable
            identifier: 0,
            sequence: 0,
            payload: vec![0; 8],
        };
        assert_eq!(IcmpMessage::decode(&m.encode()).unwrap().kind, m.kind);
    }

    #[test]
    fn other_kind_preserved() {
        assert_eq!(IcmpKind::from_type_code(11, 0), IcmpKind::Other(11, 0));
    }

    #[test]
    fn truncated_rejected() {
        assert!(IcmpMessage::decode(&[8, 0, 0]).is_err());
    }
}
