//! IPv4 (RFC 791) with header checksum.

use crate::error::PacketError;
use crate::wire::{internet_checksum, Reader, Writer};
use crate::Result;
use std::fmt;
use std::net::Ipv4Addr;

/// IP protocol numbers DFI policies can match on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IpProtocol(pub u8);

impl IpProtocol {
    /// ICMP (1).
    pub const ICMP: IpProtocol = IpProtocol(1);
    /// TCP (6).
    pub const TCP: IpProtocol = IpProtocol(6);
    /// UDP (17).
    pub const UDP: IpProtocol = IpProtocol(17);
}

impl fmt::Display for IpProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            1 => write!(f, "ICMP"),
            6 => write!(f, "TCP"),
            17 => write!(f, "UDP"),
            other => write!(f, "proto({other})"),
        }
    }
}

impl fmt::Debug for IpProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// An IPv4 packet (no options; IHL fixed at 5 words on encode, options
/// skipped on decode).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ipv4Packet {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload protocol.
    pub protocol: IpProtocol,
    /// Time to live.
    pub ttl: u8,
    /// Identification field.
    pub identification: u16,
    /// Differentiated services code point + ECN byte.
    pub dscp_ecn: u8,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Ipv4Packet {
    /// Builds a packet with conventional defaults (TTL 64).
    #[must_use]
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol, payload: Vec<u8>) -> Self {
        Ipv4Packet {
            src,
            dst,
            protocol,
            ttl: 64,
            identification: 0,
            dscp_ecn: 0,
            payload,
        }
    }

    /// Serializes the packet with a correct header checksum.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let total_len = 20 + self.payload.len();
        let mut w = Writer::with_capacity(total_len);
        w.u8(0x45); // version 4, IHL 5
        w.u8(self.dscp_ecn);
        w.u16(total_len as u16);
        w.u16(self.identification);
        w.u16(0x4000); // flags: DF, fragment offset 0
        w.u8(self.ttl);
        w.u8(self.protocol.0);
        w.u16(0); // checksum placeholder
        w.bytes(&self.src.octets());
        w.bytes(&self.dst.octets());
        let ck = internet_checksum(&w.as_slice()[..20]);
        w.patch_u16(10, ck);
        w.bytes(&self.payload);
        w.into_bytes()
    }

    /// Parses a packet, verifying version and header checksum and honoring
    /// the IHL and total-length fields.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let ver_ihl = r.u8()?;
        let version = ver_ihl >> 4;
        if version != 4 {
            return Err(PacketError::UnsupportedVersion {
                protocol: "IPv4",
                found: version,
            });
        }
        let ihl = usize::from(ver_ihl & 0x0F) * 4;
        if ihl < 20 {
            return Err(PacketError::BadField {
                field: "ipv4.ihl",
                value: u64::from(ver_ihl & 0x0F),
            });
        }
        if bytes.len() < ihl {
            return Err(PacketError::Truncated {
                needed: ihl,
                available: bytes.len(),
            });
        }
        if internet_checksum(&bytes[..ihl]) != 0 {
            return Err(PacketError::BadChecksum { protocol: "IPv4" });
        }
        let dscp_ecn = r.u8()?;
        let total_len = usize::from(r.u16()?);
        if total_len < ihl || total_len > bytes.len() {
            return Err(PacketError::BadField {
                field: "ipv4.total_length",
                value: total_len as u64,
            });
        }
        let identification = r.u16()?;
        let _flags_frag = r.u16()?;
        let ttl = r.u8()?;
        let protocol = IpProtocol(r.u8()?);
        let _checksum = r.u16()?;
        let src = Ipv4Addr::from(r.array::<4>()?);
        let dst = Ipv4Addr::from(r.array::<4>()?);
        let payload = bytes[ihl..total_len].to_vec();
        Ok(Ipv4Packet {
            src,
            dst,
            protocol,
            ttl,
            identification,
            dscp_ecn,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Packet {
        Ipv4Packet::new(
            Ipv4Addr::new(192, 168, 1, 10),
            Ipv4Addr::new(10, 20, 30, 40),
            IpProtocol::TCP,
            vec![0xAA; 16],
        )
    }

    #[test]
    fn round_trip() {
        let p = sample();
        let bytes = p.encode();
        assert_eq!(bytes.len(), 36);
        assert_eq!(Ipv4Packet::decode(&bytes).unwrap(), p);
    }

    #[test]
    fn checksum_is_valid_on_encode() {
        let bytes = sample().encode();
        assert_eq!(internet_checksum(&bytes[..20]), 0);
    }

    #[test]
    fn corrupted_header_fails_checksum() {
        let mut bytes = sample().encode();
        bytes[12] ^= 0xFF; // flip source address bits
        assert_eq!(
            Ipv4Packet::decode(&bytes),
            Err(PacketError::BadChecksum { protocol: "IPv4" })
        );
    }

    #[test]
    fn rejects_ipv6_version() {
        let mut bytes = sample().encode();
        bytes[0] = 0x65;
        assert!(matches!(
            Ipv4Packet::decode(&bytes),
            Err(PacketError::UnsupportedVersion {
                protocol: "IPv4",
                found: 6
            })
        ));
    }

    #[test]
    fn rejects_short_ihl() {
        let mut bytes = sample().encode();
        bytes[0] = 0x44; // IHL 4 words = 16 bytes < 20
        assert!(matches!(
            Ipv4Packet::decode(&bytes),
            Err(PacketError::BadField {
                field: "ipv4.ihl",
                ..
            })
        ));
    }

    #[test]
    fn total_length_bounds_payload() {
        // Ethernet minimum-frame padding appends trailing bytes; decode must
        // honor total_length and ignore the padding.
        let p = sample();
        let mut bytes = p.encode();
        bytes.extend_from_slice(&[0u8; 10]); // trailer padding
        let decoded = Ipv4Packet::decode(&bytes).unwrap();
        assert_eq!(decoded.payload, p.payload);
    }

    #[test]
    fn lying_total_length_rejected() {
        let mut bytes = sample().encode();
        // Set total_length beyond the buffer and fix the checksum so only
        // the length check can catch it.
        bytes[2] = 0xFF;
        bytes[3] = 0xFF;
        bytes[10] = 0;
        bytes[11] = 0;
        let ck = internet_checksum(&bytes[..20]);
        bytes[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(matches!(
            Ipv4Packet::decode(&bytes),
            Err(PacketError::BadField {
                field: "ipv4.total_length",
                ..
            })
        ));
    }

    #[test]
    fn protocol_display_names() {
        assert_eq!(IpProtocol::TCP.to_string(), "TCP");
        assert_eq!(IpProtocol::UDP.to_string(), "UDP");
        assert_eq!(IpProtocol::ICMP.to_string(), "ICMP");
        assert_eq!(IpProtocol(89).to_string(), "proto(89)");
    }

    #[test]
    fn empty_payload_round_trip() {
        let p = Ipv4Packet::new(
            Ipv4Addr::LOCALHOST,
            Ipv4Addr::BROADCAST,
            IpProtocol::UDP,
            vec![],
        );
        assert_eq!(Ipv4Packet::decode(&p.encode()).unwrap(), p);
    }
}
