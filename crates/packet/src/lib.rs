//! L2–L4 packet construction and parsing for the DFI reproduction.
//!
//! DFI enforces access control on real traffic: switches match packet header
//! fields, the Policy Compilation Point parses the packet carried inside an
//! OpenFlow `Packet-In`, and the identifier-binding sensors observe DHCP and
//! DNS exchanges. This crate provides byte-accurate encoders and parsers for
//! the protocols those components touch:
//!
//! * [`EthernetFrame`] (with optional 802.1Q VLAN tag) and [`ArpPacket`]
//! * [`Ipv4Packet`] (with header checksum), [`TcpSegment`], [`UdpDatagram`],
//!   [`IcmpMessage`]
//! * [`DhcpMessage`] (BOOTP + the option set a DHCP sensor needs)
//! * [`DnsMessage`] (queries and A/PTR answers)
//! * [`PacketHeaders`] — a one-call "parse everything" view exposing the
//!   fields DFI's flow rules and policies are written over.
//!
//! # Example
//!
//! ```
//! use dfi_packet::{EthernetFrame, Ipv4Packet, TcpSegment, MacAddr, PacketHeaders, IpProtocol};
//! use std::net::Ipv4Addr;
//!
//! let src_ip = Ipv4Addr::new(10, 0, 1, 5);
//! let dst_ip = Ipv4Addr::new(10, 0, 2, 9);
//! let tcp = TcpSegment::syn(49152, 445);
//! let ip = Ipv4Packet::new(src_ip, dst_ip, IpProtocol::TCP,
//!                          tcp.encode_with_pseudo(src_ip, dst_ip));
//! let frame = EthernetFrame::ipv4(
//!     MacAddr::new([2, 0, 0, 0, 0, 1]),
//!     MacAddr::new([2, 0, 0, 0, 0, 2]),
//!     ip.encode(),
//! );
//! let bytes = frame.encode();
//! let headers = PacketHeaders::parse(&bytes).unwrap();
//! assert_eq!(headers.tcp_dst, Some(445));
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod addr;
mod arp;
mod dhcp;
mod dns;
mod error;
mod ethernet;
pub mod headers;
mod icmp;
mod ipv4;
mod tcp;
mod udp;
pub mod wire;

pub use addr::MacAddr;
pub use arp::{ArpOp, ArpPacket};
pub use dhcp::{DhcpMessage, DhcpMessageType, DhcpOption};
pub use dns::{DnsMessage, DnsQuestion, DnsRecord, DnsRecordData, DnsType};
pub use error::PacketError;
pub use ethernet::{EtherType, EthernetFrame};
pub use headers::PacketHeaders;
pub use icmp::{IcmpKind, IcmpMessage};
pub use ipv4::{IpProtocol, Ipv4Packet};
pub use tcp::{TcpFlags, TcpSegment};
pub use udp::UdpDatagram;

/// Result alias for packet operations.
pub type Result<T> = std::result::Result<T, PacketError>;
