//! TCP segments (RFC 793) with pseudo-header checksums.

use crate::error::PacketError;
use crate::wire::{internet_checksum, Reader, Writer};
use crate::Result;
use std::fmt;
use std::net::Ipv4Addr;

/// TCP control flags.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN flag.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST flag.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH flag.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK flag.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// SYN|ACK, the handshake response.
    pub const SYN_ACK: TcpFlags = TcpFlags(0x12);

    /// `true` when every flag in `other` is set in `self`.
    #[must_use]
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    #[must_use]
    pub fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }
}

impl fmt::Debug for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names = Vec::new();
        for (bit, name) in [
            (0x01u8, "FIN"),
            (0x02, "SYN"),
            (0x04, "RST"),
            (0x08, "PSH"),
            (0x10, "ACK"),
        ] {
            if self.0 & bit != 0 {
                names.push(name);
            }
        }
        write!(f, "TcpFlags({})", names.join("|"))
    }
}

/// A TCP segment (options omitted; data offset fixed at 5 words on encode,
/// honored on decode).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl TcpSegment {
    /// Builds a bare SYN (connection attempt) — the packet whose time to
    /// first byte the paper's Figure 4 measures.
    #[must_use]
    pub fn syn(src_port: u16, dst_port: u16) -> Self {
        TcpSegment {
            src_port,
            dst_port,
            seq: 0,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 64_240,
            payload: Vec::new(),
        }
    }

    /// Builds the SYN-ACK answering `syn`.
    #[must_use]
    pub fn syn_ack_to(syn: &TcpSegment) -> Self {
        TcpSegment {
            src_port: syn.dst_port,
            dst_port: syn.src_port,
            seq: 0,
            ack: syn.seq.wrapping_add(1),
            flags: TcpFlags::SYN_ACK,
            window: 64_240,
            payload: Vec::new(),
        }
    }

    /// Builds a data-bearing segment.
    #[must_use]
    pub fn data(src_port: u16, dst_port: u16, seq: u32, payload: Vec<u8>) -> Self {
        TcpSegment {
            src_port,
            dst_port,
            seq,
            ack: 0,
            flags: TcpFlags::ACK.union(TcpFlags::PSH),
            window: 64_240,
            payload,
        }
    }

    fn encode_raw(&self, checksum: u16) -> Vec<u8> {
        let mut w = Writer::with_capacity(20 + self.payload.len());
        w.u16(self.src_port);
        w.u16(self.dst_port);
        w.u32(self.seq);
        w.u32(self.ack);
        w.u8(5 << 4); // data offset 5 words, reserved 0
        w.u8(self.flags.0);
        w.u16(self.window);
        w.u16(checksum);
        w.u16(0); // urgent pointer
        w.bytes(&self.payload);
        w.into_bytes()
    }

    /// Serializes with a zero checksum (for contexts where the caller does
    /// not know the IP endpoints).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        self.encode_raw(0)
    }

    /// Serializes with a correct checksum over the IPv4 pseudo-header.
    #[must_use]
    pub fn encode_with_pseudo(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let body = self.encode_raw(0);
        let ck = pseudo_checksum(src, dst, 6, &body);
        let mut out = body;
        out[16..18].copy_from_slice(&ck.to_be_bytes());
        out
    }

    /// Parses a segment. The checksum is not verified here because the IP
    /// endpoints are not part of the TCP bytes; use [`TcpSegment::verify`]
    /// when they are known.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let src_port = r.u16()?;
        let dst_port = r.u16()?;
        let seq = r.u32()?;
        let ack = r.u32()?;
        let offset_words = r.u8()? >> 4;
        let data_offset = usize::from(offset_words) * 4;
        if data_offset < 20 {
            return Err(PacketError::BadField {
                field: "tcp.data_offset",
                value: u64::from(offset_words),
            });
        }
        if bytes.len() < data_offset {
            return Err(PacketError::Truncated {
                needed: data_offset,
                available: bytes.len(),
            });
        }
        let flags = TcpFlags(r.u8()?);
        let window = r.u16()?;
        let _checksum = r.u16()?;
        let _urgent = r.u16()?;
        let payload = bytes[data_offset..].to_vec();
        Ok(TcpSegment {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window,
            payload,
        })
    }

    /// Verifies the embedded checksum given the IPv4 endpoints.
    pub fn verify(bytes: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<()> {
        if pseudo_checksum_raw(src, dst, 6, bytes) != 0 {
            return Err(PacketError::BadChecksum { protocol: "TCP" });
        }
        Ok(())
    }
}

/// Checksum of `body` prefixed by the IPv4 pseudo-header, assuming the
/// body's checksum field is zeroed.
pub(crate) fn pseudo_checksum(src: Ipv4Addr, dst: Ipv4Addr, proto: u8, body: &[u8]) -> u16 {
    pseudo_checksum_raw(src, dst, proto, body)
}

fn pseudo_checksum_raw(src: Ipv4Addr, dst: Ipv4Addr, proto: u8, body: &[u8]) -> u16 {
    let mut w = Writer::with_capacity(12 + body.len());
    w.bytes(&src.octets());
    w.bytes(&dst.octets());
    w.u8(0);
    w.u8(proto);
    w.u16(body.len() as u16);
    w.bytes(body);
    internet_checksum(w.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    #[test]
    fn syn_round_trip() {
        let s = TcpSegment::syn(49152, 445);
        let decoded = TcpSegment::decode(&s.encode()).unwrap();
        assert_eq!(decoded, s);
        assert!(decoded.flags.contains(TcpFlags::SYN));
        assert!(!decoded.flags.contains(TcpFlags::ACK));
    }

    #[test]
    fn syn_ack_swaps_ports_and_acks_seq() {
        let mut syn = TcpSegment::syn(1000, 80);
        syn.seq = 41;
        let sa = TcpSegment::syn_ack_to(&syn);
        assert_eq!(sa.src_port, 80);
        assert_eq!(sa.dst_port, 1000);
        assert_eq!(sa.ack, 42);
        assert!(sa.flags.contains(TcpFlags::SYN_ACK));
    }

    #[test]
    fn checksum_with_pseudo_header_verifies() {
        let s = TcpSegment::data(5555, 80, 7, b"hello".to_vec());
        let bytes = s.encode_with_pseudo(SRC, DST);
        TcpSegment::verify(&bytes, SRC, DST).unwrap();
    }

    #[test]
    fn checksum_detects_corruption() {
        let s = TcpSegment::data(5555, 80, 7, b"hello".to_vec());
        let mut bytes = s.encode_with_pseudo(SRC, DST);
        *bytes.last_mut().unwrap() ^= 0x01;
        assert_eq!(
            TcpSegment::verify(&bytes, SRC, DST),
            Err(PacketError::BadChecksum { protocol: "TCP" })
        );
    }

    #[test]
    fn checksum_detects_wrong_endpoints() {
        let s = TcpSegment::syn(1, 2);
        let bytes = s.encode_with_pseudo(SRC, DST);
        assert!(TcpSegment::verify(&bytes, SRC, Ipv4Addr::new(10, 0, 0, 3)).is_err());
    }

    #[test]
    fn data_offset_with_options_is_honored() {
        // Hand-build a segment with 4 bytes of options (offset = 6 words).
        let mut bytes = TcpSegment::syn(1, 2).encode();
        bytes[12] = 6 << 4;
        bytes.extend_from_slice(&[1, 1, 1, 1]); // NOP options
        bytes.extend_from_slice(b"xy"); // payload after options
        let decoded = TcpSegment::decode(&bytes).unwrap();
        assert_eq!(decoded.payload, b"xy");
    }

    #[test]
    fn short_data_offset_rejected() {
        let mut bytes = TcpSegment::syn(1, 2).encode();
        bytes[12] = 4 << 4;
        assert!(matches!(
            TcpSegment::decode(&bytes),
            Err(PacketError::BadField {
                field: "tcp.data_offset",
                ..
            })
        ));
    }

    #[test]
    fn truncated_rejected() {
        let bytes = TcpSegment::syn(1, 2).encode();
        assert!(TcpSegment::decode(&bytes[..19]).is_err());
    }

    #[test]
    fn flags_debug_lists_names() {
        let f = TcpFlags::SYN.union(TcpFlags::ACK);
        assert_eq!(format!("{f:?}"), "TcpFlags(SYN|ACK)");
    }
}
