//! UDP datagrams (RFC 768).

use crate::error::PacketError;
use crate::tcp::pseudo_checksum;
use crate::wire::{Reader, Writer};
use crate::Result;
use std::net::Ipv4Addr;

/// A UDP datagram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl UdpDatagram {
    /// Builds a datagram.
    #[must_use]
    pub fn new(src_port: u16, dst_port: u16, payload: Vec<u8>) -> Self {
        UdpDatagram {
            src_port,
            dst_port,
            payload,
        }
    }

    fn encode_raw(&self, checksum: u16) -> Vec<u8> {
        let mut w = Writer::with_capacity(8 + self.payload.len());
        w.u16(self.src_port);
        w.u16(self.dst_port);
        w.u16((8 + self.payload.len()) as u16);
        w.u16(checksum);
        w.bytes(&self.payload);
        w.into_bytes()
    }

    /// Serializes with checksum zero (meaning "no checksum" in IPv4 UDP).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        self.encode_raw(0)
    }

    /// Serializes with a correct checksum over the IPv4 pseudo-header.
    #[must_use]
    pub fn encode_with_pseudo(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let body = self.encode_raw(0);
        let mut ck = pseudo_checksum(src, dst, 17, &body);
        if ck == 0 {
            ck = 0xFFFF; // RFC 768: transmitted as all-ones when computed 0
        }
        let mut out = body;
        out[6..8].copy_from_slice(&ck.to_be_bytes());
        out
    }

    /// Parses a datagram, honoring the length field (trailing padding is
    /// ignored).
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let src_port = r.u16()?;
        let dst_port = r.u16()?;
        let length = usize::from(r.u16()?);
        let _checksum = r.u16()?;
        if length < 8 || length > bytes.len() {
            return Err(PacketError::BadField {
                field: "udp.length",
                value: length as u64,
            });
        }
        Ok(UdpDatagram {
            src_port,
            dst_port,
            payload: bytes[8..length].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let d = UdpDatagram::new(68, 67, vec![1, 2, 3, 4]);
        assert_eq!(UdpDatagram::decode(&d.encode()).unwrap(), d);
    }

    #[test]
    fn length_field_bounds_payload() {
        let d = UdpDatagram::new(53, 33000, b"answer".to_vec());
        let mut bytes = d.encode();
        bytes.extend_from_slice(&[0; 12]); // Ethernet pad
        assert_eq!(UdpDatagram::decode(&bytes).unwrap().payload, b"answer");
    }

    #[test]
    fn bad_length_rejected() {
        let d = UdpDatagram::new(1, 2, vec![]);
        let mut bytes = d.encode();
        bytes[4] = 0xFF;
        bytes[5] = 0xFF;
        assert!(matches!(
            UdpDatagram::decode(&bytes),
            Err(PacketError::BadField {
                field: "udp.length",
                ..
            })
        ));
        let mut short = d.encode();
        short[5] = 7; // < 8
        assert!(UdpDatagram::decode(&short).is_err());
    }

    #[test]
    fn truncated_rejected() {
        assert!(UdpDatagram::decode(&[0; 7]).is_err());
    }

    #[test]
    fn pseudo_checksum_nonzero() {
        let d = UdpDatagram::new(68, 67, vec![9; 3]);
        let bytes = d.encode_with_pseudo(Ipv4Addr::new(0, 0, 0, 0), Ipv4Addr::BROADCAST);
        let ck = u16::from_be_bytes([bytes[6], bytes[7]]);
        assert_ne!(ck, 0);
        // Decoding still works regardless of checksum field.
        assert_eq!(UdpDatagram::decode(&bytes).unwrap(), d);
    }
}
