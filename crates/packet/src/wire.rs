//! Byte-level reader/writer helpers shared by the packet and OpenFlow codecs.
//!
//! All network formats in this repository are big-endian ("network order");
//! the helpers here make truncation a recoverable [`PacketError::Truncated`]
//! instead of a panic.

use crate::error::PacketError;
use crate::Result;

/// A bounds-checked big-endian cursor over a byte slice.
#[derive(Clone, Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a slice.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes remaining after the cursor.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current cursor position.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(PacketError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    /// Reads exactly `N` bytes into an array.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N]> {
        let b = self.take(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(b);
        Ok(a)
    }

    /// Reads `n` bytes as a slice borrowed from the input.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Reads all remaining bytes.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    /// Skips `n` bytes.
    pub fn skip(&mut self, n: usize) -> Result<()> {
        self.take(n).map(|_| ())
    }

    /// Moves the cursor to an absolute offset (must be within the buffer).
    pub fn seek(&mut self, pos: usize) -> Result<()> {
        if pos > self.buf.len() {
            return Err(PacketError::Truncated {
                needed: pos,
                available: self.buf.len(),
            });
        }
        self.pos = pos;
        Ok(())
    }
}

/// A growable big-endian byte writer.
#[derive(Clone, Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Writer::default()
    }

    /// An empty writer with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// A writer that appends to an existing buffer, preserving its
    /// contents and capacity. This is the zero-allocation entry point: a
    /// pooled buffer round-trips through `from_vec` → [`Writer::into_bytes`]
    /// without touching the heap once its capacity is warm.
    #[must_use]
    pub fn from_vec(buf: Vec<u8>) -> Self {
        Writer { buf }
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a big-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Writes `n` zero bytes (padding).
    pub fn zeros(&mut self, n: usize) {
        self.buf.resize(self.buf.len() + n, 0);
    }

    /// Overwrites a previously written big-endian `u16` at `offset`.
    ///
    /// Used to backfill length fields once a variable-length body is known.
    ///
    /// # Panics
    ///
    /// Panics if `offset + 2` exceeds the written length.
    pub fn patch_u16(&mut self, offset: usize, v: u16) {
        self.buf[offset..offset + 2].copy_from_slice(&v.to_be_bytes());
    }

    /// Consumes the writer, returning the bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the bytes written so far.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// RFC 1071 Internet checksum over `data` (as used by IPv4, ICMP, TCP, UDP).
#[must_use]
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut w = Writer::new();
        w.u8(0xAB);
        w.u16(0x1234);
        w.u32(0xDEAD_BEEF);
        w.u64(0x0102_0304_0506_0708);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 0x0102_0304_0506_0708);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn big_endian_on_the_wire() {
        let mut w = Writer::new();
        w.u16(0x0800);
        assert_eq!(w.as_slice(), &[0x08, 0x00]);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut r = Reader::new(&[0x01]);
        let err = r.u16().unwrap_err();
        assert!(matches!(
            err,
            PacketError::Truncated {
                needed: 2,
                available: 1
            }
        ));
    }

    #[test]
    fn array_and_bytes_and_rest() {
        let data = [1u8, 2, 3, 4, 5];
        let mut r = Reader::new(&data);
        assert_eq!(r.array::<2>().unwrap(), [1, 2]);
        assert_eq!(r.bytes(1).unwrap(), &[3]);
        assert_eq!(r.rest(), &[4, 5]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn skip_and_seek() {
        let data = [1u8, 2, 3, 4];
        let mut r = Reader::new(&data);
        r.skip(2).unwrap();
        assert_eq!(r.u8().unwrap(), 3);
        r.seek(0).unwrap();
        assert_eq!(r.u8().unwrap(), 1);
        assert!(r.seek(5).is_err());
    }

    #[test]
    fn patch_u16_backfills_length() {
        let mut w = Writer::new();
        w.u16(0); // placeholder
        w.bytes(&[9, 9, 9]);
        let len = w.len() as u16;
        w.patch_u16(0, len);
        assert_eq!(w.as_slice(), &[0, 5, 9, 9, 9]);
    }

    #[test]
    fn zeros_pads() {
        let mut w = Writer::new();
        w.zeros(3);
        assert_eq!(w.as_slice(), &[0, 0, 0]);
    }

    #[test]
    fn checksum_known_vector() {
        // Example from RFC 1071 §3: bytes 00 01 f2 03 f4 f5 f6 f7
        let data = [0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7];
        assert_eq!(internet_checksum(&data), !0xDDF2u16);
    }

    #[test]
    fn checksum_odd_length_pads_with_zero() {
        assert_eq!(internet_checksum(&[0xFF]), !0xFF00u16);
    }

    #[test]
    fn checksum_verifies_to_zero_when_embedded() {
        // A buffer whose checksum field is set correctly sums to 0xFFFF
        // (complement 0).
        let mut data = vec![0x45, 0x00, 0x00, 0x14, 0xAB, 0xCD, 0x00, 0x00];
        let ck = internet_checksum(&data);
        data.extend_from_slice(&ck.to_be_bytes());
        assert_eq!(internet_checksum(&data), 0);
    }
}
