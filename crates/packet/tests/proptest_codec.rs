//! Property-based round-trip and robustness tests for the packet codecs.

use dfi_packet::{
    ArpOp, ArpPacket, DhcpMessage, DnsMessage, EtherType, EthernetFrame, IcmpMessage, IpProtocol,
    Ipv4Packet, MacAddr, PacketHeaders, TcpFlags, TcpSegment, UdpDatagram,
};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr::new)
}

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_hostname() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z0-9]{1,12}", 1..4).prop_map(|labels| labels.join("."))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ethernet_round_trip(
        src in arb_mac(),
        dst in arb_mac(),
        vlan in proptest::option::of(0u16..4096),
        ethertype in 0x0600u16..,
        payload in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let f = EthernetFrame {
            src, dst, vlan,
            ethertype: EtherType::from_u16(ethertype),
            payload,
        };
        // Skip the VLAN TPID itself as a payload ethertype (would re-parse
        // as a tag).
        prop_assume!(ethertype != 0x8100);
        prop_assert_eq!(EthernetFrame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn ipv4_round_trip(
        src in arb_ip(),
        dst in arb_ip(),
        proto in any::<u8>(),
        ttl in any::<u8>(),
        ident in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let p = Ipv4Packet {
            src, dst,
            protocol: IpProtocol(proto),
            ttl,
            identification: ident,
            dscp_ecn: 0,
            payload,
        };
        prop_assert_eq!(Ipv4Packet::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn ipv4_corruption_is_detected_or_rejected(
        src in arb_ip(),
        dst in arb_ip(),
        payload in proptest::collection::vec(any::<u8>(), 0..32),
        flip_at in 0usize..20,
        flip in 1u8..=255,
    ) {
        // Any single-byte corruption of the IPv4 *header* must be caught
        // by the checksum (or produce a different structural error) —
        // never silently decode to the original packet.
        let p = Ipv4Packet::new(src, dst, IpProtocol::TCP, payload);
        let mut bytes = p.encode();
        bytes[flip_at] ^= flip;
        if let Ok(decoded) = Ipv4Packet::decode(&bytes) {
            prop_assert_ne!(decoded, p);
        }
    }

    #[test]
    fn tcp_round_trip(
        sport in any::<u16>(),
        dport in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        flags in any::<u8>(),
        window in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let s = TcpSegment {
            src_port: sport,
            dst_port: dport,
            seq, ack,
            flags: TcpFlags(flags),
            window,
            payload,
        };
        prop_assert_eq!(TcpSegment::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn tcp_pseudo_checksum_always_verifies(
        src in arb_ip(),
        dst in arb_ip(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let s = TcpSegment::data(sport, dport, 1, payload);
        let bytes = s.encode_with_pseudo(src, dst);
        prop_assert!(TcpSegment::verify(&bytes, src, dst).is_ok());
    }

    #[test]
    fn udp_round_trip(
        sport in any::<u16>(),
        dport in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let d = UdpDatagram::new(sport, dport, payload);
        prop_assert_eq!(UdpDatagram::decode(&d.encode()).unwrap(), d);
    }

    #[test]
    fn icmp_round_trip(id in any::<u16>(), seq in any::<u16>()) {
        let m = IcmpMessage::echo_request(id, seq);
        prop_assert_eq!(IcmpMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn arp_round_trip(
        smac in arb_mac(),
        sip in arb_ip(),
        tip in arb_ip(),
        reply in any::<bool>(),
        tmac in arb_mac(),
    ) {
        let p = ArpPacket {
            op: if reply { ArpOp::Reply } else { ArpOp::Request },
            sender_mac: smac,
            sender_ip: sip,
            target_mac: tmac,
            target_ip: tip,
        };
        prop_assert_eq!(ArpPacket::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn dhcp_round_trip(
        xid in any::<u32>(),
        mac in arb_mac(),
        hostname in "[a-z][a-z0-9-]{0,14}",
        ip in arb_ip(),
        server in arb_ip(),
    ) {
        for m in [
            DhcpMessage::discover(xid, mac, &hostname),
            DhcpMessage::offer(xid, mac, ip, server),
            DhcpMessage::request(xid, mac, ip, server, &hostname),
            DhcpMessage::ack(xid, mac, ip, server),
        ] {
            prop_assert_eq!(DhcpMessage::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn dns_round_trip(id in any::<u16>(), name in arb_hostname(), ip in arb_ip()) {
        let q = DnsMessage::query_a(id, &name);
        let bytes = q.encode().unwrap();
        prop_assert_eq!(DnsMessage::decode(&bytes).unwrap(), q.clone());
        let a = DnsMessage::answer_a(&q, ip, 300);
        let bytes = a.encode().unwrap();
        prop_assert_eq!(DnsMessage::decode(&bytes).unwrap(), a);
    }

    #[test]
    fn header_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = PacketHeaders::parse(&bytes);
        let _ = EthernetFrame::decode(&bytes);
        let _ = Ipv4Packet::decode(&bytes);
        let _ = TcpSegment::decode(&bytes);
        let _ = UdpDatagram::decode(&bytes);
        let _ = DhcpMessage::decode(&bytes);
        let _ = DnsMessage::decode(&bytes);
        let _ = ArpPacket::decode(&bytes);
        let _ = IcmpMessage::decode(&bytes);
    }

    #[test]
    fn built_frames_always_parse(
        smac in arb_mac(),
        dmac in arb_mac(),
        sip in arb_ip(),
        dip in arb_ip(),
        sport in any::<u16>(),
        dport in any::<u16>(),
    ) {
        use dfi_packet::headers::build;
        let h = PacketHeaders::parse(&build::tcp_syn(smac, dmac, sip, dip, sport, dport)).unwrap();
        prop_assert_eq!(h.eth_src, smac);
        prop_assert_eq!(h.ipv4_dst, Some(dip));
        prop_assert_eq!(h.tcp_src, Some(sport));
        prop_assert!(h.is_tcp_syn());
        let h = PacketHeaders::parse(&build::udp(smac, dmac, sip, dip, sport, dport, vec![1])).unwrap();
        prop_assert_eq!(h.udp_dst, Some(dport));
    }
}
