//! A DHCP server: the authoritative source of the IP ↔ MAC binding.

use dfi_packet::{DhcpMessage, DhcpMessageType, MacAddr};
use dfi_simnet::Sim;
use std::cell::RefCell;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// A committed lease, reported to binding sensors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeaseEvent {
    /// Client hardware address.
    pub mac: MacAddr,
    /// Assigned IP address.
    pub ip: Ipv4Addr,
    /// Client-announced hostname, when present.
    pub hostname: Option<String>,
    /// `false` for new/renewed leases, `true` when released.
    pub released: bool,
}

type LeaseSensor = Rc<dyn Fn(&mut Sim, &LeaseEvent)>;

struct Inner {
    server_ip: Ipv4Addr,
    pool_base: Ipv4Addr,
    pool_size: u32,
    next_offset: u32,
    leases: HashMap<MacAddr, Ipv4Addr>,
    offers: HashMap<MacAddr, Ipv4Addr>,
    reservations: HashMap<MacAddr, Ipv4Addr>,
    sensors: Vec<LeaseSensor>,
}

/// A DHCP server with a static pool plus per-MAC reservations.
#[derive(Clone)]
pub struct DhcpServer {
    inner: Rc<RefCell<Inner>>,
}

impl DhcpServer {
    /// Creates a server answering from `server_ip`, handing out addresses
    /// `pool_base .. pool_base+pool_size`.
    #[must_use]
    pub fn new(server_ip: Ipv4Addr, pool_base: Ipv4Addr, pool_size: u32) -> DhcpServer {
        DhcpServer {
            inner: Rc::new(RefCell::new(Inner {
                server_ip,
                pool_base,
                pool_size,
                next_offset: 0,
                leases: HashMap::new(),
                offers: HashMap::new(),
                reservations: HashMap::new(),
                sensors: Vec::new(),
            })),
        }
    }

    /// Registers a binding sensor, invoked on every lease commit or release.
    ///
    /// This is where DFI's IP↔MAC identifier-binding sensor attaches: it
    /// reads bindings from the server itself, never from sniffed traffic.
    pub fn attach_sensor<F>(&self, sensor: F)
    where
        F: Fn(&mut Sim, &LeaseEvent) + 'static,
    {
        self.inner.borrow_mut().sensors.push(Rc::new(sensor));
    }

    /// Pins `mac` to always receive `ip` (used to make testbed addressing
    /// deterministic, like the paper's statically-planned enclaves).
    pub fn reserve(&self, mac: MacAddr, ip: Ipv4Addr) {
        self.inner.borrow_mut().reservations.insert(mac, ip);
    }

    /// The server's own address (DHCP option 54).
    #[must_use]
    pub fn server_ip(&self) -> Ipv4Addr {
        self.inner.borrow().server_ip
    }

    /// The current lease for `mac`, if any.
    #[must_use]
    pub fn lease_of(&self, mac: MacAddr) -> Option<Ipv4Addr> {
        self.inner.borrow().leases.get(&mac).copied()
    }

    /// Number of active leases.
    #[must_use]
    pub fn lease_count(&self) -> usize {
        self.inner.borrow().leases.len()
    }

    fn allocate(&self, mac: MacAddr) -> Option<Ipv4Addr> {
        let mut inner = self.inner.borrow_mut();
        if let Some(ip) = inner.reservations.get(&mac).copied() {
            return Some(ip);
        }
        if let Some(ip) = inner.leases.get(&mac).copied() {
            return Some(ip);
        }
        if let Some(ip) = inner.offers.get(&mac).copied() {
            return Some(ip);
        }
        let in_use: std::collections::HashSet<Ipv4Addr> = inner
            .leases
            .values()
            .chain(inner.offers.values())
            .chain(inner.reservations.values())
            .copied()
            .collect();
        let base = u32::from(inner.pool_base);
        for _ in 0..inner.pool_size {
            let candidate = Ipv4Addr::from(base + inner.next_offset);
            inner.next_offset = (inner.next_offset + 1) % inner.pool_size;
            if !in_use.contains(&candidate) {
                inner.offers.insert(mac, candidate);
                return Some(candidate);
            }
        }
        None
    }

    fn fire_sensors(&self, sim: &mut Sim, ev: &LeaseEvent) {
        let sensors = self.inner.borrow().sensors.clone();
        for s in sensors {
            s(sim, ev);
        }
    }

    /// Handles a client message, returning the server's reply (if any).
    /// Commits leases on REQUEST and notifies sensors.
    pub fn handle(&self, sim: &mut Sim, msg: &DhcpMessage) -> Option<DhcpMessage> {
        let server_ip = self.server_ip();
        match msg.message_type {
            DhcpMessageType::Discover => {
                let ip = self.allocate(msg.client_mac)?;
                Some(DhcpMessage::offer(msg.xid, msg.client_mac, ip, server_ip))
            }
            DhcpMessageType::Request => {
                let wanted = msg.requested_ip().or_else(|| self.allocate(msg.client_mac));
                let Some(ip) = wanted else {
                    return Some(nak(msg, server_ip));
                };
                // Honor only addresses we would have offered.
                let ours = self.allocate(msg.client_mac);
                if ours != Some(ip) {
                    return Some(nak(msg, server_ip));
                }
                {
                    let mut inner = self.inner.borrow_mut();
                    inner.offers.remove(&msg.client_mac);
                    inner.leases.insert(msg.client_mac, ip);
                }
                let ev = LeaseEvent {
                    mac: msg.client_mac,
                    ip,
                    hostname: msg.hostname().map(str::to_string),
                    released: false,
                };
                self.fire_sensors(sim, &ev);
                Some(DhcpMessage::ack(msg.xid, msg.client_mac, ip, server_ip))
            }
            DhcpMessageType::Release => {
                let released = self.inner.borrow_mut().leases.remove(&msg.client_mac);
                if let Some(ip) = released {
                    let ev = LeaseEvent {
                        mac: msg.client_mac,
                        ip,
                        hostname: msg.hostname().map(str::to_string),
                        released: true,
                    };
                    self.fire_sensors(sim, &ev);
                }
                None
            }
            // Server-originated types are not valid input.
            DhcpMessageType::Offer | DhcpMessageType::Ack | DhcpMessageType::Nak => None,
        }
    }

    /// Convenience: performs the full DORA exchange for a client in one
    /// call (as the testbed harness does when booting 92 hosts), returning
    /// the assigned address.
    pub fn quick_lease(
        &self,
        sim: &mut Sim,
        mac: MacAddr,
        hostname: &str,
        xid: u32,
    ) -> Option<Ipv4Addr> {
        let discover = DhcpMessage::discover(xid, mac, hostname);
        let offer = self.handle(sim, &discover)?;
        let request = DhcpMessage::request(xid, mac, offer.your_ip, self.server_ip(), hostname);
        let ack = self.handle(sim, &request)?;
        (ack.message_type == DhcpMessageType::Ack).then_some(ack.your_ip)
    }
}

fn nak(msg: &DhcpMessage, server: Ipv4Addr) -> DhcpMessage {
    DhcpMessage {
        message_type: DhcpMessageType::Nak,
        xid: msg.xid,
        client_ip: Ipv4Addr::UNSPECIFIED,
        your_ip: Ipv4Addr::UNSPECIFIED,
        server_ip: server,
        client_mac: msg.client_mac,
        options: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SERVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    const BASE: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 10);

    fn server() -> DhcpServer {
        DhcpServer::new(SERVER, BASE, 16)
    }

    #[test]
    fn dora_assigns_address_and_fires_sensor() {
        let mut sim = Sim::new(0);
        let s = server();
        let events = Rc::new(RefCell::new(Vec::new()));
        let e = events.clone();
        s.attach_sensor(move |_, ev| e.borrow_mut().push(ev.clone()));
        let mac = MacAddr::from_index(1);
        let ip = s.quick_lease(&mut sim, mac, "alice-laptop", 7).unwrap();
        assert_eq!(ip, BASE);
        assert_eq!(s.lease_of(mac), Some(ip));
        let evs = events.borrow();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].mac, mac);
        assert_eq!(evs[0].ip, ip);
        assert_eq!(evs[0].hostname.as_deref(), Some("alice-laptop"));
        assert!(!evs[0].released);
    }

    #[test]
    fn distinct_clients_get_distinct_addresses() {
        let mut sim = Sim::new(0);
        let s = server();
        let a = s
            .quick_lease(&mut sim, MacAddr::from_index(1), "a", 1)
            .unwrap();
        let b = s
            .quick_lease(&mut sim, MacAddr::from_index(2), "b", 2)
            .unwrap();
        assert_ne!(a, b);
        assert_eq!(s.lease_count(), 2);
    }

    #[test]
    fn same_client_keeps_its_address() {
        let mut sim = Sim::new(0);
        let s = server();
        let mac = MacAddr::from_index(1);
        let a = s.quick_lease(&mut sim, mac, "h", 1).unwrap();
        let b = s.quick_lease(&mut sim, mac, "h", 2).unwrap();
        assert_eq!(a, b);
        assert_eq!(s.lease_count(), 1);
    }

    #[test]
    fn reservation_is_honored() {
        let mut sim = Sim::new(0);
        let s = server();
        let mac = MacAddr::from_index(9);
        let pinned = Ipv4Addr::new(10, 0, 1, 200);
        s.reserve(mac, pinned);
        assert_eq!(s.quick_lease(&mut sim, mac, "h", 1), Some(pinned));
    }

    #[test]
    fn pool_exhaustion_yields_no_offer() {
        let mut sim = Sim::new(0);
        let s = DhcpServer::new(SERVER, BASE, 2);
        assert!(s
            .quick_lease(&mut sim, MacAddr::from_index(1), "a", 1)
            .is_some());
        assert!(s
            .quick_lease(&mut sim, MacAddr::from_index(2), "b", 2)
            .is_some());
        assert!(s
            .quick_lease(&mut sim, MacAddr::from_index(3), "c", 3)
            .is_none());
    }

    #[test]
    fn request_for_foreign_address_is_nakked() {
        let mut sim = Sim::new(0);
        let s = server();
        let mac = MacAddr::from_index(1);
        let req = DhcpMessage::request(1, mac, Ipv4Addr::new(192, 168, 99, 99), SERVER, "evil");
        let reply = s.handle(&mut sim, &req).unwrap();
        assert_eq!(reply.message_type, DhcpMessageType::Nak);
        assert_eq!(s.lease_count(), 0, "no lease committed");
    }

    #[test]
    fn release_fires_release_event() {
        let mut sim = Sim::new(0);
        let s = server();
        let events = Rc::new(RefCell::new(Vec::new()));
        let e = events.clone();
        s.attach_sensor(move |_, ev| e.borrow_mut().push(ev.clone()));
        let mac = MacAddr::from_index(1);
        let ip = s.quick_lease(&mut sim, mac, "h", 1).unwrap();
        let mut rel = DhcpMessage::discover(2, mac, "h");
        rel.message_type = DhcpMessageType::Release;
        assert!(s.handle(&mut sim, &rel).is_none());
        assert_eq!(s.lease_of(mac), None);
        let evs = events.borrow();
        assert_eq!(evs.len(), 2);
        assert!(evs[1].released);
        assert_eq!(evs[1].ip, ip);
    }

    #[test]
    fn server_messages_as_input_are_ignored() {
        let mut sim = Sim::new(0);
        let s = server();
        let offer = DhcpMessage::offer(1, MacAddr::from_index(1), BASE, SERVER);
        assert!(s.handle(&mut sim, &offer).is_none());
    }
}
