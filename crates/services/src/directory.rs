//! A directory service (Active Directory surrogate): users, departmental
//! groups, machine accounts, and credential verification.
//!
//! Faithful to the paper's observation, the directory does **not** track who
//! is currently logged on — it only issues ticket-granting tickets. Current
//! log-on state is derived downstream by the SIEM from endpoint process
//! events (see [`crate::Siem`]).

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::rc::Rc;

/// Errors from directory operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DirectoryError {
    /// The user does not exist.
    UnknownUser(String),
    /// The machine account does not exist.
    UnknownHost(String),
    /// The presented credential did not verify.
    BadCredential,
}

impl fmt::Display for DirectoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirectoryError::UnknownUser(u) => write!(f, "unknown user {u:?}"),
            DirectoryError::UnknownHost(h) => write!(f, "unknown host {h:?}"),
            DirectoryError::BadCredential => write!(f, "credential verification failed"),
        }
    }
}

impl Error for DirectoryError {}

#[derive(Clone, Debug)]
struct UserRecord {
    credential: u64,
    groups: HashSet<String>,
}

struct Inner {
    users: HashMap<String, UserRecord>,
    machines: HashSet<String>,
    /// group → hosts whose Local Administrators include that group.
    local_admin_grants: HashMap<String, HashSet<String>>,
    tgts_issued: u64,
}

/// A shared-handle directory service.
#[derive(Clone)]
pub struct Directory {
    inner: Rc<RefCell<Inner>>,
}

impl Default for Directory {
    fn default() -> Self {
        Directory::new()
    }
}

impl Directory {
    /// An empty directory.
    #[must_use]
    pub fn new() -> Directory {
        Directory {
            inner: Rc::new(RefCell::new(Inner {
                users: HashMap::new(),
                machines: HashSet::new(),
                local_admin_grants: HashMap::new(),
                tgts_issued: 0,
            })),
        }
    }

    /// Creates a user with an opaque credential (a stand-in for an NTLM
    /// hash — the thing NotPetya-style malware steals from memory).
    pub fn add_user(&self, user: &str, credential: u64) {
        self.inner.borrow_mut().users.insert(
            user.to_string(),
            UserRecord {
                credential,
                groups: HashSet::new(),
            },
        );
    }

    /// Joins a machine to the domain.
    pub fn join_machine(&self, hostname: &str) {
        self.inner
            .borrow_mut()
            .machines
            .insert(hostname.to_string());
    }

    /// Adds a user to a (departmental) group.
    pub fn add_to_group(&self, user: &str, group: &str) -> Result<(), DirectoryError> {
        let mut inner = self.inner.borrow_mut();
        let rec = inner
            .users
            .get_mut(user)
            .ok_or_else(|| DirectoryError::UnknownUser(user.to_string()))?;
        rec.groups.insert(group.to_string());
        Ok(())
    }

    /// Grants a group "Local Administrator" on a host — the paper's testbed
    /// gives every member of a department admin rights on that department's
    /// machines, which is precisely the privilege the worm's credential-theft
    /// vector exploits.
    pub fn grant_local_admin(&self, group: &str, hostname: &str) {
        self.inner
            .borrow_mut()
            .local_admin_grants
            .entry(group.to_string())
            .or_default()
            .insert(hostname.to_string());
    }

    /// Verifies a credential and "issues a TGT". Deliberately does not
    /// record any log-on state.
    pub fn authenticate(&self, user: &str, credential: u64) -> Result<(), DirectoryError> {
        let mut inner = self.inner.borrow_mut();
        let rec = inner
            .users
            .get(user)
            .ok_or_else(|| DirectoryError::UnknownUser(user.to_string()))?;
        if rec.credential != credential {
            return Err(DirectoryError::BadCredential);
        }
        inner.tgts_issued += 1;
        Ok(())
    }

    /// The opaque credential for a user — what an attacker with SYSTEM on a
    /// machine can dump from memory for any user with processes there.
    #[must_use]
    pub fn credential_of(&self, user: &str) -> Option<u64> {
        self.inner.borrow().users.get(user).map(|r| r.credential)
    }

    /// `true` when `user` holds Local Administrator on `hostname` via any
    /// group membership.
    #[must_use]
    pub fn is_local_admin(&self, user: &str, hostname: &str) -> bool {
        let inner = self.inner.borrow();
        let Some(rec) = inner.users.get(user) else {
            return false;
        };
        rec.groups.iter().any(|g| {
            inner
                .local_admin_grants
                .get(g)
                .is_some_and(|hosts| hosts.contains(hostname))
        })
    }

    /// Groups a user belongs to, sorted.
    #[must_use]
    pub fn groups_of(&self, user: &str) -> Vec<String> {
        let inner = self.inner.borrow();
        let mut gs: Vec<String> = inner
            .users
            .get(user)
            .map(|r| r.groups.iter().cloned().collect())
            .unwrap_or_default();
        gs.sort();
        gs
    }

    /// `true` when the machine is domain-joined.
    #[must_use]
    pub fn is_joined(&self, hostname: &str) -> bool {
        self.inner.borrow().machines.contains(hostname)
    }

    /// Ticket-granting tickets issued (authentication successes).
    #[must_use]
    pub fn tgts_issued(&self) -> u64 {
        self.inner.borrow().tgts_issued
    }

    /// All known users, sorted.
    #[must_use]
    pub fn users(&self) -> Vec<String> {
        let mut us: Vec<String> = self.inner.borrow().users.keys().cloned().collect();
        us.sort();
        us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> Directory {
        let d = Directory::new();
        d.add_user("alice", 0xA11CE);
        d.add_user("bob", 0xB0B);
        d.join_machine("alice-laptop");
        d.join_machine("bob-desktop");
        d.add_to_group("alice", "eng").unwrap();
        d.add_to_group("bob", "eng").unwrap();
        d.grant_local_admin("eng", "alice-laptop");
        d.grant_local_admin("eng", "bob-desktop");
        d
    }

    #[test]
    fn authenticate_verifies_credentials() {
        let d = dir();
        assert!(d.authenticate("alice", 0xA11CE).is_ok());
        assert_eq!(d.tgts_issued(), 1);
        assert_eq!(
            d.authenticate("alice", 0xBAD),
            Err(DirectoryError::BadCredential)
        );
        assert_eq!(
            d.authenticate("mallory", 1),
            Err(DirectoryError::UnknownUser("mallory".into()))
        );
        assert_eq!(d.tgts_issued(), 1, "failures issue no TGT");
    }

    #[test]
    fn group_local_admin_grants() {
        let d = dir();
        assert!(
            d.is_local_admin("alice", "bob-desktop"),
            "dept-mates are admins"
        );
        assert!(d.is_local_admin("bob", "alice-laptop"));
        assert!(!d.is_local_admin("alice", "hr-desktop"));
        assert!(!d.is_local_admin("mallory", "alice-laptop"));
    }

    #[test]
    fn credential_dump_matches_stored() {
        let d = dir();
        assert_eq!(d.credential_of("bob"), Some(0xB0B));
        assert_eq!(d.credential_of("nobody"), None);
        // The dumped credential authenticates — the lateral-movement primitive.
        let stolen = d.credential_of("bob").unwrap();
        assert!(d.authenticate("bob", stolen).is_ok());
    }

    #[test]
    fn machine_join_tracked() {
        let d = dir();
        assert!(d.is_joined("alice-laptop"));
        assert!(!d.is_joined("rogue-box"));
    }

    #[test]
    fn groups_listed_sorted() {
        let d = dir();
        d.add_to_group("alice", "admins").unwrap();
        assert_eq!(d.groups_of("alice"), vec!["admins", "eng"]);
        assert!(d.groups_of("nobody").is_empty());
        assert!(d.add_to_group("ghost", "eng").is_err());
    }

    #[test]
    fn users_listed_sorted() {
        let d = dir();
        assert_eq!(d.users(), vec!["alice", "bob"]);
    }
}
