//! A DNS server: the authoritative source of the hostname ↔ IP binding.

use dfi_packet::{DnsMessage, DnsType};
use dfi_simnet::Sim;
use std::cell::RefCell;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// A committed name record, reported to binding sensors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NameEvent {
    /// Fully qualified hostname.
    pub hostname: String,
    /// Bound address.
    pub ip: Ipv4Addr,
    /// `true` when the record was removed rather than added.
    pub removed: bool,
}

type NameSensor = Rc<dyn Fn(&mut Sim, &NameEvent)>;

struct Inner {
    zone: String,
    forward: HashMap<String, Ipv4Addr>,
    reverse: HashMap<Ipv4Addr, String>,
    sensors: Vec<NameSensor>,
    queries: u64,
}

/// An authoritative DNS server for one zone.
#[derive(Clone)]
pub struct DnsServer {
    inner: Rc<RefCell<Inner>>,
}

impl DnsServer {
    /// Creates a server authoritative for `zone` (e.g. `corp.local`).
    #[must_use]
    pub fn new(zone: &str) -> DnsServer {
        DnsServer {
            inner: Rc::new(RefCell::new(Inner {
                zone: zone.to_string(),
                forward: HashMap::new(),
                reverse: HashMap::new(),
                sensors: Vec::new(),
                queries: 0,
            })),
        }
    }

    /// Registers a binding sensor invoked on record changes. This is where
    /// DFI's hostname↔IP sensor attaches.
    pub fn attach_sensor<F>(&self, sensor: F)
    where
        F: Fn(&mut Sim, &NameEvent) + 'static,
    {
        self.inner.borrow_mut().sensors.push(Rc::new(sensor));
    }

    /// Fully qualifies a bare hostname within the server's zone.
    #[must_use]
    pub fn fqdn(&self, hostname: &str) -> String {
        let inner = self.inner.borrow();
        if hostname.ends_with(&inner.zone) {
            hostname.to_string()
        } else {
            format!("{hostname}.{}", inner.zone)
        }
    }

    /// Adds (or replaces) an A record and its PTR, firing sensors.
    /// Dynamic-DNS registration — the AD server does this when DHCP
    /// commits a lease for a domain-joined machine.
    pub fn register(&self, sim: &mut Sim, hostname: &str, ip: Ipv4Addr) {
        let name = self.fqdn(hostname);
        {
            let mut inner = self.inner.borrow_mut();
            if let Some(old) = inner.forward.insert(name.clone(), ip) {
                inner.reverse.remove(&old);
            }
            inner.reverse.insert(ip, name.clone());
        }
        let ev = NameEvent {
            hostname: name,
            ip,
            removed: false,
        };
        self.fire(sim, &ev);
    }

    /// Removes a record, firing sensors.
    pub fn unregister(&self, sim: &mut Sim, hostname: &str) {
        let name = self.fqdn(hostname);
        let removed = {
            let mut inner = self.inner.borrow_mut();
            let ip = inner.forward.remove(&name);
            if let Some(ip) = ip {
                inner.reverse.remove(&ip);
            }
            ip
        };
        if let Some(ip) = removed {
            let ev = NameEvent {
                hostname: name,
                ip,
                removed: true,
            };
            self.fire(sim, &ev);
        }
    }

    fn fire(&self, sim: &mut Sim, ev: &NameEvent) {
        let sensors = self.inner.borrow().sensors.clone();
        for s in sensors {
            s(sim, ev);
        }
    }

    /// Answers a query (A lookups only; others get NXDOMAIN).
    #[must_use]
    pub fn handle(&self, query: &DnsMessage) -> DnsMessage {
        self.inner.borrow_mut().queries += 1;
        let Some(q) = query.questions.first() else {
            return DnsMessage::nxdomain(query);
        };
        if q.qtype != DnsType::A {
            return DnsMessage::nxdomain(query);
        }
        match self.inner.borrow().forward.get(&q.name) {
            Some(&ip) => DnsMessage::answer_a(query, ip, 300),
            None => DnsMessage::nxdomain(query),
        }
    }

    /// Direct lookup (for harness code that does not need wire fidelity).
    #[must_use]
    pub fn lookup(&self, hostname: &str) -> Option<Ipv4Addr> {
        let name = self.fqdn(hostname);
        self.inner.borrow().forward.get(&name).copied()
    }

    /// Reverse lookup.
    #[must_use]
    pub fn reverse_lookup(&self, ip: Ipv4Addr) -> Option<String> {
        self.inner.borrow().reverse.get(&ip).cloned()
    }

    /// Queries served so far.
    #[must_use]
    pub fn query_count(&self) -> u64 {
        self.inner.borrow().queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> DnsServer {
        DnsServer::new("corp.local")
    }

    #[test]
    fn register_then_resolve() {
        let mut sim = Sim::new(0);
        let s = server();
        s.register(&mut sim, "alice-laptop", Ipv4Addr::new(10, 0, 1, 5));
        let q = DnsMessage::query_a(1, "alice-laptop.corp.local");
        let a = s.handle(&q);
        assert_eq!(
            a.first_a(),
            Some(("alice-laptop.corp.local", Ipv4Addr::new(10, 0, 1, 5)))
        );
        assert_eq!(s.lookup("alice-laptop"), Some(Ipv4Addr::new(10, 0, 1, 5)));
        assert_eq!(
            s.reverse_lookup(Ipv4Addr::new(10, 0, 1, 5)).as_deref(),
            Some("alice-laptop.corp.local")
        );
    }

    #[test]
    fn unknown_name_is_nxdomain() {
        let s = server();
        let q = DnsMessage::query_a(1, "ghost.corp.local");
        let a = s.handle(&q);
        assert_eq!(a.rcode, 3);
        assert!(a.answers.is_empty());
        assert_eq!(s.query_count(), 1);
    }

    #[test]
    fn sensor_sees_registrations_and_removals() {
        let mut sim = Sim::new(0);
        let s = server();
        let events = Rc::new(RefCell::new(Vec::new()));
        let e = events.clone();
        s.attach_sensor(move |_, ev| e.borrow_mut().push(ev.clone()));
        s.register(&mut sim, "h1", Ipv4Addr::new(10, 0, 0, 1));
        s.unregister(&mut sim, "h1");
        let evs = events.borrow();
        assert_eq!(evs.len(), 2);
        assert!(!evs[0].removed);
        assert!(evs[1].removed);
        assert_eq!(evs[0].hostname, "h1.corp.local");
    }

    #[test]
    fn reregistration_replaces_address() {
        let mut sim = Sim::new(0);
        let s = server();
        s.register(&mut sim, "h1", Ipv4Addr::new(10, 0, 0, 1));
        s.register(&mut sim, "h1", Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(s.lookup("h1"), Some(Ipv4Addr::new(10, 0, 0, 2)));
        assert_eq!(s.reverse_lookup(Ipv4Addr::new(10, 0, 0, 1)), None);
    }

    #[test]
    fn unregister_unknown_is_silent() {
        let mut sim = Sim::new(0);
        let s = server();
        let events = Rc::new(RefCell::new(Vec::new()));
        let e = events.clone();
        s.attach_sensor(move |_, ev| e.borrow_mut().push(ev.clone()));
        s.unregister(&mut sim, "nope");
        assert!(events.borrow().is_empty());
    }

    #[test]
    fn non_a_queries_get_nxdomain() {
        let mut sim = Sim::new(0);
        let s = server();
        s.register(&mut sim, "h1", Ipv4Addr::new(10, 0, 0, 1));
        let mut q = DnsMessage::query_a(1, "h1.corp.local");
        q.questions[0].qtype = DnsType::Ptr;
        assert_eq!(s.handle(&q).rcode, 3);
    }

    #[test]
    fn fqdn_is_idempotent() {
        let s = server();
        assert_eq!(s.fqdn("h1"), "h1.corp.local");
        assert_eq!(s.fqdn("h1.corp.local"), "h1.corp.local");
    }
}
