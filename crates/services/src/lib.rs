//! Enterprise service surrogates: DHCP, DNS, a directory service (Active
//! Directory surrogate), and a SIEM pipeline (Splunk surrogate).
//!
//! These services are DFI's *authoritative sources* for identifier bindings
//! (paper Figure 3):
//!
//! | binding                | authoritative source           |
//! |------------------------|--------------------------------|
//! | username ↔ hostname    | system event logs (the SIEM)   |
//! | hostname ↔ IP address  | the DNS server                 |
//! | IP ↔ MAC address       | the DHCP server                |
//! | MAC ↔ switch & port    | packet-in events (in the PCP)  |
//!
//! Each service exposes a protocol-accurate handler (consuming and
//! producing the real message types from `dfi-packet`) plus a sensor hook:
//! a callback invoked whenever the service commits a binding, which is where
//! DFI's identifier-binding sensors attach. Collecting from the
//! authoritative source — rather than sniffing traffic — is what prevents
//! spoofed packets from poisoning DFI's view of the network.

#![warn(missing_docs)]

mod dhcp_server;
mod directory;
mod dns_server;
mod siem;

pub use dhcp_server::{DhcpServer, LeaseEvent};
pub use directory::{Directory, DirectoryError};
pub use dns_server::{DnsServer, NameEvent};
pub use siem::{SessionEvent, SessionKind, Siem};
