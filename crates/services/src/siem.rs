//! A SIEM pipeline (Splunk surrogate): aggregates endpoint process events
//! into user log-on / log-off determinations.
//!
//! The paper found that Active Directory cannot be queried for current
//! log-on state, and that endpoint logs record many different
//! authentication paths. Their implementation therefore maintains, per
//! (user, host), a count of the user's running processes aggregated from
//! process-creation and -termination events: the user is "logged on" while
//! the count is positive. This module implements exactly that heuristic,
//! and it is the authoritative source of DFI's username ↔ hostname binding.

use dfi_simnet::Sim;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Log-on or log-off.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SessionKind {
    /// The user's process count rose from zero.
    LogOn,
    /// The user's process count fell to zero.
    LogOff,
}

/// A derived session event delivered to subscribers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionEvent {
    /// The user.
    pub user: String,
    /// The host.
    pub host: String,
    /// On or off.
    pub kind: SessionKind,
}

type SessionSensor = Rc<dyn Fn(&mut Sim, &SessionEvent)>;

#[derive(Default)]
struct Inner {
    /// (user, host) → live process count.
    counts: HashMap<(String, String), u32>,
    sensors: Vec<SessionSensor>,
    events_ingested: u64,
    sessions_emitted: u64,
}

/// A shared-handle SIEM indexer.
#[derive(Clone, Default)]
pub struct Siem {
    inner: Rc<RefCell<Inner>>,
}

impl Siem {
    /// An empty indexer.
    #[must_use]
    pub fn new() -> Siem {
        Siem::default()
    }

    /// Registers a subscriber for derived log-on/log-off events. This is
    /// where DFI's log-on/log-off sensor (feeding the Entity Resolution
    /// Manager and the AT-RBAC Policy Decision Point) attaches.
    pub fn attach_sensor<F>(&self, sensor: F)
    where
        F: Fn(&mut Sim, &SessionEvent) + 'static,
    {
        self.inner.borrow_mut().sensors.push(Rc::new(sensor));
    }

    /// Ingests a process-creation event from an endpoint collector.
    pub fn process_created(&self, sim: &mut Sim, user: &str, host: &str) {
        let fire = {
            let mut inner = self.inner.borrow_mut();
            inner.events_ingested += 1;
            let count = inner
                .counts
                .entry((user.to_string(), host.to_string()))
                .or_insert(0);
            *count += 1;
            *count == 1
        };
        if fire {
            self.emit(sim, user, host, SessionKind::LogOn);
        }
    }

    /// Ingests a process-termination event from an endpoint collector.
    /// Termination events for unknown processes are ignored (collectors
    /// can restart and lose state).
    pub fn process_terminated(&self, sim: &mut Sim, user: &str, host: &str) {
        let fire = {
            let mut inner = self.inner.borrow_mut();
            inner.events_ingested += 1;
            let key = (user.to_string(), host.to_string());
            match inner.counts.get_mut(&key) {
                Some(count) if *count > 0 => {
                    *count -= 1;
                    if *count == 0 {
                        inner.counts.remove(&key);
                        true
                    } else {
                        false
                    }
                }
                _ => false,
            }
        };
        if fire {
            self.emit(sim, user, host, SessionKind::LogOff);
        }
    }

    /// Convenience for scenario scripts: a user "session" is one process
    /// (e.g. the shell) created at log-on and terminated at log-off.
    pub fn log_on(&self, sim: &mut Sim, user: &str, host: &str) {
        self.process_created(sim, user, host);
    }

    /// Terminates every process of `user` on `host` (log-off).
    pub fn log_off(&self, sim: &mut Sim, user: &str, host: &str) {
        loop {
            let remaining = self.process_count(user, host);
            if remaining == 0 {
                break;
            }
            self.process_terminated(sim, user, host);
        }
    }

    fn emit(&self, sim: &mut Sim, user: &str, host: &str, kind: SessionKind) {
        let ev = SessionEvent {
            user: user.to_string(),
            host: host.to_string(),
            kind,
        };
        let sensors = {
            let mut inner = self.inner.borrow_mut();
            inner.sessions_emitted += 1;
            inner.sensors.clone()
        };
        for s in sensors {
            s(sim, &ev);
        }
    }

    /// The current process count for (user, host).
    #[must_use]
    pub fn process_count(&self, user: &str, host: &str) -> u32 {
        self.inner
            .borrow()
            .counts
            .get(&(user.to_string(), host.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// `true` while the user's process count on the host is positive.
    #[must_use]
    pub fn is_logged_on(&self, user: &str, host: &str) -> bool {
        self.process_count(user, host) > 0
    }

    /// Raw endpoint events ingested.
    #[must_use]
    pub fn events_ingested(&self) -> u64 {
        self.inner.borrow().events_ingested
    }

    /// Derived session events emitted.
    #[must_use]
    pub fn sessions_emitted(&self) -> u64 {
        self.inner.borrow().sessions_emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness() -> (Sim, Siem, Rc<RefCell<Vec<SessionEvent>>>) {
        let sim = Sim::new(0);
        let siem = Siem::new();
        let events = Rc::new(RefCell::new(Vec::new()));
        let e = events.clone();
        siem.attach_sensor(move |_, ev| e.borrow_mut().push(ev.clone()));
        (sim, siem, events)
    }

    #[test]
    fn first_process_triggers_logon() {
        let (mut sim, siem, events) = harness();
        siem.process_created(&mut sim, "alice", "h1");
        assert!(siem.is_logged_on("alice", "h1"));
        assert_eq!(
            events.borrow().as_slice(),
            [SessionEvent {
                user: "alice".into(),
                host: "h1".into(),
                kind: SessionKind::LogOn
            }]
        );
    }

    #[test]
    fn additional_processes_do_not_retrigger() {
        let (mut sim, siem, events) = harness();
        siem.process_created(&mut sim, "alice", "h1");
        siem.process_created(&mut sim, "alice", "h1");
        siem.process_created(&mut sim, "alice", "h1");
        assert_eq!(events.borrow().len(), 1);
        assert_eq!(siem.process_count("alice", "h1"), 3);
    }

    #[test]
    fn logoff_only_when_count_reaches_zero() {
        let (mut sim, siem, events) = harness();
        siem.process_created(&mut sim, "alice", "h1");
        siem.process_created(&mut sim, "alice", "h1");
        siem.process_terminated(&mut sim, "alice", "h1");
        assert!(siem.is_logged_on("alice", "h1"));
        assert_eq!(events.borrow().len(), 1);
        siem.process_terminated(&mut sim, "alice", "h1");
        assert!(!siem.is_logged_on("alice", "h1"));
        assert_eq!(events.borrow().len(), 2);
        assert_eq!(events.borrow()[1].kind, SessionKind::LogOff);
    }

    #[test]
    fn per_host_sessions_are_independent() {
        let (mut sim, siem, events) = harness();
        siem.process_created(&mut sim, "alice", "h1");
        siem.process_created(&mut sim, "alice", "h2");
        assert_eq!(events.borrow().len(), 2, "one log-on per host");
        siem.process_terminated(&mut sim, "alice", "h1");
        assert!(!siem.is_logged_on("alice", "h1"));
        assert!(siem.is_logged_on("alice", "h2"));
    }

    #[test]
    fn spurious_termination_ignored() {
        let (mut sim, siem, events) = harness();
        siem.process_terminated(&mut sim, "alice", "h1");
        assert!(events.borrow().is_empty());
        assert_eq!(siem.process_count("alice", "h1"), 0);
    }

    #[test]
    fn log_off_helper_clears_all_processes() {
        let (mut sim, siem, events) = harness();
        for _ in 0..5 {
            siem.process_created(&mut sim, "bob", "h9");
        }
        siem.log_off(&mut sim, "bob", "h9");
        assert!(!siem.is_logged_on("bob", "h9"));
        assert_eq!(events.borrow().len(), 2); // one on, one off
        assert_eq!(siem.sessions_emitted(), 2);
        assert_eq!(siem.events_ingested(), 10);
    }
}
