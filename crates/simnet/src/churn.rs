//! Diurnal DHCP / log-on churn schedules for fleet-scale experiments.
//!
//! Real enterprise binding churn is not Poisson-flat: leases move and users
//! log on in a morning surge, taper overnight, and repeat. This module turns
//! a generated [`Topology`](crate::topo::Topology) into a deterministic,
//! time-sorted schedule of binding operations whose instantaneous rate
//! follows a sinusoidal day profile. Like the topology generator it is pure
//! data — the consumer replays each [`ChurnEvent`] against its entity
//! resolver (fanning it out to shards, publishing it on a bus, or applying
//! it directly).
//!
//! Events are generated per host/user by thinning a peak-rate exponential
//! arrival process against the diurnal intensity, so the same
//! `(topology, params, seed)` triple always yields a bit-identical schedule.

use crate::rng::SimRng;
use crate::time::SimTime;
use crate::topo::Topology;
use std::net::Ipv4Addr;
use std::time::Duration;

/// Churn-schedule parameters.
#[derive(Clone, Debug)]
pub struct ChurnParams {
    /// Length of one virtual "day" (the period of the diurnal modulation).
    /// Experiments compress this — a 1-second day replays a full diurnal
    /// cycle inside a 2-second run.
    pub day: Duration,
    /// Schedule horizon; events are generated in `[0, horizon)`.
    pub horizon: Duration,
    /// Mean DHCP re-lease (IP move) events per host per day, at the
    /// *average* diurnal intensity.
    pub lease_moves_per_host_day: f64,
    /// Mean log-on/log-off session toggles per user per day, at the
    /// average diurnal intensity.
    pub session_toggles_per_user_day: f64,
}

/// One binding mutation in the schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChurnOp {
    /// A DHCP move: the host releases `old_ip` and acquires `new_ip`.
    LeaseMove {
        /// Host index in the topology.
        host: u32,
        /// The host's MAC index (mirrors `HostSpec::mac_index`).
        mac_index: u32,
        /// The IP being released.
        old_ip: Ipv4Addr,
        /// The freshly leased IP (from the 11.0.0.0/8 re-lease pool,
        /// disjoint from the topology's initial 10.0.0.0/8 assignments).
        new_ip: Ipv4Addr,
    },
    /// A user logs on to their home host.
    LogOn {
        /// The user name.
        user: String,
        /// Host index the session lands on.
        host: u32,
    },
    /// A user logs off their home host.
    LogOff {
        /// The user name.
        user: String,
        /// Host index the session leaves.
        host: u32,
    },
}

/// One scheduled churn operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChurnEvent {
    /// When the operation occurs.
    pub at: SimTime,
    /// The binding mutation.
    pub op: ChurnOp,
}

/// Diurnal intensity at time `t`: a raised cosine with mean 1.0, peaking
/// mid-day at 1.8x the average rate and bottoming overnight at 0.2x.
#[must_use]
pub fn diurnal_intensity(t: SimTime, day: Duration) -> f64 {
    let phase = (t.as_secs_f64() / day.as_secs_f64()).fract();
    1.0 - 0.8 * (std::f64::consts::TAU * phase).cos()
}

const PEAK_INTENSITY: f64 = 1.8;

/// Draws arrival times for one entity by thinning a peak-rate exponential
/// process against the diurnal profile.
fn arrivals(
    rng: &mut SimRng,
    per_day: f64,
    day: Duration,
    horizon: Duration,
    mut emit: impl FnMut(SimTime, &mut SimRng),
) {
    if per_day <= 0.0 {
        return;
    }
    let peak_mean_gap = day.as_secs_f64() / (per_day * PEAK_INTENSITY);
    let mut t = 0.0f64;
    let end = horizon.as_secs_f64();
    loop {
        t += rng.exponential(peak_mean_gap);
        if t >= end {
            return;
        }
        let at = SimTime::from_nanos((t * 1e9) as u64);
        if rng.chance(diurnal_intensity(at, day) / PEAK_INTENSITY) {
            emit(at, rng);
        }
    }
}

/// Generates the deterministic churn schedule for `topo`.
///
/// Lease moves chain: each move releases whatever IP the host held after
/// its previous move. Session toggles alternate per `(user, host)` pair
/// starting from logged-on (matching the topology's initial bindings), so
/// the first toggle is always a `LogOff`. Events are sorted by time;
/// same-instant events keep host-index order, so the schedule is stable.
#[must_use]
pub fn generate_churn(topo: &Topology, params: &ChurnParams, seed: u64) -> Vec<ChurnEvent> {
    let mut root = SimRng::new(seed ^ 0xC4_42_17);
    let mut events: Vec<ChurnEvent> = Vec::new();
    // The re-lease pool: 11.x.y.z, allocated densely so no churned IP ever
    // collides with another host's address.
    let mut next_fresh_ip = 0u32;
    for h in &topo.hosts {
        let mut rng = root.split();
        let mut current_ip = h.ip;
        arrivals(
            &mut rng,
            params.lease_moves_per_host_day,
            params.day,
            params.horizon,
            |at, _| {
                assert!(next_fresh_ip < 1 << 24, "re-lease pool exhausted");
                let new_ip = Ipv4Addr::new(
                    11,
                    (next_fresh_ip >> 16) as u8,
                    ((next_fresh_ip >> 8) & 0xFF) as u8,
                    (next_fresh_ip & 0xFF) as u8,
                );
                next_fresh_ip += 1;
                events.push(ChurnEvent {
                    at,
                    op: ChurnOp::LeaseMove {
                        host: h.index,
                        mac_index: h.mac_index,
                        old_ip: current_ip,
                        new_ip,
                    },
                });
                current_ip = new_ip;
            },
        );
        for user in &h.users {
            let mut logged_on = true;
            arrivals(
                &mut rng,
                params.session_toggles_per_user_day,
                params.day,
                params.horizon,
                |at, _| {
                    let op = if logged_on {
                        ChurnOp::LogOff {
                            user: user.clone(),
                            host: h.index,
                        }
                    } else {
                        ChurnOp::LogOn {
                            user: user.clone(),
                            host: h.index,
                        }
                    };
                    logged_on = !logged_on;
                    events.push(ChurnEvent { at, op });
                },
            );
        }
    }
    events.sort_by_key(|e| e.at);
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::{TopoKind, TopoParams, Topology};

    fn small_topo(seed: u64) -> Topology {
        Topology::generate(
            &TopoParams {
                kind: TopoKind::LeafSpine {
                    spines: 2,
                    leaves: 4,
                },
                hosts: 32,
                users_per_host: 1,
            },
            seed,
        )
    }

    fn params() -> ChurnParams {
        ChurnParams {
            day: Duration::from_secs(1),
            horizon: Duration::from_secs(2),
            lease_moves_per_host_day: 4.0,
            session_toggles_per_user_day: 4.0,
        }
    }

    #[test]
    fn schedule_is_seed_deterministic_and_sorted() {
        let topo = small_topo(5);
        let a = generate_churn(&topo, &params(), 77);
        let b = generate_churn(&topo, &params(), 77);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(!a.is_empty(), "expected some churn at these rates");
        let c = generate_churn(&topo, &params(), 78);
        assert_ne!(a, c, "different seed must move the schedule");
    }

    #[test]
    fn lease_moves_chain_and_never_collide() {
        let topo = small_topo(6);
        let events = generate_churn(&topo, &params(), 9);
        let mut current: std::collections::HashMap<u32, Ipv4Addr> =
            topo.hosts.iter().map(|h| (h.index, h.ip)).collect();
        let mut seen: std::collections::HashSet<Ipv4Addr> =
            topo.hosts.iter().map(|h| h.ip).collect();
        for e in &events {
            if let ChurnOp::LeaseMove {
                host,
                old_ip,
                new_ip,
                ..
            } = &e.op
            {
                assert_eq!(current[host], *old_ip, "release must chain");
                assert!(seen.insert(*new_ip), "fresh IP reused: {new_ip}");
                current.insert(*host, *new_ip);
            }
        }
    }

    #[test]
    fn session_toggles_alternate_starting_logged_on() {
        let topo = small_topo(7);
        let events = generate_churn(&topo, &params(), 11);
        let mut state: std::collections::HashMap<(String, u32), bool> =
            std::collections::HashMap::new();
        for e in &events {
            match &e.op {
                ChurnOp::LogOff { user, host } => {
                    let on = state.entry((user.clone(), *host)).or_insert(true);
                    assert!(*on, "log-off while logged off");
                    *on = false;
                }
                ChurnOp::LogOn { user, host } => {
                    let on = state.entry((user.clone(), *host)).or_insert(true);
                    assert!(!*on, "log-on while logged on");
                    *on = true;
                }
                ChurnOp::LeaseMove { .. } => {}
            }
        }
    }

    #[test]
    fn diurnal_profile_modulates_rate() {
        let day = Duration::from_secs(1);
        let night = diurnal_intensity(SimTime::ZERO, day);
        let noon = diurnal_intensity(SimTime::from_millis(500), day);
        assert!((night - 0.2).abs() < 1e-9);
        assert!((noon - 1.8).abs() < 1e-9);
        // Average over the day is ~1.0, so `per_day` keeps its meaning.
        let avg: f64 = (0..1000)
            .map(|i| diurnal_intensity(SimTime::from_millis(i), day))
            .sum::<f64>()
            / 1000.0;
        assert!((avg - 1.0).abs() < 1e-3, "avg {avg}");
    }
}
