//! Service-time and latency distributions.
//!
//! The evaluation calibrates simulated component costs to the paper's
//! measurements (Table II reports per-component means and standard
//! deviations), so the common case is a truncated normal; link latencies use
//! constants or uniform jitter; arrival processes use exponentials.

use crate::rng::SimRng;
use std::time::Duration;

/// A distribution over non-negative durations.
///
/// All variants clamp below at zero — a negative service time is
/// meaningless — which matches how the paper's measured distributions behave
/// (e.g. the proxy's 0.16 ms ± 0.72 ms breakdown row is a heavy-tailed,
/// non-negative quantity).
#[derive(Clone, Debug, PartialEq)]
pub enum Dist {
    /// Always the same duration.
    Constant(Duration),
    /// Uniform over `[lo, hi)`.
    Uniform(Duration, Duration),
    /// Normal with the given mean and standard deviation, truncated at zero.
    Normal {
        /// Mean of the untruncated normal.
        mean: Duration,
        /// Standard deviation of the untruncated normal.
        std_dev: Duration,
    },
    /// Exponential with the given mean.
    Exponential(Duration),
}

impl Dist {
    /// Convenience constructor: truncated normal from millisecond floats.
    #[must_use]
    pub fn normal_ms(mean_ms: f64, std_ms: f64) -> Dist {
        Dist::Normal {
            mean: Duration::from_secs_f64(mean_ms / 1e3),
            std_dev: Duration::from_secs_f64(std_ms / 1e3),
        }
    }

    /// Convenience constructor: constant from millisecond float.
    #[must_use]
    pub fn constant_ms(ms: f64) -> Dist {
        Dist::Constant(Duration::from_secs_f64(ms / 1e3))
    }

    /// Draws one duration.
    pub fn sample(&self, rng: &mut SimRng) -> Duration {
        match *self {
            Dist::Constant(d) => d,
            Dist::Uniform(lo, hi) => {
                if lo >= hi {
                    lo
                } else {
                    rng.duration_range(lo, hi)
                }
            }
            Dist::Normal { mean, std_dev } => {
                let x = rng.normal(mean.as_secs_f64(), std_dev.as_secs_f64());
                Duration::from_secs_f64(x.max(0.0))
            }
            Dist::Exponential(mean) => Duration::from_secs_f64(rng.exponential(mean.as_secs_f64())),
        }
    }

    /// The distribution's mean (of the *untruncated* form for `Normal`;
    /// adequate for calibration sanity checks).
    #[must_use]
    pub fn mean(&self) -> Duration {
        match *self {
            Dist::Constant(d) => d,
            Dist::Uniform(lo, hi) => (lo + hi) / 2,
            Dist::Normal { mean, .. } => mean,
            Dist::Exponential(mean) => mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(dist: &Dist, n: usize) -> f64 {
        let mut rng = SimRng::new(77);
        (0..n)
            .map(|_| dist.sample(&mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn constant_always_same() {
        let d = Dist::constant_ms(2.5);
        let mut rng = SimRng::new(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), Duration::from_micros(2500));
        }
    }

    #[test]
    fn uniform_within_bounds() {
        let lo = Duration::from_millis(1);
        let hi = Duration::from_millis(3);
        let d = Dist::Uniform(lo, hi);
        let mut rng = SimRng::new(2);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!(x >= lo && x < hi);
        }
    }

    #[test]
    fn degenerate_uniform_returns_lo() {
        let d = Dist::Uniform(Duration::from_millis(5), Duration::from_millis(5));
        assert_eq!(d.sample(&mut SimRng::new(0)), Duration::from_millis(5));
    }

    #[test]
    fn normal_truncates_at_zero() {
        // Mean 0.16 ms, std 0.72 ms — the paper's proxy row; many raw draws
        // would be negative, all samples must still be non-negative.
        let d = Dist::normal_ms(0.16, 0.72);
        let mut rng = SimRng::new(3);
        for _ in 0..10_000 {
            let _ = d.sample(&mut rng); // Duration is non-negative by type.
        }
    }

    #[test]
    fn normal_mean_close_when_far_from_zero() {
        let d = Dist::normal_ms(2.41, 0.97); // Table II binding query row.
        let m = sample_mean(&d, 50_000);
        assert!((m - 0.00241).abs() < 0.0001, "mean {m}");
    }

    #[test]
    fn exponential_mean_close() {
        let d = Dist::Exponential(Duration::from_millis(10));
        let m = sample_mean(&d, 50_000);
        assert!((m - 0.010).abs() < 0.0005, "mean {m}");
    }

    #[test]
    fn mean_accessor_matches_construction() {
        assert_eq!(Dist::constant_ms(4.0).mean(), Duration::from_millis(4));
        assert_eq!(
            Dist::Uniform(Duration::from_millis(2), Duration::from_millis(4)).mean(),
            Duration::from_millis(3)
        );
        assert_eq!(Dist::normal_ms(2.0, 1.0).mean(), Duration::from_millis(2));
    }
}
