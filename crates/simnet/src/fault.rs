//! Deterministic fault injection for simulated channels.
//!
//! A [`FaultPlan`] describes *what* can go wrong on a channel — message
//! drops, duplicates, extra delay, reordering, detectable corruption, and
//! hard outage windows (a disconnect/reconnect of the channel) — and a
//! [`FaultProcess`] turns the plan into concrete per-message decisions
//! using a dedicated [`SimRng`] stream. Everything is driven off the
//! deterministic virtual clock, so a failing scenario reproduces exactly
//! from `(seed, plan)` alone; the plan's [`Display`](fmt::Display) form is
//! a compact spec string that [`FaultPlan::parse`] reads back, which is
//! what makes one-line repro commands possible:
//!
//! ```text
//! DFI_FAULT_SPEC='seed=7,drop=0.1,outage=10000us..50000us' cargo test …
//! ```
//!
//! # Corruption is always detectable
//!
//! The corruption fault models bit-rot *under* a checksummed transport
//! (OpenFlow runs over TCP, usually TLS): a corrupted control message is
//! one the receiver can always *tell* is damaged. [`FaultProcess::corrupt`]
//! therefore garbles random body bytes **and** deterministically breaks the
//! OpenFlow header (version, type, or length) so any spec-conforming
//! decoder rejects the frame with a typed error. An *undetectable* flip
//! that turns one valid control message into a different valid one would
//! model a transport-integrity break, which is outside DFI's threat model —
//! with it, no fail-closed guarantee is possible at all.

use std::fmt;
use std::time::Duration;

use crate::rng::SimRng;
use crate::time::SimTime;

/// What can go wrong on one simulated channel.
///
/// Probabilities are per message, in `[0, 1]`. Faults only apply inside
/// the optional activity [`window`](FaultPlan::window) (always, when
/// `None`) and outside that, plus after the last outage, the channel is
/// perfect again — scenarios "heal" and the differential oracle can check
/// convergence after [`FaultPlan::quiescent_after`].
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the channel's private decision stream.
    pub seed: u64,
    /// Probability a message is silently dropped.
    pub drop: f64,
    /// Probability a message is delivered twice.
    pub duplicate: f64,
    /// Probability a message is detectably corrupted (see module docs).
    pub corrupt: f64,
    /// Probability a message gets extra delay drawn from
    /// [`delay_min`](FaultPlan::delay_min)‥[`delay_max`](FaultPlan::delay_max).
    pub delay: f64,
    /// Lower bound of the extra-delay draw.
    pub delay_min: Duration,
    /// Upper bound of the extra-delay draw (exclusive; must be > `delay_min`
    /// when `delay > 0`).
    pub delay_max: Duration,
    /// Probability a message is held back by
    /// [`reorder_hold`](FaultPlan::reorder_hold), letting later messages
    /// overtake it.
    pub reorder: f64,
    /// How long a reordered message is held.
    pub reorder_hold: Duration,
    /// Hard outage windows `[start, end)`: every message sent inside one is
    /// lost, modeling a channel disconnect followed by a reconnect at `end`.
    pub outages: Vec<(SimTime, SimTime)>,
    /// Optional activity window `[start, end)` outside which the
    /// probabilistic faults are inert (outages apply regardless — they are
    /// scheduled absolutely).
    pub window: Option<(SimTime, SimTime)>,
}

impl FaultPlan {
    /// The fault-free plan: every message passes untouched.
    #[must_use]
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            drop: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            delay: 0.0,
            delay_min: Duration::ZERO,
            delay_max: Duration::ZERO,
            reorder: 0.0,
            reorder_hold: Duration::ZERO,
            outages: Vec::new(),
            window: None,
        }
    }

    /// A plan that only drops messages, with probability `p`.
    #[must_use]
    pub fn lossy(seed: u64, p: f64) -> FaultPlan {
        FaultPlan {
            seed,
            drop: p,
            ..FaultPlan::none()
        }
    }

    /// An aggressive kitchen-sink plan: drops, duplicates, corruption,
    /// delay, and reordering all at once. Useful as the adversarial end of
    /// a sweep.
    #[must_use]
    pub fn chaos(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop: 0.10,
            duplicate: 0.05,
            corrupt: 0.05,
            delay: 0.20,
            delay_min: Duration::from_micros(100),
            delay_max: Duration::from_millis(5),
            reorder: 0.10,
            reorder_hold: Duration::from_millis(2),
            ..FaultPlan::none()
        }
    }

    /// Returns the plan with probabilistic faults confined to
    /// `[start, end)`.
    #[must_use]
    pub fn with_window(mut self, start: SimTime, end: SimTime) -> FaultPlan {
        self.window = Some((start, end));
        self
    }

    /// Returns the plan with an added hard outage over `[start, end)`.
    #[must_use]
    pub fn with_outage(mut self, start: SimTime, end: SimTime) -> FaultPlan {
        self.outages.push((start, end));
        self
    }

    /// `true` when any fault can still fire at or after `now` — i.e. the
    /// plan has not fully healed yet.
    #[must_use]
    pub fn active_at(&self, now: SimTime) -> bool {
        let probabilistic = self.drop > 0.0
            || self.duplicate > 0.0
            || self.corrupt > 0.0
            || self.delay > 0.0
            || self.reorder > 0.0;
        let in_window = match self.window {
            None => probabilistic,
            Some((start, end)) => probabilistic && now >= start && now < end,
        };
        in_window || self.outages.iter().any(|&(_, end)| now < end)
    }

    /// The first instant after which the channel is guaranteed perfect: the
    /// end of the activity window and of every outage. Returns
    /// [`SimTime::MAX`] for an unwindowed plan with probabilistic faults
    /// (it never heals).
    pub fn quiescent_after(&self) -> SimTime {
        let probabilistic = self.drop > 0.0
            || self.duplicate > 0.0
            || self.corrupt > 0.0
            || self.delay > 0.0
            || self.reorder > 0.0;
        let window_end = match (probabilistic, self.window) {
            (false, _) => SimTime::ZERO,
            (true, Some((_, end))) => end,
            (true, None) => SimTime::MAX,
        };
        self.outages
            .iter()
            .map(|&(_, end)| end)
            .fold(window_end, SimTime::max)
    }

    /// Parses a spec string as produced by the [`Display`](fmt::Display)
    /// impl, e.g.
    /// `seed=7,drop=0.1,delay=0.2:100us..2000us,outage=10000us..50000us`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        fn dur(s: &str) -> Result<Duration, String> {
            let n = s
                .strip_suffix("us")
                .ok_or_else(|| format!("duration {s:?} must end in 'us'"))?;
            n.parse::<u64>()
                .map(Duration::from_micros)
                .map_err(|e| format!("bad duration {s:?}: {e}"))
        }
        fn time(s: &str) -> Result<SimTime, String> {
            dur(s).map(|d| SimTime::ZERO + d)
        }
        fn span(s: &str) -> Result<(SimTime, SimTime), String> {
            let (a, b) = s
                .split_once("..")
                .ok_or_else(|| format!("span {s:?} must be start..end"))?;
            Ok((time(a)?, time(b)?))
        }
        fn prob(s: &str) -> Result<f64, String> {
            s.parse::<f64>()
                .map_err(|e| format!("bad probability {s:?}: {e}"))
        }
        let mut plan = FaultPlan::none();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("token {part:?} is not key=value"))?;
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|e| format!("bad seed {value:?}: {e}"))?;
                }
                "drop" => plan.drop = prob(value)?,
                "dup" => plan.duplicate = prob(value)?,
                "corrupt" => plan.corrupt = prob(value)?,
                "delay" => {
                    let (p, range) = value
                        .split_once(':')
                        .ok_or_else(|| format!("delay {value:?} must be p:min..max"))?;
                    let (lo, hi) = range
                        .split_once("..")
                        .ok_or_else(|| format!("delay range {range:?} must be min..max"))?;
                    plan.delay = prob(p)?;
                    plan.delay_min = dur(lo)?;
                    plan.delay_max = dur(hi)?;
                }
                "reorder" => {
                    let (p, hold) = value
                        .split_once(':')
                        .ok_or_else(|| format!("reorder {value:?} must be p:hold"))?;
                    plan.reorder = prob(p)?;
                    plan.reorder_hold = dur(hold)?;
                }
                "outage" => {
                    let (start, end) = span(value)?;
                    plan.outages.push((start, end));
                }
                "window" => plan.window = Some(span(value)?),
                other => return Err(format!("unknown fault key {other:?}")),
            }
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn us(d: Duration) -> u128 {
            d.as_micros()
        }
        write!(f, "seed={}", self.seed)?;
        if self.drop > 0.0 {
            write!(f, ",drop={}", self.drop)?;
        }
        if self.duplicate > 0.0 {
            write!(f, ",dup={}", self.duplicate)?;
        }
        if self.corrupt > 0.0 {
            write!(f, ",corrupt={}", self.corrupt)?;
        }
        if self.delay > 0.0 {
            write!(
                f,
                ",delay={}:{}us..{}us",
                self.delay,
                us(self.delay_min),
                us(self.delay_max)
            )?;
        }
        if self.reorder > 0.0 {
            write!(f, ",reorder={}:{}us", self.reorder, us(self.reorder_hold))?;
        }
        for (start, end) in &self.outages {
            write!(f, ",outage={}us..{}us", start.as_micros(), end.as_micros())?;
        }
        if let Some((start, end)) = self.window {
            write!(f, ",window={}us..{}us", start.as_micros(), end.as_micros())?;
        }
        Ok(())
    }
}

/// How one copy of a message should be delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// Extra delay on top of the channel's nominal latency.
    pub delay: Duration,
    /// Whether the bytes must be passed through [`FaultProcess::corrupt`]
    /// before delivery.
    pub corrupt: bool,
}

/// Counters for what the injector actually did, for assertions and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages delivered exactly once, untouched and undelayed.
    pub passed: u64,
    /// Messages silently dropped.
    pub dropped: u64,
    /// Extra copies delivered.
    pub duplicated: u64,
    /// Messages delivered with garbled bytes.
    pub corrupted: u64,
    /// Messages given extra delay.
    pub delayed: u64,
    /// Messages held back so later ones could overtake.
    pub reordered: u64,
    /// Messages lost to an outage window.
    pub outaged: u64,
}

impl FaultStats {
    /// Total faults of any kind (everything except clean passes).
    #[must_use]
    pub fn total_faults(&self) -> u64 {
        self.dropped
            + self.duplicated
            + self.corrupted
            + self.delayed
            + self.reordered
            + self.outaged
    }
}

/// The stateful decision process for one channel: a [`FaultPlan`] plus its
/// private RNG stream and counters.
#[derive(Clone, Debug)]
pub struct FaultProcess {
    plan: FaultPlan,
    rng: SimRng,
    stats: FaultStats,
}

impl FaultProcess {
    /// Creates the process; the RNG is seeded from the plan alone.
    #[must_use]
    pub fn new(plan: FaultPlan) -> FaultProcess {
        let rng = SimRng::new(plan.seed);
        FaultProcess {
            plan,
            rng,
            stats: FaultStats::default(),
        }
    }

    /// The plan this process executes.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// What the injector has done so far.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Decides the fate of one message sent at `now`: zero deliveries
    /// (dropped or in an outage), one, or two (duplicated), each with its
    /// own extra delay and corruption flag.
    pub fn decide(&mut self, now: SimTime) -> Vec<Delivery> {
        if self.plan.outages.iter().any(|&(s, e)| now >= s && now < e) {
            self.stats.outaged += 1;
            return Vec::new();
        }
        let active = match self.plan.window {
            None => true,
            Some((start, end)) => now >= start && now < end,
        };
        if !active {
            self.stats.passed += 1;
            return vec![Delivery {
                delay: Duration::ZERO,
                corrupt: false,
            }];
        }
        if self.rng.chance(self.plan.drop) {
            self.stats.dropped += 1;
            return Vec::new();
        }
        let mut delay = Duration::ZERO;
        if self.plan.delay > 0.0 && self.rng.chance(self.plan.delay) {
            // A degenerate range (min == max) is a fixed, deterministic
            // extra delay — useful for reproducible race construction.
            delay += if self.plan.delay_min == self.plan.delay_max {
                self.plan.delay_min
            } else {
                self.rng
                    .duration_range(self.plan.delay_min, self.plan.delay_max)
            };
            self.stats.delayed += 1;
        }
        if self.plan.reorder > 0.0 && self.rng.chance(self.plan.reorder) {
            delay += self.plan.reorder_hold;
            self.stats.reordered += 1;
        }
        let corrupt = self.plan.corrupt > 0.0 && self.rng.chance(self.plan.corrupt);
        if corrupt {
            self.stats.corrupted += 1;
        }
        let mut out = vec![Delivery { delay, corrupt }];
        if self.plan.duplicate > 0.0 && self.rng.chance(self.plan.duplicate) {
            self.stats.duplicated += 1;
            out.push(Delivery {
                delay: delay
                    + self
                        .rng
                        .duration_range(Duration::from_micros(1), Duration::from_micros(50)),
                corrupt,
            });
        }
        if out.len() == 1 && delay.is_zero() && !corrupt {
            self.stats.passed += 1;
        }
        out
    }

    /// Detectably garbles a control frame (see the module docs for why
    /// corruption is always detectable): breaks the 8-byte OpenFlow header
    /// — version, type, or length — and additionally flips a few random
    /// body bytes.
    pub fn corrupt(&mut self, bytes: &mut [u8]) {
        if bytes.len() < 4 {
            // Too short to be a frame at all; any content is equally broken.
            for b in bytes.iter_mut() {
                *b = self.rng.next_u32() as u8;
            }
            return;
        }
        let flips = 1 + self.rng.index(4);
        for _ in 0..flips {
            let at = self.rng.index(bytes.len());
            bytes[at] ^= (1 + self.rng.index(255)) as u8;
        }
        // Break the header *after* the random flips so no flip can restore
        // a well-formed frame.
        match self.rng.index(3) {
            0 => bytes[0] = 0xFF, // impossible version
            1 => bytes[1] = 0xEE, // unknown message type
            _ => {
                // Length below the fixed header: rejected by any framer.
                bytes[2] = 0;
                bytes[3] = self.rng.index(8) as u8;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_passes_everything_untouched() {
        let mut p = FaultProcess::new(FaultPlan::none());
        for i in 0..100 {
            let d = p.decide(SimTime::from_millis(i));
            assert_eq!(
                d,
                vec![Delivery {
                    delay: Duration::ZERO,
                    corrupt: false
                }]
            );
        }
        assert_eq!(p.stats().passed, 100);
        assert_eq!(p.stats().total_faults(), 0);
    }

    #[test]
    fn same_seed_same_decisions() {
        let plan = FaultPlan::chaos(42);
        let mut a = FaultProcess::new(plan.clone());
        let mut b = FaultProcess::new(plan);
        for i in 0..1000 {
            let now = SimTime::from_micros(i * 137);
            assert_eq!(a.decide(now), b.decide(now));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn drop_rate_is_plausible() {
        let mut p = FaultProcess::new(FaultPlan::lossy(7, 0.2));
        let n: usize = 10_000;
        let delivered: usize = (0..n)
            .map(|i| p.decide(SimTime::from_micros(i as u64)).len())
            .sum();
        let rate = 1.0 - delivered as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed drop rate {rate}");
        assert_eq!(p.stats().dropped as usize, n - delivered);
    }

    #[test]
    fn outage_swallows_messages_inside_the_window() {
        let plan =
            FaultPlan::none().with_outage(SimTime::from_millis(10), SimTime::from_millis(20));
        let mut p = FaultProcess::new(plan.clone());
        assert_eq!(p.decide(SimTime::from_millis(5)).len(), 1);
        assert_eq!(p.decide(SimTime::from_millis(10)).len(), 0);
        assert_eq!(p.decide(SimTime::from_millis(19)).len(), 0);
        assert_eq!(p.decide(SimTime::from_millis(20)).len(), 1);
        assert_eq!(p.stats().outaged, 2);
        assert!(plan.active_at(SimTime::from_millis(19)));
        assert!(!plan.active_at(SimTime::from_millis(20)));
        assert_eq!(plan.quiescent_after(), SimTime::from_millis(20));
    }

    #[test]
    fn window_confines_probabilistic_faults() {
        let plan = FaultPlan::lossy(3, 1.0)
            .with_window(SimTime::from_millis(10), SimTime::from_millis(20));
        let mut p = FaultProcess::new(plan.clone());
        assert_eq!(p.decide(SimTime::from_millis(0)).len(), 1, "before window");
        assert_eq!(p.decide(SimTime::from_millis(15)).len(), 0, "inside window");
        assert_eq!(p.decide(SimTime::from_millis(25)).len(), 1, "after window");
        assert_eq!(plan.quiescent_after(), SimTime::from_millis(20));
    }

    #[test]
    fn unwindowed_probabilistic_plan_never_heals() {
        assert_eq!(FaultPlan::lossy(1, 0.1).quiescent_after(), SimTime::MAX);
        assert_eq!(FaultPlan::none().quiescent_after(), SimTime::ZERO);
    }

    #[test]
    fn duplicates_share_the_corruption_decision() {
        let plan = FaultPlan {
            seed: 11,
            duplicate: 1.0,
            corrupt: 1.0,
            ..FaultPlan::none()
        };
        let mut p = FaultProcess::new(plan);
        let d = p.decide(SimTime::ZERO);
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|d| d.corrupt));
        assert!(d[1].delay > d[0].delay, "copy arrives after the original");
    }

    #[test]
    fn corrupt_always_breaks_the_header() {
        let mut p = FaultProcess::new(FaultPlan::chaos(9));
        for _ in 0..500 {
            let mut frame = vec![0x04, 0x00, 0x00, 0x10, 0, 0, 0, 1, 1, 2, 3, 4, 5, 6, 7, 8];
            p.corrupt(&mut frame);
            let version_broken = frame[0] != 0x04;
            let type_broken = frame[1] == 0xEE;
            let length = u16::from_be_bytes([frame[2], frame[3]]);
            let length_broken = length < 8 || usize::from(length) > frame.len();
            assert!(
                version_broken || type_broken || length_broken,
                "corruption left a potentially valid header: {frame:02x?}"
            );
        }
    }

    #[test]
    fn spec_round_trips_through_display_and_parse() {
        let plans = [
            FaultPlan::none(),
            FaultPlan::lossy(7, 0.05),
            FaultPlan::chaos(99),
            FaultPlan::chaos(3)
                .with_window(SimTime::from_millis(1), SimTime::from_millis(250))
                .with_outage(SimTime::from_millis(50), SimTime::from_millis(80))
                .with_outage(SimTime::from_millis(100), SimTime::from_millis(120)),
        ];
        for plan in plans {
            let spec = plan.to_string();
            let back = FaultPlan::parse(&spec).unwrap_or_else(|e| panic!("parse {spec:?}: {e}"));
            assert_eq!(back, plan, "spec {spec:?}");
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("drop").is_err());
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("delay=0.5").is_err());
        assert!(FaultPlan::parse("outage=10us").is_err());
        assert!(
            FaultPlan::parse("outage=10ms..20ms").is_err(),
            "only 'us' units"
        );
    }
}
