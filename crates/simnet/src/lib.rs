//! Deterministic discrete-event simulation kernel for the DFI reproduction.
//!
//! The paper evaluated Dynamic Flow Isolation on a VMware vSphere testbed with
//! ~100 virtual machines. This crate provides the substrate that stands in for
//! that testbed: a single-threaded, fully deterministic discrete-event
//! simulator with
//!
//! * a virtual clock ([`SimTime`]) with nanosecond resolution,
//! * an event queue executing boxed closures at scheduled times ([`Sim`]),
//! * a seedable, splittable pseudo-random number generator ([`SimRng`])
//!   so every experiment is reproducible bit-for-bit from its seed,
//! * latency/service-time distributions ([`Dist`]) used to calibrate
//!   component costs to the paper's Tables I and II,
//! * queueing stations ([`Station`]) — bounded-queue worker pools that model
//!   the Policy Compilation Point worker pool and the MySQL-backed binding
//!   and policy stores,
//! * deterministic channel fault injection ([`FaultPlan`] /
//!   [`FaultProcess`]): drops, duplicates, reordering, delay, detectable
//!   corruption, and outage windows, reproducible from `(seed, plan)`,
//! * generated fleet-scale fabrics and diurnal binding-churn schedules
//!   ([`topo`], [`churn`]) driving the sharded-proxy experiments, and
//! * measurement helpers ([`Summary`], [`Counter`], [`TimeSeries`]).
//!
//! # Example
//!
//! ```
//! use dfi_simnet::{Sim, SimTime};
//! use std::time::Duration;
//! use std::rc::Rc;
//! use std::cell::Cell;
//!
//! let mut sim = Sim::new(42);
//! let fired = Rc::new(Cell::new(false));
//! let f = fired.clone();
//! sim.schedule_in(Duration::from_millis(5), move |sim| {
//!     assert_eq!(sim.now(), SimTime::from_millis(5));
//!     f.set(true);
//! });
//! sim.run();
//! assert!(fired.get());
//! ```

#![warn(missing_docs)]

pub mod churn;
mod dist;
mod fault;
mod metrics;
mod rng;
mod sim;
mod station;
mod time;
pub mod topo;

pub use dist::Dist;
pub use fault::{Delivery, FaultPlan, FaultProcess, FaultStats};
pub use metrics::{Counter, Summary, TimeSeries};
pub use rng::{shard_seed, SimRng};
pub use sim::{EventId, Sim};
pub use station::{Station, StationConfig, StationStats, SubmitOutcome};
pub use time::SimTime;
