//! Measurement helpers used by the benchmark harness.

use crate::time::SimTime;

/// An online summary of scalar samples: count, mean, standard deviation,
/// extrema, and percentiles.
///
/// Samples are retained so percentiles are exact; experiment sample counts
/// in this repository stay comfortably in memory.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    samples: Vec<f64>,
}

impl Summary {
    /// An empty summary.
    #[must_use]
    pub fn new() -> Self {
        Summary::default()
    }

    /// Records one sample.
    pub fn push(&mut self, sample: f64) {
        self.samples.push(sample);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean; `0.0` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Population standard deviation; `0.0` when empty.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self.samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / self.samples.len() as f64;
        var.sqrt()
    }

    /// Smallest sample; `0.0` when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest sample; `0.0` when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) by nearest-rank; `0.0` when empty.
    #[must_use]
    pub fn percentile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN samples"));
        let q = q.clamp(0.0, 1.0);
        let rank = (q * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// Median (50th percentile).
    #[must_use]
    pub fn median(&self) -> f64 {
        self.percentile(0.5)
    }

    /// Raw samples, in insertion order.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Merges another summary's samples into this one.
    pub fn merge(&mut self, other: &Summary) {
        self.samples.extend_from_slice(&other.samples);
    }
}

/// A monotonically increasing event counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A `(virtual time, value)` series, e.g. "hosts infected over time".
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    #[must_use]
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a point. Points should be pushed in non-decreasing time
    /// order (the natural order during a simulation run).
    pub fn push(&mut self, at: SimTime, value: f64) {
        self.points.push((at, value));
    }

    /// All points in insertion order.
    #[must_use]
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// The last value at or before `at`, or `None` if the series starts
    /// later.
    #[must_use]
    pub fn value_at(&self, at: SimTime) -> Option<f64> {
        self.points
            .iter()
            .take_while(|(t, _)| *t <= at)
            .last()
            .map(|(_, v)| *v)
    }

    /// The final value, or `None` when empty.
    #[must_use]
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|(_, v)| *v)
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no points have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mean_and_std() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_zeroed() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.percentile(0.5), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn summary_extrema_and_percentiles() {
        let mut s = Summary::new();
        for x in 1..=100 {
            s.push(x as f64);
        }
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 100.0);
        assert_eq!(s.median(), 50.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(1.0), 100.0);
        assert_eq!(s.percentile(0.99), 99.0);
    }

    #[test]
    fn summary_merge_combines_samples() {
        let mut a = Summary::new();
        a.push(1.0);
        let mut b = Summary::new();
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn time_series_value_at() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(1), 1.0);
        ts.push(SimTime::from_secs(5), 2.0);
        assert_eq!(ts.value_at(SimTime::ZERO), None);
        assert_eq!(ts.value_at(SimTime::from_secs(1)), Some(1.0));
        assert_eq!(ts.value_at(SimTime::from_secs(4)), Some(1.0));
        assert_eq!(ts.value_at(SimTime::from_secs(6)), Some(2.0));
        assert_eq!(ts.last(), Some(2.0));
        assert_eq!(ts.len(), 2);
        assert!(!ts.is_empty());
    }
}
