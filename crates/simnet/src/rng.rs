//! Deterministic pseudo-random number generation.
//!
//! Experiments must be reproducible bit-for-bit from a seed, independent of
//! the version of any external crate, so the simulator carries its own small
//! generator: xoshiro256** seeded through splitmix64 (the initialization
//! recommended by the xoshiro authors).

use std::time::Duration;

/// A small, fast, deterministic PRNG (xoshiro256**).
///
/// Not cryptographically secure; used only to drive simulation randomness
/// (service times, shuffles, randomized packet headers).
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed for a per-shard worker clock from the fleet seed.
///
/// Each parallel shard worker runs its own deterministic [`crate::Sim`];
/// this is the one place the fleet seed fans out into per-worker seeds, so
/// a trace is reproducible from `(fleet_seed, shard_count)` alone. The
/// shard index is diffused through splitmix64 rather than xor'd in
/// directly, so adjacent shards do not get correlated xoshiro states.
#[must_use]
pub fn shard_seed(seed: u64, shard: usize) -> u64 {
    let mut sm = seed ^ (shard as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    splitmix64(&mut sm)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent child generator.
    ///
    /// Used to give each simulated component its own stream so that adding
    /// randomness in one component does not perturb the draws of another.
    #[must_use]
    pub fn split(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next raw 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Lemire-style rejection-free enough for simulation purposes:
        // multiply-shift with negligible bias for spans << 2^64.
        let x = self.next_u64();
        lo + (((x as u128 * span as u128) >> 64) as u64)
    }

    /// Uniform `usize` in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.range_u64(0, n as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal draw (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Exponential draw with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// A random [`Duration`] uniform in `[lo, hi)`.
    pub fn duration_range(&mut self, lo: Duration, hi: Duration) -> Duration {
        Duration::from_nanos(self.range_u64(lo.as_nanos() as u64, hi.as_nanos() as u64))
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Uniformly chosen element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.index(slice.len())])
        }
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shard_seeds_are_deterministic_and_distinct() {
        for shard in 0..64 {
            assert_eq!(shard_seed(42, shard), shard_seed(42, shard));
        }
        let mut seen: Vec<u64> = (0..64).map(|s| shard_seed(42, s)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 64, "no two shards share a worker seed");
        assert_ne!(shard_seed(1, 0), shard_seed(2, 0), "fleet seed matters");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent_of_parent_consumption() {
        let mut parent1 = SimRng::new(99);
        let child_a = parent1.split();
        let mut parent2 = SimRng::new(99);
        let child_b = parent2.split();
        let mut a = child_a.clone();
        let mut b = child_b.clone();
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_u64_respects_bounds() {
        let mut r = SimRng::new(4);
        for _ in 0..10_000 {
            let x = r.range_u64(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn range_u64_covers_small_span() {
        let mut r = SimRng::new(5);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.range_u64(0, 4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::new(0).range_u64(5, 5);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = SimRng::new(6);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut r = SimRng::new(8);
        let n = 50_000;
        let mean = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(9);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut r = SimRng::new(10);
        let empty: [u8; 0] = [];
        assert_eq!(r.choose(&empty), None);
        assert_eq!(r.choose(&[42]), Some(&42));
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut r = SimRng::new(11);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(12);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
