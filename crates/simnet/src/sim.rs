//! The event loop: a virtual clock plus an ordered queue of pending events.

use crate::rng::SimRng;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::time::Duration;

/// Handle to a scheduled event, usable to cancel it before it fires.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

type EventFn = Box<dyn FnOnce(&mut Sim)>;

struct Scheduled {
    at: SimTime,
    seq: u64,
    f: EventFn,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        // Ties break by insertion order (seq), keeping execution
        // deterministic and FIFO among same-time events.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic, single-threaded discrete-event simulator.
///
/// Events are boxed closures run at their scheduled virtual time. Components
/// live in `Rc<RefCell<...>>` cells captured by the closures they schedule;
/// the simulator itself stores no component state.
pub struct Sim {
    now: SimTime,
    queue: BinaryHeap<Scheduled>,
    next_seq: u64,
    cancelled: HashSet<u64>,
    rng: SimRng,
    executed: u64,
    event_limit: u64,
}

impl Sim {
    /// Creates a simulator whose random stream derives from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            cancelled: HashSet::new(),
            rng: SimRng::new(seed),
            executed: 0,
            event_limit: u64::MAX,
        }
    }

    /// Caps the total number of events executed; [`Sim::run`] stops once the
    /// cap is reached. A backstop against accidental event storms in tests.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The simulator's random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Derives an independent random stream (for per-component seeding).
    pub fn split_rng(&mut self) -> SimRng {
        self.rng.split()
    }

    /// Number of events executed so far.
    #[must_use]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending (including cancelled ones not yet
    /// reaped).
    #[must_use]
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `f` to run at absolute virtual time `at`.
    ///
    /// An event scheduled in the past runs "now" (at the current time) but
    /// after already-queued events for the current instant.
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F) -> EventId
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            f: Box::new(f),
        });
        EventId(seq)
    }

    /// Schedules `f` to run `delay` after the current virtual time.
    pub fn schedule_in<F>(&mut self, delay: Duration, f: F) -> EventId
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        self.schedule_at(self.now + delay, f)
    }

    /// Schedules `f` to run at the current instant, after events already
    /// queued for this instant.
    pub fn schedule_now<F>(&mut self, f: F) -> EventId
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        self.schedule_at(self.now, f)
    }

    /// Cancels a pending event. Cancelling an event that already ran (or was
    /// already cancelled) is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
    }

    /// Runs a single pending event, advancing the clock to its time.
    /// Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        while let Some(ev) = self.queue.pop() {
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            debug_assert!(ev.at >= self.now, "time went backwards");
            self.now = ev.at;
            self.executed += 1;
            (ev.f)(self);
            return true;
        }
        false
    }

    /// Runs until the event queue drains or the event limit is hit.
    pub fn run(&mut self) {
        while self.executed < self.event_limit && self.step() {}
    }

    /// Runs events with scheduled time `<= until`, then sets the clock to
    /// `until` (if it is later than the last executed event).
    pub fn run_until(&mut self, until: SimTime) {
        loop {
            if self.executed >= self.event_limit {
                break;
            }
            match self.peek_time() {
                Some(t) if t <= until => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < until {
            self.now = until;
        }
    }

    /// The virtual time of the next live pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(ev) = self.queue.peek() {
            if self.cancelled.contains(&ev.seq) {
                let ev = self.queue.pop().expect("peeked");
                self.cancelled.remove(&ev.seq);
                continue;
            }
            return Some(ev.at);
        }
        None
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Sim::new(0);
        let order = Rc::new(RefCell::new(Vec::new()));
        for &(ms, label) in &[(30u64, 'c'), (10, 'a'), (20, 'b')] {
            let order = order.clone();
            sim.schedule_at(SimTime::from_millis(ms), move |_| {
                order.borrow_mut().push(label);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!['a', 'b', 'c']);
        assert_eq!(sim.now(), SimTime::from_millis(30));
    }

    #[test]
    fn same_time_events_run_fifo() {
        let mut sim = Sim::new(0);
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..10 {
            let order = order.clone();
            sim.schedule_at(SimTime::from_millis(5), move |_| order.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*order.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new(0);
        let hits = Rc::new(RefCell::new(0u32));
        let h = hits.clone();
        sim.schedule_in(Duration::from_millis(1), move |sim| {
            *h.borrow_mut() += 1;
            let h2 = h.clone();
            sim.schedule_in(Duration::from_millis(1), move |_| {
                *h2.borrow_mut() += 1;
            });
        });
        sim.run();
        assert_eq!(*hits.borrow(), 2);
        assert_eq!(sim.now(), SimTime::from_millis(2));
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim = Sim::new(0);
        let fired = Rc::new(RefCell::new(false));
        let f = fired.clone();
        let id = sim.schedule_in(Duration::from_millis(5), move |_| *f.borrow_mut() = true);
        sim.cancel(id);
        sim.run();
        assert!(!*fired.borrow());
        assert_eq!(sim.events_executed(), 0);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut sim = Sim::new(0);
        let id = sim.schedule_now(|_| {});
        sim.run();
        sim.cancel(id); // must not panic or corrupt state
        sim.schedule_now(|_| {});
        sim.run();
        assert_eq!(sim.events_executed(), 2);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut sim = Sim::new(0);
        sim.schedule_at(SimTime::from_millis(10), |sim| {
            sim.schedule_at(SimTime::from_millis(1), |sim| {
                assert_eq!(sim.now(), SimTime::from_millis(10));
            });
        });
        sim.run();
        assert_eq!(sim.events_executed(), 2);
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim = Sim::new(0);
        let count = Rc::new(RefCell::new(0u32));
        for ms in [5u64, 15, 25] {
            let count = count.clone();
            sim.schedule_at(SimTime::from_millis(ms), move |_| *count.borrow_mut() += 1);
        }
        sim.run_until(SimTime::from_millis(20));
        assert_eq!(*count.borrow(), 2);
        assert_eq!(sim.now(), SimTime::from_millis(20));
        sim.run();
        assert_eq!(*count.borrow(), 3);
    }

    #[test]
    fn run_until_with_empty_queue_advances_clock() {
        let mut sim = Sim::new(0);
        sim.run_until(SimTime::from_secs(60));
        assert_eq!(sim.now(), SimTime::from_secs(60));
    }

    #[test]
    fn event_limit_stops_runaway() {
        fn rearm(sim: &mut Sim) {
            sim.schedule_in(Duration::from_nanos(1), rearm);
        }
        let mut sim = Sim::new(0);
        sim.set_event_limit(100);
        sim.schedule_now(rearm);
        sim.run();
        assert_eq!(sim.events_executed(), 100);
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut sim = Sim::new(0);
        let id = sim.schedule_at(SimTime::from_millis(1), |_| {});
        sim.schedule_at(SimTime::from_millis(2), |_| {});
        sim.cancel(id);
        assert_eq!(sim.peek_time(), Some(SimTime::from_millis(2)));
    }

    #[test]
    fn deterministic_given_seed() {
        fn run(seed: u64) -> Vec<u64> {
            let mut sim = Sim::new(seed);
            let out = Rc::new(RefCell::new(Vec::new()));
            for _ in 0..5 {
                let out = out.clone();
                sim.schedule_in(Duration::from_millis(1), move |sim| {
                    let v = sim.rng().next_u64();
                    out.borrow_mut().push(v);
                });
            }
            sim.run();
            let v = out.borrow().clone();
            v
        }
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
