//! Queueing stations: bounded-queue worker pools with stochastic service
//! times.
//!
//! Stations model the serving resources of the DFI control plane: the Policy
//! Compilation Point's worker pool and the MySQL-backed Entity Resolution
//! Manager and Policy Manager stores. The paper's Figure 4 behaviour — time
//! to first byte rising with offered load, a saturation onset, and a plateau
//! caused by a bounded queue dropping new flows — is an emergent property of
//! exactly this structure.

use crate::dist::Dist;
use crate::metrics::Summary;
use crate::sim::Sim;
use crate::time::SimTime;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::time::Duration;

/// Configuration for a [`Station`].
#[derive(Clone, Debug)]
pub struct StationConfig {
    /// Label used in stats output.
    pub name: String,
    /// Number of parallel workers (service channels).
    pub workers: usize,
    /// Maximum number of jobs waiting beyond those in service; a job
    /// arriving to a full queue is dropped.
    pub queue_capacity: usize,
    /// Base service-time distribution.
    pub service_time: Dist,
    /// Load-dependent contention coefficient.
    ///
    /// The effective service time of a job is the base draw multiplied by
    /// `1 + contention * occupancy / workers`, where occupancy counts jobs
    /// in service plus queued at the moment service begins. This models
    /// shared-resource slowdown (lock and buffer-pool contention in the
    /// paper's MySQL back end) near the saturation point.
    pub contention: f64,
    /// Arrival-rate-proportional service inflation.
    ///
    /// The effective service time is additionally multiplied by
    /// `1 + load_inflation * rate / 1000`, where `rate` is the station's
    /// recent arrival rate in jobs/second (measured over
    /// [`StationConfig::rate_window`]). This models throughput-dependent
    /// slowdown of a shared back end (the paper's Figure 4 shows DFI's
    /// time-to-first-byte rising roughly linearly with offered load well
    /// before queueing saturation, which pure queueing cannot produce).
    pub load_inflation: f64,
    /// Rate (jobs/sec) below which no inflation applies — light serial
    /// probing must not read as load.
    pub load_floor: f64,
    /// Window over which the arrival rate is estimated.
    pub rate_window: Duration,
}

impl StationConfig {
    /// A single-worker station with a large queue and no contention.
    pub fn simple(name: impl Into<String>, service_time: Dist) -> Self {
        StationConfig {
            name: name.into(),
            workers: 1,
            queue_capacity: usize::MAX,
            service_time,
            contention: 0.0,
            load_inflation: 0.0,
            load_floor: 0.0,
            rate_window: Duration::from_millis(500),
        }
    }

    /// Sets the worker count (builder style).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the queue capacity (builder style).
    #[must_use]
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap;
        self
    }

    /// Sets the contention coefficient (builder style).
    #[must_use]
    pub fn contention(mut self, c: f64) -> Self {
        self.contention = c;
        self
    }

    /// Sets the load-inflation coefficient (builder style).
    #[must_use]
    pub fn load_inflation(mut self, c: f64) -> Self {
        self.load_inflation = c;
        self
    }
}

/// Outcome of submitting a job to a station.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The job entered service immediately.
    Serving,
    /// The job was queued behind others.
    Queued,
    /// The queue was full; the job was discarded (its completion callback
    /// will never run).
    Dropped,
}

/// Aggregate statistics observed by a station.
#[derive(Clone, Debug, Default)]
pub struct StationStats {
    /// Jobs submitted (including drops).
    pub submitted: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs dropped at a full queue.
    pub dropped: u64,
    /// Time spent waiting in queue (seconds), per completed job.
    pub wait: Summary,
    /// Time spent in service (seconds), per completed job.
    pub service: Summary,
    /// Total sojourn (wait + service, seconds), per completed job.
    pub sojourn: Summary,
}

struct Pending {
    enqueued: SimTime,
    on_complete: Box<dyn FnOnce(&mut Sim)>,
}

struct Inner {
    config: StationConfig,
    busy: usize,
    queue: VecDeque<Pending>,
    stats: StationStats,
    arrivals: VecDeque<SimTime>,
}

/// A shared handle to a bounded-queue worker-pool queueing station.
///
/// Cloning the handle shares the underlying station (single-threaded `Rc`
/// sharing, matching the simulator's execution model).
#[derive(Clone)]
pub struct Station {
    inner: Rc<RefCell<Inner>>,
}

impl Station {
    /// Creates a station.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    #[must_use]
    pub fn new(config: StationConfig) -> Self {
        assert!(config.workers > 0, "station needs at least one worker");
        Station {
            inner: Rc::new(RefCell::new(Inner {
                config,
                busy: 0,
                queue: VecDeque::new(),
                stats: StationStats::default(),
                arrivals: VecDeque::new(),
            })),
        }
    }

    /// Submits a job. When the job completes service, `on_complete` runs at
    /// the completion time. Dropped jobs never complete.
    pub fn submit<F>(&self, sim: &mut Sim, on_complete: F) -> SubmitOutcome
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        let now = sim.now();
        let start_immediately = {
            let mut inner = self.inner.borrow_mut();
            inner.stats.submitted += 1;
            if inner.busy < inner.config.workers || inner.queue.len() < inner.config.queue_capacity
            {
                // Only admitted jobs contribute to the observed rate —
                // shed load must not inflate the back end it never reaches.
                if inner.config.load_inflation > 0.0 {
                    let horizon = now
                        .saturating_duration_since(SimTime::ZERO)
                        .checked_sub(inner.config.rate_window)
                        .map_or(SimTime::ZERO, |d| SimTime::ZERO + d);
                    while inner.arrivals.front().is_some_and(|&t| t < horizon) {
                        inner.arrivals.pop_front();
                    }
                    inner.arrivals.push_back(now);
                }
            }
            if inner.busy < inner.config.workers {
                inner.busy += 1;
                true
            } else if inner.queue.len() < inner.config.queue_capacity {
                inner.queue.push_back(Pending {
                    enqueued: now,
                    on_complete: Box::new(on_complete),
                });
                return SubmitOutcome::Queued;
            } else {
                inner.stats.dropped += 1;
                return SubmitOutcome::Dropped;
            }
        };
        debug_assert!(start_immediately);
        self.begin_service(sim, now, Box::new(on_complete));
        SubmitOutcome::Serving
    }

    fn begin_service(&self, sim: &mut Sim, enqueued: SimTime, job: Box<dyn FnOnce(&mut Sim)>) {
        let now = sim.now();
        let service = {
            let inner = self.inner.borrow();
            let base = inner.config.service_time.sample(sim.rng());
            let occupancy = (inner.busy + inner.queue.len()) as f64;
            let mut factor =
                1.0 + inner.config.contention * occupancy / inner.config.workers as f64;
            if inner.config.load_inflation > 0.0 {
                // Rate over the full window (time before the epoch counts
                // as idle), so a lone early job does not read as a burst.
                let window = inner.config.rate_window.as_secs_f64();
                let rate = inner.arrivals.len() as f64 / window;
                let excess = (rate - inner.config.load_floor).max(0.0);
                factor *= 1.0 + inner.config.load_inflation * excess / 1000.0;
            }
            Duration::from_secs_f64(base.as_secs_f64() * factor)
        };
        let wait = now - enqueued;
        let station = self.clone();
        sim.schedule_in(service, move |sim| {
            {
                let mut inner = station.inner.borrow_mut();
                inner.stats.completed += 1;
                inner.stats.wait.push(wait.as_secs_f64());
                inner.stats.service.push(service.as_secs_f64());
                inner.stats.sojourn.push((wait + service).as_secs_f64());
            }
            job(sim);
            // Pull the next queued job, if any, into the freed worker.
            let next = {
                let mut inner = station.inner.borrow_mut();
                match inner.queue.pop_front() {
                    Some(p) => Some(p),
                    None => {
                        inner.busy -= 1;
                        None
                    }
                }
            };
            if let Some(p) = next {
                station.begin_service(sim, p.enqueued, p.on_complete);
            }
        });
    }

    /// Number of jobs currently in service.
    #[must_use]
    pub fn busy(&self) -> usize {
        self.inner.borrow().busy
    }

    /// Number of jobs currently queued.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// Snapshot of accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> StationStats {
        self.inner.borrow().stats.clone()
    }

    /// The station's configured name.
    #[must_use]
    pub fn name(&self) -> String {
        self.inner.borrow().config.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn station(workers: usize, cap: usize, ms: f64) -> Station {
        Station::new(StationConfig {
            name: "t".into(),
            workers,
            queue_capacity: cap,
            service_time: Dist::constant_ms(ms),
            contention: 0.0,
            load_inflation: 0.0,
            load_floor: 0.0,
            rate_window: Duration::from_millis(500),
        })
    }

    #[test]
    fn single_job_completes_after_service_time() {
        let mut sim = Sim::new(0);
        let st = station(1, 10, 5.0);
        let done = Rc::new(Cell::new(SimTime::ZERO));
        let d = done.clone();
        assert_eq!(
            st.submit(&mut sim, move |sim| d.set(sim.now())),
            SubmitOutcome::Serving
        );
        sim.run();
        assert_eq!(done.get(), SimTime::from_millis(5));
        assert_eq!(st.stats().completed, 1);
    }

    #[test]
    fn fifo_queueing_behind_single_worker() {
        let mut sim = Sim::new(0);
        let st = station(1, 10, 10.0);
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3 {
            let order = order.clone();
            let outcome = st.submit(&mut sim, move |sim| {
                order.borrow_mut().push((i, sim.now().as_millis()));
            });
            if i == 0 {
                assert_eq!(outcome, SubmitOutcome::Serving);
            } else {
                assert_eq!(outcome, SubmitOutcome::Queued);
            }
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![(0, 10), (1, 20), (2, 30)]);
    }

    #[test]
    fn parallel_workers_serve_concurrently() {
        let mut sim = Sim::new(0);
        let st = station(4, 10, 10.0);
        let done = Rc::new(Cell::new(0u32));
        for _ in 0..4 {
            let d = done.clone();
            st.submit(&mut sim, move |_| d.set(d.get() + 1));
        }
        sim.run();
        assert_eq!(done.get(), 4);
        assert_eq!(sim.now(), SimTime::from_millis(10), "all four in parallel");
    }

    #[test]
    fn full_queue_drops() {
        let mut sim = Sim::new(0);
        let st = station(1, 2, 10.0);
        let mut outcomes = Vec::new();
        for _ in 0..5 {
            outcomes.push(st.submit(&mut sim, |_| {}));
        }
        assert_eq!(
            outcomes,
            vec![
                SubmitOutcome::Serving,
                SubmitOutcome::Queued,
                SubmitOutcome::Queued,
                SubmitOutcome::Dropped,
                SubmitOutcome::Dropped,
            ]
        );
        sim.run();
        let stats = st.stats();
        assert_eq!(stats.submitted, 5);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.dropped, 2);
    }

    #[test]
    fn wait_times_are_recorded() {
        let mut sim = Sim::new(0);
        let st = station(1, 10, 10.0);
        st.submit(&mut sim, |_| {});
        st.submit(&mut sim, |_| {});
        sim.run();
        let stats = st.stats();
        assert_eq!(stats.wait.count(), 2);
        // First waited 0 ms, second waited 10 ms.
        assert!((stats.wait.mean() - 0.005).abs() < 1e-9);
        assert!((stats.sojourn.max() - 0.020).abs() < 1e-9);
    }

    #[test]
    fn worker_freed_after_queue_drains() {
        let mut sim = Sim::new(0);
        let st = station(1, 10, 1.0);
        st.submit(&mut sim, |_| {});
        sim.run();
        assert_eq!(st.busy(), 0);
        assert_eq!(st.queue_len(), 0);
        // Station is reusable afterwards.
        st.submit(&mut sim, |_| {});
        sim.run();
        assert_eq!(st.stats().completed, 2);
    }

    #[test]
    fn contention_slows_service_under_occupancy() {
        let mut sim = Sim::new(0);
        let st = Station::new(StationConfig {
            name: "contended".into(),
            workers: 1,
            queue_capacity: 100,
            service_time: Dist::constant_ms(10.0),
            contention: 1.0,
            load_inflation: 0.0,
            load_floor: 0.0,
            rate_window: Duration::from_millis(500),
        });
        // Single job: occupancy 1/1 → factor 2 → 20 ms.
        let done = Rc::new(Cell::new(SimTime::ZERO));
        let d = done.clone();
        st.submit(&mut sim, move |sim| d.set(sim.now()));
        sim.run();
        assert_eq!(done.get(), SimTime::from_millis(20));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        station(0, 1, 1.0);
    }

    #[test]
    fn submissions_from_completion_callbacks_work() {
        let mut sim = Sim::new(0);
        let st = station(1, 10, 5.0);
        let count = Rc::new(Cell::new(0u32));
        let c = count.clone();
        let st2 = st.clone();
        st.submit(&mut sim, move |sim| {
            c.set(c.get() + 1);
            let c2 = c.clone();
            st2.submit(sim, move |_| c2.set(c2.get() + 1));
        });
        sim.run();
        assert_eq!(count.get(), 2);
        assert_eq!(sim.now(), SimTime::from_millis(10));
    }
}
