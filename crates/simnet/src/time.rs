//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant on the simulation's virtual clock.
///
/// Internally a count of nanoseconds since the simulation epoch (time zero).
/// `u64` nanoseconds cover ~584 years of virtual time, far beyond any
/// experiment in this repository.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the epoch.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after the epoch.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after the epoch.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after the epoch.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch (truncated).
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the epoch (truncated).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole seconds since the epoch (truncated).
    #[must_use]
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds since the epoch as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed duration since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    #[must_use]
    pub fn saturating_duration_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    #[must_use]
    pub fn saturating_add(self, d: Duration) -> SimTime {
        let nanos = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        SimTime(self.0.saturating_add(nanos))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    fn sub(self, rhs: SimTime) -> Duration {
        self.saturating_duration_since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({self})")
    }
}

impl fmt::Display for SimTime {
    /// Formats as `H:MM:SS.mmm` of virtual time, which is how the worm
    /// scenario reports wall-clock-of-day events.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_ms = self.as_millis();
        let ms = total_ms % 1_000;
        let s = (total_ms / 1_000) % 60;
        let m = (total_ms / 60_000) % 60;
        let h = total_ms / 3_600_000;
        write!(f, "{h}:{m:02}:{s:02}.{ms:03}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(1500).as_secs(), 1);
        assert_eq!(SimTime::from_micros(2500).as_millis(), 2);
        assert_eq!(SimTime::from_nanos(999).as_micros(), 0);
    }

    #[test]
    fn add_duration_advances_clock() {
        let t = SimTime::from_millis(10) + Duration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
    }

    #[test]
    fn add_saturates_at_max() {
        let t = SimTime::MAX + Duration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn subtraction_yields_duration_and_saturates() {
        let a = SimTime::from_millis(20);
        let b = SimTime::from_millis(5);
        assert_eq!(a - b, Duration::from_millis(15));
        assert_eq!(b - a, Duration::ZERO);
    }

    #[test]
    fn display_formats_time_of_day() {
        let t = SimTime::from_secs(9 * 3600 + 5 * 60 + 7) + Duration::from_millis(42);
        assert_eq!(t.to_string(), "9:05:07.042");
    }

    #[test]
    fn ordering_follows_nanos() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert_eq!(SimTime::ZERO, SimTime::default());
    }

    #[test]
    fn as_secs_f64_is_exact_for_round_values() {
        assert_eq!(SimTime::from_millis(2500).as_secs_f64(), 2.5);
    }
}
