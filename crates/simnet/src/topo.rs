//! Generated enterprise topologies for fleet-scale experiments.
//!
//! The paper evaluates DFI on a ~100-VM testbed; the fleet-scale harness
//! goes 10-100x further, which needs topologies too large to wire by hand.
//! This module generates the two canonical data-center fabrics as **pure
//! data** — switch specs, link specs, and host placements — with no
//! dependency on the dataplane crate. Consumers (the differential oracle
//! tests, `dfi-scalegate`) materialize the spec into real switches.
//!
//! Generation is seed-deterministic: the same `(params, seed)` pair
//! produces a bit-identical [`Topology`], so every fleet-scale failure
//! reproduces from one line. The invariants (advertised counts, full
//! host-pair connectivity, dpid uniqueness, shard-partition coverage) are
//! machine-checked in `tests/proptest_topo.rs`.

use crate::rng::SimRng;
use std::collections::{BTreeMap, VecDeque};
use std::net::Ipv4Addr;

/// Which fabric to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopoKind {
    /// A `k`-ary fat-tree: `k` pods of `k/2` edge and `k/2` aggregation
    /// switches plus `(k/2)^2` core switches; hosts attach to edge
    /// switches. `k` must be even and at least 2.
    FatTree {
        /// Fat-tree arity (pod count); even, `>= 2`.
        k: u32,
    },
    /// A two-tier leaf-spine: every leaf uplinks to every spine; hosts
    /// attach to leaves.
    LeafSpine {
        /// Spine-switch count (`>= 1`).
        spines: u32,
        /// Leaf-switch count (`>= 1`).
        leaves: u32,
    },
}

/// Generation parameters.
#[derive(Clone, Debug)]
pub struct TopoParams {
    /// The fabric shape.
    pub kind: TopoKind,
    /// Total hosts, spread over the host-bearing (edge/leaf) switches in
    /// seed-shuffled round-robin order.
    pub hosts: u32,
    /// Logged-on users generated per host (session bindings); the ERM
    /// binding count per host is `2 + users_per_host` (IP<->MAC, host<->IP,
    /// and one user<->host binding per user).
    pub users_per_host: u32,
}

/// A switch's role in the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Fat-tree core.
    Core,
    /// Fat-tree aggregation.
    Aggregation,
    /// Fat-tree edge (host-bearing).
    Edge,
    /// Leaf-spine spine.
    Spine,
    /// Leaf-spine leaf (host-bearing).
    Leaf,
}

/// One switch in the generated fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwitchSpec {
    /// Datapath id; unique within the topology, assigned densely from 1.
    pub dpid: u64,
    /// Fabric role.
    pub tier: Tier,
}

/// One bidirectional inter-switch link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkSpec {
    /// First endpoint dpid.
    pub a_dpid: u64,
    /// Port on the first endpoint.
    pub a_port: u32,
    /// Second endpoint dpid.
    pub b_dpid: u64,
    /// Port on the second endpoint.
    pub b_port: u32,
}

/// One host placement: identity bindings plus the attachment point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostSpec {
    /// Dense host index (0-based).
    pub index: u32,
    /// Short hostname (`h` + zero-padded index).
    pub hostname: String,
    /// Users logged on to this host.
    pub users: Vec<String>,
    /// The host's IP (unique within the topology).
    pub ip: Ipv4Addr,
    /// MAC index (consumers build the MAC as `MacAddr::from_index`);
    /// unique within the topology.
    pub mac_index: u32,
    /// Attachment switch dpid (always an edge/leaf switch).
    pub dpid: u64,
    /// Attachment port on that switch (host-facing ports start at 1).
    pub port: u32,
}

/// A generated fabric: pure data, materialized by the consumer.
#[derive(Clone, Debug)]
pub struct Topology {
    /// The seed the topology was generated from.
    pub seed: u64,
    /// The shape it was generated with.
    pub kind: TopoKind,
    /// All switches, dpid-ascending.
    pub switches: Vec<SwitchSpec>,
    /// All inter-switch links.
    pub links: Vec<LinkSpec>,
    /// All host placements, index-ascending.
    pub hosts: Vec<HostSpec>,
}

/// The per-dpid shard-ownership partition used by the sharded DFI proxy:
/// every dpid maps to exactly one of `n_shards` shards. Defined here — the
/// lowest crate in the graph — so the proxy, the generators, and the tests
/// all agree on ownership by construction.
///
/// # Panics
///
/// Panics if `n_shards == 0`.
#[must_use]
pub fn shard_of(dpid: u64, n_shards: usize) -> usize {
    assert!(n_shards > 0, "shard partition needs at least one shard");
    // Fibonacci multiplicative hash: spreads both dense (generated) and
    // sparse (hand-assigned) dpid spaces evenly over the shards.
    (dpid.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % n_shards
}

impl Topology {
    /// Generates a topology from `(params, seed)`. Bit-identical for equal
    /// inputs.
    ///
    /// # Panics
    ///
    /// Panics on degenerate shapes: odd or zero fat-tree `k`, zero spines
    /// or leaves, or more hosts than the 10.0.0.0/8 pool can address.
    #[must_use]
    pub fn generate(params: &TopoParams, seed: u64) -> Topology {
        let mut rng = SimRng::new(seed ^ 0x70_70_70);
        let mut topo = Topology {
            seed,
            kind: params.kind,
            switches: Vec::new(),
            links: Vec::new(),
            hosts: Vec::new(),
        };
        match params.kind {
            TopoKind::FatTree { k } => topo.build_fat_tree(k),
            TopoKind::LeafSpine { spines, leaves } => topo.build_leaf_spine(spines, leaves),
        }
        topo.place_hosts(params, &mut rng);
        topo
    }

    /// Fat-tree wiring. Port ranges are disjoint per role so a port number
    /// never collides on one switch: host ports `1..`, edge uplinks
    /// `100..`, agg down `200..`, agg up `300..`, core down `400..`.
    fn build_fat_tree(&mut self, k: u32) {
        assert!(
            k >= 2 && k.is_multiple_of(2),
            "fat-tree k must be even and >= 2"
        );
        let half = k / 2;
        let n_core = half * half;
        let mut next_dpid = 1u64;
        let mut fresh = |switches: &mut Vec<SwitchSpec>, tier| {
            let dpid = next_dpid;
            next_dpid += 1;
            switches.push(SwitchSpec { dpid, tier });
            dpid
        };
        let cores: Vec<u64> = (0..n_core)
            .map(|_| fresh(&mut self.switches, Tier::Core))
            .collect();
        for pod in 0..k {
            let aggs: Vec<u64> = (0..half)
                .map(|_| fresh(&mut self.switches, Tier::Aggregation))
                .collect();
            let edges: Vec<u64> = (0..half)
                .map(|_| fresh(&mut self.switches, Tier::Edge))
                .collect();
            for (e, &edge) in edges.iter().enumerate() {
                for (a, &agg) in aggs.iter().enumerate() {
                    self.links.push(LinkSpec {
                        a_dpid: edge,
                        a_port: 100 + a as u32,
                        b_dpid: agg,
                        b_port: 200 + e as u32,
                    });
                }
            }
            for (a, &agg) in aggs.iter().enumerate() {
                for j in 0..half {
                    let core = cores[(a as u32 * half + j) as usize];
                    self.links.push(LinkSpec {
                        a_dpid: agg,
                        a_port: 300 + j,
                        b_dpid: core,
                        b_port: 400 + pod,
                    });
                }
            }
        }
    }

    /// Leaf-spine wiring: full bipartite leaves x spines. Spine-facing
    /// leaf ports start at `10_000`; leaf-facing spine ports at `1_000`.
    fn build_leaf_spine(&mut self, spines: u32, leaves: u32) {
        assert!(spines >= 1 && leaves >= 1, "need at least one of each tier");
        let mut next_dpid = 1u64;
        let spine_ids: Vec<u64> = (0..spines)
            .map(|i| {
                self.switches.push(SwitchSpec {
                    dpid: next_dpid + u64::from(i),
                    tier: Tier::Spine,
                });
                next_dpid + u64::from(i)
            })
            .collect();
        next_dpid += u64::from(spines);
        for l in 0..leaves {
            let leaf = next_dpid + u64::from(l);
            self.switches.push(SwitchSpec {
                dpid: leaf,
                tier: Tier::Leaf,
            });
            for (s, &spine) in spine_ids.iter().enumerate() {
                self.links.push(LinkSpec {
                    a_dpid: leaf,
                    a_port: 10_000 + s as u32,
                    b_dpid: spine,
                    b_port: 1_000 + l,
                });
            }
        }
    }

    /// Spreads hosts over the host-bearing switches. The switch visit
    /// order is seed-shuffled (so placement depends on the seed), but each
    /// switch's ports fill densely from 1.
    fn place_hosts(&mut self, params: &TopoParams, rng: &mut SimRng) {
        assert!(
            params.hosts < 1 << 24,
            "host pool limited to the 10.0.0.0/8 space"
        );
        let mut bearers: Vec<u64> = self
            .switches
            .iter()
            .filter(|s| matches!(s.tier, Tier::Edge | Tier::Leaf))
            .map(|s| s.dpid)
            .collect();
        assert!(!bearers.is_empty(), "topology has no host-bearing tier");
        rng.shuffle(&mut bearers);
        let mut next_port = vec![1u32; bearers.len()];
        for i in 0..params.hosts {
            let slot = (i as usize) % bearers.len();
            let port = next_port[slot];
            next_port[slot] += 1;
            // 10.x.y.z, dense by index: unique and disjoint from the
            // churn driver's 11/8 re-lease pool.
            let ip = Ipv4Addr::new(
                10,
                (i >> 16) as u8,
                ((i >> 8) & 0xFF) as u8,
                (i & 0xFF) as u8,
            );
            let users = (0..params.users_per_host)
                .map(|_| format!("u{}", rng.range_u64(0, u64::from(params.hosts) * 4)))
                .collect();
            self.hosts.push(HostSpec {
                index: i,
                hostname: format!("h{i:06}"),
                users,
                ip,
                mac_index: i + 1,
                dpid: bearers[slot],
                port,
            });
        }
    }

    /// Total ERM bindings this topology implies: one IP<->MAC and one
    /// host<->IP binding per host, plus one user<->host binding per
    /// logged-on user.
    #[must_use]
    pub fn binding_count(&self) -> usize {
        self.hosts.iter().map(|h| 2 + h.users.len()).sum()
    }

    /// Dpids of the host-bearing (edge/leaf) switches, ascending.
    #[must_use]
    pub fn host_bearing_dpids(&self) -> Vec<u64> {
        self.switches
            .iter()
            .filter(|s| matches!(s.tier, Tier::Edge | Tier::Leaf))
            .map(|s| s.dpid)
            .collect()
    }

    /// The shard-ownership partition of this topology's dpids: element `i`
    /// holds shard `i`'s dpids, ascending. The concatenation of all
    /// elements is exactly the topology's dpid set (the partition
    /// property checked by `proptest_topo`).
    #[must_use]
    pub fn shard_partition(&self, n_shards: usize) -> Vec<Vec<u64>> {
        let mut owned = vec![Vec::new(); n_shards];
        for s in &self.switches {
            owned[shard_of(s.dpid, n_shards)].push(s.dpid);
        }
        owned
    }

    /// The inter-switch adjacency of this fabric, for graph consumers
    /// (path computation, reachability analysis).
    #[must_use]
    pub fn adjacency(&self) -> Adjacency {
        Adjacency::from_links(&self.links)
    }
}

/// The inter-switch graph of a fabric as an adjacency index: which dpids
/// neighbor which, and through which local port. Pure data like
/// [`Topology`] itself, so analyzers can reason about paths without
/// materializing switches.
#[derive(Clone, Debug, Default)]
pub struct Adjacency {
    /// dpid → (neighbor dpid → local egress port towards that neighbor),
    /// both levels ordered so iteration — and therefore path tie-breaking
    /// — is deterministic.
    edges: BTreeMap<u64, BTreeMap<u64, u32>>,
}

impl Adjacency {
    /// Builds the index from link specs. Both directions of every link are
    /// indexed; duplicate links keep the first port seen.
    #[must_use]
    pub fn from_links(links: &[LinkSpec]) -> Adjacency {
        let mut edges: BTreeMap<u64, BTreeMap<u64, u32>> = BTreeMap::new();
        for l in links {
            edges
                .entry(l.a_dpid)
                .or_default()
                .entry(l.b_dpid)
                .or_insert(l.a_port);
            edges
                .entry(l.b_dpid)
                .or_default()
                .entry(l.a_dpid)
                .or_insert(l.b_port);
        }
        Adjacency { edges }
    }

    /// The neighbors of `dpid`, ascending.
    pub fn neighbors(&self, dpid: u64) -> impl Iterator<Item = u64> + '_ {
        self.edges
            .get(&dpid)
            .into_iter()
            .flat_map(|m| m.keys().copied())
    }

    /// The local port on `from` that faces the directly linked `to`, or
    /// `None` if they are not adjacent.
    #[must_use]
    pub fn port_towards(&self, from: u64, to: u64) -> Option<u32> {
        self.edges.get(&from).and_then(|m| m.get(&to)).copied()
    }

    /// The shortest dpid path from `src` to `dst` inclusive, or `None`
    /// when unreachable. Deterministic: BFS expanding neighbors in
    /// ascending-dpid order, with the first-discovered predecessor kept —
    /// so every consumer that walks "the" path of a flow (the reachability
    /// engine, its brute-force oracle, corpus generators planting defects
    /// on a path) agrees on which equal-length path that is.
    #[must_use]
    pub fn path(&self, src: u64, dst: u64) -> Option<Vec<u64>> {
        if src == dst {
            return Some(vec![src]);
        }
        let mut prev: BTreeMap<u64, u64> = BTreeMap::new();
        let mut queue = VecDeque::from([src]);
        while let Some(d) = queue.pop_front() {
            for n in self.neighbors(d) {
                if n != src && !prev.contains_key(&n) {
                    prev.insert(n, d);
                    if n == dst {
                        let mut path = vec![dst];
                        let mut at = dst;
                        while at != src {
                            at = prev[&at];
                            path.push(at);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(n);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(kind: TopoKind, hosts: u32) -> TopoParams {
        TopoParams {
            kind,
            hosts,
            users_per_host: 1,
        }
    }

    #[test]
    fn fat_tree_counts_match_formula() {
        let k = 4;
        let t = Topology::generate(&params(TopoKind::FatTree { k }, 16), 7);
        // (k/2)^2 core + k pods * (k/2 agg + k/2 edge).
        assert_eq!(t.switches.len(), (4 + 4 * 4) as usize);
        assert_eq!(t.hosts.len(), 16);
        // Edge-agg: k * (k/2)^2; agg-core: k * (k/2)^2.
        assert_eq!(t.links.len(), 32);
    }

    #[test]
    fn leaf_spine_counts_match_formula() {
        let t = Topology::generate(
            &params(
                TopoKind::LeafSpine {
                    spines: 3,
                    leaves: 5,
                },
                40,
            ),
            7,
        );
        assert_eq!(t.switches.len(), 8);
        assert_eq!(t.links.len(), 15);
        assert_eq!(t.hosts.len(), 40);
        assert_eq!(t.binding_count(), 40 * 3);
    }

    #[test]
    fn same_seed_bit_identical() {
        let p = params(TopoKind::FatTree { k: 4 }, 12);
        let a = Topology::generate(&p, 42);
        let b = Topology::generate(&p, 42);
        assert_eq!(a.switches, b.switches);
        assert_eq!(a.links, b.links);
        assert_eq!(a.hosts, b.hosts);
        let c = Topology::generate(&p, 43);
        assert_ne!(a.hosts, c.hosts, "different seed must move something");
    }

    #[test]
    fn shard_partition_covers_every_dpid_once() {
        let t = Topology::generate(
            &params(
                TopoKind::LeafSpine {
                    spines: 2,
                    leaves: 9,
                },
                18,
            ),
            1,
        );
        for n in 1..=8 {
            let parts = t.shard_partition(n);
            let mut all: Vec<u64> = parts.iter().flatten().copied().collect();
            all.sort_unstable();
            let mut expect: Vec<u64> = t.switches.iter().map(|s| s.dpid).collect();
            expect.sort_unstable();
            assert_eq!(all, expect, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_fat_tree_rejected() {
        let _ = Topology::generate(&params(TopoKind::FatTree { k: 3 }, 1), 0);
    }
}
