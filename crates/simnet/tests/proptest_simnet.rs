//! Property-based tests for the simulation kernel.

use dfi_simnet::{Dist, Sim, SimTime, Station, StationConfig, Summary};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Events always execute in non-decreasing time order, whatever the
    /// insertion order.
    #[test]
    fn events_execute_in_time_order(delays in proptest::collection::vec(0u64..10_000, 1..64)) {
        let mut sim = Sim::new(1);
        let times = Rc::new(RefCell::new(Vec::new()));
        for d in &delays {
            let times = times.clone();
            sim.schedule_at(SimTime::from_micros(*d), move |sim| {
                times.borrow_mut().push(sim.now());
            });
        }
        sim.run();
        let t = times.borrow();
        prop_assert_eq!(t.len(), delays.len());
        for w in t.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        let mut expected: Vec<u64> = delays.clone();
        expected.sort_unstable();
        let got: Vec<u64> = t.iter().map(|x| x.as_micros()).collect();
        prop_assert_eq!(got, expected);
    }

    /// Job conservation at a station: after the queue drains,
    /// submitted == completed + dropped, and completions never exceed
    /// what a work-conserving server could do.
    #[test]
    fn station_conserves_jobs(
        workers in 1usize..8,
        capacity in 0usize..16,
        jobs in 1usize..64,
        service_us in 1u64..5_000,
    ) {
        let mut sim = Sim::new(7);
        let st = Station::new(StationConfig {
            workers,
            queue_capacity: capacity,
            ..StationConfig::simple("p", Dist::Constant(Duration::from_micros(service_us)))
        });
        let done = Rc::new(RefCell::new(0u64));
        for _ in 0..jobs {
            let d = done.clone();
            st.submit(&mut sim, move |_| *d.borrow_mut() += 1);
        }
        sim.run();
        let stats = st.stats();
        prop_assert_eq!(stats.submitted, jobs as u64);
        prop_assert_eq!(stats.completed + stats.dropped, jobs as u64);
        prop_assert_eq!(stats.completed, *done.borrow());
        // With simultaneous arrival, acceptance is exactly bounded by
        // workers + queue capacity.
        let accepted = (workers + capacity).min(jobs) as u64;
        prop_assert_eq!(stats.completed, accepted);
        // Work conservation: total time = ceil(accepted/workers) * service.
        let rounds = accepted.div_ceil(workers as u64);
        prop_assert_eq!(
            sim.now(),
            SimTime::from_micros(rounds * service_us)
        );
    }

    /// Summary percentiles are order statistics: bounded by min/max and
    /// monotone in q.
    #[test]
    fn summary_percentiles_are_order_statistics(
        samples in proptest::collection::vec(0.0f64..1e6, 1..128),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
    ) {
        let mut s = Summary::new();
        for &x in &samples {
            s.push(x);
        }
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        prop_assert!(s.percentile(lo) <= s.percentile(hi));
        prop_assert!(s.percentile(0.0) >= s.min());
        prop_assert!(s.percentile(1.0) <= s.max());
        prop_assert!(s.min() <= s.mean() && s.mean() <= s.max());
        prop_assert!(samples.contains(&s.percentile(hi)));
    }

    /// The RNG's bounded draws are in range and deterministic per seed.
    #[test]
    fn rng_bounded_draws(seed in any::<u64>(), lo in 0u64..1000, span in 1u64..1000) {
        let mut a = dfi_simnet::SimRng::new(seed);
        let mut b = dfi_simnet::SimRng::new(seed);
        for _ in 0..64 {
            let x = a.range_u64(lo, lo + span);
            prop_assert!((lo..lo + span).contains(&x));
            prop_assert_eq!(x, b.range_u64(lo, lo + span));
        }
    }

    /// Cancelled events never fire; everything else does.
    #[test]
    fn cancellation_is_exact(
        n in 1usize..32,
        cancel_mask in any::<u32>(),
    ) {
        let mut sim = Sim::new(3);
        let fired = Rc::new(RefCell::new(vec![false; n]));
        let mut ids = Vec::new();
        for i in 0..n {
            let fired = fired.clone();
            ids.push(sim.schedule_at(SimTime::from_millis(i as u64 + 1), move |_| {
                fired.borrow_mut()[i] = true;
            }));
        }
        let mut cancelled = vec![false; n];
        for i in 0..n {
            if cancel_mask & (1 << (i % 32)) != 0 {
                sim.cancel(ids[i]);
                cancelled[i] = true;
            }
        }
        sim.run();
        for (i, &was_cancelled) in cancelled.iter().enumerate() {
            prop_assert_eq!(fired.borrow()[i], !was_cancelled, "event {}", i);
        }
    }

    /// Distribution sampling stays non-negative and (for constants) exact.
    #[test]
    fn distributions_sample_sanely(mean_ms in 0.01f64..50.0, std_ms in 0.0f64..100.0) {
        let mut rng = dfi_simnet::SimRng::new(11);
        let d = Dist::normal_ms(mean_ms, std_ms);
        for _ in 0..100 {
            let _ = d.sample(&mut rng); // Duration type enforces >= 0
        }
        let c = Dist::constant_ms(mean_ms);
        prop_assert_eq!(c.sample(&mut rng), Duration::from_secs_f64(mean_ms / 1e3));
    }
}
