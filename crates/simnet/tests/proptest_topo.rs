//! Property-based invariants for the fleet-scale topology generator.
//!
//! Every generated fabric — any fat-tree arity, any leaf-spine shape, any
//! host count, any seed — must satisfy:
//!
//! * advertised counts: the switch/host vectors match the closed-form
//!   formulas for the shape, and dpids are unique and dense from 1;
//! * full reachability: every host pair has a switch-level path (checked
//!   with a union-find over the link list plus host attachment points);
//! * shard partition: for every shard count, each dpid is owned by exactly
//!   one shard and the shards together cover every dpid;
//! * seed determinism: the same `(params, seed)` is bit-identical, and the
//!   churn schedule derived from it is too.

use dfi_simnet::churn::{generate_churn, ChurnParams};
use dfi_simnet::topo::{shard_of, Tier, TopoKind, TopoParams, Topology};
use proptest::prelude::*;
use std::collections::HashSet;
use std::time::Duration;

/// Arbitrary-but-bounded fabric shapes.
fn arb_kind() -> impl Strategy<Value = TopoKind> {
    prop_oneof![
        (1u32..=4).prop_map(|half| TopoKind::FatTree { k: half * 2 }),
        (1u32..=6, 1u32..=24).prop_map(|(spines, leaves)| TopoKind::LeafSpine { spines, leaves }),
    ]
}

fn arb_params() -> impl Strategy<Value = TopoParams> {
    (arb_kind(), 1u32..=96, 0u32..=3).prop_map(|(kind, hosts, users_per_host)| TopoParams {
        kind,
        hosts,
        users_per_host,
    })
}

/// Closed-form switch count for a shape.
fn expected_switches(kind: TopoKind) -> usize {
    match kind {
        TopoKind::FatTree { k } => {
            let half = (k / 2) as usize;
            half * half + (k as usize) * 2 * half
        }
        TopoKind::LeafSpine { spines, leaves } => (spines + leaves) as usize,
    }
}

/// Union-find over dpids, used for the reachability invariant.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        self.parent[ra] = rb;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Counts, dpid density, and attachment sanity.
    #[test]
    fn advertised_counts_hold(params in arb_params(), seed in 0u64..1_000_000) {
        let t = Topology::generate(&params, seed);
        prop_assert_eq!(t.switches.len(), expected_switches(params.kind),
            "repro: seed={} params={:?}", seed, params);
        prop_assert_eq!(t.hosts.len(), params.hosts as usize,
            "repro: seed={} params={:?}", seed, params);
        // Dpids dense from 1, ascending and unique.
        for (i, s) in t.switches.iter().enumerate() {
            prop_assert_eq!(s.dpid, i as u64 + 1, "repro: seed={} params={:?}", seed, params);
        }
        // Hosts attach only to host-bearing tiers, on unique (dpid, port)
        // pairs, with unique identity material.
        let bearing: HashSet<u64> = t.host_bearing_dpids().into_iter().collect();
        let mut attach = HashSet::new();
        let mut ips = HashSet::new();
        let mut macs = HashSet::new();
        for h in &t.hosts {
            prop_assert!(bearing.contains(&h.dpid), "repro: seed={} params={:?}", seed, params);
            prop_assert!(attach.insert((h.dpid, h.port)), "repro: seed={} params={:?}", seed, params);
            prop_assert!(ips.insert(h.ip), "repro: seed={} params={:?}", seed, params);
            prop_assert!(macs.insert(h.mac_index), "repro: seed={} params={:?}", seed, params);
            prop_assert_eq!(h.users.len(), params.users_per_host as usize,
                "repro: seed={} params={:?}", seed, params);
        }
        prop_assert_eq!(
            t.binding_count(),
            params.hosts as usize * (2 + params.users_per_host as usize),
            "repro: seed={} params={:?}", seed, params
        );
    }

    /// Every host pair has a path: the link list plus host attachments form
    /// one connected component containing every host-bearing switch.
    #[test]
    fn every_host_pair_has_a_path(params in arb_params(), seed in 0u64..1_000_000) {
        let t = Topology::generate(&params, seed);
        let n = t.switches.len();
        let mut dsu = Dsu::new(n);
        for l in &t.links {
            // Dpids are dense from 1, so dpid-1 indexes the switch vector.
            dsu.union(l.a_dpid as usize - 1, l.b_dpid as usize - 1);
            // Link endpoints must name real switches of adjacent tiers.
            let ta = t.switches[l.a_dpid as usize - 1].tier;
            let tb = t.switches[l.b_dpid as usize - 1].tier;
            let ok = matches!(
                (ta, tb),
                (Tier::Edge, Tier::Aggregation)
                    | (Tier::Aggregation, Tier::Core)
                    | (Tier::Leaf, Tier::Spine)
            );
            prop_assert!(ok, "repro: seed={} params={:?} link={:?}", seed, params, l);
        }
        if let Some(first) = t.hosts.first() {
            let root = dsu.find(first.dpid as usize - 1);
            for h in &t.hosts {
                prop_assert_eq!(
                    dsu.find(h.dpid as usize - 1), root,
                    "repro: seed={} params={:?} host={}", seed, params, h.index
                );
            }
        }
    }

    /// The shard assignment is a partition: every dpid owned by exactly one
    /// shard, shards jointly covering the whole dpid set.
    #[test]
    fn shard_assignment_is_a_partition(
        params in arb_params(),
        seed in 0u64..1_000_000,
        n_shards in 1usize..=8,
    ) {
        let t = Topology::generate(&params, seed);
        let parts = t.shard_partition(n_shards);
        prop_assert_eq!(parts.len(), n_shards);
        let mut seen = HashSet::new();
        for (shard, owned) in parts.iter().enumerate() {
            for &dpid in owned {
                prop_assert_eq!(
                    shard_of(dpid, n_shards), shard,
                    "repro: seed={} params={:?} dpid={} n={}", seed, params, dpid, n_shards
                );
                prop_assert!(
                    seen.insert(dpid),
                    "dpid owned twice; repro: seed={} params={:?} dpid={} n={}",
                    seed, params, dpid, n_shards
                );
            }
        }
        prop_assert_eq!(
            seen.len(), t.switches.len(),
            "repro: seed={} params={:?} n={}", seed, params, n_shards
        );
    }

    /// Same seed => bit-identical topology and churn; different seed must
    /// change host placement.
    #[test]
    fn generation_is_seed_deterministic(params in arb_params(), seed in 0u64..1_000_000) {
        let a = Topology::generate(&params, seed);
        let b = Topology::generate(&params, seed);
        prop_assert_eq!(&a.switches, &b.switches, "repro: seed={} params={:?}", seed, params);
        prop_assert_eq!(&a.links, &b.links, "repro: seed={} params={:?}", seed, params);
        prop_assert_eq!(&a.hosts, &b.hosts, "repro: seed={} params={:?}", seed, params);
        let churn = ChurnParams {
            day: Duration::from_millis(500),
            horizon: Duration::from_secs(1),
            lease_moves_per_host_day: 2.0,
            session_toggles_per_user_day: 2.0,
        };
        let ca = generate_churn(&a, &churn, seed ^ 1);
        let cb = generate_churn(&b, &churn, seed ^ 1);
        prop_assert_eq!(ca, cb, "repro: seed={} params={:?}", seed, params);
    }
}
