//! Flow-decide gate: the snapshot classifier against the paths it
//! replaced, at enterprise scale (10 000 rules, 512 destination-host
//! buckets, ~20 candidate entries per probe).
//!
//! Two rule-set profiles, mirroring how PDPs actually populate the
//! manager:
//!
//! * `acl` — destination-keyed access-control lists, all inserted at one
//!   fixed priority the way a single PDP (e.g. S-RBAC) stamps every rule
//!   with its own band, a Deny sprinkled through. This is the snapshot's
//!   home turf: every entry compiles to a trivial residual, each bucket
//!   carries a pre-computed verdict, and classification is two binary
//!   searches plus a pre-computed answer. **The `--gate` speedup and
//!   zero-alloc requirements are enforced on this profile.**
//! * `mixed` — a third of the rules additionally pin the source host and
//!   priorities spread over four PDP bands, so most candidates need real
//!   residual interpretation. Reported for transparency (expect a small
//!   multiple, not an order of magnitude): it bounds the worst case, the
//!   gate does not certify it.
//!
//! Per profile it measures:
//!
//! * `linear` — `PolicyManager::query_linear`, the full-scan oracle
//!   (`acl` only; it is ~three orders slower),
//! * `indexed` — `PolicyManager::query`, the bucket-indexed path the PCP
//!   read before the snapshot data plane (allocates lowercased bucket
//!   keys and cursor vectors per call, hashes per candidate, interprets
//!   `matches` per candidate),
//! * `classify` — `PolicySnapshot::classify`, the compiled hot path,
//! * `batch` — `PolicySnapshot::classify_batch` over a 64-flow packet-in
//!   burst into a reused output buffer (`acl` only).
//!
//! Before timing anything it hard-fails unless all paths agree on every
//! probe flow in both profiles — the same equivalence the property tests
//! prove, here as a cheap sanity net so the gate can never certify a
//! wrong-answer speedup.
//!
//! Prints a JSON report to stdout (captured into `BENCH_decide.json` by
//! `scripts/check.sh --decide`). With `--gate N` it exits non-zero unless
//! `acl` classify is at least `N`× faster than `indexed` and
//! allocation-free.

use std::hint::black_box;
use std::net::Ipv4Addr;
use std::process::ExitCode;

use dfi_core::policy::{
    Decision, EndpointPattern, EndpointView, FlowView, PolicyManager, PolicyRule, PolicySnapshot,
};
use dfi_packet::MacAddr;
use dfi_wiregate::{fmt_measure, measure, CountingAlloc, Measure};

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const N_RULES: usize = 10_000;
const N_HOSTS: usize = 512;
const BURST: usize = 64;

/// `acl`: everything keyed on destination hostname with a wildcard
/// source, one fixed priority band, a Deny in every 17th slot (17 is
/// coprime to the host count, so denies land in every bucket position
/// rather than aliasing onto a few hosts).
fn build_acl_pm() -> PolicyManager {
    let mut pm = PolicyManager::new();
    for i in 0..N_RULES {
        let dst = EndpointPattern::host(&format!("h{}", i % N_HOSTS));
        let rule = if i % 17 == 5 {
            PolicyRule::deny(EndpointPattern::any(), dst)
        } else {
            PolicyRule::allow(EndpointPattern::any(), dst)
        };
        pm.insert(rule, 50, "decidegate-acl");
    }
    pm
}

/// `mixed`: a third of the rules pin the source host too (residually
/// constrained entries the snapshot must still interpret), priorities
/// spread over four bands chosen by a multiplicative hash so bands mix
/// within every bucket.
fn build_mixed_pm() -> PolicyManager {
    let mut pm = PolicyManager::new();
    for i in 0..N_RULES {
        let dst = EndpointPattern::host(&format!("h{}", i % N_HOSTS));
        let src = if i % 3 == 0 {
            EndpointPattern::host(&format!("h{}", (i / 3) % N_HOSTS))
        } else {
            EndpointPattern::any()
        };
        let rule = if i % 17 == 5 {
            PolicyRule::deny(src, dst)
        } else {
            PolicyRule::allow(src, dst)
        };
        let band = (i.wrapping_mul(2_654_435_761) >> 16) % 4;
        pm.insert(rule, 10 * (1 + band as u32), "decidegate-mixed");
    }
    pm
}

/// An enriched probe flow exactly the way the ERM hands them to the PCP
/// (`Erm::view`): an FQDN and a short name per endpoint, the logged-on
/// users of each host (the client's user, the server's service account),
/// and the packet-level IP/MAC/attachment identifiers on both sides. The
/// pre-snapshot path pays a lowercased heap key plus a hash probe per
/// name/IP identifier; the snapshot pays a prefix-table probe.
fn probe_flow(j: usize) -> FlowView {
    let src_host = format!("h{}", j % N_HOSTS);
    let dst_host = format!("h{}", (j * 7 + 3) % N_HOSTS);
    let endpoint = |host: &str, user: String, ip_low: usize, port: u16| EndpointView {
        usernames: vec![user],
        hostnames: vec![format!("{host}.corp.local"), host.to_string()],
        ip: Some(Ipv4Addr::new(
            10,
            0,
            (ip_low / 256) as u8,
            (ip_low % 256) as u8,
        )),
        port: Some(port),
        mac: Some(MacAddr::from_index(ip_low as u32)),
        switch_port: Some(1 + (ip_low % 40) as u32),
        switch_dpid: Some(0xD1),
    };
    FlowView {
        ethertype: 0x0800,
        ip_proto: Some(6),
        src: endpoint(
            &src_host,
            format!("user{j}"),
            j % N_HOSTS,
            40_000 + j as u16,
        ),
        dst: endpoint(
            &dst_host,
            format!("svc{}", j % 32),
            (j * 7 + 3) % N_HOSTS,
            445,
        ),
    }
}

/// Equivalence sanity net: never certify a wrong-answer speedup.
fn check_equivalence(
    name: &str,
    pm: &mut PolicyManager,
    snap: &PolicySnapshot,
    flows: &[FlowView],
) -> bool {
    for (j, f) in flows.iter().enumerate() {
        let lin = pm.query_linear(f);
        let idx = pm.query(f);
        let cls = snap.classify(f);
        if lin != idx || lin != cls {
            eprintln!(
                "EQUIVALENCE FAIL ({name}) on probe flow {j}: \
                 linear={lin:?} indexed={idx:?} classify={cls:?}"
            );
            return false;
        }
    }
    true
}

struct Profile {
    indexed: Measure,
    classify: Measure,
    speedup: f64,
}

fn run_profile(
    pm: &mut PolicyManager,
    snap: &PolicySnapshot,
    flow: &FlowView,
    iters: u64,
) -> Profile {
    let indexed = measure(iters, || {
        black_box(pm.query(black_box(flow)));
    });
    let classify = measure(iters, || {
        black_box(snap.classify(black_box(flow)));
    });
    Profile {
        indexed,
        classify,
        speedup: indexed.ns_per_op / classify.ns_per_op,
    }
}

fn main() -> ExitCode {
    let mut gate: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--gate" => {
                let v = args.next().and_then(|v| v.parse().ok());
                let Some(v) = v else {
                    eprintln!("--gate requires a numeric speedup factor");
                    return ExitCode::FAILURE;
                };
                gate = Some(v);
            }
            other => {
                eprintln!("unknown argument: {other}\nusage: dfi-decidegate [--gate N]");
                return ExitCode::FAILURE;
            }
        }
    }
    let iters: u64 = std::env::var("DECIDEGATE_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);

    let mut acl_pm = build_acl_pm();
    let acl_snap = PolicySnapshot::compile(&acl_pm, 1);
    let mut mixed_pm = build_mixed_pm();
    let mixed_snap = PolicySnapshot::compile(&mixed_pm, 1);
    let flows: Vec<FlowView> = (0..BURST).map(probe_flow).collect();

    if !check_equivalence("acl", &mut acl_pm, &acl_snap, &flows)
        || !check_equivalence("mixed", &mut mixed_pm, &mixed_snap, &flows)
    {
        return ExitCode::FAILURE;
    }

    // The linear oracle is ~three orders slower; scale its iteration count
    // down so the gate stays quick.
    let linear = measure((iters / 500).max(20), || {
        black_box(acl_pm.query_linear(black_box(&flows[0])));
    });
    let acl = run_profile(&mut acl_pm, &acl_snap, &flows[0], iters);
    let mixed = run_profile(&mut mixed_pm, &mixed_snap, &flows[0], iters);
    let mut out: Vec<Decision> = Vec::with_capacity(BURST);
    let batch = measure(iters / BURST as u64, || {
        acl_snap.classify_batch(black_box(&flows), &mut out);
        black_box(out.len());
    });
    let batch_ns_per_flow = batch.ns_per_op / BURST as f64;
    let batch_flows_per_sec = 1e9 / batch_ns_per_flow;
    let speedup_vs_linear = linear.ns_per_op / acl.classify.ns_per_op;

    let pass = gate.is_none_or(|g| acl.speedup >= g && acl.classify.allocs_per_op <= 0.01);

    println!("{{");
    println!("  \"iters\": {iters},");
    println!("  \"rules\": {N_RULES},");
    println!("  \"acl\": {{");
    println!("    \"linear\": {},", fmt_measure(linear));
    println!("    \"indexed\": {},", fmt_measure(acl.indexed));
    println!("    \"classify\": {},", fmt_measure(acl.classify));
    println!(
        "    \"batch\": {{\"flows\": {BURST}, \"ns_per_flow\": {batch_ns_per_flow:.1}, \
         \"flows_per_sec\": {batch_flows_per_sec:.0}, \"allocs_per_burst\": {:.3}}},",
        batch.allocs_per_op
    );
    println!(
        "    \"speedup\": {{\"vs_indexed\": {:.2}, \"vs_linear\": {speedup_vs_linear:.1}}}",
        acl.speedup
    );
    println!("  }},");
    println!("  \"mixed\": {{");
    println!("    \"indexed\": {},", fmt_measure(mixed.indexed));
    println!("    \"classify\": {},", fmt_measure(mixed.classify));
    println!("    \"speedup\": {{\"vs_indexed\": {:.2}}}", mixed.speedup);
    println!("  }},");
    println!(
        "  \"gate\": {{\"required_speedup\": {}, \"profile\": \"acl\", \"pass\": {pass}}}",
        gate.map_or_else(|| "null".to_string(), |g| format!("{g:.1}"))
    );
    println!("}}");

    if let Some(g) = gate {
        let mut failed = false;
        if acl.speedup < g {
            eprintln!(
                "GATE FAIL: acl classify speedup {:.2}x vs indexed < required {g:.1}x",
                acl.speedup
            );
            failed = true;
        }
        if acl.classify.allocs_per_op > 0.01 {
            eprintln!(
                "GATE FAIL: snapshot classify allocates {:.3} allocs/flow (want 0)",
                acl.classify.allocs_per_op
            );
            failed = true;
        }
        if failed {
            return ExitCode::FAILURE;
        }
        eprintln!(
            "gate ok: acl classify {:.2}x vs indexed ({:.0} ns/flow, {:.3} allocs/flow), \
             {speedup_vs_linear:.0}x vs linear; mixed {:.2}x",
            acl.speedup, acl.classify.ns_per_op, acl.classify.allocs_per_op, mixed.speedup
        );
    }
    ExitCode::SUCCESS
}
