//! Fleet-scale gate: the sharded proxy against the unsharded oracle on a
//! generated 1000-switch leaf-spine fabric carrying ~1M ERM bindings.
//!
//! Phases, in order:
//!
//! 1. **Build** — `dfi_simnet::topo` generates the fabric (40 spines ×
//!    960 leaves, 250 000 hosts × 2 users ⇒ exactly 1 000 000 topology
//!    bindings, plus one MAC-location binding per attached host);
//!    `Network::build_topology` materializes real switches; every switch
//!    is interposed (no controller — a null upstream sink; the DFI's
//!    Table-0 pipeline runs regardless). Bindings load through the
//!    epoch-stamped batch path (`apply_binding_ops` /
//!    `apply_binding_batch`), and a ~512-rule hostname ACL is inserted
//!    through the front-end.
//! 2. **Equivalence (before any timing)** — the same seeded probe flows
//!    are replayed one-at-a-time through the unsharded oracle and through
//!    every sharded configuration; the per-probe
//!    (allowed, denied, spoof-denied) deltas and the end-of-phase
//!    per-policy attribution must match exactly. A mismatch hard-fails
//!    the gate: it can never certify a wrong-answer speedup.
//! 3. **Timing** — per shard count {1, 2, 4, 8}: a diurnally modulated
//!    open-loop flow offer (thinned exponential arrivals at
//!    `SCALE_RATE` f/s peak) races a compressed-day churn schedule
//!    (`dfi_simnet::churn`: DHCP re-leases + session toggles, applied as
//!    epoch-stamped binding batches mid-run). Reports accepted flows/sec
//!    (sim time), wall-clock flows/sec, and TTFB p50/p99 from the
//!    decision-latency samples of the timed window only.
//!
//! Prints a JSON report to stdout (captured into `BENCH_scale.json` by
//! `scripts/check.sh --scale`). With `--gate N` it exits non-zero unless
//! equivalence held and the 8-shard configuration accepts at least `N`×
//! the 1-shard configuration's flows.
//!
//! Knobs: `SCALE_ITERS` (offered flows per timed config, default 12 000),
//! `SCALE_HOSTS`, `SCALE_LEAVES`, `SCALE_SPINES`, `SCALE_PROBES`,
//! `SCALE_RATE`, `SCALE_POOL`, `SCALE_SEED`.

use std::process::ExitCode;
use std::rc::Rc;
use std::time::{Duration, Instant};

use dfi_core::erm::Binding;
use dfi_core::policy::{EndpointPattern, PolicyRule};
use dfi_core::{BindingBatch, BindingOp, Dfi, DfiConfig, ShardedDfi};
use dfi_dataplane::{ByteSink, Network, Tx};
use dfi_packet::headers::build;
use dfi_packet::MacAddr;
use dfi_simnet::churn::{diurnal_intensity, generate_churn, ChurnOp, ChurnParams};
use dfi_simnet::topo::{TopoKind, TopoParams, Topology};
use dfi_simnet::{Sim, SimRng, Summary};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Every topology binding plus one MAC-location per host, as one batch of
/// idempotent ops (epoch-stamped by the caller).
fn binding_ops(topo: &Topology) -> Vec<BindingOp> {
    let mut ops = Vec::with_capacity(topo.binding_count() + topo.hosts.len());
    for h in &topo.hosts {
        let mac = MacAddr::from_index(h.mac_index);
        ops.push(BindingOp::Bind(Binding::IpMac { ip: h.ip, mac }));
        ops.push(BindingOp::Bind(Binding::HostIp {
            host: h.hostname.clone(),
            ip: h.ip,
        }));
        for u in &h.users {
            ops.push(BindingOp::Bind(Binding::UserHost {
                user: u.clone(),
                host: h.hostname.clone(),
            }));
        }
        ops.push(BindingOp::Bind(Binding::MacLocation {
            mac,
            dpid: h.dpid,
            port: h.port,
        }));
    }
    ops
}

/// The ~512-rule hostname ACL: destination-keyed allows over the probe
/// pool's hosts, a deny in every 7th slot, four priority bands.
fn acl_rules(topo: &Topology, pool: &[usize], n_rules: usize) -> Vec<(PolicyRule, u32)> {
    (0..n_rules)
        .map(|k| {
            let dst = &topo.hosts[pool[k % pool.len()]].hostname;
            let rule = if k % 7 == 3 {
                PolicyRule::deny(EndpointPattern::any(), EndpointPattern::host(dst))
            } else {
                PolicyRule::allow(EndpointPattern::any(), EndpointPattern::host(dst))
            };
            (
                rule,
                10 * (1 + (k.wrapping_mul(2_654_435_761) >> 16) as u32 % 4),
            )
        })
        .collect()
}

enum Sut {
    Oracle(Dfi),
    Sharded(ShardedDfi),
}

struct Config {
    sim: Sim,
    sut: Sut,
    /// Keeps the switch fabric alive.
    _net: Network,
    /// Injection handles for the probe/offer pool, pool order.
    tx: Vec<Tx>,
}

impl Config {
    fn decided(&self) -> (u64, u64, u64) {
        let m = match &self.sut {
            Sut::Oracle(d) => d.metrics(),
            Sut::Sharded(s) => s.metrics(),
        };
        (m.allowed, m.denied, m.spoof_denied)
    }
}

fn build(topo: &Topology, pool: &[usize], seed: u64, shards: Option<usize>) -> Config {
    let mut sim = Sim::new(seed);
    let mut net = Network::new();
    let switches = net.build_topology(topo, Duration::from_micros(50));
    let null: ByteSink = Rc::new(|_, _| {});
    let sut = match shards {
        None => {
            let dfi = Dfi::new(DfiConfig::default());
            for sw in &switches {
                let n = null.clone();
                dfi.interpose(&mut sim, sw, move |_, _| n);
            }
            Sut::Oracle(dfi)
        }
        Some(n_shards) => {
            let sharded = ShardedDfi::new(n_shards, &DfiConfig::default());
            for sw in &switches {
                let n = null.clone();
                sharded.interpose(&mut sim, sw, move |_, _| n);
            }
            Sut::Sharded(sharded)
        }
    };
    let tx = pool
        .iter()
        .map(|&i| {
            let h = &topo.hosts[i];
            net.attach_silent_host(
                &switches[h.dpid as usize - 1],
                h.port,
                Duration::from_micros(50),
            )
        })
        .collect();
    // Bindings through the batch path, policy through the front-end.
    let ops = binding_ops(topo);
    match &sut {
        Sut::Oracle(d) => {
            let _fresh = d.apply_binding_batch(&BindingBatch { epoch: 0, ops });
        }
        Sut::Sharded(s) => {
            let _epoch = s.apply_binding_ops(ops);
        }
    }
    for (rule, priority) in acl_rules(topo, pool, 512) {
        match &sut {
            Sut::Oracle(d) => {
                d.insert_policy(&mut sim, rule, priority, "scalegate");
            }
            Sut::Sharded(s) => {
                s.insert_policy(&mut sim, rule, priority, "scalegate");
            }
        }
    }
    sim.run();
    Config {
        sim,
        sut,
        _net: net,
        tx,
    }
}

/// One probe flow: pool[src] → pool[dst], unique source port.
fn probe_frame(topo: &Topology, pool: &[usize], i: usize) -> (usize, Vec<u8>) {
    let p = pool.len();
    let src = i % p;
    let mut dst = (i * 7 + 3) % p;
    if dst == src {
        dst = (dst + 1) % p;
    }
    let s = &topo.hosts[pool[src]];
    let d = &topo.hosts[pool[dst]];
    let frame = build::tcp_syn(
        MacAddr::from_index(s.mac_index),
        MacAddr::from_index(d.mac_index),
        s.ip,
        d.ip,
        40_000_u16.wrapping_add(i as u16),
        if i.is_multiple_of(2) { 445 } else { 80 },
    );
    (src, frame)
}

/// Replays the probes one at a time, returning the per-probe decision
/// deltas. This is the equivalence trace compared across configurations.
fn probe_trace(
    cfg: &mut Config,
    topo: &Topology,
    pool: &[usize],
    probes: usize,
) -> Vec<(u64, u64, u64)> {
    let mut out = Vec::with_capacity(probes);
    let mut last = cfg.decided();
    for i in 0..probes {
        let (src, frame) = probe_frame(topo, pool, i);
        cfg.tx[src].send(&mut cfg.sim, frame);
        cfg.sim.run();
        let now = cfg.decided();
        out.push((now.0 - last.0, now.1 - last.1, now.2 - last.2));
        last = now;
    }
    out
}

struct Timing {
    offered: usize,
    accepted: u64,
    dropped: u64,
    sim_secs: f64,
    wall_secs: f64,
    ttfb_p50_ms: f64,
    ttfb_p99_ms: f64,
    binding_batches: u64,
}

/// The timed window: diurnal flow offer + churn batches, measuring only
/// samples recorded after this point.
fn run_timed(
    cfg: &mut Config,
    topo: &Topology,
    pool: &[usize],
    offered: usize,
    peak_rate: f64,
    seed: u64,
) -> Timing {
    let sharded = match &cfg.sut {
        Sut::Sharded(s) => s.clone(),
        Sut::Oracle(_) => unreachable!("only sharded configurations are timed"),
    };
    let base: Vec<usize> = sharded
        .shards()
        .iter()
        .map(|s| s.metrics().overall.count())
        .collect();
    let (accept0, deny0, spoof0) = cfg.decided();
    let dropped0 = sharded.metrics().dropped;

    // Thinned exponential arrivals against the diurnal profile; the day is
    // compressed so the offer sweeps trough→peak→trough inside the run.
    let mut rng = SimRng::new(seed ^ 0x5CA1E);
    let day = Duration::from_secs_f64(offered as f64 / peak_rate);
    let mut t = 0.0f64;
    let mut scheduled = 0usize;
    while scheduled < offered {
        t += rng.exponential(1.0 / (peak_rate * 1.8));
        let at = dfi_simnet::SimTime::from_nanos((t * 1e9) as u64);
        if !rng.chance(diurnal_intensity(at, day) / 1.8) {
            continue;
        }
        let i = scheduled;
        let p = pool.len();
        let src = rng.index(p);
        let mut dst = rng.index(p);
        if dst == src {
            dst = (dst + 1) % p;
        }
        let s = &topo.hosts[pool[src]];
        let d = &topo.hosts[pool[dst]];
        let frame = build::tcp_syn(
            MacAddr::from_index(s.mac_index),
            MacAddr::from_index(d.mac_index),
            s.ip,
            d.ip,
            1024_u16.wrapping_add(i as u16),
            if i.is_multiple_of(2) { 445 } else { 80 },
        );
        let tx = cfg.tx[src].clone();
        cfg.sim.schedule_in(Duration::from_secs_f64(t), move |sim| {
            tx.send(sim, frame);
        });
        scheduled += 1;
    }
    let horizon = Duration::from_secs_f64(t);

    // The churn schedule, applied as epoch-stamped batches mid-run.
    let churn = generate_churn(
        topo,
        &ChurnParams {
            day,
            horizon,
            lease_moves_per_host_day: 0.02,
            session_toggles_per_user_day: 0.01,
        },
        seed,
    );
    let n_churn = churn.len();
    for ev in churn {
        let ops: Vec<BindingOp> = match ev.op {
            ChurnOp::LeaseMove {
                host,
                mac_index,
                old_ip,
                new_ip,
            } => {
                let hostname = topo.hosts[host as usize].hostname.clone();
                vec![
                    BindingOp::Unbind(Binding::IpMac {
                        ip: old_ip,
                        mac: MacAddr::from_index(mac_index),
                    }),
                    BindingOp::Bind(Binding::IpMac {
                        ip: new_ip,
                        mac: MacAddr::from_index(mac_index),
                    }),
                    BindingOp::Unbind(Binding::HostIp {
                        host: hostname.clone(),
                        ip: old_ip,
                    }),
                    BindingOp::Bind(Binding::HostIp {
                        host: hostname,
                        ip: new_ip,
                    }),
                ]
            }
            ChurnOp::LogOn { user, host } => vec![BindingOp::Bind(Binding::UserHost {
                user,
                host: topo.hosts[host as usize].hostname.clone(),
            })],
            ChurnOp::LogOff { user, host } => vec![BindingOp::Unbind(Binding::UserHost {
                user,
                host: topo.hosts[host as usize].hostname.clone(),
            })],
        };
        let s = sharded.clone();
        let delay = Duration::from_nanos(ev.at.as_nanos());
        cfg.sim.schedule_in(delay, move |_| {
            let _epoch = s.apply_binding_ops(ops);
        });
    }
    eprintln!(
        "  timed window: {offered} flows over {:.2} sim-s, {n_churn} churn events",
        horizon.as_secs_f64()
    );

    let t0 = cfg.sim.now();
    let wall = Instant::now();
    cfg.sim.run();
    let wall_secs = wall.elapsed().as_secs_f64();
    let sim_secs = cfg.sim.now().saturating_duration_since(t0).as_secs_f64();

    let (a, d, sp) = cfg.decided();
    let accepted = (a - accept0) + (d - deny0) + (sp - spoof0);
    let mut ttfb = Summary::new();
    for (shard, skip) in sharded.shards().iter().zip(&base) {
        for s in &shard.metrics().overall.samples()[*skip..] {
            ttfb.push(*s);
        }
    }
    Timing {
        offered: scheduled,
        accepted,
        dropped: sharded.metrics().dropped - dropped0,
        sim_secs,
        wall_secs,
        ttfb_p50_ms: ttfb.percentile(0.50) * 1e3,
        ttfb_p99_ms: ttfb.percentile(0.99) * 1e3,
        binding_batches: sharded.fanout_metrics().binding_batches,
    }
}

fn main() -> ExitCode {
    let mut gate: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--gate" => {
                let v = args.next().and_then(|v| v.parse().ok());
                let Some(v) = v else {
                    eprintln!("--gate requires a numeric throughput-scaling factor");
                    return ExitCode::FAILURE;
                };
                gate = Some(v);
            }
            other => {
                eprintln!("unknown argument: {other}\nusage: dfi-scalegate [--gate N]");
                return ExitCode::FAILURE;
            }
        }
    }
    let seed = env_usize("SCALE_SEED", 2019) as u64;
    let offered = env_usize("SCALE_ITERS", 12_000);
    let probes = env_usize("SCALE_PROBES", 512);
    let hosts = env_usize("SCALE_HOSTS", 250_000) as u32;
    let leaves = env_usize("SCALE_LEAVES", 960) as u32;
    let spines = env_usize("SCALE_SPINES", 40) as u32;
    let pool_size = env_usize("SCALE_POOL", 2048);
    let peak_rate = env_f64("SCALE_RATE", 6000.0);
    let shard_counts = [1usize, 2, 4, 8];

    eprintln!(
        "generating topology ({} switches, {hosts} hosts)...",
        spines + leaves
    );
    let topo = Topology::generate(
        &TopoParams {
            kind: TopoKind::LeafSpine { spines, leaves },
            hosts,
            users_per_host: 2,
        },
        seed,
    );
    let bindings = topo.binding_count() + topo.hosts.len();
    let mut rng = SimRng::new(seed ^ 0xB00);
    let pool: Vec<usize> = (0..pool_size.min(topo.hosts.len()))
        .map(|_| rng.index(topo.hosts.len()))
        .collect();

    eprintln!("oracle: loading {bindings} bindings...");
    let mut oracle = build(&topo, &pool, seed, None);
    let want = probe_trace(&mut oracle, &topo, &pool, probes);
    let oracle_by_policy = match &oracle.sut {
        Sut::Oracle(d) => d.metrics().decisions_by_policy,
        Sut::Sharded(_) => unreachable!(),
    };
    drop(oracle);

    let mut equivalent = true;
    let mut results = Vec::new();
    for &n in &shard_counts {
        eprintln!("shards={n}: loading {bindings} bindings...");
        let mut cfg = build(&topo, &pool, seed, Some(n));
        let got = probe_trace(&mut cfg, &topo, &pool, probes);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            if g != w {
                eprintln!(
                    "EQUIVALENCE FAIL shards={n} probe={i}: sharded={g:?} oracle={w:?} \
                     (repro: SCALE_SEED={seed} SCALE_PROBES={probes})"
                );
                equivalent = false;
            }
        }
        if let Sut::Sharded(s) = &cfg.sut {
            if s.metrics().decisions_by_policy != oracle_by_policy {
                eprintln!(
                    "EQUIVALENCE FAIL shards={n}: per-policy attribution diverged \
                     (repro: SCALE_SEED={seed} SCALE_PROBES={probes})"
                );
                equivalent = false;
            }
            if !s.epochs_agree() {
                eprintln!("EQUIVALENCE FAIL shards={n}: shards serve different epochs");
                equivalent = false;
            }
        }
        if !equivalent {
            break;
        }
        let t = run_timed(&mut cfg, &topo, &pool, offered, peak_rate, seed);
        results.push((n, t));
        drop(cfg);
    }

    let ratio = match (results.first(), results.last()) {
        (Some((1, one)), Some((8, eight))) if one.accepted > 0 => {
            (eight.accepted as f64 / eight.sim_secs) / (one.accepted as f64 / one.sim_secs)
        }
        _ => 0.0,
    };
    let pass = equivalent && gate.is_none_or(|g| ratio >= g);

    println!("{{");
    println!(
        "  \"topology\": {{\"switches\": {}, \"hosts\": {}, \"bindings\": {bindings}}},",
        topo.switches.len(),
        topo.hosts.len()
    );
    println!(
        "  \"probes\": {probes}, \"equivalent\": {equivalent}, \"peak_rate\": {peak_rate:.0},"
    );
    println!("  \"shards\": [");
    for (i, (n, t)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        println!(
            "    {{\"shards\": {n}, \"offered\": {}, \"accepted\": {}, \"dropped\": {}, \
             \"sim_flows_per_sec\": {:.0}, \"wall_flows_per_sec\": {:.0}, \
             \"ttfb_ms\": {{\"p50\": {:.3}, \"p99\": {:.3}}}, \"binding_batches\": {}}}{comma}",
            t.offered,
            t.accepted,
            t.dropped,
            t.accepted as f64 / t.sim_secs,
            t.accepted as f64 / t.wall_secs,
            t.ttfb_p50_ms,
            t.ttfb_p99_ms,
            t.binding_batches
        );
    }
    println!("  ],");
    println!(
        "  \"gate\": {{\"required_scaling\": {}, \"scaling_8v1\": {ratio:.2}, \"pass\": {pass}}}",
        gate.map_or_else(|| "null".to_string(), |g| format!("{g:.1}"))
    );
    println!("}}");

    if !equivalent {
        eprintln!("GATE FAIL: sharded decisions diverged from the unsharded oracle");
        return ExitCode::FAILURE;
    }
    if let Some(g) = gate {
        if ratio < g {
            eprintln!("GATE FAIL: 8-shard/1-shard accepted-throughput scaling {ratio:.2}x < required {g:.1}x");
            return ExitCode::FAILURE;
        }
        eprintln!("gate ok: equivalence held over {probes} probes; 8-shard scaling {ratio:.2}x");
    }
    ExitCode::SUCCESS
}
