//! Fleet-scale gate: the sharded proxy against the unsharded oracle on a
//! generated 1000-switch leaf-spine fabric carrying ~1M ERM bindings.
//!
//! Phases, in order:
//!
//! 1. **Build** — `dfi_simnet::topo` generates the fabric (40 spines ×
//!    960 leaves, 250 000 hosts × 2 users ⇒ exactly 1 000 000 topology
//!    bindings, plus one MAC-location binding per attached host);
//!    `Network::build_topology` materializes real switches; every switch
//!    is interposed (no controller — a null upstream sink; the DFI's
//!    Table-0 pipeline runs regardless). Bindings load through the
//!    epoch-stamped batch path (`apply_binding_ops` /
//!    `apply_binding_batch`), and a ~512-rule hostname ACL is inserted
//!    through the front-end.
//! 2. **Equivalence (before any timing)** — the same seeded probe flows
//!    are replayed one-at-a-time through the unsharded oracle and through
//!    every sharded configuration; the per-probe
//!    (allowed, denied, spoof-denied) deltas and the end-of-phase
//!    per-policy attribution must match exactly. A mismatch hard-fails
//!    the gate: it can never certify a wrong-answer speedup.
//! 3. **Timing** — per shard count {1, 2, 4, 8}: a diurnally modulated
//!    open-loop flow offer (thinned exponential arrivals at
//!    `SCALE_RATE` f/s peak) races a compressed-day churn schedule
//!    (`dfi_simnet::churn`: DHCP re-leases + session toggles, applied as
//!    epoch-stamped binding batches mid-run). Reports accepted flows/sec
//!    (sim time), wall-clock flows/sec, and TTFB p50/p99 from the
//!    decision-latency samples of the timed window only.
//!
//! Two opt-in phases extend the report:
//!
//! 4. **`--wall`** — per thread count {1, 2, 4, 8}: the same 512-probe
//!    equivalence trace and then the same offered-rate workload replayed
//!    through [`ParallelShardedDfi`] — real OS worker threads, each owning
//!    its shard's slice of the fabric — measuring **wall-clock** flows/sec
//!    per mode (the cooperative shards' wall number is bookkeeping
//!    overhead, the parallel one is the point). Gates that parallel wall
//!    scaling is monotone in thread count (strictly, step over step, while
//!    threads fit on physical cores; oversubscribed points only have to
//!    hold the no-collapse floor against the 1-thread run) and that the
//!    8-thread/1-thread ratio clears a hardware-aware threshold: 3× where
//!    ≥ 8 cores are available, `min(3, 0.6·cores)` on smaller hosts, and a
//!    no-collapse floor on a single core (where a literal 3× is
//!    physically impossible; the measured core count and applied
//!    threshold are recorded in the report).
//! 5. **`--sweep`** — the Fig-4 saturation sweep: constant offered rates
//!    1k→16k f/s per shard count, reporting accepted rate and TTFB
//!    p50/p99 per point (the paper's Fig. 4 axes).
//!
//! Prints a JSON report to stdout (captured into `BENCH_scale.json` by
//! `scripts/check.sh --scale` / `--par`). With `--gate N` it exits
//! non-zero unless equivalence held and the 8-shard configuration accepts
//! at least `N`× the 1-shard configuration's flows (sim time), plus the
//! wall gates above when `--wall` is given.
//!
//! Knobs: `SCALE_ITERS` (offered flows per timed config, default 12 000),
//! `SCALE_HOSTS`, `SCALE_LEAVES`, `SCALE_SPINES`, `SCALE_PROBES`,
//! `SCALE_RATE`, `SCALE_POOL`, `SCALE_SEED`, `SCALE_SWEEP_ITERS`,
//! `SCALE_WALL_GATE`, `SCALE_WALL_TOL`.

use std::collections::HashMap;
use std::process::ExitCode;
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dfi_core::erm::Binding;
use dfi_core::policy::{EndpointPattern, PolicyRule};
use dfi_core::{
    BindingBatch, BindingOp, Dfi, DfiConfig, DfiMetrics, ObserveFn, ParallelShardedDfi, ShardedDfi,
    WorkerWorld, WorldBuilder,
};
use dfi_dataplane::{ByteSink, Network, Switch, SwitchConfig, Tx};
use dfi_packet::headers::build;
use dfi_packet::MacAddr;
use dfi_simnet::churn::{diurnal_intensity, generate_churn, ChurnOp, ChurnParams};
use dfi_simnet::topo::{shard_of, TopoKind, TopoParams, Topology};
use dfi_simnet::{Sim, SimRng, SimTime, Summary};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Every topology binding plus one MAC-location per host, as one batch of
/// idempotent ops (epoch-stamped by the caller).
fn binding_ops(topo: &Topology) -> Vec<BindingOp> {
    let mut ops = Vec::with_capacity(topo.binding_count() + topo.hosts.len());
    for h in &topo.hosts {
        let mac = MacAddr::from_index(h.mac_index);
        ops.push(BindingOp::Bind(Binding::IpMac { ip: h.ip, mac }));
        ops.push(BindingOp::Bind(Binding::HostIp {
            host: h.hostname.clone(),
            ip: h.ip,
        }));
        for u in &h.users {
            ops.push(BindingOp::Bind(Binding::UserHost {
                user: u.clone(),
                host: h.hostname.clone(),
            }));
        }
        ops.push(BindingOp::Bind(Binding::MacLocation {
            mac,
            dpid: h.dpid,
            port: h.port,
        }));
    }
    ops
}

/// The ~512-rule hostname ACL: destination-keyed allows over the probe
/// pool's hosts, a deny in every 7th slot, four priority bands.
fn acl_rules(topo: &Topology, pool: &[usize], n_rules: usize) -> Vec<(PolicyRule, u32)> {
    (0..n_rules)
        .map(|k| {
            let dst = &topo.hosts[pool[k % pool.len()]].hostname;
            let rule = if k % 7 == 3 {
                PolicyRule::deny(EndpointPattern::any(), EndpointPattern::host(dst))
            } else {
                PolicyRule::allow(EndpointPattern::any(), EndpointPattern::host(dst))
            };
            (
                rule,
                10 * (1 + (k.wrapping_mul(2_654_435_761) >> 16) as u32 % 4),
            )
        })
        .collect()
}

enum Sut {
    Oracle(Dfi),
    Sharded(ShardedDfi),
}

struct Config {
    sim: Sim,
    sut: Sut,
    /// Keeps the switch fabric alive.
    _net: Network,
    /// Injection handles for the probe/offer pool, pool order.
    tx: Vec<Tx>,
}

impl Config {
    fn decided(&self) -> (u64, u64, u64) {
        let m = match &self.sut {
            Sut::Oracle(d) => d.metrics(),
            Sut::Sharded(s) => s.metrics(),
        };
        (m.allowed, m.denied, m.spoof_denied)
    }
}

fn build(topo: &Topology, pool: &[usize], seed: u64, shards: Option<usize>) -> Config {
    let mut sim = Sim::new(seed);
    let mut net = Network::new();
    let switches = net.build_topology(topo, Duration::from_micros(50));
    let null: ByteSink = Rc::new(|_, _| {});
    let sut = match shards {
        None => {
            let dfi = Dfi::new(DfiConfig::default());
            for sw in &switches {
                let n = null.clone();
                dfi.interpose(&mut sim, sw, move |_, _| n);
            }
            Sut::Oracle(dfi)
        }
        Some(n_shards) => {
            let sharded = ShardedDfi::new(n_shards, &DfiConfig::default());
            for sw in &switches {
                let n = null.clone();
                sharded.interpose(&mut sim, sw, move |_, _| n);
            }
            Sut::Sharded(sharded)
        }
    };
    let tx = pool
        .iter()
        .map(|&i| {
            let h = &topo.hosts[i];
            net.attach_silent_host(
                &switches[h.dpid as usize - 1],
                h.port,
                Duration::from_micros(50),
            )
        })
        .collect();
    // Bindings through the batch path, policy through the front-end.
    let ops = binding_ops(topo);
    match &sut {
        Sut::Oracle(d) => {
            let _fresh = d.apply_binding_batch(&BindingBatch { epoch: 0, ops });
        }
        Sut::Sharded(s) => {
            let _epoch = s.apply_binding_ops(ops);
        }
    }
    for (rule, priority) in acl_rules(topo, pool, 512) {
        match &sut {
            Sut::Oracle(d) => {
                d.insert_policy(&mut sim, rule, priority, "scalegate");
            }
            Sut::Sharded(s) => {
                s.insert_policy(&mut sim, rule, priority, "scalegate");
            }
        }
    }
    sim.run();
    Config {
        sim,
        sut,
        _net: net,
        tx,
    }
}

/// One probe flow: pool[src] → pool[dst], unique source port.
fn probe_frame(topo: &Topology, pool: &[usize], i: usize) -> (usize, Vec<u8>) {
    let p = pool.len();
    let src = i % p;
    let mut dst = (i * 7 + 3) % p;
    if dst == src {
        dst = (dst + 1) % p;
    }
    let s = &topo.hosts[pool[src]];
    let d = &topo.hosts[pool[dst]];
    let frame = build::tcp_syn(
        MacAddr::from_index(s.mac_index),
        MacAddr::from_index(d.mac_index),
        s.ip,
        d.ip,
        40_000_u16.wrapping_add(i as u16),
        if i.is_multiple_of(2) { 445 } else { 80 },
    );
    (src, frame)
}

/// Replays the probes one at a time, returning the per-probe decision
/// deltas. This is the equivalence trace compared across configurations.
fn probe_trace(
    cfg: &mut Config,
    topo: &Topology,
    pool: &[usize],
    probes: usize,
) -> Vec<(u64, u64, u64)> {
    let mut out = Vec::with_capacity(probes);
    let mut last = cfg.decided();
    for i in 0..probes {
        let (src, frame) = probe_frame(topo, pool, i);
        cfg.tx[src].send(&mut cfg.sim, frame);
        cfg.sim.run();
        let now = cfg.decided();
        out.push((now.0 - last.0, now.1 - last.1, now.2 - last.2));
        last = now;
    }
    out
}

/// The binding-batch ops one churn event expands to.
fn churn_binding_ops(topo: &Topology, op: ChurnOp) -> Vec<BindingOp> {
    match op {
        ChurnOp::LeaseMove {
            host,
            mac_index,
            old_ip,
            new_ip,
        } => {
            let hostname = topo.hosts[host as usize].hostname.clone();
            vec![
                BindingOp::Unbind(Binding::IpMac {
                    ip: old_ip,
                    mac: MacAddr::from_index(mac_index),
                }),
                BindingOp::Bind(Binding::IpMac {
                    ip: new_ip,
                    mac: MacAddr::from_index(mac_index),
                }),
                BindingOp::Unbind(Binding::HostIp {
                    host: hostname.clone(),
                    ip: old_ip,
                }),
                BindingOp::Bind(Binding::HostIp {
                    host: hostname,
                    ip: new_ip,
                }),
            ]
        }
        ChurnOp::LogOn { user, host } => vec![BindingOp::Bind(Binding::UserHost {
            user,
            host: topo.hosts[host as usize].hostname.clone(),
        })],
        ChurnOp::LogOff { user, host } => vec![BindingOp::Unbind(Binding::UserHost {
            user,
            host: topo.hosts[host as usize].hostname.clone(),
        })],
    }
}

/// The diurnally thinned open-loop flow offer as `(t_secs, pool src index,
/// frame)` per flow, plus the horizon. One seed produces one schedule, so
/// the cooperative and thread-parallel modes replay the identical offer.
fn offer_schedule(
    topo: &Topology,
    pool: &[usize],
    offered: usize,
    peak_rate: f64,
    seed: u64,
) -> (Vec<(f64, usize, Vec<u8>)>, Duration) {
    let mut rng = SimRng::new(seed ^ 0x5CA1E);
    let day = Duration::from_secs_f64(offered as f64 / peak_rate);
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(offered);
    while out.len() < offered {
        t += rng.exponential(1.0 / (peak_rate * 1.8));
        let at = SimTime::from_nanos((t * 1e9) as u64);
        if !rng.chance(diurnal_intensity(at, day) / 1.8) {
            continue;
        }
        let i = out.len();
        let p = pool.len();
        let src = rng.index(p);
        let mut dst = rng.index(p);
        if dst == src {
            dst = (dst + 1) % p;
        }
        let s = &topo.hosts[pool[src]];
        let d = &topo.hosts[pool[dst]];
        let frame = build::tcp_syn(
            MacAddr::from_index(s.mac_index),
            MacAddr::from_index(d.mac_index),
            s.ip,
            d.ip,
            1024_u16.wrapping_add(i as u16),
            if i.is_multiple_of(2) { 445 } else { 80 },
        );
        out.push((t, src, frame));
    }
    (out, Duration::from_secs_f64(t))
}

struct Timing {
    offered: usize,
    accepted: u64,
    dropped: u64,
    sim_secs: f64,
    wall_secs: f64,
    ttfb_p50_ms: f64,
    ttfb_p99_ms: f64,
    binding_batches: u64,
}

/// The timed window: diurnal flow offer + churn batches, measuring only
/// samples recorded after this point.
fn run_timed(
    cfg: &mut Config,
    topo: &Topology,
    pool: &[usize],
    offered: usize,
    peak_rate: f64,
    seed: u64,
) -> Timing {
    let sharded = match &cfg.sut {
        Sut::Sharded(s) => s.clone(),
        Sut::Oracle(_) => unreachable!("only sharded configurations are timed"),
    };
    let base: Vec<usize> = sharded
        .shards()
        .iter()
        .map(|s| s.metrics().overall.count())
        .collect();
    let (accept0, deny0, spoof0) = cfg.decided();
    let dropped0 = sharded.metrics().dropped;

    // Thinned exponential arrivals against the diurnal profile; the day is
    // compressed so the offer sweeps trough→peak→trough inside the run.
    let (offer, horizon) = offer_schedule(topo, pool, offered, peak_rate, seed);
    let day = Duration::from_secs_f64(offered as f64 / peak_rate);
    let scheduled = offer.len();
    for (t, src, frame) in offer {
        let tx = cfg.tx[src].clone();
        cfg.sim.schedule_in(Duration::from_secs_f64(t), move |sim| {
            tx.send(sim, frame);
        });
    }

    // The churn schedule, applied as epoch-stamped batches mid-run.
    let churn = generate_churn(
        topo,
        &ChurnParams {
            day,
            horizon,
            lease_moves_per_host_day: 0.02,
            session_toggles_per_user_day: 0.01,
        },
        seed,
    );
    let n_churn = churn.len();
    for ev in churn {
        let ops = churn_binding_ops(topo, ev.op);
        let s = sharded.clone();
        let delay = Duration::from_nanos(ev.at.as_nanos());
        cfg.sim.schedule_in(delay, move |_| {
            let _epoch = s.apply_binding_ops(ops);
        });
    }
    eprintln!(
        "  timed window: {offered} flows over {:.2} sim-s, {n_churn} churn events",
        horizon.as_secs_f64()
    );

    let t0 = cfg.sim.now();
    let wall = Instant::now();
    cfg.sim.run();
    let wall_secs = wall.elapsed().as_secs_f64();
    let sim_secs = cfg.sim.now().saturating_duration_since(t0).as_secs_f64();

    let (a, d, sp) = cfg.decided();
    let accepted = (a - accept0) + (d - deny0) + (sp - spoof0);
    let mut ttfb = Summary::new();
    for (shard, skip) in sharded.shards().iter().zip(&base) {
        for s in &shard.metrics().overall.samples()[*skip..] {
            ttfb.push(*s);
        }
    }
    Timing {
        offered: scheduled,
        accepted,
        dropped: sharded.metrics().dropped - dropped0,
        sim_secs,
        wall_secs,
        ttfb_p50_ms: ttfb.percentile(0.50) * 1e3,
        ttfb_p99_ms: ttfb.percentile(0.99) * 1e3,
        binding_batches: sharded.fanout_metrics().binding_batches,
    }
}

/// The thread-parallel fleet plus its pool-order injection map.
struct ParFleet {
    fleet: ParallelShardedDfi,
    /// Per pool index: `(worker, tap index inside that worker)`.
    tap_of: Vec<(usize, u32)>,
}

/// Worker `w`'s world for the wall phase: its shard's switches behind a
/// null upstream sink (same no-controller build as the cooperative
/// configurations) and the pool hosts homed on them. No inter-switch
/// links are wired — with a null controller nothing forwards, so no
/// boundary relays exist and the workers share nothing but snapshots and
/// binding batches.
fn wall_builder(topo: Arc<Topology>, pool: Arc<Vec<usize>>, w: usize, n: usize) -> WorldBuilder {
    Box::new(move |sim, dfi, _outbox| {
        let mut net = Network::new();
        let null: ByteSink = Rc::new(|_, _| {});
        let mut local: HashMap<u64, Switch> = HashMap::new();
        for spec in &topo.switches {
            if shard_of(spec.dpid, n) == w {
                let sw = net.add_switch(SwitchConfig::new(spec.dpid));
                let sink = null.clone();
                dfi.interpose(sim, &sw, move |_, _| sink);
                local.insert(spec.dpid, sw);
            }
        }
        let mut taps = Vec::new();
        for &i in pool.iter() {
            let h = &topo.hosts[i];
            if let Some(sw) = local.get(&h.dpid) {
                taps.push(net.attach_silent_host(sw, h.port, Duration::from_micros(50)));
            }
        }
        let observe: ObserveFn = Box::new(|_sim| (Vec::new(), Vec::new()));
        WorkerWorld {
            taps,
            boundaries: Vec::new(),
            observe,
        }
    })
}

/// Builds and loads a [`ParallelShardedDfi`] over `threads` worker
/// threads: same bindings (chunked so no command channel balloons) and the
/// same ACL as every cooperative configuration.
fn build_parallel(
    topo: &Arc<Topology>,
    pool: &Arc<Vec<usize>>,
    seed: u64,
    threads: usize,
) -> ParFleet {
    let builders: Vec<WorldBuilder> = (0..threads)
        .map(|w| wall_builder(Arc::clone(topo), Arc::clone(pool), w, threads))
        .collect();
    let mut fleet = ParallelShardedDfi::new(&DfiConfig::default(), seed, builders, HashMap::new());
    let mut next_tap = vec![0u32; threads];
    let tap_of: Vec<(usize, u32)> = pool
        .iter()
        .map(|&i| {
            let w = shard_of(topo.hosts[i].dpid, threads);
            let t = next_tap[w];
            next_tap[w] += 1;
            (w, t)
        })
        .collect();
    let mut ops = binding_ops(topo);
    while !ops.is_empty() {
        let rest = ops.split_off(ops.len().min(65_536));
        fleet.apply_binding_ops(ops);
        ops = rest;
    }
    for (rule, priority) in acl_rules(topo, pool, 512) {
        fleet.insert_policy(rule, priority, "scalegate");
    }
    fleet.drain();
    ParFleet { fleet, tap_of }
}

/// The equivalence trace against a thread-parallel fleet: one probe at a
/// time through the owning worker, per-probe decision deltas plus the
/// final merged metrics (for attribution comparison).
fn probe_trace_parallel(
    pf: &mut ParFleet,
    topo: &Topology,
    pool: &[usize],
    probes: usize,
) -> (Vec<(u64, u64, u64)>, DfiMetrics) {
    let mut out = Vec::with_capacity(probes);
    let r = pf.fleet.drain();
    let mut last = (r.metrics.allowed, r.metrics.denied, r.metrics.spoof_denied);
    let mut metrics = r.metrics;
    for i in 0..probes {
        let (src, frame) = probe_frame(topo, pool, i);
        let (w, tap) = pf.tap_of[src];
        pf.fleet.punt(w, tap, frame);
        let r = pf.fleet.drain();
        let now = (r.metrics.allowed, r.metrics.denied, r.metrics.spoof_denied);
        out.push((now.0 - last.0, now.1 - last.1, now.2 - last.2));
        last = now;
        metrics = r.metrics;
    }
    (out, metrics)
}

struct WallTiming {
    offered: usize,
    accepted: u64,
    dropped: u64,
    sim_secs: f64,
    wall_secs: f64,
    ttfb_p50_ms: f64,
    ttfb_p99_ms: f64,
}

/// The wall-clock window: the identical offer `run_timed` replays, punted
/// as absolute-time injections across the worker threads, racing the same
/// churn schedule applied as fleet-wide binding batches. The wall timer
/// spans first enqueue through the final drain fixpoint.
fn run_wall(
    pf: &mut ParFleet,
    topo: &Topology,
    pool: &[usize],
    offered: usize,
    peak_rate: f64,
    seed: u64,
) -> WallTiming {
    let before = pf.fleet.drain();
    let base: Vec<usize> = before.per_shard.iter().map(|m| m.overall.count()).collect();
    let (accept0, deny0, spoof0) = (
        before.metrics.allowed,
        before.metrics.denied,
        before.metrics.spoof_denied,
    );
    let dropped0 = before.metrics.dropped;
    // Worker clocks drift (only workers with events advance); anchor the
    // window past every clock so absolute injection times are in every
    // worker's future.
    let t0 = before.clocks.iter().copied().max().unwrap_or_default() + Duration::from_millis(1);

    let (offer, horizon) = offer_schedule(topo, pool, offered, peak_rate, seed);
    let day = Duration::from_secs_f64(offered as f64 / peak_rate);
    let scheduled = offer.len();
    let churn = generate_churn(
        topo,
        &ChurnParams {
            day,
            horizon,
            lease_moves_per_host_day: 0.02,
            session_toggles_per_user_day: 0.01,
        },
        seed,
    );
    eprintln!(
        "  wall window: {scheduled} flows over {:.2} sim-s, {} churn events",
        horizon.as_secs_f64(),
        churn.len()
    );

    let wall = Instant::now();
    for (t, src, frame) in offer {
        let (w, tap) = pf.tap_of[src];
        pf.fleet
            .punt_at(w, tap, frame, t0 + Duration::from_secs_f64(t));
    }
    for ev in churn {
        pf.fleet
            .advance_all(t0 + Duration::from_nanos(ev.at.as_nanos()));
        pf.fleet.apply_binding_ops(churn_binding_ops(topo, ev.op));
    }
    let after = pf.fleet.drain();
    let wall_secs = wall.elapsed().as_secs_f64();

    let end = after.clocks.iter().copied().max().unwrap_or(t0);
    let accepted = (after.metrics.allowed - accept0)
        + (after.metrics.denied - deny0)
        + (after.metrics.spoof_denied - spoof0);
    let mut ttfb = Summary::new();
    for (m, skip) in after.per_shard.iter().zip(&base) {
        for s in &m.overall.samples()[*skip..] {
            ttfb.push(*s);
        }
    }
    WallTiming {
        offered: scheduled,
        accepted,
        dropped: after.metrics.dropped - dropped0,
        sim_secs: end.saturating_duration_since(t0).as_secs_f64(),
        wall_secs,
        ttfb_p50_ms: ttfb.percentile(0.50) * 1e3,
        ttfb_p99_ms: ttfb.percentile(0.99) * 1e3,
    }
}

struct SweepPoint {
    rate: f64,
    offered: usize,
    accepted: u64,
    dropped: u64,
    sim_secs: f64,
    ttfb_p50_ms: f64,
    ttfb_p99_ms: f64,
}

/// The Fig-4 saturation sweep: constant-rate exponential arrivals at each
/// offered rate, run to quiescence, reporting the accepted rate and the
/// TTFB tail per point. Saturation shows up as `dropped` climbing and the
/// accepted rate flattening below the offer.
fn run_sweep(
    cfg: &mut Config,
    topo: &Topology,
    pool: &[usize],
    rates: &[f64],
    flows: usize,
    seed: u64,
) -> Vec<SweepPoint> {
    let sharded = match &cfg.sut {
        Sut::Sharded(s) => s.clone(),
        Sut::Oracle(_) => unreachable!("only sharded configurations sweep"),
    };
    let mut sport = 20_000u16;
    let mut out = Vec::with_capacity(rates.len());
    for (ri, &rate) in rates.iter().enumerate() {
        let base: Vec<usize> = sharded
            .shards()
            .iter()
            .map(|s| s.metrics().overall.count())
            .collect();
        let (accept0, deny0, spoof0) = cfg.decided();
        let dropped0 = sharded.metrics().dropped;
        let mut rng = SimRng::new(seed ^ 0xF164 ^ ((ri as u64) << 32));
        let t_start = cfg.sim.now();
        let mut t = 0.0f64;
        for i in 0..flows {
            t += rng.exponential(1.0 / rate);
            let p = pool.len();
            let src = rng.index(p);
            let mut dst = rng.index(p);
            if dst == src {
                dst = (dst + 1) % p;
            }
            let s = &topo.hosts[pool[src]];
            let d = &topo.hosts[pool[dst]];
            let frame = build::tcp_syn(
                MacAddr::from_index(s.mac_index),
                MacAddr::from_index(d.mac_index),
                s.ip,
                d.ip,
                sport,
                if i.is_multiple_of(2) { 445 } else { 80 },
            );
            sport = sport.wrapping_add(1);
            let tx = cfg.tx[src].clone();
            cfg.sim.schedule_in(Duration::from_secs_f64(t), move |sim| {
                tx.send(sim, frame);
            });
        }
        cfg.sim.run();
        let sim_secs = cfg
            .sim
            .now()
            .saturating_duration_since(t_start)
            .as_secs_f64();
        let (a, d, sp) = cfg.decided();
        let accepted = (a - accept0) + (d - deny0) + (sp - spoof0);
        let mut ttfb = Summary::new();
        for (shard, skip) in sharded.shards().iter().zip(&base) {
            for v in &shard.metrics().overall.samples()[*skip..] {
                ttfb.push(*v);
            }
        }
        out.push(SweepPoint {
            rate,
            offered: flows,
            accepted,
            dropped: sharded.metrics().dropped - dropped0,
            sim_secs,
            ttfb_p50_ms: ttfb.percentile(0.50) * 1e3,
            ttfb_p99_ms: ttfb.percentile(0.99) * 1e3,
        });
    }
    out
}

fn main() -> ExitCode {
    let mut gate: Option<f64> = None;
    let mut do_sweep = false;
    let mut do_wall = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--gate" => {
                let v = args.next().and_then(|v| v.parse().ok());
                let Some(v) = v else {
                    eprintln!("--gate requires a numeric throughput-scaling factor");
                    return ExitCode::FAILURE;
                };
                gate = Some(v);
            }
            "--sweep" => do_sweep = true,
            "--wall" => do_wall = true,
            other => {
                eprintln!(
                    "unknown argument: {other}\n\
                     usage: dfi-scalegate [--gate N] [--sweep] [--wall]"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let seed = env_usize("SCALE_SEED", 2019) as u64;
    let offered = env_usize("SCALE_ITERS", 12_000);
    let probes = env_usize("SCALE_PROBES", 512);
    let hosts = env_usize("SCALE_HOSTS", 250_000) as u32;
    let leaves = env_usize("SCALE_LEAVES", 960) as u32;
    let spines = env_usize("SCALE_SPINES", 40) as u32;
    let pool_size = env_usize("SCALE_POOL", 2048);
    let peak_rate = env_f64("SCALE_RATE", 6000.0);
    let sweep_flows = env_usize("SCALE_SWEEP_ITERS", 2500);
    let sweep_rates = [1000.0, 2000.0, 4000.0, 8000.0, 16000.0];
    let shard_counts = [1usize, 2, 4, 8];

    // The wall gate derates with the hardware: demanding a literal 3x on a
    // single-core container proves nothing but that the box is small. The
    // measured core count and the applied threshold go into the report.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let wall_gate = env_f64(
        "SCALE_WALL_GATE",
        if cores >= 8 {
            3.0
        } else if cores >= 2 {
            (0.6 * cores as f64).min(3.0)
        } else {
            0.7
        },
    );
    let wall_tol = env_f64("SCALE_WALL_TOL", if cores >= 8 { 0.95 } else { 0.7 });

    eprintln!(
        "generating topology ({} switches, {hosts} hosts)...",
        spines + leaves
    );
    let topo = Arc::new(Topology::generate(
        &TopoParams {
            kind: TopoKind::LeafSpine { spines, leaves },
            hosts,
            users_per_host: 2,
        },
        seed,
    ));
    let bindings = topo.binding_count() + topo.hosts.len();
    let mut rng = SimRng::new(seed ^ 0xB00);
    let pool: Arc<Vec<usize>> = Arc::new(
        (0..pool_size.min(topo.hosts.len()))
            .map(|_| rng.index(topo.hosts.len()))
            .collect(),
    );

    eprintln!("oracle: loading {bindings} bindings...");
    let mut oracle = build(&topo, &pool, seed, None);
    let want = probe_trace(&mut oracle, &topo, &pool, probes);
    let oracle_by_policy = match &oracle.sut {
        Sut::Oracle(d) => d.metrics().decisions_by_policy,
        Sut::Sharded(_) => unreachable!(),
    };
    drop(oracle);

    let mut equivalent = true;
    let mut results = Vec::new();
    let mut sweeps: Vec<(usize, Vec<SweepPoint>)> = Vec::new();
    for &n in &shard_counts {
        eprintln!("shards={n}: loading {bindings} bindings...");
        let mut cfg = build(&topo, &pool, seed, Some(n));
        let got = probe_trace(&mut cfg, &topo, &pool, probes);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            if g != w {
                eprintln!(
                    "EQUIVALENCE FAIL shards={n} probe={i}: sharded={g:?} oracle={w:?} \
                     (repro: SCALE_SEED={seed} SCALE_PROBES={probes})"
                );
                equivalent = false;
            }
        }
        if let Sut::Sharded(s) = &cfg.sut {
            if s.metrics().decisions_by_policy != oracle_by_policy {
                eprintln!(
                    "EQUIVALENCE FAIL shards={n}: per-policy attribution diverged \
                     (repro: SCALE_SEED={seed} SCALE_PROBES={probes})"
                );
                equivalent = false;
            }
            if !s.epochs_agree() {
                eprintln!("EQUIVALENCE FAIL shards={n}: shards serve different epochs");
                equivalent = false;
            }
        }
        if !equivalent {
            break;
        }
        let t = run_timed(&mut cfg, &topo, &pool, offered, peak_rate, seed);
        results.push((n, t));
        if do_sweep {
            eprintln!("shards={n}: sweeping {:?} f/s...", sweep_rates);
            let pts = run_sweep(&mut cfg, &topo, &pool, &sweep_rates, sweep_flows, seed);
            sweeps.push((n, pts));
        }
        drop(cfg);
    }

    // Phase 4: the same workload through real worker threads, wall-clocked.
    let mut wall_results: Vec<(usize, WallTiming)> = Vec::new();
    if do_wall && equivalent {
        for &n in &shard_counts {
            eprintln!("threads={n}: loading {bindings} bindings...");
            let mut pf = build_parallel(&topo, &pool, seed, n);
            let (got, metrics) = probe_trace_parallel(&mut pf, &topo, &pool, probes);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                if g != w {
                    eprintln!(
                        "EQUIVALENCE FAIL threads={n} probe={i}: parallel={g:?} oracle={w:?} \
                         (repro: SCALE_SEED={seed} SCALE_PROBES={probes})"
                    );
                    equivalent = false;
                }
            }
            if metrics.decisions_by_policy != oracle_by_policy {
                eprintln!(
                    "EQUIVALENCE FAIL threads={n}: per-policy attribution diverged \
                     (repro: SCALE_SEED={seed} SCALE_PROBES={probes})"
                );
                equivalent = false;
            }
            if !pf.fleet.epochs_agree() {
                eprintln!("EQUIVALENCE FAIL threads={n}: workers serve different epochs");
                equivalent = false;
            }
            if !equivalent {
                pf.fleet.shutdown();
                break;
            }
            let t = run_wall(&mut pf, &topo, &pool, offered, peak_rate, seed);
            pf.fleet.shutdown();
            wall_results.push((n, t));
        }
    }

    let ratio = match (results.first(), results.last()) {
        (Some((1, one)), Some((8, eight))) if one.accepted > 0 => {
            (eight.accepted as f64 / eight.sim_secs) / (one.accepted as f64 / one.sim_secs)
        }
        _ => 0.0,
    };
    let wall_fps = |t: &WallTiming| t.accepted as f64 / t.wall_secs;
    let wall_ratio = match (wall_results.first(), wall_results.last()) {
        (Some((1, one)), Some((8, eight))) if one.accepted > 0 => wall_fps(eight) / wall_fps(one),
        _ => 0.0,
    };
    // Monotonicity is only meaningful while threads fit on real cores:
    // past that point added workers cannot add parallelism and step-to-step
    // deltas measure the scheduler, not the sharding. Oversubscribed points
    // are instead held to the no-collapse floor against the 1-thread run.
    let wall_base = wall_results.first().map_or(0.0, |(_, t)| wall_fps(t));
    let wall_monotone = wall_results.windows(2).all(|w| {
        if w[1].0 <= cores {
            wall_fps(&w[1].1) >= wall_tol * wall_fps(&w[0].1)
        } else {
            wall_fps(&w[1].1) >= wall_tol * wall_base
        }
    });
    let wall_pass = !do_wall
        || (equivalent
            && wall_results.len() == shard_counts.len()
            && wall_ratio >= wall_gate
            && wall_monotone);
    let pass = equivalent && gate.is_none_or(|g| ratio >= g) && wall_pass;

    println!("{{");
    println!(
        "  \"topology\": {{\"switches\": {}, \"hosts\": {}, \"bindings\": {bindings}}},",
        topo.switches.len(),
        topo.hosts.len()
    );
    println!(
        "  \"probes\": {probes}, \"equivalent\": {equivalent}, \"peak_rate\": {peak_rate:.0},"
    );
    println!(
        "  \"hardware\": {{\"cores\": {cores}, \"wall_gate\": {wall_gate:.2}, \
         \"wall_tol\": {wall_tol:.2}}},"
    );
    println!("  \"cooperative\": [");
    for (i, (n, t)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        println!(
            "    {{\"shards\": {n}, \"offered\": {}, \"accepted\": {}, \"dropped\": {}, \
             \"sim_flows_per_sec\": {:.0}, \"wall_flows_per_sec_cooperative\": {:.0}, \
             \"ttfb_ms\": {{\"p50\": {:.3}, \"p99\": {:.3}}}, \"binding_batches\": {}}}{comma}",
            t.offered,
            t.accepted,
            t.dropped,
            t.accepted as f64 / t.sim_secs,
            t.accepted as f64 / t.wall_secs,
            t.ttfb_p50_ms,
            t.ttfb_p99_ms,
            t.binding_batches
        );
    }
    println!("  ],");
    println!("  \"parallel\": [");
    for (i, (n, t)) in wall_results.iter().enumerate() {
        let comma = if i + 1 < wall_results.len() { "," } else { "" };
        println!(
            "    {{\"threads\": {n}, \"offered\": {}, \"accepted\": {}, \"dropped\": {}, \
             \"sim_flows_per_sec\": {:.0}, \"wall_flows_per_sec_parallel\": {:.0}, \
             \"ttfb_ms\": {{\"p50\": {:.3}, \"p99\": {:.3}}}}}{comma}",
            t.offered,
            t.accepted,
            t.dropped,
            t.accepted as f64 / t.sim_secs,
            wall_fps(t),
            t.ttfb_p50_ms,
            t.ttfb_p99_ms,
        );
    }
    println!("  ],");
    println!("  \"sweep\": [");
    let n_points: usize = sweeps.iter().map(|(_, pts)| pts.len()).sum();
    let mut emitted = 0usize;
    for (n, pts) in &sweeps {
        for p in pts {
            emitted += 1;
            let comma = if emitted < n_points { "," } else { "" };
            println!(
                "    {{\"shards\": {n}, \"offered_rate\": {:.0}, \"offered\": {}, \
                 \"accepted\": {}, \"dropped\": {}, \"accepted_rate\": {:.0}, \
                 \"ttfb_ms\": {{\"p50\": {:.3}, \"p99\": {:.3}}}}}{comma}",
                p.rate,
                p.offered,
                p.accepted,
                p.dropped,
                p.accepted as f64 / p.sim_secs,
                p.ttfb_p50_ms,
                p.ttfb_p99_ms,
            );
        }
    }
    println!("  ],");
    println!(
        "  \"gate\": {{\"required_scaling\": {}, \"scaling_8v1\": {ratio:.2}, \
         \"parallel_wall_8v1\": {wall_ratio:.2}, \"parallel_wall_monotone\": {wall_monotone}, \
         \"pass\": {pass}}}",
        gate.map_or_else(|| "null".to_string(), |g| format!("{g:.1}"))
    );
    println!("}}");

    if !equivalent {
        eprintln!("GATE FAIL: sharded decisions diverged from the unsharded oracle");
        return ExitCode::FAILURE;
    }
    if let Some(g) = gate {
        if ratio < g {
            eprintln!("GATE FAIL: 8-shard/1-shard accepted-throughput scaling {ratio:.2}x < required {g:.1}x");
            return ExitCode::FAILURE;
        }
        eprintln!("gate ok: equivalence held over {probes} probes; 8-shard scaling {ratio:.2}x");
    }
    if do_wall {
        if !wall_pass {
            eprintln!(
                "GATE FAIL: parallel wall scaling 8v1 {wall_ratio:.2}x (required \
                 {wall_gate:.2}x on {cores} cores, monotone={wall_monotone})"
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "wall gate ok: parallel 8v1 {wall_ratio:.2}x >= {wall_gate:.2}x on {cores} cores, \
             monotone in thread count"
        );
    }
    ExitCode::SUCCESS
}
