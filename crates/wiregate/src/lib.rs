//! Shared measurement harness for the DFI performance gates
//! (`dfi-wiregate`, `dfi-decidegate`): a counting `GlobalAlloc` over
//! [`System`] plus a best-of-repetitions timing loop.
//!
//! Each gate binary installs the allocator itself:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOCATOR: dfi_wiregate::CountingAlloc = dfi_wiregate::CountingAlloc;
//! ```
//!
//! This crate is deliberately NOT opted into the workspace lint set: the
//! counting allocator must implement `GlobalAlloc` (an `unsafe` trait),
//! and the workspace forbids `unsafe_code`. The unsafety is confined to
//! the forwarding methods here; every other library crate stays under the
//! workspace `forbid`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

/// Global allocation counter incremented by [`CountingAlloc`].
pub static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Global allocated-bytes counter incremented by [`CountingAlloc`].
pub static BYTES: AtomicU64 = AtomicU64::new(0);

/// Forwards to [`System`], counting every allocation and reallocation.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(new_size as u64, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// One measured workload: mean wall time and allocation count per op.
#[derive(Clone, Copy)]
pub struct Measure {
    /// Nanoseconds per operation (best repetition).
    pub ns_per_op: f64,
    /// Allocations per operation (best repetition).
    pub allocs_per_op: f64,
}

/// Runs `f` for `iters` iterations, three repetitions after a warmup, and
/// keeps the best (least-noisy) repetition for both metrics.
pub fn measure<F: FnMut()>(iters: u64, mut f: F) -> Measure {
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let mut best = Measure {
        ns_per_op: f64::INFINITY,
        allocs_per_op: f64::INFINITY,
    };
    for _ in 0..3 {
        let a0 = ALLOCS.load(Relaxed);
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
        let allocs = (ALLOCS.load(Relaxed) - a0) as f64 / iters as f64;
        best.ns_per_op = best.ns_per_op.min(ns);
        best.allocs_per_op = best.allocs_per_op.min(allocs);
    }
    best
}

/// Renders a [`Measure`] as the gates' JSON object fragment.
pub fn fmt_measure(m: Measure) -> String {
    format!(
        "{{\"ns_per_op\": {:.1}, \"allocs_per_op\": {:.3}}}",
        m.ns_per_op, m.allocs_per_op
    )
}
