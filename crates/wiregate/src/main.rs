//! Wire-path allocation and speedup gate.
//!
//! Installs a counting `GlobalAlloc` over `System` and measures the
//! zero-copy OpenFlow wire path against the decode → rewrite → re-encode
//! oracle it replaced:
//!
//! * `encode` — fresh `encode()` per message vs `encode_into` a reused
//!   buffer,
//! * `shift_up` / `shift_down` — the splice in-place table rewrite vs the
//!   full-decode oracle,
//! * `batch` — FlowMod + Barrier framed back-to-back into one buffer vs
//!   two separate encodes,
//! * `steady_state` — the proxy's pooled acquire → copy → splice →
//!   release cycle, which must allocate nothing per flow once warm.
//!
//! Prints a JSON report to stdout (captured into `BENCH_wire.json` by
//! `scripts/check.sh --wire`). With `--gate N` it exits non-zero unless
//! both splice directions are at least `N`× the oracle and the steady
//! state stays at zero allocations per flow.

use std::hint::black_box;
use std::net::Ipv4Addr;
use std::process::ExitCode;

use dfi_core::rewrite::{
    rewrite_controller_frame_in_place, rewrite_controller_to_switch, rewrite_switch_frame_in_place,
    rewrite_switch_to_controller, ControllerFrame, SwitchFrame, Upstream,
};
use dfi_core::BufPool;
use dfi_openflow::{
    Action, FlowMod, FlowStatsEntry, Instruction, Match, Message, MultipartReply, OfMessage,
};
use dfi_wiregate::{fmt_measure, measure, CountingAlloc, Measure};

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

const N_TABLES: u8 = 8;

/// A representative PCP-style exact-match flow-mod with a goto chain.
fn sample_flow_mod(i: u32) -> FlowMod {
    FlowMod {
        cookie: u64::from(i),
        table_id: 2,
        priority: 100,
        mat: Match {
            in_port: Some(1 + i % 40),
            eth_type: Some(0x0800),
            ip_proto: Some(6),
            ipv4_src: Some(Ipv4Addr::from(0x0A00_0000 + i)),
            ipv4_dst: Some(Ipv4Addr::from(0x0A40_0000 + i)),
            tcp_src: Some(40_000 + (i % 1000) as u16),
            tcp_dst: Some(445),
            ..Match::default()
        },
        instructions: vec![
            Instruction::ApplyActions(vec![Action::output(2)]),
            Instruction::GotoTable(3),
        ],
        ..FlowMod::add()
    }
}

/// A two-entry flow-stats reply the splicer can patch in place.
fn sample_stats_reply() -> OfMessage {
    let entry = |table_id: u8| FlowStatsEntry {
        table_id,
        duration_sec: 12,
        duration_nsec: 0,
        priority: 100,
        idle_timeout: 30,
        hard_timeout: 0,
        flags: 0,
        cookie: u64::from(table_id),
        packet_count: 1_000,
        byte_count: 64_000,
        mat: Match {
            eth_type: Some(0x0800),
            ipv4_dst: Some(Ipv4Addr::new(10, 0, 0, 7)),
            ..Match::default()
        },
        instructions: vec![Instruction::GotoTable(table_id + 1)],
    };
    OfMessage::new(
        5,
        Message::MultipartReply(MultipartReply::Flow(vec![entry(2), entry(5)])),
    )
}

struct Report {
    encode_fresh: Measure,
    encode_pooled: Measure,
    up_oracle: Measure,
    up_splice: Measure,
    down_oracle: Measure,
    down_splice: Measure,
    batch_fresh: Measure,
    batch_pooled: Measure,
    steady: Measure,
}

#[allow(clippy::too_many_lines)]
fn run(iters: u64) -> Report {
    let fm_msg = OfMessage::new(7, Message::FlowMod(sample_flow_mod(1)));
    let fm_frame = fm_msg.encode();
    let stats_msg = sample_stats_reply();
    let stats_frame = stats_msg.encode();
    let barrier = OfMessage::new(8, Message::BarrierRequest);

    // encode: fresh Vec per message vs encode_into a reused buffer.
    let encode_fresh = measure(iters, || {
        black_box(fm_msg.encode());
    });
    let mut buf = Vec::new();
    let encode_pooled = measure(iters, || {
        buf.clear();
        fm_msg.encode_into(&mut buf);
        black_box(buf.len());
    });

    // Controller→switch table shift: full decode oracle vs splice.
    let up_oracle = measure(iters, || {
        let msg = OfMessage::decode(&fm_frame).expect("frame decodes");
        match rewrite_controller_to_switch(msg, N_TABLES) {
            Upstream::Forward(msgs) => {
                for m in &msgs {
                    black_box(m.encode());
                }
            }
            Upstream::Reject => unreachable!("sample flow-mod is in range"),
        }
    });
    let mut buf = Vec::new();
    let up_splice = measure(iters, || {
        buf.clear();
        buf.extend_from_slice(&fm_frame);
        let v = rewrite_controller_frame_in_place(&mut buf, N_TABLES);
        assert_eq!(v, ControllerFrame::Forward { spliced: true });
        black_box(buf.len());
    });

    // Switch→controller table shift on a stats reply.
    let down_oracle = measure(iters, || {
        let msg = OfMessage::decode(&stats_frame).expect("frame decodes");
        let out = rewrite_switch_to_controller(msg).expect("forwarded");
        black_box(out.encode());
    });
    let mut buf = Vec::new();
    let down_splice = measure(iters, || {
        buf.clear();
        buf.extend_from_slice(&stats_frame);
        let v = rewrite_switch_frame_in_place(&mut buf);
        assert_eq!(v, SwitchFrame::Forward { spliced: true });
        black_box(buf.len());
    });

    // Tracked install: FlowMod + Barrier as two encodes vs one batch frame.
    let batch_fresh = measure(iters, || {
        black_box(fm_msg.encode());
        black_box(barrier.encode());
    });
    let mut buf = Vec::new();
    let batch_pooled = measure(iters, || {
        buf.clear();
        fm_msg.encode_into(&mut buf);
        barrier.encode_into(&mut buf);
        black_box(buf.len());
    });

    // The proxy's full per-frame cycle: pooled acquire → copy → splice →
    // release. Must be allocation-free once the pool is warm.
    let pool = BufPool::default();
    let steady = measure(iters, || {
        let mut buf = pool.acquire();
        buf.extend_from_slice(&stats_frame);
        let v = rewrite_switch_frame_in_place(&mut buf);
        assert_eq!(v, SwitchFrame::Forward { spliced: true });
        black_box(buf.len());
        pool.release(buf);
    });

    Report {
        encode_fresh,
        encode_pooled,
        up_oracle,
        up_splice,
        down_oracle,
        down_splice,
        batch_fresh,
        batch_pooled,
        steady,
    }
}

fn main() -> ExitCode {
    let mut gate: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--gate" => {
                let v = args.next().and_then(|v| v.parse().ok());
                let Some(v) = v else {
                    eprintln!("--gate requires a numeric speedup factor");
                    return ExitCode::FAILURE;
                };
                gate = Some(v);
            }
            other => {
                eprintln!("unknown argument: {other}\nusage: dfi-wiregate [--gate N]");
                return ExitCode::FAILURE;
            }
        }
    }
    let iters: u64 = std::env::var("WIREGATE_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);

    let r = run(iters);
    let up_speedup = r.up_oracle.ns_per_op / r.up_splice.ns_per_op;
    let down_speedup = r.down_oracle.ns_per_op / r.down_splice.ns_per_op;
    let fmt = fmt_measure;
    println!("{{");
    println!("  \"iters\": {iters},");
    println!(
        "  \"encode\": {{\"fresh\": {}, \"pooled\": {}}},",
        fmt(r.encode_fresh),
        fmt(r.encode_pooled)
    );
    println!(
        "  \"shift_up\": {{\"oracle\": {}, \"splice\": {}, \"speedup\": {up_speedup:.2}}},",
        fmt(r.up_oracle),
        fmt(r.up_splice)
    );
    println!(
        "  \"shift_down\": {{\"oracle\": {}, \"splice\": {}, \"speedup\": {down_speedup:.2}}},",
        fmt(r.down_oracle),
        fmt(r.down_splice)
    );
    println!(
        "  \"batch\": {{\"fresh\": {}, \"pooled\": {}}},",
        fmt(r.batch_fresh),
        fmt(r.batch_pooled)
    );
    println!(
        "  \"steady_state\": {{\"ns_per_flow\": {:.1}, \"allocs_per_flow\": {:.3}}},",
        r.steady.ns_per_op, r.steady.allocs_per_op
    );
    println!(
        "  \"gate\": {{\"required_speedup\": {}, \"pass\": {}}}",
        gate.map_or_else(|| "null".to_string(), |g| format!("{g:.1}")),
        gate.is_none_or(|g| up_speedup >= g && down_speedup >= g && r.steady.allocs_per_op <= 0.01)
    );
    println!("}}");

    if let Some(g) = gate {
        let mut failed = false;
        if up_speedup < g {
            eprintln!("GATE FAIL: shift_up speedup {up_speedup:.2}x < required {g:.1}x");
            failed = true;
        }
        if down_speedup < g {
            eprintln!("GATE FAIL: shift_down speedup {down_speedup:.2}x < required {g:.1}x");
            failed = true;
        }
        if r.steady.allocs_per_op > 0.01 {
            eprintln!(
                "GATE FAIL: steady-state wire path allocates {:.3} allocs/flow (want 0)",
                r.steady.allocs_per_op
            );
            failed = true;
        }
        if failed {
            return ExitCode::FAILURE;
        }
        eprintln!(
            "gate ok: shift_up {up_speedup:.2}x, shift_down {down_speedup:.2}x, \
             steady-state {:.3} allocs/flow",
            r.steady.allocs_per_op
        );
    }
    ExitCode::SUCCESS
}
