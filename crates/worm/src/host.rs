//! End hosts: a minimal Windows-like network stack (TCP connect with
//! Windows retransmission behavior, an SMB-ish listener on port 445) plus
//! infection state.

use dfi_dataplane::Tx;
use dfi_packet::headers::build;
use dfi_packet::{MacAddr, PacketHeaders};
use dfi_simnet::{Sim, SimTime};
use std::cell::RefCell;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::Rc;
use std::time::Duration;

/// Windows TCP connect behavior: initial SYN, retransmissions after 3 s
/// and 9 s, give up at 21 s — the cost a worm pays for probing a target its
/// policy denies.
pub const SYN_RETRY_DELAYS: [Duration; 2] = [Duration::from_secs(3), Duration::from_secs(6)];
/// Total time before a connect attempt fails.
pub const CONNECT_TIMEOUT: Duration = Duration::from_secs(21);

/// The SMB port the worm exploits.
pub const SMB_PORT: u16 = 445;

type ConnectCallback = Box<dyn FnOnce(&mut Sim, bool)>;

struct PendingConnect {
    callback: Option<ConnectCallback>,
}

/// Mutable host state.
pub struct HostNode {
    /// Short machine name (e.g. `d3-h2`).
    pub hostname: String,
    /// Primary user, when this is an end host (servers have none).
    pub primary_user: Option<String>,
    /// The NIC's address.
    pub mac: MacAddr,
    /// The host's address.
    pub ip: Ipv4Addr,
    /// Department enclave (servers: `None`).
    pub enclave: Option<String>,
    /// `true` for the six servers.
    pub is_server: bool,
    /// `true` when the worm's exploit works against this host.
    pub vulnerable: bool,
    /// When the worm took this host, if it did.
    pub infected_at: Option<SimTime>,
    tx: Option<Tx>,
    pending: HashMap<u16, PendingConnect>,
    next_sport: u16,
    /// Static ARP (the testbed pre-populates neighbor state so ARP churn
    /// does not obscure the access-control results; see DESIGN.md).
    arp: HashMap<Ipv4Addr, MacAddr>,
    /// Connections accepted by the listener (diagnostics).
    pub accepted: u64,
}

/// A shared-handle host.
#[derive(Clone)]
pub struct Host {
    inner: Rc<RefCell<HostNode>>,
}

impl Host {
    /// Creates a host (unattached; the testbed wires `tx` and ARP).
    pub fn new(
        hostname: &str,
        primary_user: Option<&str>,
        mac: MacAddr,
        ip: Ipv4Addr,
        enclave: Option<&str>,
        is_server: bool,
        vulnerable: bool,
    ) -> Host {
        Host {
            inner: Rc::new(RefCell::new(HostNode {
                hostname: hostname.to_string(),
                primary_user: primary_user.map(str::to_string),
                mac,
                ip,
                enclave: enclave.map(str::to_string),
                is_server,
                vulnerable,
                infected_at: None,
                tx: None,
                pending: HashMap::new(),
                next_sport: 49_152,
                arp: HashMap::new(),
                accepted: 0,
            })),
        }
    }

    /// Wires the host's NIC transmit handle.
    pub fn attach(&self, tx: Tx) {
        self.inner.borrow_mut().tx = Some(tx);
    }

    /// Adds a static ARP entry.
    pub fn learn_arp(&self, ip: Ipv4Addr, mac: MacAddr) {
        self.inner.borrow_mut().arp.insert(ip, mac);
    }

    /// Runs a closure over the host state.
    pub fn with<R>(&self, f: impl FnOnce(&mut HostNode) -> R) -> R {
        f(&mut self.inner.borrow_mut())
    }

    /// The hostname.
    #[must_use]
    pub fn hostname(&self) -> String {
        self.inner.borrow().hostname.clone()
    }

    /// The address.
    #[must_use]
    pub fn ip(&self) -> Ipv4Addr {
        self.inner.borrow().ip
    }

    /// The MAC.
    #[must_use]
    pub fn mac(&self) -> MacAddr {
        self.inner.borrow().mac
    }

    /// `true` once infected.
    #[must_use]
    pub fn is_infected(&self) -> bool {
        self.inner.borrow().infected_at.is_some()
    }

    /// Marks the host infected (idempotent). Returns `true` on the first
    /// infection.
    #[must_use]
    pub fn mark_infected(&self, at: SimTime) -> bool {
        let mut h = self.inner.borrow_mut();
        if h.infected_at.is_none() {
            h.infected_at = Some(at);
            true
        } else {
            false
        }
    }

    /// Initiates a TCP connection to `dst`: sends a SYN, retransmits on
    /// the Windows schedule, and reports success (SYN-ACK seen) or failure
    /// (21 s elapsed) through `callback`.
    pub fn connect<F>(&self, sim: &mut Sim, dst_ip: Ipv4Addr, dst_port: u16, callback: F)
    where
        F: FnOnce(&mut Sim, bool) + 'static,
    {
        let (sport, frame_opt) = {
            let mut h = self.inner.borrow_mut();
            h.next_sport = h.next_sport.wrapping_add(1).max(1025);
            let sport = h.next_sport;
            let frame = h
                .arp
                .get(&dst_ip)
                .map(|&dst_mac| build::tcp_syn(h.mac, dst_mac, h.ip, dst_ip, sport, dst_port));
            h.pending.insert(
                sport,
                PendingConnect {
                    callback: Some(Box::new(callback)),
                },
            );
            (sport, frame)
        };
        let Some(frame) = frame_opt else {
            // No ARP entry: immediate failure.
            self.finish_connect(sim, sport, false);
            return;
        };
        self.send(sim, frame.clone());
        // Retransmissions.
        let mut delay = Duration::ZERO;
        for gap in SYN_RETRY_DELAYS {
            delay += gap;
            let me = self.clone();
            let f = frame.clone();
            sim.schedule_in(delay, move |sim| {
                if me.inner.borrow().pending.contains_key(&sport) {
                    me.send(sim, f);
                }
            });
        }
        // Final timeout.
        let me = self.clone();
        sim.schedule_in(CONNECT_TIMEOUT, move |sim| {
            me.finish_connect(sim, sport, false);
        });
    }

    fn finish_connect(&self, sim: &mut Sim, sport: u16, ok: bool) {
        let cb = {
            let mut h = self.inner.borrow_mut();
            h.pending.remove(&sport).and_then(|p| p.callback)
        };
        if let Some(cb) = cb {
            cb(sim, ok);
        }
    }

    fn send(&self, sim: &mut Sim, frame: Vec<u8>) {
        let tx = self.inner.borrow().tx.clone();
        if let Some(tx) = tx {
            tx.send(sim, frame);
        }
    }

    /// The NIC receive path: answers SYNs on the SMB port, completes
    /// pending connects on SYN-ACK. Returns a sink for topology wiring.
    #[must_use]
    pub fn rx_sink(&self) -> dfi_dataplane::ByteSink {
        let me = self.clone();
        Rc::new(move |sim, frame: &[u8]| me.on_frame(sim, frame))
    }

    fn on_frame(&self, sim: &mut Sim, frame: &[u8]) {
        let Ok(h) = PacketHeaders::parse(frame) else {
            return;
        };
        let (my_ip, my_mac) = {
            let n = self.inner.borrow();
            (n.ip, n.mac)
        };
        if h.ipv4_dst != Some(my_ip) {
            return; // flooded frame for someone else
        }
        if h.is_tcp_syn() && h.tcp_dst == Some(SMB_PORT) {
            // The SMB listener accepts.
            self.inner.borrow_mut().accepted += 1;
            let reply = build::tcp_syn_ack(
                my_mac,
                h.eth_src,
                my_ip,
                h.ipv4_src.expect("ipv4"),
                SMB_PORT,
                h.tcp_src.expect("tcp"),
            );
            self.send(sim, reply);
            return;
        }
        let is_syn_ack = h
            .tcp_flags
            .is_some_and(|f| f.contains(dfi_packet::TcpFlags::SYN_ACK));
        if is_syn_ack {
            if let Some(sport) = h.tcp_dst {
                self.finish_connect(sim, sport, true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfi_dataplane::{dfi_allow_rule, Network, SwitchConfig};
    use dfi_openflow::{Action, FlowMod, Instruction, Match};

    fn wire_pair() -> (Sim, Host, Host) {
        let mut sim = Sim::new(5);
        let mut net = Network::new();
        let sw = net.add_switch(SwitchConfig::new(1));
        let a = Host::new(
            "a",
            Some("alice"),
            MacAddr::from_index(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Some("eng"),
            false,
            false,
        );
        let b = Host::new(
            "b",
            Some("bob"),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 2),
            Some("eng"),
            false,
            true,
        );
        let lat = Duration::from_micros(50);
        let tx_a = net.attach_host(&sw, 1, lat, a.rx_sink());
        let tx_b = net.attach_host(&sw, 2, lat, b.rx_sink());
        a.attach(tx_a);
        b.attach(tx_b);
        a.learn_arp(b.ip(), b.mac());
        b.learn_arp(a.ip(), a.mac());
        // Static forwarding so the pair can talk without a controller.
        sw.install(&mut sim, &dfi_allow_rule(Match::any(), 0, 1));
        for (port, mac) in [(1u32, a.mac()), (2, b.mac())] {
            let fm = FlowMod {
                table_id: 1,
                priority: 1,
                mat: Match {
                    eth_dst: Some(mac),
                    ..Match::default()
                },
                instructions: vec![Instruction::ApplyActions(vec![Action::output(port)])],
                ..FlowMod::add()
            };
            sw.install(&mut sim, &fm);
        }
        (sim, a, b)
    }

    #[test]
    fn connect_succeeds_when_reachable() {
        let (mut sim, a, b) = wire_pair();
        let result = Rc::new(RefCell::new(None));
        let r = result.clone();
        a.connect(&mut sim, b.ip(), SMB_PORT, move |_sim, ok| {
            *r.borrow_mut() = Some(ok);
        });
        sim.run();
        assert_eq!(*result.borrow(), Some(true));
        assert_eq!(b.with(|h| h.accepted), 1);
        // Success resolves quickly, not at the 21s timeout.
        assert!(sim.now() < SimTime::from_secs(22));
    }

    #[test]
    fn connect_times_out_after_21s_when_blackholed() {
        let (mut sim, a, _b) = wire_pair();
        // Connect to an address nobody owns.
        let ghost = Ipv4Addr::new(10, 0, 0, 99);
        a.learn_arp(ghost, MacAddr::from_index(99));
        let result = Rc::new(RefCell::new(None));
        let r = result.clone();
        let t0 = sim.now();
        a.connect(&mut sim, ghost, SMB_PORT, move |_sim, ok| {
            *r.borrow_mut() = Some(ok);
        });
        sim.run();
        assert_eq!(*result.borrow(), Some(false));
        assert!(sim.now() - t0 >= CONNECT_TIMEOUT);
    }

    #[test]
    fn connect_without_arp_fails_immediately() {
        let (mut sim, a, _b) = wire_pair();
        let result = Rc::new(RefCell::new(None));
        let r = result.clone();
        a.connect(&mut sim, Ipv4Addr::new(1, 2, 3, 4), 80, move |_sim, ok| {
            *r.borrow_mut() = Some(ok);
        });
        sim.run_until(SimTime::from_millis(1));
        assert_eq!(*result.borrow(), Some(false));
    }

    #[test]
    fn non_smb_syns_are_ignored_by_listener() {
        let (mut sim, a, b) = wire_pair();
        let result = Rc::new(RefCell::new(None));
        let r = result.clone();
        a.connect(&mut sim, b.ip(), 8080, move |_sim, ok| {
            *r.borrow_mut() = Some(ok);
        });
        sim.run();
        assert_eq!(*result.borrow(), Some(false), "no listener on 8080");
        assert_eq!(b.with(|h| h.accepted), 0);
    }

    #[test]
    fn infection_is_recorded_once() {
        let (_sim, a, _b) = wire_pair();
        assert!(!a.is_infected());
        assert!(a.mark_infected(SimTime::from_secs(1)));
        assert!(!a.mark_infected(SimTime::from_secs(2)), "idempotent");
        assert_eq!(a.with(|h| h.infected_at), Some(SimTime::from_secs(1)));
    }

    #[test]
    fn concurrent_connects_use_distinct_ports() {
        let (mut sim, a, b) = wire_pair();
        let count = Rc::new(RefCell::new(0));
        for _ in 0..5 {
            let c = count.clone();
            a.connect(&mut sim, b.ip(), SMB_PORT, move |_s, ok| {
                if ok {
                    *c.borrow_mut() += 1;
                }
            });
        }
        sim.run();
        assert_eq!(*count.borrow(), 5);
    }
}
