//! The NotPetya-surrogate worm, the paper's enterprise testbed model, and
//! the infection scenarios behind Figure 5.
//!
//! Paper §V-B constructs "a surrogate of the NotPetya malware … based on
//! its propagation logic" and releases it on a testbed modeled after a
//! small operational enterprise: 86 Windows 10 end hosts, 6 servers, and
//! 14 OpenFlow switches in a star topology. This crate rebuilds all of it:
//!
//! * [`TestbedConfig`]/[`Testbed`] — the star topology (1 core + 13
//!   enclave switches), nine 9-host departments plus one 5-host
//!   department, six servers, per-department Local Administrator grants,
//!   DHCP/DNS/SIEM services wired into DFI's sensors, and one of three
//!   access-control conditions ([`Condition`]).
//! * [`Host`] — an end host: answers TCP connections, runs the worm when
//!   infected, performs Windows-style connect timeouts (3 s initial RTO,
//!   two retransmissions, ~21 s to give up) — the constant that makes
//!   denied probes expensive for the worm.
//! * [`WormConfig`] — the surrogate's propagation logic: serial target
//!   loop over a shuffled list, exploit vector first, cached-credential
//!   vector second, three-minute pause between passes, and a random
//!   10–60 minute lifetime before it stops spreading.
//! * [`schedule`] — per-user log-on/log-off "scripts" across a business
//!   day (every user gets at least two morning hours, as in the paper).
//! * [`scenario`] — the Figure 5 experiment driver.

#![warn(missing_docs)]

pub mod host;
pub mod scenario;
pub mod schedule;
pub mod testbed;
pub mod worm;

pub use host::Host;
pub use scenario::{run_scenario, ScenarioConfig, ScenarioResult};
pub use testbed::{Condition, Testbed, TestbedConfig};
pub use worm::WormConfig;
