//! The Figure 5 experiment driver: release the worm at a chosen hour under
//! a chosen access-control condition and record the infection timeline.

use crate::testbed::{Condition, Testbed, TestbedConfig};
use crate::worm::{WormConfig, WormInstance, WormWorld};
use dfi_simnet::{Sim, SimTime};
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

/// Scenario parameters.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Access-control condition.
    pub condition: Condition,
    /// Hour of day (0–23, fractional allowed) the foothold is infected.
    pub foothold_hour: f64,
    /// Hostname of the foothold; `None` picks the first host of dept-1
    /// (a departmental end host, as in the paper).
    pub foothold: Option<String>,
    /// How long after the foothold to keep observing.
    pub observe: Duration,
    /// RNG seed (scripts, shuffles, lifetimes).
    pub seed: u64,
    /// Testbed size.
    pub testbed: TestbedConfig,
    /// Worm behavior.
    pub worm: WormConfig,
}

impl ScenarioConfig {
    /// The paper's headline scenario: foothold at 09:00 under the given
    /// condition, observed for 70 minutes (worm lifetime tops out at 60).
    #[must_use]
    pub fn paper(condition: Condition) -> ScenarioConfig {
        ScenarioConfig {
            condition,
            foothold_hour: 9.0,
            foothold: None,
            observe: Duration::from_secs(70 * 60),
            seed: 0x5EED,
            testbed: TestbedConfig::default(),
            worm: WormConfig::default(),
        }
    }
}

/// Scenario outcome.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// (time, hostname) in infection order; the foothold is first.
    pub infections: Vec<(SimTime, String)>,
    /// Total hosts in the testbed.
    pub total_hosts: usize,
    /// When the foothold was infected.
    pub foothold_at: SimTime,
    /// The condition that ran.
    pub condition: Condition,
}

impl ScenarioResult {
    /// Hosts infected at or before `t`.
    #[must_use]
    pub fn infected_by(&self, t: SimTime) -> usize {
        self.infections.iter().filter(|(at, _)| *at <= t).count()
    }

    /// Total infected over the whole observation.
    #[must_use]
    pub fn infected_total(&self) -> usize {
        self.infections.len()
    }

    /// Time from foothold to the second infection (the paper's "first
    /// infection" — the first victim beyond the foothold), if any.
    #[must_use]
    pub fn time_to_first_spread(&self) -> Option<Duration> {
        self.infections.get(1).map(|(at, _)| *at - self.foothold_at)
    }

    /// Time from foothold until every host was infected, if that happened.
    #[must_use]
    pub fn time_to_full_infection(&self) -> Option<Duration> {
        (self.infected_total() == self.total_hosts)
            .then(|| self.infections.last().expect("nonempty").0 - self.foothold_at)
    }

    /// The infection count series as minutes-since-foothold points,
    /// suitable for plotting Figure 5a.
    #[must_use]
    pub fn series_minutes(&self, until_min: u64) -> Vec<(f64, usize)> {
        let mut pts = Vec::new();
        for m in 0..=until_min {
            let t = self.foothold_at + Duration::from_secs(m * 60);
            pts.push((m as f64, self.infected_by(t)));
        }
        pts
    }
}

/// Builds the testbed, schedules the day's log-ons, infects the foothold
/// at the configured hour, and runs until the observation window closes.
#[must_use]
pub fn run_scenario(config: &ScenarioConfig) -> ScenarioResult {
    let mut sim = Sim::new(config.seed);
    let tb = Testbed::build(&mut sim, &config.testbed, config.condition);
    tb.schedule_logons(&mut sim);

    let foothold_idx = match &config.foothold {
        Some(name) => tb.index_of(name).expect("foothold exists"),
        None => 0, // first host of dept-1
    };
    let world = Rc::new(WormWorld {
        hosts: tb.hosts.clone(),
        directory: tb.directory.clone(),
        config: config.worm.clone(),
        infections: RefCell::new(Vec::new()),
        on_infect: RefCell::new(None),
    });
    {
        let w = world.clone();
        *world.on_infect.borrow_mut() = Some(Box::new(move |sim, idx| {
            WormInstance::spawn(sim, w.clone(), idx);
        }));
    }

    let foothold_at = SimTime::from_secs((config.foothold_hour * 3600.0) as u64);
    {
        let w = world.clone();
        sim.schedule_at(foothold_at, move |sim| {
            w.infect(sim, foothold_idx);
        });
    }

    sim.set_event_limit(2_000_000_000);
    sim.run_until(foothold_at + config.observe);

    let infections = world.infections.borrow().clone();
    ScenarioResult {
        infections,
        total_hosts: tb.total_hosts(),
        foothold_at,
        condition: config.condition,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_scenario(condition: Condition, hour: f64) -> ScenarioConfig {
        ScenarioConfig {
            condition,
            foothold_hour: hour,
            foothold: None,
            observe: Duration::from_secs(40 * 60),
            seed: 0xBEEF,
            testbed: TestbedConfig::small(),
            worm: WormConfig {
                lifetime_min: Duration::from_secs(30 * 60),
                lifetime_max: Duration::from_secs(31 * 60),
                pass_pause: Duration::from_secs(60),
                ..WormConfig::default()
            },
        }
    }

    #[test]
    fn baseline_overruns_the_small_testbed() {
        let r = run_scenario(&small_scenario(Condition::Baseline, 9.0));
        assert_eq!(
            r.infected_total(),
            r.total_hosts,
            "no access control → total infection: {:?}",
            r.infections
        );
        // First spread within a few seconds of the foothold.
        let first = r.time_to_first_spread().unwrap();
        assert!(first < Duration::from_secs(30), "first spread {first:?}");
    }

    #[test]
    fn srbac_slows_but_does_not_stop() {
        let b = run_scenario(&small_scenario(Condition::Baseline, 9.0));
        let s = run_scenario(&small_scenario(Condition::SRbac, 9.0));
        assert_eq!(s.infected_total(), s.total_hosts, "S-RBAC eventually falls");
        let tb = b.time_to_full_infection().unwrap();
        let ts = s.time_to_full_infection().unwrap();
        assert!(
            ts > tb,
            "S-RBAC must be slower: baseline {tb:?} vs s-rbac {ts:?}"
        );
    }

    #[test]
    fn at_rbac_off_hours_foothold_cannot_spread() {
        // 03:00: nobody logged on, so the foothold cannot even reach the
        // servers; the worm times out alone.
        let r = run_scenario(&small_scenario(Condition::AtRbac, 3.0));
        assert_eq!(
            r.infected_total(),
            1,
            "only the foothold: {:?}",
            r.infections
        );
    }

    #[test]
    fn at_rbac_business_hours_spread_is_limited_vs_srbac() {
        let s = run_scenario(&small_scenario(Condition::SRbac, 9.0));
        let a = run_scenario(&small_scenario(Condition::AtRbac, 9.0));
        assert!(
            a.infected_by(a.foothold_at + Duration::from_secs(600))
                <= s.infected_by(s.foothold_at + Duration::from_secs(600)),
            "AT-RBAC no faster than S-RBAC"
        );
        assert!(
            a.infected_total() >= 2,
            "but business hours do allow spread"
        );
    }

    #[test]
    fn series_is_monotonic() {
        let r = run_scenario(&small_scenario(Condition::Baseline, 9.0));
        let series = r.series_minutes(30);
        for w in series.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(series[0].0, 0.0);
    }
}
