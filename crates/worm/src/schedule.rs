//! Per-user log-on/log-off day scripts.
//!
//! Paper §V-B: "Log-on and log-off events for users on their primary host
//! are simulated over the course of the day, each being randomly assigned
//! a unique time-series 'script' that establishes when the user is logged
//! on or off. … Each script contains at least two hours of being logged on
//! during the first half of the work day (between 09:00-13:00)."

use dfi_simnet::{SimRng, SimTime};
use std::time::Duration;

/// One logged-on interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Session {
    /// Log-on time (virtual time of day; the simulation epoch is 00:00).
    pub on: SimTime,
    /// Log-off time.
    pub off: SimTime,
}

/// A user's day script: the sessions during which they are logged on to
/// their primary host.
#[derive(Clone, Debug, Default)]
pub struct LogonScript {
    /// Sessions in chronological order.
    pub sessions: Vec<Session>,
}

fn hm(h: u64, m: u64) -> SimTime {
    SimTime::from_secs(h * 3600 + m * 60)
}

impl LogonScript {
    /// Generates a script: a main workday session starting 08:00–10:30
    /// (staggered arrivals — the "moving target" the paper's AT-RBAC
    /// exploits) and ending 15:00–18:00, always with ≥2 h of presence
    /// inside 09:00–13:00; an optional lunch gap; an occasional short
    /// evening session.
    pub fn generate(rng: &mut SimRng) -> LogonScript {
        let mut sessions = Vec::new();
        let start = hm(8, 0) + Duration::from_secs(rng.range_u64(0, 9_000));
        let end = hm(15, 0) + Duration::from_secs(rng.range_u64(0, 3 * 3600));
        if rng.chance(0.5) {
            // Lunch log-off between 12:30 and 13:30 for 20–50 minutes —
            // after the guaranteed morning block.
            let lunch_start = hm(12, 30) + Duration::from_secs(rng.range_u64(0, 3600));
            let lunch_len = Duration::from_secs(rng.range_u64(20 * 60, 50 * 60));
            sessions.push(Session {
                on: start,
                off: lunch_start,
            });
            sessions.push(Session {
                on: lunch_start + lunch_len,
                off: end,
            });
        } else {
            sessions.push(Session {
                on: start,
                off: end,
            });
        }
        if rng.chance(0.2) {
            let evening = hm(19, 0) + Duration::from_secs(rng.range_u64(0, 2 * 3600));
            let len = Duration::from_secs(rng.range_u64(30 * 60, 2 * 3600));
            sessions.push(Session {
                on: evening,
                off: evening + len,
            });
        }
        LogonScript { sessions }
    }

    /// `true` while the user is logged on at `t`.
    #[must_use]
    pub fn logged_on_at(&self, t: SimTime) -> bool {
        self.sessions.iter().any(|s| s.on <= t && t < s.off)
    }

    /// Seconds logged on within `[from, to)`.
    #[must_use]
    pub fn seconds_on_between(&self, from: SimTime, to: SimTime) -> u64 {
        self.sessions
            .iter()
            .map(|s| {
                let lo = s.on.max(from);
                let hi = s.off.min(to);
                (hi - lo).as_secs()
            })
            .sum()
    }

    /// The first log-on at or after `t`, if any.
    #[must_use]
    pub fn next_logon_after(&self, t: SimTime) -> Option<SimTime> {
        self.sessions
            .iter()
            .map(|s| s.on)
            .filter(|&on| on >= t)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_guarantee_two_morning_hours() {
        let mut rng = SimRng::new(42);
        for _ in 0..200 {
            let script = LogonScript::generate(&mut rng);
            let on = script.seconds_on_between(hm(9, 0), hm(13, 0));
            assert!(
                on >= 2 * 3600,
                "script has only {on}s logged on between 09:00 and 13:00: {script:?}"
            );
        }
    }

    #[test]
    fn sessions_are_chronological_and_disjoint() {
        let mut rng = SimRng::new(7);
        for _ in 0..200 {
            let script = LogonScript::generate(&mut rng);
            for w in script.sessions.windows(2) {
                assert!(w[0].off <= w[1].on, "overlapping sessions: {script:?}");
            }
            for s in &script.sessions {
                assert!(s.on < s.off);
            }
        }
    }

    #[test]
    fn logged_on_at_matches_sessions() {
        let script = LogonScript {
            sessions: vec![Session {
                on: hm(9, 0),
                off: hm(17, 0),
            }],
        };
        assert!(!script.logged_on_at(hm(8, 59)));
        assert!(script.logged_on_at(hm(9, 0)));
        assert!(script.logged_on_at(hm(12, 0)));
        assert!(!script.logged_on_at(hm(17, 0)));
    }

    #[test]
    fn off_hours_are_mostly_empty() {
        let mut rng = SimRng::new(3);
        let mut on_at_3am = 0;
        for _ in 0..100 {
            let script = LogonScript::generate(&mut rng);
            if script.logged_on_at(hm(3, 0)) {
                on_at_3am += 1;
            }
        }
        assert_eq!(on_at_3am, 0, "nobody works at 3am in this testbed");
    }

    #[test]
    fn next_logon_after_finds_morning_start() {
        let mut rng = SimRng::new(11);
        let script = LogonScript::generate(&mut rng);
        let next = script.next_logon_after(SimTime::ZERO).unwrap();
        assert!(next >= hm(8, 0) && next <= hm(10, 30));
        assert_eq!(script.next_logon_after(hm(23, 59)), None);
    }
}
