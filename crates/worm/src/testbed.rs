//! The enterprise testbed (paper §V-B):
//!
//! > "It is built with VMware vSphere and includes 86 Windows 10 VMs
//! > acting as end hosts and 6 Windows server VMs supporting common
//! > enterprise services. The data plane includes 14 OpenFlow switches …
//! > The network topology is a star, with a single core switch and 13
//! > enclave switches internally connected to it. Nine of the enclaves
//! > support operational departments, with 9 hosts in each, while the
//! > remaining enclaves host servers and a smaller department with five
//! > hosts. One end host in each enclave (10/86 total) is configured to be
//! > vulnerable to the worm exploit … In addition, all servers are
//! > vulnerable … Each end host has one unique, primary user, but other
//! > users in the same enclave (department) group have 'Local
//! > Administrator' privileges on the host. Servers … have no primary
//! > users, and therefore no cached credentials."

use crate::host::Host;
use crate::schedule::LogonScript;
use dfi_controller::Controller;
use dfi_core::events::{wire_dhcp_sensor, wire_dns_sensor, wire_siem_sensor};
use dfi_core::pdp::{AtRbacPdp, BaselinePdp, SRbacPdp};
use dfi_core::policy::RbacRoles;
use dfi_core::{Dfi, DfiConfig};
use dfi_dataplane::{Network, Switch, SwitchConfig};
use dfi_packet::MacAddr;
use dfi_services::{DhcpServer, Directory, DnsServer, Siem};
use dfi_simnet::Sim;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::time::Duration;

/// The access-control condition under evaluation (paper §V-B
/// "Conditions").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Condition {
    /// "A fully-connected network with no access control."
    Baseline,
    /// Static role-based access control: enclave plus servers, forever.
    SRbac,
    /// Authentication-triggered RBAC — the policy uniquely enabled by DFI.
    AtRbac,
}

/// Testbed size knobs (defaults = the paper's testbed).
#[derive(Clone, Debug)]
pub struct TestbedConfig {
    /// Departments with `hosts_per_dept` hosts each.
    pub departments: usize,
    /// Hosts in each full department.
    pub hosts_per_dept: usize,
    /// Size of the one smaller department.
    pub small_dept_hosts: usize,
    /// Server names (all vulnerable, no users).
    pub servers: Vec<String>,
    /// Access link latency.
    pub link_latency: Duration,
    /// DFI calibration.
    pub dfi: DfiConfig,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            departments: 9,
            hosts_per_dept: 9,
            small_dept_hosts: 5,
            servers: ["ad", "mail", "files", "web", "db", "backup"]
                .into_iter()
                .map(String::from)
                .collect(),
            link_latency: Duration::from_micros(50),
            dfi: DfiConfig::default(),
        }
    }
}

impl TestbedConfig {
    /// A reduced testbed for fast tests: 2 departments of 3, 2 servers.
    #[must_use]
    pub fn small() -> TestbedConfig {
        TestbedConfig {
            departments: 2,
            hosts_per_dept: 3,
            small_dept_hosts: 2,
            servers: vec!["ad".into(), "files".into()],
            ..TestbedConfig::default()
        }
    }
}

/// The built testbed.
pub struct Testbed {
    /// All hosts: end hosts first (department order), then servers.
    pub hosts: Vec<Host>,
    /// Per-host primary-user log-on script (end hosts only; index-aligned
    /// with `hosts`, `None` for servers).
    pub scripts: Vec<Option<LogonScript>>,
    /// The switches (index 0 = core).
    pub switches: Vec<Switch>,
    /// The whole data plane (same switches, as a network handle — e.g.
    /// for network-wide Table-0 audits).
    pub net: Network,
    /// The DFI control plane.
    pub dfi: Dfi,
    /// The (benign) SDN controller.
    pub controller: Controller,
    /// Role structure.
    pub roles: RbacRoles,
    /// Directory service.
    pub directory: Directory,
    /// SIEM pipeline (log-on events flow through here).
    pub siem: Siem,
    /// The DHCP server.
    pub dhcp: DhcpServer,
    /// The DNS server.
    pub dns: DnsServer,
    /// Index of the first vulnerable host of each department (the worm's
    /// beachheads), in department order.
    pub vulnerable_hosts: Vec<usize>,
    condition: Condition,
    at_rbac: Option<AtRbacPdp>,
}

impl Testbed {
    /// Builds the full testbed under a condition: topology, services,
    /// identifier bindings, control plane, and the condition's PDP.
    /// Log-on scripts are generated but not yet scheduled — call
    /// [`Testbed::schedule_logons`].
    pub fn build(sim: &mut Sim, config: &TestbedConfig, condition: Condition) -> Testbed {
        struct Plan {
            hostname: String,
            user: Option<String>,
            enclave: Option<String>,
            vulnerable: bool,
            is_server: bool,
        }
        let mut roles = RbacRoles::new();
        let directory = Directory::new();
        let siem = Siem::new();
        let dhcp = DhcpServer::new(
            Ipv4Addr::new(10, 0, 100, 2),
            Ipv4Addr::new(10, 0, 200, 1),
            1024,
        );
        let dns = DnsServer::new("corp.local");

        // ---- Inventory -------------------------------------------------
        let mut plans: Vec<Plan> = Vec::new();
        let mut dept_sizes: Vec<(String, usize)> = (0..config.departments)
            .map(|d| (format!("dept-{}", d + 1), config.hosts_per_dept))
            .collect();
        if config.small_dept_hosts > 0 {
            dept_sizes.push(("dept-small".to_string(), config.small_dept_hosts));
        }
        for (dept, size) in &dept_sizes {
            let hostnames: Vec<String> = (0..*size).map(|i| format!("{dept}-h{}", i + 1)).collect();
            roles.add_enclave_owned(dept, hostnames.clone());
            for (i, hostname) in hostnames.iter().enumerate() {
                let user = format!("u-{hostname}");
                plans.push(Plan {
                    hostname: hostname.clone(),
                    user: Some(user),
                    enclave: Some(dept.clone()),
                    // "One end host in each enclave" is vulnerable.
                    vulnerable: i == 0,
                    is_server: false,
                });
            }
        }
        for server in &config.servers {
            roles.add_server(server);
            plans.push(Plan {
                hostname: server.clone(),
                user: None,
                enclave: None,
                vulnerable: true, // "all servers are vulnerable"
                is_server: true,
            });
        }
        roles.add_core_service("ad");

        // ---- Directory -------------------------------------------------
        let mut cred = 0xC0DE_0000u64;
        for p in &plans {
            directory.join_machine(&p.hostname);
            if let (Some(user), Some(dept)) = (&p.user, &p.enclave) {
                cred += 1;
                directory.add_user(user, cred);
                directory.add_to_group(user, dept).expect("user exists");
            }
        }
        // Department members hold Local Administrator on dept machines.
        for p in &plans {
            if let Some(dept) = &p.enclave {
                directory.grant_local_admin(dept, &p.hostname);
            }
        }

        // ---- Topology: star of switches --------------------------------
        let mut net = Network::new();
        let core = net.add_switch(SwitchConfig {
            table_capacity: 1_000_000,
            ..SwitchConfig::new(1)
        });
        let mut switches = vec![core.clone()];
        let enclave_count = dept_sizes.len() + 3; // dept enclaves + server enclaves
        for i in 0..enclave_count {
            let sw = net.add_switch(SwitchConfig {
                table_capacity: 1_000_000,
                ..SwitchConfig::new(10 + i as u64)
            });
            net.link(&core, 100 + i as u32, &sw, 100, config.link_latency);
            switches.push(sw);
        }

        // ---- Hosts ------------------------------------------------------
        // Department d's hosts live on switch index 1+d; servers spread
        // across the last three enclave switches.
        let mut hosts: Vec<Host> = Vec::new();
        let mut dept_of_switch: HashMap<String, usize> = HashMap::new();
        for (i, (dept, _)) in dept_sizes.iter().enumerate() {
            dept_of_switch.insert(dept.clone(), 1 + i);
        }
        let server_switch_base = 1 + dept_sizes.len();
        let mut per_switch_port: HashMap<usize, u32> = HashMap::new();
        let mut server_seq = 0usize;
        for (idx, p) in plans.iter().enumerate() {
            let sw_idx = match &p.enclave {
                Some(dept) => dept_of_switch[dept],
                None => {
                    let s = server_switch_base + (server_seq % 3).min(enclave_count - 1);
                    server_seq += 1;
                    s.min(switches.len() - 1)
                }
            };
            let port = {
                let e = per_switch_port.entry(sw_idx).or_insert(0);
                *e += 1;
                *e
            };
            let mac = MacAddr::from_index(idx as u32 + 1);
            let ip = match &p.enclave {
                Some(dept) => {
                    let d = dept_of_switch[dept] as u8;
                    Ipv4Addr::new(10, 0, d, port as u8)
                }
                None => Ipv4Addr::new(10, 0, 100, 10 + server_seq as u8),
            };
            let host = Host::new(
                &p.hostname,
                p.user.as_deref(),
                mac,
                ip,
                p.enclave.as_deref(),
                p.is_server,
                p.vulnerable,
            );
            let tx = net.attach_host(&switches[sw_idx], port, config.link_latency, host.rx_sink());
            host.attach(tx);
            hosts.push(host);
        }
        // Static ARP everywhere (the testbed pre-provisions neighbor state;
        // ARP dynamics are orthogonal to the access-control question).
        for h in &hosts {
            for o in &hosts {
                h.learn_arp(o.ip(), o.mac());
            }
        }

        // ---- Control plane ---------------------------------------------
        let dfi = Dfi::new(config.dfi.clone());
        let controller = Controller::reactive();
        for sw in &switches {
            let c = controller.clone();
            dfi.interpose(sim, sw, move |sim, sink| c.connect(sim, sink));
        }

        // ---- Services + identifier bindings ----------------------------
        wire_dhcp_sensor(&dhcp, dfi.bus());
        wire_dns_sensor(&dns, dfi.bus());
        wire_siem_sensor(&siem, dfi.bus());
        for (i, (h, p)) in hosts.iter().zip(&plans).enumerate() {
            dhcp.reserve(h.mac(), h.ip());
            let leased = dhcp
                .quick_lease(sim, h.mac(), &p.hostname, i as u32 + 1)
                .expect("lease");
            debug_assert_eq!(leased, h.ip());
            dns.register(sim, &p.hostname, h.ip());
        }

        // ---- PDP for the condition --------------------------------------
        let mut at_rbac = None;
        match condition {
            Condition::Baseline => {
                let mut pdp = BaselinePdp::new();
                pdp.activate(sim, &dfi);
            }
            Condition::SRbac => {
                let mut pdp = SRbacPdp::new(roles.clone());
                pdp.activate(sim, &dfi);
            }
            Condition::AtRbac => {
                at_rbac = Some(AtRbacPdp::activate(sim, &dfi, roles.clone()));
            }
        }
        sim.run_until(sim.now() + Duration::from_secs(1)); // settle wiring

        // ---- Log-on scripts ----------------------------------------------
        let mut scripts = Vec::with_capacity(hosts.len());
        let mut script_rng = sim.split_rng();
        for p in &plans {
            scripts.push(
                p.user
                    .as_ref()
                    .map(|_| LogonScript::generate(&mut script_rng)),
            );
        }

        let vulnerable_hosts = plans
            .iter()
            .enumerate()
            .filter(|(_, p)| p.vulnerable && !p.is_server)
            .map(|(i, _)| i)
            .collect();

        Testbed {
            hosts,
            scripts,
            switches,
            net,
            dfi,
            controller,
            roles,
            directory,
            siem,
            dhcp,
            dns,
            vulnerable_hosts,
            condition,
            at_rbac,
        }
    }

    /// Schedules every user's log-on/log-off events (through the SIEM's
    /// process-count heuristic) for the day.
    pub fn schedule_logons(&self, sim: &mut Sim) {
        for (host, script) in self.hosts.iter().zip(&self.scripts) {
            let Some(script) = script else { continue };
            let Some(user) = host.with(|h| h.primary_user.clone()) else {
                continue;
            };
            let hostname = host.hostname();
            for session in &script.sessions {
                let siem = self.siem.clone();
                let u = user.clone();
                let h = hostname.clone();
                sim.schedule_at(session.on, move |sim| {
                    siem.log_on(sim, &u, &h);
                });
                let siem = self.siem.clone();
                let u = user.clone();
                let h = hostname.clone();
                sim.schedule_at(session.off, move |sim| {
                    siem.log_off(sim, &u, &h);
                });
            }
        }
    }

    /// The active condition.
    #[must_use]
    pub fn condition(&self) -> Condition {
        self.condition
    }

    /// The AT-RBAC PDP when that condition is active.
    #[must_use]
    pub fn at_rbac(&self) -> Option<&AtRbacPdp> {
        self.at_rbac.as_ref()
    }

    /// Host index by hostname.
    #[must_use]
    pub fn index_of(&self, hostname: &str) -> Option<usize> {
        self.hosts.iter().position(|h| h.hostname() == hostname)
    }

    /// Number of hosts (end hosts + servers).
    #[must_use]
    pub fn total_hosts(&self) -> usize {
        self.hosts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfi_simnet::SimTime;

    #[test]
    fn paper_testbed_inventory() {
        let mut sim = Sim::new(1);
        let tb = Testbed::build(&mut sim, &TestbedConfig::default(), Condition::Baseline);
        assert_eq!(tb.total_hosts(), 92, "86 end hosts + 6 servers");
        let end_hosts = tb.hosts.iter().filter(|h| !h.with(|n| n.is_server)).count();
        assert_eq!(end_hosts, 86);
        assert_eq!(tb.switches.len(), 14, "1 core + 13 enclave switches");
        assert_eq!(tb.vulnerable_hosts.len(), 10, "one per enclave");
        let vulnerable_total = tb.hosts.iter().filter(|h| h.with(|n| n.vulnerable)).count();
        assert_eq!(vulnerable_total, 16, "10 end hosts + 6 servers");
    }

    #[test]
    fn departments_have_admin_on_each_other() {
        let mut sim = Sim::new(1);
        let tb = Testbed::build(&mut sim, &TestbedConfig::small(), Condition::Baseline);
        assert!(tb.directory.is_local_admin("u-dept-1-h1", "dept-1-h2"));
        assert!(!tb.directory.is_local_admin("u-dept-1-h1", "dept-2-h1"));
    }

    #[test]
    fn bindings_are_preloaded() {
        let mut sim = Sim::new(1);
        let tb = Testbed::build(&mut sim, &TestbedConfig::small(), Condition::Baseline);
        sim.run();
        // DNS/DHCP sensors fed the ERM through the bus.
        let h0 = tb.hosts[0].clone();
        let names = tb.dfi.with_erm(|erm| erm.hosts_of_ip(h0.ip()));
        assert!(names.iter().any(|n| n.contains(&h0.hostname())));
    }

    #[test]
    fn hosts_have_unique_addresses() {
        let mut sim = Sim::new(1);
        let tb = Testbed::build(&mut sim, &TestbedConfig::default(), Condition::Baseline);
        let mut ips: Vec<_> = tb.hosts.iter().map(super::super::host::Host::ip).collect();
        let n = ips.len();
        ips.sort();
        ips.dedup();
        assert_eq!(ips.len(), n, "duplicate IPs");
        let mut macs: Vec<_> = tb.hosts.iter().map(super::super::host::Host::mac).collect();
        macs.sort();
        macs.dedup();
        assert_eq!(macs.len(), n, "duplicate MACs");
    }

    #[test]
    fn logon_schedule_drives_siem() {
        let mut sim = Sim::new(1);
        let tb = Testbed::build(&mut sim, &TestbedConfig::small(), Condition::AtRbac);
        tb.schedule_logons(&mut sim);
        // By 11:00 every scripted user is logged on.
        sim.run_until(SimTime::from_secs(11 * 3600));
        let logged_on = tb
            .hosts
            .iter()
            .filter(|h| {
                h.with(|n| n.primary_user.clone())
                    .is_some_and(|u| tb.siem.is_logged_on(&u, &h.hostname()))
            })
            .count();
        assert_eq!(logged_on, 8, "all end hosts staffed mid-morning");
        assert!(tb.at_rbac().unwrap().hosts_with_access() >= 8);
        // By midnight everyone is gone.
        sim.run_until(SimTime::from_secs(24 * 3600));
        assert_eq!(tb.at_rbac().unwrap().hosts_with_access(), 0);
    }

    #[test]
    fn roles_match_paper_reachability() {
        let mut sim = Sim::new(1);
        let tb = Testbed::build(&mut sim, &TestbedConfig::default(), Condition::SRbac);
        let peers = tb.roles.role_peers("dept-3-h2");
        // 8 dept-mates + 6 servers.
        assert_eq!(peers.len(), 14);
        assert!(peers.contains(&"dept-3-h1".to_string()));
        assert!(peers.contains(&"mail".to_string()));
        assert!(!peers.contains(&"dept-4-h1".to_string()));
    }
}
