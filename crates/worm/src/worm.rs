//! The NotPetya-surrogate propagation logic (paper §V-B).
//!
//! > "Once installed, it gathers a target list of end hosts and servers in
//! > the network through reconnaissance, and then tries to propagate to
//! > each target serially in a loop. The worm uses two vectors for
//! > propagation: exploitation of vulnerabilities on a target end host and
//! > credential theft. The exploit payload is sent first. If the exploit
//! > succeeds, the worm moves on … If it fails, the worm uses credentials
//! > cached on the local host to attempt to access the target remotely and
//! > install itself. A credential with 'Local Administrator' privileges on
//! > the target must be cached on the source host for this to succeed.
//! > After looping through all targets, the worm waits three minutes
//! > before restarting. This proceeds over a duration of 10-60 minutes
//! > (randomly chosen) before the worm times out and stops propagating."

use crate::host::{Host, SMB_PORT};
use dfi_services::Directory;
use dfi_simnet::{Sim, SimTime};
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

/// Worm behavior constants.
#[derive(Clone, Debug)]
pub struct WormConfig {
    /// Time to push the exploit payload after a successful connection.
    pub exploit_transfer: Duration,
    /// Time wasted when the exploit payload fails on a patched host.
    pub exploit_fail_cost: Duration,
    /// Time for a credentialed remote log-on plus install.
    pub logon_install: Duration,
    /// Pause between passes over the target list.
    pub pass_pause: Duration,
    /// Lifetime range: the worm stops propagating after a uniformly random
    /// duration in `[lifetime_min, lifetime_max]`.
    pub lifetime_min: Duration,
    /// Upper end of the lifetime range.
    pub lifetime_max: Duration,
    /// Cost of skipping a target it already knows is infected.
    pub skip_cost: Duration,
}

impl Default for WormConfig {
    fn default() -> Self {
        WormConfig {
            exploit_transfer: Duration::from_secs(1),
            exploit_fail_cost: Duration::from_secs(1),
            logon_install: Duration::from_secs(3),
            pass_pause: Duration::from_secs(180),
            lifetime_min: Duration::from_secs(600),
            lifetime_max: Duration::from_secs(3600),
            skip_cost: Duration::from_millis(500),
        }
    }
}

/// Hook invoked when a host becomes infected: `(sim, host_index)`.
pub type InfectHook = Box<dyn Fn(&mut Sim, usize)>;

/// Shared environment the worm instances run in.
pub struct WormWorld {
    /// All hosts in the network (the reconnaissance result).
    pub hosts: Vec<Host>,
    /// The directory (for credential privileges).
    pub directory: Directory,
    /// Behavior constants.
    pub config: WormConfig,
    /// Infection log: (time, hostname), in infection order.
    pub infections: RefCell<Vec<(SimTime, String)>>,
    /// Hook run on each new infection (spawns that host's worm).
    pub on_infect: RefCell<Option<InfectHook>>,
}

impl WormWorld {
    /// Records an infection and spawns the target's own worm instance.
    pub fn infect(self: &Rc<Self>, sim: &mut Sim, target_idx: usize) {
        let target = &self.hosts[target_idx];
        if !target.mark_infected(sim.now()) {
            return;
        }
        self.infections
            .borrow_mut()
            .push((sim.now(), target.hostname()));
        let hook = self.on_infect.borrow();
        if let Some(hook) = hook.as_ref() {
            hook(sim, target_idx);
        }
    }

    /// Number of infected hosts so far.
    pub fn infected_count(&self) -> usize {
        self.infections.borrow().len()
    }
}

/// One worm instance running on one infected host.
pub struct WormInstance {
    world: Rc<WormWorld>,
    me: usize,
    targets: Vec<usize>,
    position: usize,
    deadline: SimTime,
}

impl WormInstance {
    /// Spawns the worm on host `me`: reconnaissance (target list of every
    /// other host, shuffled), a random lifetime, and the first step.
    pub fn spawn(sim: &mut Sim, world: Rc<WormWorld>, me: usize) {
        let mut targets: Vec<usize> = (0..world.hosts.len()).filter(|&i| i != me).collect();
        sim.rng().shuffle(&mut targets);
        let lifetime = sim
            .rng()
            .duration_range(world.config.lifetime_min, world.config.lifetime_max);
        let instance = Rc::new(RefCell::new(WormInstance {
            world,
            me,
            targets,
            position: 0,
            deadline: sim.now() + lifetime,
        }));
        sim.schedule_now(move |sim| Self::step(instance, sim));
    }

    /// Attacks the next target, then reschedules itself.
    fn step(this: Rc<RefCell<WormInstance>>, sim: &mut Sim) {
        let (world, me, target_idx, wrapped, deadline) = {
            let mut w = this.borrow_mut();
            if sim.now() >= w.deadline {
                return; // the worm "locks down" and stops propagating
            }
            let target_idx = w.targets[w.position];
            w.position += 1;
            let wrapped = w.position >= w.targets.len();
            if wrapped {
                w.position = 0;
            }
            (w.world.clone(), w.me, target_idx, wrapped, w.deadline)
        };
        let config = world.config.clone();
        let next = move |sim: &mut Sim, this: Rc<RefCell<WormInstance>>| {
            let pause = if wrapped {
                config.pass_pause
            } else {
                Duration::ZERO
            };
            sim.schedule_in(pause, move |sim| Self::step(this, sim));
        };

        let target = world.hosts[target_idx].clone();
        if target.is_infected() {
            // Already ours; the real worm notices quickly during its scan.
            let cost = world.config.skip_cost;
            sim.schedule_in(cost, move |sim| next(sim, this));
            return;
        }

        // Vector 1: connect and fire the exploit.
        let source = world.hosts[me].clone();
        let w2 = world.clone();
        let this2 = this.clone();
        source
            .clone()
            .connect(sim, target.ip(), SMB_PORT, move |sim, connected| {
                if !connected {
                    // Denied or dead: the 21-second Windows connect timeout
                    // already elapsed inside connect().
                    next(sim, this2);
                    return;
                }
                let vulnerable = target.with(|h| h.vulnerable);
                if vulnerable {
                    let transfer = w2.config.exploit_transfer;
                    let w3 = w2.clone();
                    sim.schedule_in(transfer, move |sim| {
                        // A timed-out worm never finishes the install.
                        if sim.now() < deadline {
                            w3.infect(sim, target_idx);
                        }
                        next(sim, this2);
                    });
                    return;
                }
                // Exploit failed on a patched host: vector 2, credential theft.
                let fail_cost = w2.config.exploit_fail_cost;
                let w3 = w2.clone();
                let source2 = source.clone();
                let target2 = target.clone();
                sim.schedule_in(fail_cost, move |sim| {
                    let cached_cred_user = source2.with(|h| h.primary_user.clone());
                    let has_admin = cached_cred_user
                        .as_deref()
                        .is_some_and(|u| w3.directory.is_local_admin(u, &target2.hostname()));
                    if !has_admin {
                        next(sim, this2);
                        return;
                    }
                    // Remote log-on over a fresh connection.
                    let w4 = w3.clone();
                    let t_ip = target2.ip();
                    source2
                        .clone()
                        .connect(sim, t_ip, SMB_PORT, move |sim, ok| {
                            if !ok {
                                next(sim, this2);
                                return;
                            }
                            let install = w4.config.logon_install;
                            let w5 = w4.clone();
                            sim.schedule_in(install, move |sim| {
                                if sim.now() < deadline {
                                    w5.infect(sim, target_idx);
                                }
                                next(sim, this2);
                            });
                        });
                });
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfi_packet::MacAddr;
    use std::net::Ipv4Addr;

    /// A "wireless" world where every connect succeeds instantly is enough
    /// to unit-test the worm's decision logic; the full data-plane path is
    /// covered by the scenario tests.
    fn offline_world(vulnerable: &[bool]) -> (Sim, Rc<WormWorld>) {
        let sim = Sim::new(9);
        let directory = Directory::new();
        let mut hosts = Vec::new();
        for (i, &v) in vulnerable.iter().enumerate() {
            let name = format!("h{i}");
            let user = format!("u{i}");
            directory.add_user(&user, i as u64);
            directory.join_machine(&name);
            directory.add_to_group(&user, "dept").unwrap();
            directory.grant_local_admin("dept", &name);
            hosts.push(Host::new(
                &name,
                Some(&user),
                MacAddr::from_index(i as u32),
                Ipv4Addr::new(10, 0, 0, i as u8 + 1),
                Some("dept"),
                false,
                v,
            ));
        }
        let world = Rc::new(WormWorld {
            hosts,
            directory,
            config: WormConfig {
                pass_pause: Duration::from_secs(10),
                lifetime_min: Duration::from_secs(300),
                lifetime_max: Duration::from_secs(301),
                ..WormConfig::default()
            },
            infections: RefCell::new(Vec::new()),
            on_infect: RefCell::new(None),
        });
        (sim, world)
    }

    /// Wires hosts to one flood-everything hub switch: every connect
    /// succeeds, isolating the worm's decision logic from access control.
    fn mesh(sim: &mut Sim, world: &Rc<WormWorld>) {
        let mut net = dfi_dataplane::Network::new();
        let hub = net.add_switch(dfi_dataplane::SwitchConfig::new(42));
        hub.install(
            sim,
            &dfi_dataplane::dfi_allow_rule(dfi_openflow::Match::any(), 0, 1),
        );
        let flood_fm = dfi_openflow::FlowMod {
            table_id: 1,
            priority: 1,
            instructions: vec![dfi_openflow::Instruction::ApplyActions(vec![
                dfi_openflow::Action::output(dfi_openflow::port::FLOOD),
            ])],
            ..dfi_openflow::FlowMod::add()
        };
        hub.install(sim, &flood_fm);
        for (i, h) in world.hosts.iter().enumerate() {
            let tx = net.attach_host(&hub, (i + 1) as u32, Duration::from_micros(10), h.rx_sink());
            h.attach(tx);
            for o in &world.hosts {
                h.learn_arp(o.ip(), o.mac());
            }
        }
    }

    fn arm_spawn_hook(world: &Rc<WormWorld>) {
        let w = world.clone();
        *world.on_infect.borrow_mut() = Some(Box::new(move |sim, idx| {
            WormInstance::spawn(sim, w.clone(), idx);
        }));
    }

    #[test]
    fn exploit_vector_takes_vulnerable_hosts() {
        let (mut sim, world) = offline_world(&[false, true, true]);
        mesh(&mut sim, &world);
        arm_spawn_hook(&world);
        world.infect(&mut sim, 0);
        sim.run_until(SimTime::from_secs(60));
        assert_eq!(world.infected_count(), 3, "mesh + vulnerable = fast spread");
    }

    #[test]
    fn credential_vector_takes_patched_dept_mates() {
        // Nobody vulnerable: spread must rely on Local Admin credentials,
        // which dept-mates have on each other.
        let (mut sim, world) = offline_world(&[false, false, false]);
        mesh(&mut sim, &world);
        arm_spawn_hook(&world);
        world.infect(&mut sim, 0);
        sim.run_until(SimTime::from_secs(120));
        assert_eq!(world.infected_count(), 3);
    }

    #[test]
    fn no_credentials_no_vulnerability_no_spread() {
        let (mut sim, world) = offline_world(&[false, false]);
        // Revoke the admin grant by using a fresh directory without it.
        let d = Directory::new();
        d.add_user("u0", 0);
        d.add_user("u1", 1);
        let world = Rc::new(WormWorld {
            hosts: world.hosts.clone(),
            directory: d,
            config: world.config.clone(),
            infections: RefCell::new(Vec::new()),
            on_infect: RefCell::new(None),
        });
        mesh(&mut sim, &world);
        arm_spawn_hook(&world);
        world.infect(&mut sim, 0);
        sim.run_until(SimTime::from_secs(300));
        assert_eq!(world.infected_count(), 1, "only the foothold");
    }

    #[test]
    fn worm_stops_at_lifetime() {
        let (mut sim, world) = offline_world(&[false, false, false]);
        mesh(&mut sim, &world);
        arm_spawn_hook(&world);
        // Tiny lifetime: the worm dies before completing anything.
        let world = Rc::new(WormWorld {
            hosts: world.hosts.clone(),
            directory: world.directory.clone(),
            config: WormConfig {
                lifetime_min: Duration::from_millis(1),
                lifetime_max: Duration::from_millis(2),
                ..world.config.clone()
            },
            infections: RefCell::new(Vec::new()),
            on_infect: RefCell::new(None),
        });
        arm_spawn_hook(&world);
        world.infect(&mut sim, 0);
        sim.run_until(SimTime::from_secs(600));
        assert_eq!(world.infected_count(), 1);
    }

    #[test]
    fn servers_without_users_cannot_use_credential_vector() {
        let (mut sim, world) = offline_world(&[false, false]);
        // Make host 0 a "server": no primary user → no cached credentials.
        world.hosts[0].with(|h| h.primary_user = None);
        mesh(&mut sim, &world);
        arm_spawn_hook(&world);
        world.infect(&mut sim, 0);
        sim.run_until(SimTime::from_secs(300));
        assert_eq!(world.infected_count(), 1);
    }
}
