//! Scenario-level invariants for the worm evaluation, on the reduced
//! testbed (fast enough for the default test profile).

use dfi_simnet::SimTime;
use dfi_worm::{run_scenario, Condition, ScenarioConfig, TestbedConfig, WormConfig};
use std::time::Duration;

fn config(condition: Condition, hour: f64, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        condition,
        foothold_hour: hour,
        foothold: None,
        observe: Duration::from_secs(30 * 60),
        seed,
        testbed: TestbedConfig::small(),
        worm: WormConfig {
            lifetime_min: Duration::from_secs(20 * 60),
            lifetime_max: Duration::from_secs(21 * 60),
            pass_pause: Duration::from_secs(60),
            ..WormConfig::default()
        },
    }
}

#[test]
fn scenarios_are_deterministic_per_seed() {
    let a = run_scenario(&config(Condition::AtRbac, 9.0, 42));
    let b = run_scenario(&config(Condition::AtRbac, 9.0, 42));
    assert_eq!(a.infections, b.infections, "same seed, same timeline");
    let c = run_scenario(&config(Condition::AtRbac, 9.0, 43));
    // A different seed reshuffles targets/lifetimes; the exact timeline
    // should differ even if totals agree.
    assert_ne!(a.infections, c.infections);
}

#[test]
fn infection_times_are_monotone_and_start_at_foothold() {
    let r = run_scenario(&config(Condition::Baseline, 9.0, 7));
    assert_eq!(r.infections[0].0, r.foothold_at);
    for w in r.infections.windows(2) {
        assert!(w[0].0 <= w[1].0, "infections out of order: {w:?}");
    }
    assert!(r.infected_total() <= r.total_hosts);
    // No host infected twice.
    let mut names: Vec<&String> = r.infections.iter().map(|(_, n)| n).collect();
    names.sort();
    names.dedup();
    assert_eq!(names.len(), r.infections.len());
}

#[test]
fn condition_ordering_holds_across_seeds() {
    // The paper's qualitative claim, checked across seeds: final infections
    // baseline >= s-rbac >= at-rbac (on any horizon it can only tie or
    // order this way — access control never helps the worm).
    for seed in [1u64, 2, 3] {
        let b = run_scenario(&config(Condition::Baseline, 9.0, seed));
        let s = run_scenario(&config(Condition::SRbac, 9.0, seed));
        let a = run_scenario(&config(Condition::AtRbac, 9.0, seed));
        let at = |r: &dfi_worm::ScenarioResult, min: u64| {
            r.infected_by(r.foothold_at + Duration::from_secs(min * 60))
        };
        for min in [5u64, 10, 20, 30] {
            assert!(
                at(&b, min) >= at(&s, min),
                "seed {seed} @{min}min: baseline {} < s-rbac {}",
                at(&b, min),
                at(&s, min)
            );
            assert!(
                at(&s, min) + 1 >= at(&a, min),
                "seed {seed} @{min}min: s-rbac {} well below at-rbac {}",
                at(&s, min),
                at(&a, min)
            );
        }
    }
}

#[test]
fn weekend_3am_foothold_is_always_contained_under_at_rbac() {
    for seed in [11u64, 12, 13] {
        let r = run_scenario(&config(Condition::AtRbac, 3.0, seed));
        assert_eq!(
            r.infected_total(),
            1,
            "seed {seed}: off-hours foothold must not spread: {:?}",
            r.infections
        );
    }
}

#[test]
fn series_reaches_its_final_value() {
    let r = run_scenario(&config(Condition::SRbac, 9.0, 5));
    let series = r.series_minutes(30);
    assert_eq!(
        series.last().unwrap().1,
        r.infected_by(r.foothold_at + Duration::from_secs(30 * 60))
    );
    assert_eq!(series.len(), 31);
    assert!(series[0].1 >= 1, "foothold counted at minute zero");
}

#[test]
fn foothold_can_be_chosen_by_name() {
    let mut cfg = config(Condition::Baseline, 9.0, 9);
    cfg.foothold = Some("dept-2-h1".to_string());
    let r = run_scenario(&cfg);
    assert_eq!(r.infections[0].1, "dept-2-h1");
    assert_eq!(r.infections[0].0, SimTime::from_secs(9 * 3600));
}
