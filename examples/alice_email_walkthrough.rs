//! The paper's §III-C end-to-end example, step by step: Alice's laptop
//! joins the domain, Alice logs on, checks her email, and logs off — with
//! DFI granting and revoking network reachability at each step.
//!
//! Run with: `cargo run --release --example alice_email_walkthrough`

use dfi_repro::controller::Controller;
use dfi_repro::core::events::{wire_dhcp_sensor, wire_dns_sensor, wire_siem_sensor};
use dfi_repro::core::pdp::priority;
use dfi_repro::core::policy::{EndpointPattern, PolicyRule, DEFAULT_DENY_ID};
use dfi_repro::core::Dfi;
use dfi_repro::dataplane::{Network, SwitchConfig};
use dfi_repro::packet::headers::build;
use dfi_repro::packet::MacAddr;
use dfi_repro::services::{DhcpServer, DnsServer, Siem};
use dfi_repro::simnet::Sim;
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;
use std::time::Duration;

fn main() {
    let mut sim = Sim::new(7);
    let mut net = Network::new();
    let sw = net.add_switch(SwitchConfig::new(0xD1));
    let lat = Duration::from_micros(50);
    let mail_got = Rc::new(RefCell::new(0u32));
    let mg = mail_got.clone();
    let alice_tx = net.attach_host(&sw, 1, lat, Rc::new(|_, _| {}));
    let _mail_rx = net.attach_host(&sw, 2, lat, Rc::new(move |_, _| *mg.borrow_mut() += 1));

    let dfi = Dfi::with_defaults();
    let ctrl = Controller::reactive();
    let c = ctrl.clone();
    dfi.interpose(&mut sim, &sw, move |sim, sink| c.connect(sim, sink));
    sim.run();

    // Enterprise services with DFI's identifier-binding sensors attached
    // at their authoritative sources.
    let dhcp = DhcpServer::new(Ipv4Addr::new(10, 0, 0, 2), Ipv4Addr::new(10, 0, 0, 10), 32);
    let dns = DnsServer::new("corp.local");
    let siem = Siem::new();
    wire_dhcp_sensor(&dhcp, dfi.bus());
    wire_dns_sensor(&dns, dfi.bus());
    wire_siem_sensor(&siem, dfi.bus());

    let alice_mac = MacAddr::from_index(1);
    let mail_mac = MacAddr::from_index(2);

    println!("1-2  Alice-Laptop joins the domain: DHCP lease + DNS record;");
    println!("     the binding sensors report both to the ERM over the bus.");
    let alice_ip = dhcp
        .quick_lease(&mut sim, alice_mac, "alice-laptop", 1)
        .unwrap();
    dns.register(&mut sim, "alice-laptop", alice_ip);
    let mail_ip = dhcp.quick_lease(&mut sim, mail_mac, "mail", 2).unwrap();
    dns.register(&mut sim, "mail", mail_ip);
    sim.run();

    println!("     (policy author) while Alice is logged on, her machine may");
    println!("     reach the email server:");
    dfi.insert_policy(
        &mut sim,
        PolicyRule::allow(
            EndpointPattern::user("alice"),
            EndpointPattern::host("mail"),
        ),
        priority::AT_RBAC,
        "email-pdp",
    );
    sim.run();

    let try_email = |sim: &mut Sim, sport: u16, tx: &dfi_repro::dataplane::Tx| {
        let syn = build::tcp_syn(alice_mac, mail_mac, alice_ip, mail_ip, sport, 143);
        tx.send(sim, syn);
        sim.run();
    };

    println!("     before log-on: the flow is DENIED (no user binding).");
    try_email(&mut sim, 50_000, &alice_tx);
    assert_eq!(dfi.metrics().denied, 1);
    assert_eq!(*mail_got.borrow(), 0);

    println!("3-5  Alice logs on; the SIEM derives the event from process");
    println!("     creation and the PDP/ERM learn alice@alice-laptop.");
    siem.log_on(&mut sim, "alice", "alice-laptop");
    sim.run();
    // The earlier failed attempt cached a default-deny rule for that exact
    // flow; flush it so the fresh decision applies (in AT-RBAC deployments
    // the PDP's policy insert does this automatically).
    dfi.flush_policy_rules(&mut sim, DEFAULT_DENY_ID);
    sim.run();

    println!("6-11 Alice checks her email: Packet-In → proxy → PCP → ERM →");
    println!("     PM → Allow rule in Table 0 → controller routes the flow.");
    try_email(&mut sim, 50_001, &alice_tx);
    assert_eq!(dfi.metrics().allowed, 1);
    assert_eq!(*mail_got.borrow(), 1);
    println!("     SYN delivered to the mail server.");

    println!("12-14 Alice logs off; the binding expires and new flows from");
    println!("      her (unattended) laptop are denied again.");
    siem.log_off(&mut sim, "alice", "alice-laptop");
    sim.run();
    dfi.flush_policy_rules(&mut sim, DEFAULT_DENY_ID);
    sim.run();
    let denied_before = dfi.metrics().denied;
    try_email(&mut sim, 50_002, &alice_tx);
    assert_eq!(dfi.metrics().denied, denied_before + 1);
    assert_eq!(*mail_got.borrow(), 1, "no new delivery after log-off");

    let m = dfi.metrics();
    println!();
    println!(
        "summary: packet-ins={} allowed={} denied={} flushes={}",
        m.packet_ins, m.allowed, m.denied, m.flushes
    );
    println!("walkthrough OK: reachability follows Alice's authentication state.");
}
