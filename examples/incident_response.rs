//! Incident response: stopping an active NotPetya outbreak with the
//! quarantine PDP.
//!
//! The worm gets a 09:00 foothold on the paper's testbed under S-RBAC (it
//! would eventually take the whole network — Figure 5a). An automated
//! responder polls an EDR feed (modeled as each host's infection flag with
//! a detection delay) and quarantines infected machines through DFI.
//! Quarantine rules are maximum-priority denies; inserting them flushes
//! the cached allow rules of every conflicting policy, so even the worm's
//! *ongoing* connections die at the next packet.
//!
//! Run with: `cargo run --release --example incident_response`

use dfi_repro::core::pdp::QuarantinePdp;
use dfi_repro::simnet::Sim;
use dfi_repro::simnet::SimTime;
use dfi_repro::worm::testbed::{Condition, Testbed, TestbedConfig};
use dfi_repro::worm::worm::{WormConfig, WormInstance, WormWorld};
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

/// EDR detection delay: time from infection to the responder knowing.
const DETECTION_DELAY: Duration = Duration::from_secs(120);
/// Responder poll interval.
const POLL: Duration = Duration::from_secs(30);

fn run(with_responder: bool) -> (usize, usize, usize) {
    let mut sim = Sim::new(0x1C1D);
    let tb = Testbed::build(&mut sim, &TestbedConfig::default(), Condition::SRbac);
    tb.schedule_logons(&mut sim);

    let world = Rc::new(WormWorld {
        hosts: tb.hosts.clone(),
        directory: tb.directory.clone(),
        config: WormConfig::default(),
        infections: RefCell::new(Vec::new()),
        on_infect: RefCell::new(None),
    });
    {
        let w = world.clone();
        *world.on_infect.borrow_mut() = Some(Box::new(move |sim, idx| {
            WormInstance::spawn(sim, w.clone(), idx);
        }));
    }
    let foothold_at = SimTime::from_secs(9 * 3600);
    {
        let w = world.clone();
        sim.schedule_at(foothold_at, move |sim| w.infect(sim, 0));
    }

    // The responder: poll the EDR feed, quarantine anything detected.
    let quarantined = Rc::new(RefCell::new(QuarantinePdp::new()));
    if with_responder {
        struct Responder {
            world: Rc<WormWorld>,
            dfi: dfi_repro::core::Dfi,
            quarantine: Rc<RefCell<QuarantinePdp>>,
        }
        fn poll(r: &Rc<Responder>, sim: &mut Sim) {
            let now = sim.now();
            let detected: Vec<String> = r
                .world
                .hosts
                .iter()
                .filter(|h| {
                    h.with(|n| n.infected_at)
                        .is_some_and(|t| now - t >= DETECTION_DELAY)
                })
                .map(dfi_repro::worm::Host::hostname)
                .collect();
            for host in detected {
                if !r.quarantine.borrow().is_quarantined(&host) {
                    r.quarantine.borrow_mut().quarantine(sim, &r.dfi, &host);
                    println!("  [{now}] responder quarantined {host}");
                }
            }
            let r2 = r.clone();
            if now < SimTime::from_secs(11 * 3600) {
                sim.schedule_in(POLL, move |sim| poll(&r2, sim));
            }
        }
        let responder = Rc::new(Responder {
            world: world.clone(),
            dfi: tb.dfi.clone(),
            quarantine: quarantined.clone(),
        });
        let r = responder.clone();
        sim.schedule_at(foothold_at, move |sim| poll(&r, sim));
    }

    sim.set_event_limit(2_000_000_000);
    sim.run_until(foothold_at + Duration::from_secs(70 * 60));
    let infected = world.infected_count();
    let isolated = tb
        .hosts
        .iter()
        .filter(|h| quarantined.borrow().is_quarantined(&h.hostname()))
        .count();
    (infected, isolated, tb.total_hosts())
}

fn main() {
    println!("09:00 foothold under S-RBAC, with and without an automated responder");
    println!("(EDR detection delay 120s, responder polls every 30s, quarantine via DFI)");
    println!();
    println!("-- without responder --");
    let (infected, _, total) = run(false);
    println!("   infected: {infected}/{total}");
    println!();
    println!("-- with responder --");
    let (infected_r, isolated, total) = run(true);
    println!("   infected: {infected_r}/{total}, quarantined: {isolated}");
    assert!(
        infected_r < infected,
        "quarantine must contain the outbreak"
    );
    println!();
    println!(
        "containment: {infected} -> {infected_r} infections. Dynamic policy means \
         the quarantine takes effect on the worm's NEXT packet — cached allow \
         rules are flushed by cookie the moment the deny is inserted."
    );
}
