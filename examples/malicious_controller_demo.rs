//! Controller-obliviousness demo: the same malicious controller, with and
//! without DFI's proxy in front of it.
//!
//! The attacker controls the SDN controller (or one of its apps) and
//! tries three things: wipe every flow rule, install a maximum-priority
//! allow-everything rule, and read back every table's contents. Without
//! DFI the network falls instantly; behind the proxy, Table 0 is simply
//! not part of the controller's universe.
//!
//! Run with: `cargo run --release --example malicious_controller_demo`

use dfi_repro::controller::{Controller, Misbehavior, EVIL_COOKIE};
use dfi_repro::core::policy::DEFAULT_DENY_ID;
use dfi_repro::core::Dfi;
use dfi_repro::dataplane::{Network, SwitchConfig};
use dfi_repro::openflow::{Message, MultipartReply};
use dfi_repro::packet::headers::build;
use dfi_repro::packet::MacAddr;
use dfi_repro::simnet::Sim;
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;
use std::time::Duration;

fn attack() -> Vec<Misbehavior> {
    vec![
        Misbehavior::DeleteAllRules,
        Misbehavior::InstallAllowAll,
        Misbehavior::SnoopAllTables,
    ]
}

fn main() {
    println!("-- condition 1: malicious controller, NO proxy --");
    {
        let mut sim = Sim::new(1);
        let mut net = Network::new();
        let sw = net.add_switch(SwitchConfig::new(0xBAD));
        let ctrl = Controller::malicious(attack());
        let from_switch = ctrl.connect(&mut sim, sw.control_ingress());
        sw.connect_control(&mut sim, from_switch);
        sim.run();
        println!(
            "   table 0 cookies after attack: {:?}  (EVIL = {:#x})",
            sw.table0_cookies(),
            EVIL_COOKIE
        );
        assert!(sw.table0_cookies().contains(&EVIL_COOKIE));
        println!("   => the allow-all bypass landed in table 0. Network owned.");
    }

    println!();
    println!("-- condition 2: same controller behind the DFI proxy --");
    {
        let mut sim = Sim::new(1);
        let mut net = Network::new();
        let sw = net.add_switch(SwitchConfig::new(0xD1));
        let denied = Rc::new(RefCell::new(0u32));
        let lat = Duration::from_micros(50);
        let victim_tx = net.attach_host(&sw, 1, lat, Rc::new(|_, _| {}));
        let d = denied.clone();
        let _target_rx = net.attach_host(&sw, 2, lat, Rc::new(move |_, _| *d.borrow_mut() += 1));

        let dfi = Dfi::with_defaults();
        let ctrl = Controller::malicious(attack());
        let c = ctrl.clone();
        dfi.interpose(&mut sim, &sw, move |sim, sink| c.connect(sim, sink));
        sim.run();

        // A flow the (default-deny) policy blocks; the attacker's allow-all
        // must not resurrect it.
        let syn = build::tcp_syn(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            50_000,
            445,
        );
        victim_tx.send(&mut sim, syn);
        sim.run();

        println!("   table 0 cookies after attack: {:?}", sw.table0_cookies());
        assert!(!sw.table0_cookies().contains(&EVIL_COOKIE));
        assert!(sw.table0_cookies().contains(&DEFAULT_DENY_ID.0));
        println!("   frames that reached the target: {}", denied.borrow());
        assert_eq!(*denied.borrow(), 0);

        // What did the snooper learn? Nothing about table 0.
        let mut leaked = 0;
        for (_, msg) in ctrl.seen_messages() {
            if let Message::MultipartReply(MultipartReply::Flow(entries)) = msg {
                leaked += entries
                    .iter()
                    .filter(|e| e.cookie == DEFAULT_DENY_ID.0)
                    .count();
            }
        }
        println!("   DFI rules visible to the snooper: {leaked}");
        assert_eq!(leaked, 0);
        println!("   => delete-all expanded onto tables 1+, allow-all shifted to");
        println!("      table 1, statistics hide table 0: DFI never trusted the");
        println!("      controller, so the controller could not betray it.");
    }
}
