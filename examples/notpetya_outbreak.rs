//! A NotPetya-surrogate outbreak on the paper's 92-host enterprise
//! testbed, under all three access-control conditions.
//!
//! Run with: `cargo run --release --example notpetya_outbreak`

use dfi_repro::worm::{run_scenario, Condition, ScenarioConfig};

fn main() {
    println!("Releasing the worm at 09:00 on dept-1-h1 under three conditions.");
    println!("(86 end hosts + 6 servers, 14 switches, DFI in the control plane)");
    println!();
    for (condition, label) in [
        (Condition::Baseline, "baseline (no access control)"),
        (Condition::SRbac, "S-RBAC  (static role-based)"),
        (Condition::AtRbac, "AT-RBAC (authentication-triggered)"),
    ] {
        let result = run_scenario(&ScenarioConfig::paper(condition));
        let first = result.time_to_first_spread().map_or_else(
            || "never".to_string(),
            |d| format!("{:.1}s", d.as_secs_f64()),
        );
        let full = result.time_to_full_infection().map_or_else(
            || "never".to_string(),
            |d| format!("{:.1} min", d.as_secs_f64() / 60.0),
        );
        println!("== {label} ==");
        println!("   first spread : {first}");
        println!("   full network : {full}");
        println!(
            "   final count  : {}/{} hosts infected",
            result.infected_total(),
            result.total_hosts
        );
        // A compact 60-minute sparkline, 5-minute buckets.
        let marks: Vec<String> = result
            .series_minutes(60)
            .into_iter()
            .step_by(5)
            .map(|(_, n)| format!("{n:>3}"))
            .collect();
        println!("   infected @ 0,5,…,60 min: {}", marks.join(" "));
        println!();
    }
    println!("Shape to look for (paper Fig. 5a): baseline overruns in minutes;");
    println!("S-RBAC slows the first hop and the cross-enclave spread; AT-RBAC");
    println!("additionally turns hosts into moving targets and stops short of");
    println!("total infection.");
}
