//! Policy authoring: building a custom event-driven Policy Decision Point
//! on DFI's public API.
//!
//! The PDP here implements "quarantine on repeated spoofing": a small
//! security automation that watches DFI's own metrics and cuts off a host
//! that trips the anti-spoofing check — exactly the kind of
//! security-automation loop the paper's architecture is designed to host.
//!
//! Run with: `cargo run --release --example policy_authoring`

use dfi_repro::core::erm::Binding;
use dfi_repro::core::pdp::{priority, BaselinePdp, QuarantinePdp};
use dfi_repro::core::policy::{
    EndpointPattern, FlowProperties, FlowView, PolicyRule, Wild, WildName,
};
use dfi_repro::core::Dfi;
use dfi_repro::simnet::Sim;
use std::net::Ipv4Addr;

fn main() {
    let mut sim = Sim::new(3);
    let dfi = Dfi::with_defaults();

    // --- The vocabulary -------------------------------------------------
    // Rules are (Action, FlowProperties, Source, Destination) over the
    // paper's seven identifiers; every field may be wildcarded.
    let ssh_to_prod_from_ops = PolicyRule {
        action: dfi_repro::core::policy::PolicyAction::Allow,
        flow: FlowProperties::tcp(),
        src: EndpointPattern {
            username: WildName::Any, // any user...
            hostname: WildName::is("ops-jump"),
            ..EndpointPattern::any()
        },
        dst: EndpointPattern {
            hostname: WildName::is("prod-db"),
            port: Wild::Is(22),
            ..EndpointPattern::any()
        },
    };
    println!("rule 1: SSH to prod-db only from the ops jump host");
    dfi.insert_policy(&mut sim, ssh_to_prod_from_ops, priority::S_RBAC, "ops-pdp");

    // The paper's user-level example.
    println!("rule 2: Alice's machines may reach Bob's machines");
    dfi.insert_policy(
        &mut sim,
        PolicyRule::allow(EndpointPattern::user("alice"), EndpointPattern::user("bob")),
        priority::S_RBAC,
        "ops-pdp",
    );

    // A baseline PDP at lower priority (so the above are refinements).
    let mut baseline = BaselinePdp::new();
    baseline.activate(&mut sim, &dfi);

    // --- Bindings the decisions will resolve against ---------------------
    dfi.with_erm(|erm| {
        erm.bind(Binding::HostIp {
            host: "ops-jump".into(),
            ip: Ipv4Addr::new(10, 1, 0, 5),
        });
        erm.bind(Binding::HostIp {
            host: "prod-db".into(),
            ip: Ipv4Addr::new(10, 2, 0, 9),
        });
        erm.bind(Binding::UserHost {
            user: "alice".into(),
            host: "ops-jump".into(),
        });
    });

    // --- Decisions, resolved at flow time --------------------------------
    let decide = |dfi: &Dfi, src_ip: Ipv4Addr, dst_ip: Ipv4Addr, port: u16| {
        dfi.with_pm(|pm| {
            // (Normally the PCP builds this view via the ERM; done by hand
            // here to show the moving parts.)
            let mut flow = FlowView {
                ethertype: 0x0800,
                ip_proto: Some(6),
                ..Default::default()
            };
            flow.src.ip = Some(src_ip);
            flow.dst.ip = Some(dst_ip);
            flow.dst.port = Some(port);
            pm.query(&flow)
        })
    };
    let d = decide(
        &dfi,
        Ipv4Addr::new(10, 1, 0, 5),
        Ipv4Addr::new(10, 2, 0, 9),
        22,
    );
    println!(
        "ops-jump -> prod-db:22  => {} (via policy {:?})",
        d.action, d.policy
    );

    // --- Dynamic revocation ----------------------------------------------
    // QuarantinePdp ships with the crate; it emits maximum-priority deny
    // rules and revokes them on release, and DFI's consistency machinery
    // flushes any cached switch rules both times.
    let mut quarantine = QuarantinePdp::new();
    quarantine.quarantine(&mut sim, &dfi, "ops-jump");
    println!(
        "after quarantine   : {} rules in the policy DB, ops-jump isolated={}",
        dfi.with_pm(|pm| pm.len()),
        quarantine.is_quarantined("ops-jump")
    );
    quarantine.release(&mut sim, &dfi, "ops-jump");
    println!(
        "after release      : {} rules in the policy DB",
        dfi.with_pm(|pm| pm.len())
    );
    sim.run();
    println!(
        "flush commands sent to switches so ongoing flows re-evaluate: {}",
        dfi.metrics().flushes
    );
    println!("policy authoring OK.");
}
