//! Quickstart: bring up a one-switch SDN with DFI interposed before a
//! reactive controller, write a user-level policy, and watch it enforce.
//!
//! Run with: `cargo run --release --example quickstart`

use dfi_repro::controller::Controller;
use dfi_repro::core::pdp::priority;
use dfi_repro::core::policy::{EndpointPattern, PolicyRule};
use dfi_repro::core::Dfi;
use dfi_repro::dataplane::{Network, SwitchConfig};
use dfi_repro::packet::headers::build;
use dfi_repro::packet::MacAddr;
use dfi_repro::simnet::Sim;
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;
use std::time::Duration;

fn main() {
    // A deterministic discrete-event simulation drives everything.
    let mut sim = Sim::new(42);

    // Data plane: one OpenFlow 1.3 switch, two hosts.
    let mut net = Network::new();
    let sw = net.add_switch(SwitchConfig::new(0xD1));
    let lat = Duration::from_micros(50);
    let delivered = Rc::new(RefCell::new(0u32));
    let d = delivered.clone();
    let alice_tx = net.attach_host(&sw, 1, lat, Rc::new(|_, _| {}));
    let _bob_rx = net.attach_host(
        &sw,
        2,
        lat,
        Rc::new(move |_, _frame| {
            *d.borrow_mut() += 1;
        }),
    );

    // Control plane: DFI interposed between the switch and an ONOS-like
    // reactive controller. The controller has no idea DFI exists.
    let dfi = Dfi::with_defaults();
    let ctrl = Controller::reactive();
    let c = ctrl.clone();
    dfi.interpose(&mut sim, &sw, move |sim, sink| c.connect(sim, sink));
    sim.run();

    // Identifier bindings (normally fed by DHCP/DNS/SIEM sensors; bound
    // directly here for brevity).
    let alice_ip = Ipv4Addr::new(10, 0, 0, 1);
    let bob_ip = Ipv4Addr::new(10, 0, 0, 2);
    dfi.with_erm(|erm| {
        use dfi_repro::core::erm::Binding;
        erm.bind(Binding::HostIp {
            host: "alice-laptop".into(),
            ip: alice_ip,
        });
        erm.bind(Binding::UserHost {
            user: "alice".into(),
            host: "alice-laptop".into(),
        });
        erm.bind(Binding::HostIp {
            host: "bob-desktop".into(),
            ip: bob_ip,
        });
        erm.bind(Binding::UserHost {
            user: "bob".into(),
            host: "bob-desktop".into(),
        });
    });

    // The paper's example policy: any machine Alice is using may talk to
    // any machine Bob is using — written over *users*, not addresses.
    dfi.insert_policy(
        &mut sim,
        PolicyRule::allow(EndpointPattern::user("alice"), EndpointPattern::user("bob")),
        priority::AT_RBAC,
        "quickstart-pdp",
    );

    // Alice → Bob: allowed.
    let syn = build::tcp_syn(
        MacAddr::from_index(1),
        MacAddr::from_index(2),
        alice_ip,
        bob_ip,
        50_000,
        443,
    );
    alice_tx.send(&mut sim, syn);
    sim.run();

    // Mallory (same machine IDs faked from port 1 would be spoof-checked;
    // here: an unknown host) → Bob: default-denied.
    let evil = build::tcp_syn(
        MacAddr::from_index(1),
        MacAddr::from_index(2),
        Ipv4Addr::new(10, 9, 9, 9),
        bob_ip,
        50_001,
        443,
    );
    alice_tx.send(&mut sim, evil);
    sim.run();

    let m = dfi.metrics();
    println!("packet-ins seen by DFI : {}", m.packet_ins);
    println!("flows allowed          : {}", m.allowed);
    println!("flows denied           : {}", m.denied);
    println!("frames reaching Bob    : {}", delivered.borrow());
    println!("table-0 rules (cookies): {:?}", sw.table0_cookies());
    assert_eq!(m.allowed, 1);
    assert_eq!(m.denied, 1);
    assert_eq!(*delivered.borrow(), 1);
    println!("quickstart OK: policy written over users, enforced in the network.");
}
