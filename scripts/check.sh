#!/usr/bin/env bash
# Repo-wide gate: formatting, lints, tests, and bench compilation.
# Everything runs offline against the vendored dev-dependency stubs.
#
# Usage:
#   scripts/check.sh          full gate: fmt, clippy, workspace tests with a
#                             per-crate breakdown, deep codec fuzz
#                             (FUZZ_ITERS, default 50000), the analyze, wire,
#                             decide, scale/par, reach, and repair tiers,
#                             bench compile
#   scripts/check.sh --fast   pre-commit tier: fmt, clippy, workspace tests
#                             with the fuzz suites dialed down to 500 cases
#   scripts/check.sh --analyze
#                             static-analysis tier only: clippy -D warnings
#                             plus the dfi-analyze seeded-corpus ground-truth
#                             gate, the network-audit corpus gate, the
#                             incremental-equivalence / >=10x speedup gate
#                             (writes BENCH_analyze.json), and the table-0
#                             audit demo
#   scripts/check.sh --wire   wire-path tier only: the splice-vs-oracle
#                             differential suite (deep), the golden byte
#                             vectors, and the dfi-wiregate allocation /
#                             speedup gate (writes BENCH_wire.json)
#   scripts/check.sh --decide
#                             flow-decide tier only: the snapshot three-way
#                             equivalence proptests (classify == query ==
#                             query_linear) and the dfi-decidegate >=10x
#                             speedup / zero-alloc gate on the compiled
#                             classifier (writes BENCH_decide.json)
#   scripts/check.sh --reach  reachability tier only: the brute-force
#                             per-packet oracle proptest (reach verdicts ==
#                             simulating every representative packet), the
#                             seeded reach-corpus exact ground-truth gate, the
#                             clean-fabric gate, and the 1000-switch
#                             leaf-spine incremental-vs-full recheck with a
#                             >=100x speedup gate (writes BENCH_reach.json)
#   scripts/check.sh --scale  fleet-scale tier only: the sharded-vs-unsharded
#                             differential oracle and topology proptests,
#                             then the dfi-scalegate 1000-switch / ~1M-binding
#                             run — probe equivalence verified before any
#                             timing, >=2x 8-shard throughput scaling gate
#                             (SCALE_ITERS trims the offered flows; writes
#                             BENCH_scale.json)
#   scripts/check.sh --par    thread-parallel tier only: the threaded
#                             differential oracle (byte-identical 360-step
#                             trace across 1/2/4/8 worker threads), the
#                             threaded revocation race, then the full
#                             dfi-scalegate run with the --sweep and --wall
#                             phases — Fig-4 saturation curves plus the
#                             hardware-aware parallel wall-scaling and
#                             monotonicity gates (writes BENCH_scale.json)
#   scripts/check.sh --repair repair tier only: the repair-convergence
#                             proptests and snapshot-rollback regressions,
#                             the per-corpus `repair --expect-repaired`
#                             exact ground-truth-plan gates (policy,
#                             network, reach — each also applied and
#                             re-audited clean), the live 14-switch repair
#                             loop, and the timed 1000-switch leaf-spine
#                             repair bench (writes BENCH_repair.json)
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
ANALYZE_ONLY=0
WIRE_ONLY=0
DECIDE_ONLY=0
SCALE_ONLY=0
REACH_ONLY=0
PAR_ONLY=0
REPAIR_ONLY=0
case "${1:-}" in
  --fast) FAST=1 ;;
  --analyze) ANALYZE_ONLY=1 ;;
  --wire) WIRE_ONLY=1 ;;
  --decide) DECIDE_ONLY=1 ;;
  --scale) SCALE_ONLY=1 ;;
  --reach) REACH_ONLY=1 ;;
  --par) PAR_ONLY=1 ;;
  --repair) REPAIR_ONLY=1 ;;
esac

run_wire() {
  echo "== splice golden byte vectors =="
  cargo test -q -p dfi-openflow --test splice_golden
  echo "== splice vs oracle differential (FUZZ_ITERS=${FUZZ_ITERS:-20000}) =="
  FUZZ_ITERS="${FUZZ_ITERS:-20000}" \
    cargo test -q -p dfi-core --test splice_oracle
  echo "== dfi-wiregate: allocation budget + >=2x speedup gate =="
  cargo build -q --release -p dfi-wiregate
  ./target/release/dfi-wiregate --gate 2 | tee BENCH_wire.json
}

if [[ "$WIRE_ONLY" == 1 ]]; then
  run_wire
  echo "All checks passed."
  exit 0
fi

run_decide() {
  echo "== snapshot three-way equivalence (classify == query == query_linear) =="
  cargo test -q -p dfi-core --test proptest_policy snapshot
  echo "== dfi-decidegate: >=10x compiled-classifier speedup + zero-alloc gate =="
  cargo build -q --release -p dfi-wiregate
  ./target/release/dfi-decidegate --gate 10 | tee BENCH_decide.json
}

if [[ "$DECIDE_ONLY" == 1 ]]; then
  run_decide
  echo "All checks passed."
  exit 0
fi

run_scale_tests() {
  echo "== sharded-vs-unsharded differential oracle (100+ live snapshot swaps) =="
  cargo test -q -p dfi-core --test sharded_oracle
  echo "== generated-topology properties (counts, connectivity, shard partition) =="
  cargo test -q -p dfi-simnet --test proptest_topo
}

run_scale() {
  run_scale_tests
  echo "== dfi-scalegate: 1000-switch / ~1M-binding fleet, equivalence then >=2x scaling gate =="
  cargo build -q --release -p dfi-wiregate
  SCALE_ITERS="${SCALE_ITERS:-12000}" \
    ./target/release/dfi-scalegate --gate 2 | tee BENCH_scale.json
}

if [[ "$SCALE_ONLY" == 1 ]]; then
  run_scale
  echo "All checks passed."
  exit 0
fi

run_par_tests() {
  echo "== threaded differential oracle (byte-identical trace across 1/2/4/8 workers) =="
  cargo test -q -p dfi-core --test threaded_oracle
  echo "== threaded revocation race (fail closed across the thread boundary) =="
  cargo test -q --test threaded_race
}

run_par() {
  run_par_tests
  echo "== dfi-scalegate --sweep --wall: Fig-4 curves + parallel wall gates =="
  cargo build -q --release -p dfi-wiregate
  SCALE_ITERS="${SCALE_ITERS:-12000}" \
    ./target/release/dfi-scalegate --gate 2 --sweep --wall | tee BENCH_scale.json
}

if [[ "$PAR_ONLY" == 1 ]]; then
  run_par
  echo "All checks passed."
  exit 0
fi

run_reach() {
  echo "== reach vs brute-force per-packet oracle (proptest) =="
  cargo test -q -p dfi-analyze --test proptest_reach
  echo "== dfi-analyze: seeded reach corpus (exact ground-truth gate) =="
  cargo build -q --release -p dfi-analyze
  ./target/release/dfi-analyze reach --spines 2 --leaves 8 --hosts 150 --flows 70 \
    --seed 7 --defects --expect-seeded
  echo "== dfi-analyze: clean fabric proves clean =="
  ./target/release/dfi-analyze reach --spines 2 --leaves 8 --hosts 150 --flows 70 --seed 7
  echo "== dfi-analyze: 1000-switch incremental recheck, equivalence then >=100x gate =="
  ./target/release/dfi-analyze reach --spines 40 --leaves 960 --hosts 600 --flows 250 \
    --seed 7 --bench 40 --gate 100 --json | tee BENCH_reach.json
}

if [[ "$REACH_ONLY" == 1 ]]; then
  run_reach
  echo "All checks passed."
  exit 0
fi

run_repair() {
  echo "== repair convergence proptests (clear / no-new / idempotent / oracle) =="
  cargo test -q -p dfi-analyze --test proptest_repair
  echo "== snapshot rollback regressions (unsharded / sharded / threaded) =="
  cargo test -q -p dfi-core --test rollback
  echo "== live 14-switch repair loop (direct apply + bus-driven PDP) =="
  cargo test -q -p dfi-analyze --test repair_live
  echo "== dfi-analyze repair: per-corpus exact ground-truth-plan gates =="
  cargo build -q --release -p dfi-analyze
  ./target/release/dfi-analyze repair --corpus policy --seed 7 --expect-repaired --apply
  ./target/release/dfi-analyze repair --corpus network --seed 7 --expect-repaired --apply
  ./target/release/dfi-analyze repair --corpus reach --seed 7 --expect-repaired --apply
  echo "== dfi-analyze repair: timed 1000-switch leaf-spine bench =="
  ./target/release/dfi-analyze repair --corpus reach --spines 8 --leaves 992 \
    --hosts 150 --flows 60 --seed 7 --bench --json | tee BENCH_repair.json
}

if [[ "$REPAIR_ONLY" == 1 ]]; then
  run_repair
  echo "All checks passed."
  exit 0
fi

run_analyze() {
  echo "== dfi-analyze: seeded 10k-rule corpus (exact ground-truth gate) =="
  cargo build -q --release -p dfi-analyze
  ./target/release/dfi-analyze corpus --rules 10000 --seed 7 --expect-seeded
  echo "== dfi-analyze: seeded network-audit corpus (cross-switch ground truth) =="
  ./target/release/dfi-analyze audit-network --switches 14 --flows 400 --seed 7 \
    --defects --expect-seeded
  echo "== dfi-analyze: incremental equivalence + >=10x speedup gate =="
  ./target/release/dfi-analyze watch --rules 10000 --seed 7 --mutations 60 \
    --gate 10 --json | tee BENCH_analyze.json
  echo "== dfi-analyze: live table-0 audit demo =="
  ./target/release/dfi-analyze demo
}

if [[ "$ANALYZE_ONLY" == 1 ]]; then
  echo "== cargo clippy (deny warnings) =="
  cargo clippy --workspace --all-targets -- -D warnings
  run_analyze
  echo "All checks passed."
  exit 0
fi

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace) =="
if [[ "$FAST" == 1 ]]; then
  # Keep the property/fuzz suites present but shallow so the tier stays
  # interactive; the full gate (and nightly FUZZ_ITERS overrides) go deep.
  FUZZ_ITERS=500 cargo test -q --workspace
else
  cargo test -q --workspace
fi

echo "== per-crate test counts =="
for manifest in crates/*/Cargo.toml; do
  pkg=$(sed -n 's/^name = "\(.*\)"/\1/p' "$manifest" | head -1)
  passed=$(FUZZ_ITERS=500 cargo test -q -p "$pkg" 2>/dev/null \
    | sed -n 's/^test result: ok\. \([0-9]*\) passed.*/\1/p' \
    | awk '{s+=$1} END {print s+0}')
  printf '  %-16s %s tests\n' "$pkg" "$passed"
done

if [[ "$FAST" == 0 ]]; then
  echo "== codec conformance, deep (FUZZ_ITERS=${FUZZ_ITERS:-50000}) =="
  FUZZ_ITERS="${FUZZ_ITERS:-50000}" \
    cargo test -q -p dfi-openflow --test conformance

  run_analyze

  run_wire

  run_decide

  # run_par's scalegate run is a strict superset of run_scale's (the
  # cooperative phases always run), so the full gate runs the big binary
  # once with every phase enabled.
  run_scale_tests
  run_par

  run_reach

  run_repair

  echo "== cargo bench --no-run =="
  cargo bench -q --workspace --no-run
fi

echo "All checks passed."
