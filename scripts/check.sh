#!/usr/bin/env bash
# Repo-wide gate: formatting, lints, tests, and bench compilation.
# Everything runs offline against the vendored dev-dependency stubs.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q --workspace

echo "== cargo bench --no-run =="
cargo bench -q --workspace --no-run

echo "All checks passed."
