#!/usr/bin/env bash
# Repo-wide gate: formatting, lints, tests, and bench compilation.
# Everything runs offline against the vendored dev-dependency stubs.
#
# Usage:
#   scripts/check.sh          full gate: fmt, clippy, workspace tests with a
#                             per-crate breakdown, deep codec fuzz
#                             (FUZZ_ITERS, default 50000), bench compile
#   scripts/check.sh --fast   pre-commit tier: fmt, clippy, workspace tests
#                             with the fuzz suites dialed down to 500 cases
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
if [[ "${1:-}" == "--fast" ]]; then
  FAST=1
fi

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace) =="
if [[ "$FAST" == 1 ]]; then
  # Keep the property/fuzz suites present but shallow so the tier stays
  # interactive; the full gate (and nightly FUZZ_ITERS overrides) go deep.
  FUZZ_ITERS=500 cargo test -q --workspace
else
  cargo test -q --workspace
fi

echo "== per-crate test counts =="
for manifest in crates/*/Cargo.toml; do
  pkg=$(sed -n 's/^name = "\(.*\)"/\1/p' "$manifest" | head -1)
  passed=$(FUZZ_ITERS=500 cargo test -q -p "$pkg" 2>/dev/null \
    | sed -n 's/^test result: ok\. \([0-9]*\) passed.*/\1/p' \
    | awk '{s+=$1} END {print s+0}')
  printf '  %-16s %s tests\n' "$pkg" "$passed"
done

if [[ "$FAST" == 0 ]]; then
  echo "== codec conformance, deep (FUZZ_ITERS=${FUZZ_ITERS:-50000}) =="
  FUZZ_ITERS="${FUZZ_ITERS:-50000}" \
    cargo test -q -p dfi-openflow --test conformance

  echo "== cargo bench --no-run =="
  cargo bench -q --workspace --no-run
fi

echo "All checks passed."
