//! Umbrella crate for the DFI reproduction.
//!
//! Re-exports every workspace crate under one roof so the examples and
//! integration tests (and downstream users who want a single dependency)
//! can reach the whole system:
//!
//! * [`core`] — Dynamic Flow Isolation itself (the paper's contribution)
//! * [`openflow`] — OpenFlow 1.3 wire protocol
//! * [`packet`] — L2–L4 packet formats
//! * [`dataplane`] — software switch and topology
//! * [`controller`] — reactive SDN controller (ONOS surrogate)
//! * [`services`] — DHCP / DNS / directory / SIEM surrogates
//! * [`bus`] — in-process message bus (RabbitMQ surrogate)
//! * [`simnet`] — discrete-event simulation kernel
//! * [`worm`] — NotPetya-surrogate evaluation scenario
//! * [`cbench`] — control-plane benchmark tool (cbench surrogate)

pub use dfi_bus as bus;
pub use dfi_cbench as cbench;
pub use dfi_controller as controller;
pub use dfi_core as core;
pub use dfi_dataplane as dataplane;
pub use dfi_openflow as openflow;
pub use dfi_packet as packet;
pub use dfi_services as services;
pub use dfi_simnet as simnet;
pub use dfi_worm as worm;
