/root/repo/target/debug/deps/ablation_consistency-1f5097a4f9ccdeeb.d: crates/bench/benches/ablation_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libablation_consistency-1f5097a4f9ccdeeb.rmeta: crates/bench/benches/ablation_consistency.rs Cargo.toml

crates/bench/benches/ablation_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
