/root/repo/target/debug/deps/ablation_consistency-aa72194ef44316af.d: crates/bench/benches/ablation_consistency.rs

/root/repo/target/debug/deps/ablation_consistency-aa72194ef44316af: crates/bench/benches/ablation_consistency.rs

crates/bench/benches/ablation_consistency.rs:
