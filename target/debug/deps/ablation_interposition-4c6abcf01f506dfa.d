/root/repo/target/debug/deps/ablation_interposition-4c6abcf01f506dfa.d: crates/bench/benches/ablation_interposition.rs Cargo.toml

/root/repo/target/debug/deps/libablation_interposition-4c6abcf01f506dfa.rmeta: crates/bench/benches/ablation_interposition.rs Cargo.toml

crates/bench/benches/ablation_interposition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
