/root/repo/target/debug/deps/ablation_interposition-7ebd1e93d0c58cc0.d: crates/bench/benches/ablation_interposition.rs

/root/repo/target/debug/deps/ablation_interposition-7ebd1e93d0c58cc0: crates/bench/benches/ablation_interposition.rs

crates/bench/benches/ablation_interposition.rs:
