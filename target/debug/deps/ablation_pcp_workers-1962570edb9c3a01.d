/root/repo/target/debug/deps/ablation_pcp_workers-1962570edb9c3a01.d: crates/bench/benches/ablation_pcp_workers.rs

/root/repo/target/debug/deps/ablation_pcp_workers-1962570edb9c3a01: crates/bench/benches/ablation_pcp_workers.rs

crates/bench/benches/ablation_pcp_workers.rs:
