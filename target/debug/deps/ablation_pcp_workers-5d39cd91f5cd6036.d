/root/repo/target/debug/deps/ablation_pcp_workers-5d39cd91f5cd6036.d: crates/bench/benches/ablation_pcp_workers.rs Cargo.toml

/root/repo/target/debug/deps/libablation_pcp_workers-5d39cd91f5cd6036.rmeta: crates/bench/benches/ablation_pcp_workers.rs Cargo.toml

crates/bench/benches/ablation_pcp_workers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
