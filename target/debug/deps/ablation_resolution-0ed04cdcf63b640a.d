/root/repo/target/debug/deps/ablation_resolution-0ed04cdcf63b640a.d: crates/bench/benches/ablation_resolution.rs

/root/repo/target/debug/deps/ablation_resolution-0ed04cdcf63b640a: crates/bench/benches/ablation_resolution.rs

crates/bench/benches/ablation_resolution.rs:
