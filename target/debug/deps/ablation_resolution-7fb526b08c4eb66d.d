/root/repo/target/debug/deps/ablation_resolution-7fb526b08c4eb66d.d: crates/bench/benches/ablation_resolution.rs Cargo.toml

/root/repo/target/debug/deps/libablation_resolution-7fb526b08c4eb66d.rmeta: crates/bench/benches/ablation_resolution.rs Cargo.toml

crates/bench/benches/ablation_resolution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
