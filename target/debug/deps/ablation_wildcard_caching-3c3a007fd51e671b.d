/root/repo/target/debug/deps/ablation_wildcard_caching-3c3a007fd51e671b.d: crates/bench/benches/ablation_wildcard_caching.rs

/root/repo/target/debug/deps/ablation_wildcard_caching-3c3a007fd51e671b: crates/bench/benches/ablation_wildcard_caching.rs

crates/bench/benches/ablation_wildcard_caching.rs:
