/root/repo/target/debug/deps/ablation_wildcard_caching-471b45a89515e4cd.d: crates/bench/benches/ablation_wildcard_caching.rs Cargo.toml

/root/repo/target/debug/deps/libablation_wildcard_caching-471b45a89515e4cd.rmeta: crates/bench/benches/ablation_wildcard_caching.rs Cargo.toml

crates/bench/benches/ablation_wildcard_caching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
