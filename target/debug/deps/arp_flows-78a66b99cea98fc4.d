/root/repo/target/debug/deps/arp_flows-78a66b99cea98fc4.d: tests/arp_flows.rs Cargo.toml

/root/repo/target/debug/deps/libarp_flows-78a66b99cea98fc4.rmeta: tests/arp_flows.rs Cargo.toml

tests/arp_flows.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
