/root/repo/target/debug/deps/arp_flows-d761834334547f1e.d: tests/arp_flows.rs

/root/repo/target/debug/deps/arp_flows-d761834334547f1e: tests/arp_flows.rs

tests/arp_flows.rs:
