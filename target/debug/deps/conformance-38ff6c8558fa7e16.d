/root/repo/target/debug/deps/conformance-38ff6c8558fa7e16.d: crates/openflow/tests/conformance.rs Cargo.toml

/root/repo/target/debug/deps/libconformance-38ff6c8558fa7e16.rmeta: crates/openflow/tests/conformance.rs Cargo.toml

crates/openflow/tests/conformance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
