/root/repo/target/debug/deps/conformance-7ddc42e47b1c80d1.d: crates/openflow/tests/conformance.rs

/root/repo/target/debug/deps/conformance-7ddc42e47b1c80d1: crates/openflow/tests/conformance.rs

crates/openflow/tests/conformance.rs:
