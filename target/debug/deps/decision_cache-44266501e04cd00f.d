/root/repo/target/debug/deps/decision_cache-44266501e04cd00f.d: crates/core/tests/decision_cache.rs

/root/repo/target/debug/deps/decision_cache-44266501e04cd00f: crates/core/tests/decision_cache.rs

crates/core/tests/decision_cache.rs:
