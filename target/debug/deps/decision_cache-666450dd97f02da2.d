/root/repo/target/debug/deps/decision_cache-666450dd97f02da2.d: crates/core/tests/decision_cache.rs Cargo.toml

/root/repo/target/debug/deps/libdecision_cache-666450dd97f02da2.rmeta: crates/core/tests/decision_cache.rs Cargo.toml

crates/core/tests/decision_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
