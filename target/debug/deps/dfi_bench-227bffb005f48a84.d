/root/repo/target/debug/deps/dfi_bench-227bffb005f48a84.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdfi_bench-227bffb005f48a84.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
