/root/repo/target/debug/deps/dfi_bench-78a9ac59d6e85ecb.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/dfi_bench-78a9ac59d6e85ecb: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
