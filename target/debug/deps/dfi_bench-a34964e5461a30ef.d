/root/repo/target/debug/deps/dfi_bench-a34964e5461a30ef.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdfi_bench-a34964e5461a30ef.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
