/root/repo/target/debug/deps/dfi_bench-d0f8a25fdd444521.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdfi_bench-d0f8a25fdd444521.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdfi_bench-d0f8a25fdd444521.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
