/root/repo/target/debug/deps/dfi_bus-54f99e99963eb63c.d: crates/bus/src/lib.rs

/root/repo/target/debug/deps/dfi_bus-54f99e99963eb63c: crates/bus/src/lib.rs

crates/bus/src/lib.rs:
