/root/repo/target/debug/deps/dfi_bus-59b9de68367d3e1c.d: crates/bus/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdfi_bus-59b9de68367d3e1c.rmeta: crates/bus/src/lib.rs Cargo.toml

crates/bus/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
