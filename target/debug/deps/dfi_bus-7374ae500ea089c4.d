/root/repo/target/debug/deps/dfi_bus-7374ae500ea089c4.d: crates/bus/src/lib.rs

/root/repo/target/debug/deps/libdfi_bus-7374ae500ea089c4.rlib: crates/bus/src/lib.rs

/root/repo/target/debug/deps/libdfi_bus-7374ae500ea089c4.rmeta: crates/bus/src/lib.rs

crates/bus/src/lib.rs:
