/root/repo/target/debug/deps/dfi_cbench-39dfbcfcd91d7a81.d: crates/cbench/src/lib.rs crates/cbench/src/latency.rs crates/cbench/src/throughput.rs crates/cbench/src/ttfb.rs

/root/repo/target/debug/deps/libdfi_cbench-39dfbcfcd91d7a81.rlib: crates/cbench/src/lib.rs crates/cbench/src/latency.rs crates/cbench/src/throughput.rs crates/cbench/src/ttfb.rs

/root/repo/target/debug/deps/libdfi_cbench-39dfbcfcd91d7a81.rmeta: crates/cbench/src/lib.rs crates/cbench/src/latency.rs crates/cbench/src/throughput.rs crates/cbench/src/ttfb.rs

crates/cbench/src/lib.rs:
crates/cbench/src/latency.rs:
crates/cbench/src/throughput.rs:
crates/cbench/src/ttfb.rs:
