/root/repo/target/debug/deps/dfi_cbench-3b32fbda0d32ea02.d: crates/cbench/src/lib.rs crates/cbench/src/latency.rs crates/cbench/src/throughput.rs crates/cbench/src/ttfb.rs

/root/repo/target/debug/deps/dfi_cbench-3b32fbda0d32ea02: crates/cbench/src/lib.rs crates/cbench/src/latency.rs crates/cbench/src/throughput.rs crates/cbench/src/ttfb.rs

crates/cbench/src/lib.rs:
crates/cbench/src/latency.rs:
crates/cbench/src/throughput.rs:
crates/cbench/src/ttfb.rs:
