/root/repo/target/debug/deps/dfi_cbench-7ea649ee3572656f.d: crates/cbench/src/lib.rs crates/cbench/src/latency.rs crates/cbench/src/throughput.rs crates/cbench/src/ttfb.rs Cargo.toml

/root/repo/target/debug/deps/libdfi_cbench-7ea649ee3572656f.rmeta: crates/cbench/src/lib.rs crates/cbench/src/latency.rs crates/cbench/src/throughput.rs crates/cbench/src/ttfb.rs Cargo.toml

crates/cbench/src/lib.rs:
crates/cbench/src/latency.rs:
crates/cbench/src/throughput.rs:
crates/cbench/src/ttfb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
