/root/repo/target/debug/deps/dfi_cbench-d8af6e9b81368238.d: crates/cbench/src/lib.rs crates/cbench/src/latency.rs crates/cbench/src/throughput.rs crates/cbench/src/ttfb.rs Cargo.toml

/root/repo/target/debug/deps/libdfi_cbench-d8af6e9b81368238.rmeta: crates/cbench/src/lib.rs crates/cbench/src/latency.rs crates/cbench/src/throughput.rs crates/cbench/src/ttfb.rs Cargo.toml

crates/cbench/src/lib.rs:
crates/cbench/src/latency.rs:
crates/cbench/src/throughput.rs:
crates/cbench/src/ttfb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
