/root/repo/target/debug/deps/dfi_controller-24b29f302e0159d1.d: crates/controller/src/lib.rs crates/controller/src/topo.rs Cargo.toml

/root/repo/target/debug/deps/libdfi_controller-24b29f302e0159d1.rmeta: crates/controller/src/lib.rs crates/controller/src/topo.rs Cargo.toml

crates/controller/src/lib.rs:
crates/controller/src/topo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
