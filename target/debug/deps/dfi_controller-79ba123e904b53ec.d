/root/repo/target/debug/deps/dfi_controller-79ba123e904b53ec.d: crates/controller/src/lib.rs crates/controller/src/topo.rs Cargo.toml

/root/repo/target/debug/deps/libdfi_controller-79ba123e904b53ec.rmeta: crates/controller/src/lib.rs crates/controller/src/topo.rs Cargo.toml

crates/controller/src/lib.rs:
crates/controller/src/topo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
