/root/repo/target/debug/deps/dfi_controller-a9555ad91ee46dd7.d: crates/controller/src/lib.rs crates/controller/src/topo.rs

/root/repo/target/debug/deps/dfi_controller-a9555ad91ee46dd7: crates/controller/src/lib.rs crates/controller/src/topo.rs

crates/controller/src/lib.rs:
crates/controller/src/topo.rs:
