/root/repo/target/debug/deps/dfi_controller-eb4df741857dc5ea.d: crates/controller/src/lib.rs crates/controller/src/topo.rs

/root/repo/target/debug/deps/libdfi_controller-eb4df741857dc5ea.rlib: crates/controller/src/lib.rs crates/controller/src/topo.rs

/root/repo/target/debug/deps/libdfi_controller-eb4df741857dc5ea.rmeta: crates/controller/src/lib.rs crates/controller/src/topo.rs

crates/controller/src/lib.rs:
crates/controller/src/topo.rs:
