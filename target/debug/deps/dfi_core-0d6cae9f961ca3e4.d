/root/repo/target/debug/deps/dfi_core-0d6cae9f961ca3e4.d: crates/core/src/lib.rs crates/core/src/dfi.rs crates/core/src/erm.rs crates/core/src/events.rs crates/core/src/pdp.rs crates/core/src/policy/mod.rs crates/core/src/policy/manager.rs crates/core/src/policy/model.rs crates/core/src/policy/roles.rs crates/core/src/rewrite.rs

/root/repo/target/debug/deps/dfi_core-0d6cae9f961ca3e4: crates/core/src/lib.rs crates/core/src/dfi.rs crates/core/src/erm.rs crates/core/src/events.rs crates/core/src/pdp.rs crates/core/src/policy/mod.rs crates/core/src/policy/manager.rs crates/core/src/policy/model.rs crates/core/src/policy/roles.rs crates/core/src/rewrite.rs

crates/core/src/lib.rs:
crates/core/src/dfi.rs:
crates/core/src/erm.rs:
crates/core/src/events.rs:
crates/core/src/pdp.rs:
crates/core/src/policy/mod.rs:
crates/core/src/policy/manager.rs:
crates/core/src/policy/model.rs:
crates/core/src/policy/roles.rs:
crates/core/src/rewrite.rs:
