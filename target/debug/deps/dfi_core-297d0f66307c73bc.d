/root/repo/target/debug/deps/dfi_core-297d0f66307c73bc.d: crates/core/src/lib.rs crates/core/src/dfi.rs crates/core/src/erm.rs crates/core/src/events.rs crates/core/src/pdp.rs crates/core/src/policy/mod.rs crates/core/src/policy/manager.rs crates/core/src/policy/model.rs crates/core/src/policy/roles.rs crates/core/src/rewrite.rs

/root/repo/target/debug/deps/libdfi_core-297d0f66307c73bc.rlib: crates/core/src/lib.rs crates/core/src/dfi.rs crates/core/src/erm.rs crates/core/src/events.rs crates/core/src/pdp.rs crates/core/src/policy/mod.rs crates/core/src/policy/manager.rs crates/core/src/policy/model.rs crates/core/src/policy/roles.rs crates/core/src/rewrite.rs

/root/repo/target/debug/deps/libdfi_core-297d0f66307c73bc.rmeta: crates/core/src/lib.rs crates/core/src/dfi.rs crates/core/src/erm.rs crates/core/src/events.rs crates/core/src/pdp.rs crates/core/src/policy/mod.rs crates/core/src/policy/manager.rs crates/core/src/policy/model.rs crates/core/src/policy/roles.rs crates/core/src/rewrite.rs

crates/core/src/lib.rs:
crates/core/src/dfi.rs:
crates/core/src/erm.rs:
crates/core/src/events.rs:
crates/core/src/pdp.rs:
crates/core/src/policy/mod.rs:
crates/core/src/policy/manager.rs:
crates/core/src/policy/model.rs:
crates/core/src/policy/roles.rs:
crates/core/src/rewrite.rs:
