/root/repo/target/debug/deps/dfi_core-3acc20e852bf1972.d: crates/core/src/lib.rs crates/core/src/dfi.rs crates/core/src/erm.rs crates/core/src/events.rs crates/core/src/pdp.rs crates/core/src/policy/mod.rs crates/core/src/policy/manager.rs crates/core/src/policy/model.rs crates/core/src/policy/roles.rs crates/core/src/rewrite.rs Cargo.toml

/root/repo/target/debug/deps/libdfi_core-3acc20e852bf1972.rmeta: crates/core/src/lib.rs crates/core/src/dfi.rs crates/core/src/erm.rs crates/core/src/events.rs crates/core/src/pdp.rs crates/core/src/policy/mod.rs crates/core/src/policy/manager.rs crates/core/src/policy/model.rs crates/core/src/policy/roles.rs crates/core/src/rewrite.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/dfi.rs:
crates/core/src/erm.rs:
crates/core/src/events.rs:
crates/core/src/pdp.rs:
crates/core/src/policy/mod.rs:
crates/core/src/policy/manager.rs:
crates/core/src/policy/model.rs:
crates/core/src/policy/roles.rs:
crates/core/src/rewrite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
