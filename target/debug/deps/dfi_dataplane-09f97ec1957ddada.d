/root/repo/target/debug/deps/dfi_dataplane-09f97ec1957ddada.d: crates/dataplane/src/lib.rs crates/dataplane/src/fault.rs crates/dataplane/src/flow_table.rs crates/dataplane/src/network.rs crates/dataplane/src/switch.rs

/root/repo/target/debug/deps/dfi_dataplane-09f97ec1957ddada: crates/dataplane/src/lib.rs crates/dataplane/src/fault.rs crates/dataplane/src/flow_table.rs crates/dataplane/src/network.rs crates/dataplane/src/switch.rs

crates/dataplane/src/lib.rs:
crates/dataplane/src/fault.rs:
crates/dataplane/src/flow_table.rs:
crates/dataplane/src/network.rs:
crates/dataplane/src/switch.rs:
