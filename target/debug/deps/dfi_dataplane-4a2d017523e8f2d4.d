/root/repo/target/debug/deps/dfi_dataplane-4a2d017523e8f2d4.d: crates/dataplane/src/lib.rs crates/dataplane/src/fault.rs crates/dataplane/src/flow_table.rs crates/dataplane/src/network.rs crates/dataplane/src/switch.rs

/root/repo/target/debug/deps/libdfi_dataplane-4a2d017523e8f2d4.rlib: crates/dataplane/src/lib.rs crates/dataplane/src/fault.rs crates/dataplane/src/flow_table.rs crates/dataplane/src/network.rs crates/dataplane/src/switch.rs

/root/repo/target/debug/deps/libdfi_dataplane-4a2d017523e8f2d4.rmeta: crates/dataplane/src/lib.rs crates/dataplane/src/fault.rs crates/dataplane/src/flow_table.rs crates/dataplane/src/network.rs crates/dataplane/src/switch.rs

crates/dataplane/src/lib.rs:
crates/dataplane/src/fault.rs:
crates/dataplane/src/flow_table.rs:
crates/dataplane/src/network.rs:
crates/dataplane/src/switch.rs:
