/root/repo/target/debug/deps/dfi_dataplane-7b851ada3c899a36.d: crates/dataplane/src/lib.rs crates/dataplane/src/fault.rs crates/dataplane/src/flow_table.rs crates/dataplane/src/network.rs crates/dataplane/src/switch.rs Cargo.toml

/root/repo/target/debug/deps/libdfi_dataplane-7b851ada3c899a36.rmeta: crates/dataplane/src/lib.rs crates/dataplane/src/fault.rs crates/dataplane/src/flow_table.rs crates/dataplane/src/network.rs crates/dataplane/src/switch.rs Cargo.toml

crates/dataplane/src/lib.rs:
crates/dataplane/src/fault.rs:
crates/dataplane/src/flow_table.rs:
crates/dataplane/src/network.rs:
crates/dataplane/src/switch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
