/root/repo/target/debug/deps/dfi_openflow-004c6476142f52d0.d: crates/openflow/src/lib.rs crates/openflow/src/action.rs crates/openflow/src/flow.rs crates/openflow/src/instruction.rs crates/openflow/src/msg.rs crates/openflow/src/oxm.rs crates/openflow/src/stats.rs

/root/repo/target/debug/deps/libdfi_openflow-004c6476142f52d0.rlib: crates/openflow/src/lib.rs crates/openflow/src/action.rs crates/openflow/src/flow.rs crates/openflow/src/instruction.rs crates/openflow/src/msg.rs crates/openflow/src/oxm.rs crates/openflow/src/stats.rs

/root/repo/target/debug/deps/libdfi_openflow-004c6476142f52d0.rmeta: crates/openflow/src/lib.rs crates/openflow/src/action.rs crates/openflow/src/flow.rs crates/openflow/src/instruction.rs crates/openflow/src/msg.rs crates/openflow/src/oxm.rs crates/openflow/src/stats.rs

crates/openflow/src/lib.rs:
crates/openflow/src/action.rs:
crates/openflow/src/flow.rs:
crates/openflow/src/instruction.rs:
crates/openflow/src/msg.rs:
crates/openflow/src/oxm.rs:
crates/openflow/src/stats.rs:
