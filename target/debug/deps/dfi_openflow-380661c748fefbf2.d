/root/repo/target/debug/deps/dfi_openflow-380661c748fefbf2.d: crates/openflow/src/lib.rs crates/openflow/src/action.rs crates/openflow/src/flow.rs crates/openflow/src/instruction.rs crates/openflow/src/msg.rs crates/openflow/src/oxm.rs crates/openflow/src/stats.rs

/root/repo/target/debug/deps/dfi_openflow-380661c748fefbf2: crates/openflow/src/lib.rs crates/openflow/src/action.rs crates/openflow/src/flow.rs crates/openflow/src/instruction.rs crates/openflow/src/msg.rs crates/openflow/src/oxm.rs crates/openflow/src/stats.rs

crates/openflow/src/lib.rs:
crates/openflow/src/action.rs:
crates/openflow/src/flow.rs:
crates/openflow/src/instruction.rs:
crates/openflow/src/msg.rs:
crates/openflow/src/oxm.rs:
crates/openflow/src/stats.rs:
