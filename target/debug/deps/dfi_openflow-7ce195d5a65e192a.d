/root/repo/target/debug/deps/dfi_openflow-7ce195d5a65e192a.d: crates/openflow/src/lib.rs crates/openflow/src/action.rs crates/openflow/src/flow.rs crates/openflow/src/instruction.rs crates/openflow/src/msg.rs crates/openflow/src/oxm.rs crates/openflow/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libdfi_openflow-7ce195d5a65e192a.rmeta: crates/openflow/src/lib.rs crates/openflow/src/action.rs crates/openflow/src/flow.rs crates/openflow/src/instruction.rs crates/openflow/src/msg.rs crates/openflow/src/oxm.rs crates/openflow/src/stats.rs Cargo.toml

crates/openflow/src/lib.rs:
crates/openflow/src/action.rs:
crates/openflow/src/flow.rs:
crates/openflow/src/instruction.rs:
crates/openflow/src/msg.rs:
crates/openflow/src/oxm.rs:
crates/openflow/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
