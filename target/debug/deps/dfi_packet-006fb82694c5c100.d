/root/repo/target/debug/deps/dfi_packet-006fb82694c5c100.d: crates/packet/src/lib.rs crates/packet/src/addr.rs crates/packet/src/arp.rs crates/packet/src/dhcp.rs crates/packet/src/dns.rs crates/packet/src/error.rs crates/packet/src/ethernet.rs crates/packet/src/headers.rs crates/packet/src/icmp.rs crates/packet/src/ipv4.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs crates/packet/src/wire.rs

/root/repo/target/debug/deps/libdfi_packet-006fb82694c5c100.rlib: crates/packet/src/lib.rs crates/packet/src/addr.rs crates/packet/src/arp.rs crates/packet/src/dhcp.rs crates/packet/src/dns.rs crates/packet/src/error.rs crates/packet/src/ethernet.rs crates/packet/src/headers.rs crates/packet/src/icmp.rs crates/packet/src/ipv4.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs crates/packet/src/wire.rs

/root/repo/target/debug/deps/libdfi_packet-006fb82694c5c100.rmeta: crates/packet/src/lib.rs crates/packet/src/addr.rs crates/packet/src/arp.rs crates/packet/src/dhcp.rs crates/packet/src/dns.rs crates/packet/src/error.rs crates/packet/src/ethernet.rs crates/packet/src/headers.rs crates/packet/src/icmp.rs crates/packet/src/ipv4.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs crates/packet/src/wire.rs

crates/packet/src/lib.rs:
crates/packet/src/addr.rs:
crates/packet/src/arp.rs:
crates/packet/src/dhcp.rs:
crates/packet/src/dns.rs:
crates/packet/src/error.rs:
crates/packet/src/ethernet.rs:
crates/packet/src/headers.rs:
crates/packet/src/icmp.rs:
crates/packet/src/ipv4.rs:
crates/packet/src/tcp.rs:
crates/packet/src/udp.rs:
crates/packet/src/wire.rs:
