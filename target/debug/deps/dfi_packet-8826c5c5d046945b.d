/root/repo/target/debug/deps/dfi_packet-8826c5c5d046945b.d: crates/packet/src/lib.rs crates/packet/src/addr.rs crates/packet/src/arp.rs crates/packet/src/dhcp.rs crates/packet/src/dns.rs crates/packet/src/error.rs crates/packet/src/ethernet.rs crates/packet/src/headers.rs crates/packet/src/icmp.rs crates/packet/src/ipv4.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs crates/packet/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libdfi_packet-8826c5c5d046945b.rmeta: crates/packet/src/lib.rs crates/packet/src/addr.rs crates/packet/src/arp.rs crates/packet/src/dhcp.rs crates/packet/src/dns.rs crates/packet/src/error.rs crates/packet/src/ethernet.rs crates/packet/src/headers.rs crates/packet/src/icmp.rs crates/packet/src/ipv4.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs crates/packet/src/wire.rs Cargo.toml

crates/packet/src/lib.rs:
crates/packet/src/addr.rs:
crates/packet/src/arp.rs:
crates/packet/src/dhcp.rs:
crates/packet/src/dns.rs:
crates/packet/src/error.rs:
crates/packet/src/ethernet.rs:
crates/packet/src/headers.rs:
crates/packet/src/icmp.rs:
crates/packet/src/ipv4.rs:
crates/packet/src/tcp.rs:
crates/packet/src/udp.rs:
crates/packet/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
