/root/repo/target/debug/deps/dfi_repro-502c8826cb879f96.d: src/lib.rs

/root/repo/target/debug/deps/libdfi_repro-502c8826cb879f96.rlib: src/lib.rs

/root/repo/target/debug/deps/libdfi_repro-502c8826cb879f96.rmeta: src/lib.rs

src/lib.rs:
