/root/repo/target/debug/deps/dfi_repro-8e8fba46d843fb61.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdfi_repro-8e8fba46d843fb61.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
