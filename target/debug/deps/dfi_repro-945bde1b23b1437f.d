/root/repo/target/debug/deps/dfi_repro-945bde1b23b1437f.d: src/lib.rs

/root/repo/target/debug/deps/dfi_repro-945bde1b23b1437f: src/lib.rs

src/lib.rs:
