/root/repo/target/debug/deps/dfi_repro-ad51356e61c0950a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdfi_repro-ad51356e61c0950a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
