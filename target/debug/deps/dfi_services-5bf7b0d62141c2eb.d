/root/repo/target/debug/deps/dfi_services-5bf7b0d62141c2eb.d: crates/services/src/lib.rs crates/services/src/dhcp_server.rs crates/services/src/directory.rs crates/services/src/dns_server.rs crates/services/src/siem.rs

/root/repo/target/debug/deps/libdfi_services-5bf7b0d62141c2eb.rlib: crates/services/src/lib.rs crates/services/src/dhcp_server.rs crates/services/src/directory.rs crates/services/src/dns_server.rs crates/services/src/siem.rs

/root/repo/target/debug/deps/libdfi_services-5bf7b0d62141c2eb.rmeta: crates/services/src/lib.rs crates/services/src/dhcp_server.rs crates/services/src/directory.rs crates/services/src/dns_server.rs crates/services/src/siem.rs

crates/services/src/lib.rs:
crates/services/src/dhcp_server.rs:
crates/services/src/directory.rs:
crates/services/src/dns_server.rs:
crates/services/src/siem.rs:
