/root/repo/target/debug/deps/dfi_services-8b7ae51e263a90d8.d: crates/services/src/lib.rs crates/services/src/dhcp_server.rs crates/services/src/directory.rs crates/services/src/dns_server.rs crates/services/src/siem.rs

/root/repo/target/debug/deps/dfi_services-8b7ae51e263a90d8: crates/services/src/lib.rs crates/services/src/dhcp_server.rs crates/services/src/directory.rs crates/services/src/dns_server.rs crates/services/src/siem.rs

crates/services/src/lib.rs:
crates/services/src/dhcp_server.rs:
crates/services/src/directory.rs:
crates/services/src/dns_server.rs:
crates/services/src/siem.rs:
