/root/repo/target/debug/deps/dfi_services-adc465c3c8bbe4e9.d: crates/services/src/lib.rs crates/services/src/dhcp_server.rs crates/services/src/directory.rs crates/services/src/dns_server.rs crates/services/src/siem.rs Cargo.toml

/root/repo/target/debug/deps/libdfi_services-adc465c3c8bbe4e9.rmeta: crates/services/src/lib.rs crates/services/src/dhcp_server.rs crates/services/src/directory.rs crates/services/src/dns_server.rs crates/services/src/siem.rs Cargo.toml

crates/services/src/lib.rs:
crates/services/src/dhcp_server.rs:
crates/services/src/directory.rs:
crates/services/src/dns_server.rs:
crates/services/src/siem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
