/root/repo/target/debug/deps/dfi_services-f52187956a023c51.d: crates/services/src/lib.rs crates/services/src/dhcp_server.rs crates/services/src/directory.rs crates/services/src/dns_server.rs crates/services/src/siem.rs Cargo.toml

/root/repo/target/debug/deps/libdfi_services-f52187956a023c51.rmeta: crates/services/src/lib.rs crates/services/src/dhcp_server.rs crates/services/src/directory.rs crates/services/src/dns_server.rs crates/services/src/siem.rs Cargo.toml

crates/services/src/lib.rs:
crates/services/src/dhcp_server.rs:
crates/services/src/directory.rs:
crates/services/src/dns_server.rs:
crates/services/src/siem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
