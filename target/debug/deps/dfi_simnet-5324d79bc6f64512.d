/root/repo/target/debug/deps/dfi_simnet-5324d79bc6f64512.d: crates/simnet/src/lib.rs crates/simnet/src/dist.rs crates/simnet/src/fault.rs crates/simnet/src/metrics.rs crates/simnet/src/rng.rs crates/simnet/src/sim.rs crates/simnet/src/station.rs crates/simnet/src/time.rs

/root/repo/target/debug/deps/libdfi_simnet-5324d79bc6f64512.rlib: crates/simnet/src/lib.rs crates/simnet/src/dist.rs crates/simnet/src/fault.rs crates/simnet/src/metrics.rs crates/simnet/src/rng.rs crates/simnet/src/sim.rs crates/simnet/src/station.rs crates/simnet/src/time.rs

/root/repo/target/debug/deps/libdfi_simnet-5324d79bc6f64512.rmeta: crates/simnet/src/lib.rs crates/simnet/src/dist.rs crates/simnet/src/fault.rs crates/simnet/src/metrics.rs crates/simnet/src/rng.rs crates/simnet/src/sim.rs crates/simnet/src/station.rs crates/simnet/src/time.rs

crates/simnet/src/lib.rs:
crates/simnet/src/dist.rs:
crates/simnet/src/fault.rs:
crates/simnet/src/metrics.rs:
crates/simnet/src/rng.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/station.rs:
crates/simnet/src/time.rs:
