/root/repo/target/debug/deps/dfi_simnet-734ae623d924d75f.d: crates/simnet/src/lib.rs crates/simnet/src/dist.rs crates/simnet/src/fault.rs crates/simnet/src/metrics.rs crates/simnet/src/rng.rs crates/simnet/src/sim.rs crates/simnet/src/station.rs crates/simnet/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libdfi_simnet-734ae623d924d75f.rmeta: crates/simnet/src/lib.rs crates/simnet/src/dist.rs crates/simnet/src/fault.rs crates/simnet/src/metrics.rs crates/simnet/src/rng.rs crates/simnet/src/sim.rs crates/simnet/src/station.rs crates/simnet/src/time.rs Cargo.toml

crates/simnet/src/lib.rs:
crates/simnet/src/dist.rs:
crates/simnet/src/fault.rs:
crates/simnet/src/metrics.rs:
crates/simnet/src/rng.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/station.rs:
crates/simnet/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
