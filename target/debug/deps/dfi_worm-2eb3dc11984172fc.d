/root/repo/target/debug/deps/dfi_worm-2eb3dc11984172fc.d: crates/worm/src/lib.rs crates/worm/src/host.rs crates/worm/src/scenario.rs crates/worm/src/schedule.rs crates/worm/src/testbed.rs crates/worm/src/worm.rs

/root/repo/target/debug/deps/libdfi_worm-2eb3dc11984172fc.rlib: crates/worm/src/lib.rs crates/worm/src/host.rs crates/worm/src/scenario.rs crates/worm/src/schedule.rs crates/worm/src/testbed.rs crates/worm/src/worm.rs

/root/repo/target/debug/deps/libdfi_worm-2eb3dc11984172fc.rmeta: crates/worm/src/lib.rs crates/worm/src/host.rs crates/worm/src/scenario.rs crates/worm/src/schedule.rs crates/worm/src/testbed.rs crates/worm/src/worm.rs

crates/worm/src/lib.rs:
crates/worm/src/host.rs:
crates/worm/src/scenario.rs:
crates/worm/src/schedule.rs:
crates/worm/src/testbed.rs:
crates/worm/src/worm.rs:
