/root/repo/target/debug/deps/dfi_worm-3165b05a8de345f3.d: crates/worm/src/lib.rs crates/worm/src/host.rs crates/worm/src/scenario.rs crates/worm/src/schedule.rs crates/worm/src/testbed.rs crates/worm/src/worm.rs Cargo.toml

/root/repo/target/debug/deps/libdfi_worm-3165b05a8de345f3.rmeta: crates/worm/src/lib.rs crates/worm/src/host.rs crates/worm/src/scenario.rs crates/worm/src/schedule.rs crates/worm/src/testbed.rs crates/worm/src/worm.rs Cargo.toml

crates/worm/src/lib.rs:
crates/worm/src/host.rs:
crates/worm/src/scenario.rs:
crates/worm/src/schedule.rs:
crates/worm/src/testbed.rs:
crates/worm/src/worm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
