/root/repo/target/debug/deps/dfi_worm-db779b6dc66dc9d5.d: crates/worm/src/lib.rs crates/worm/src/host.rs crates/worm/src/scenario.rs crates/worm/src/schedule.rs crates/worm/src/testbed.rs crates/worm/src/worm.rs

/root/repo/target/debug/deps/dfi_worm-db779b6dc66dc9d5: crates/worm/src/lib.rs crates/worm/src/host.rs crates/worm/src/scenario.rs crates/worm/src/schedule.rs crates/worm/src/testbed.rs crates/worm/src/worm.rs

crates/worm/src/lib.rs:
crates/worm/src/host.rs:
crates/worm/src/scenario.rs:
crates/worm/src/schedule.rs:
crates/worm/src/testbed.rs:
crates/worm/src/worm.rs:
