/root/repo/target/debug/deps/differential_oracle-4029cb23c883568b.d: tests/differential_oracle.rs

/root/repo/target/debug/deps/differential_oracle-4029cb23c883568b: tests/differential_oracle.rs

tests/differential_oracle.rs:
