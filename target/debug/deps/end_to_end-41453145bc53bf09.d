/root/repo/target/debug/deps/end_to_end-41453145bc53bf09.d: crates/core/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-41453145bc53bf09: crates/core/tests/end_to_end.rs

crates/core/tests/end_to_end.rs:
