/root/repo/target/debug/deps/fault_injection-c3ec4a7ee44a6977.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-c3ec4a7ee44a6977: tests/fault_injection.rs

tests/fault_injection.rs:
