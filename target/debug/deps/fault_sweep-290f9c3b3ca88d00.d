/root/repo/target/debug/deps/fault_sweep-290f9c3b3ca88d00.d: tests/fault_sweep.rs

/root/repo/target/debug/deps/fault_sweep-290f9c3b3ca88d00: tests/fault_sweep.rs

tests/fault_sweep.rs:
