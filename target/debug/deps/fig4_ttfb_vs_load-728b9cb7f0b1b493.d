/root/repo/target/debug/deps/fig4_ttfb_vs_load-728b9cb7f0b1b493.d: crates/bench/benches/fig4_ttfb_vs_load.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_ttfb_vs_load-728b9cb7f0b1b493.rmeta: crates/bench/benches/fig4_ttfb_vs_load.rs Cargo.toml

crates/bench/benches/fig4_ttfb_vs_load.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
