/root/repo/target/debug/deps/fig4_ttfb_vs_load-e7771e9077dbcb80.d: crates/bench/benches/fig4_ttfb_vs_load.rs

/root/repo/target/debug/deps/fig4_ttfb_vs_load-e7771e9077dbcb80: crates/bench/benches/fig4_ttfb_vs_load.rs

crates/bench/benches/fig4_ttfb_vs_load.rs:
