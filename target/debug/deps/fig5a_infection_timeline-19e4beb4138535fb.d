/root/repo/target/debug/deps/fig5a_infection_timeline-19e4beb4138535fb.d: crates/bench/benches/fig5a_infection_timeline.rs

/root/repo/target/debug/deps/fig5a_infection_timeline-19e4beb4138535fb: crates/bench/benches/fig5a_infection_timeline.rs

crates/bench/benches/fig5a_infection_timeline.rs:
