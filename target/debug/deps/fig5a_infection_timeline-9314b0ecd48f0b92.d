/root/repo/target/debug/deps/fig5a_infection_timeline-9314b0ecd48f0b92.d: crates/bench/benches/fig5a_infection_timeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig5a_infection_timeline-9314b0ecd48f0b92.rmeta: crates/bench/benches/fig5a_infection_timeline.rs Cargo.toml

crates/bench/benches/fig5a_infection_timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
