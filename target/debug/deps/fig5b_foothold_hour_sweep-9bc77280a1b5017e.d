/root/repo/target/debug/deps/fig5b_foothold_hour_sweep-9bc77280a1b5017e.d: crates/bench/benches/fig5b_foothold_hour_sweep.rs

/root/repo/target/debug/deps/fig5b_foothold_hour_sweep-9bc77280a1b5017e: crates/bench/benches/fig5b_foothold_hour_sweep.rs

crates/bench/benches/fig5b_foothold_hour_sweep.rs:
