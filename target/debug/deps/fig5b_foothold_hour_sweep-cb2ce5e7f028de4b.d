/root/repo/target/debug/deps/fig5b_foothold_hour_sweep-cb2ce5e7f028de4b.d: crates/bench/benches/fig5b_foothold_hour_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig5b_foothold_hour_sweep-cb2ce5e7f028de4b.rmeta: crates/bench/benches/fig5b_foothold_hour_sweep.rs Cargo.toml

crates/bench/benches/fig5b_foothold_hour_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
