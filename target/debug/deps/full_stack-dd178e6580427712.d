/root/repo/target/debug/deps/full_stack-dd178e6580427712.d: tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-dd178e6580427712: tests/full_stack.rs

tests/full_stack.rs:
