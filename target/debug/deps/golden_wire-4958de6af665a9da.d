/root/repo/target/debug/deps/golden_wire-4958de6af665a9da.d: crates/core/tests/golden_wire.rs

/root/repo/target/debug/deps/golden_wire-4958de6af665a9da: crates/core/tests/golden_wire.rs

crates/core/tests/golden_wire.rs:
