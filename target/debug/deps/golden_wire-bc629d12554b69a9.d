/root/repo/target/debug/deps/golden_wire-bc629d12554b69a9.d: crates/core/tests/golden_wire.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_wire-bc629d12554b69a9.rmeta: crates/core/tests/golden_wire.rs Cargo.toml

crates/core/tests/golden_wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
