/root/repo/target/debug/deps/micro_hotpaths-8d824794a6146a1c.d: crates/bench/benches/micro_hotpaths.rs

/root/repo/target/debug/deps/micro_hotpaths-8d824794a6146a1c: crates/bench/benches/micro_hotpaths.rs

crates/bench/benches/micro_hotpaths.rs:
