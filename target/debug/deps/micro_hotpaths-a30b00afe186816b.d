/root/repo/target/debug/deps/micro_hotpaths-a30b00afe186816b.d: crates/bench/benches/micro_hotpaths.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_hotpaths-a30b00afe186816b.rmeta: crates/bench/benches/micro_hotpaths.rs Cargo.toml

crates/bench/benches/micro_hotpaths.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
