/root/repo/target/debug/deps/proptest_codec-0910a899d2cc0619.d: crates/packet/tests/proptest_codec.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_codec-0910a899d2cc0619.rmeta: crates/packet/tests/proptest_codec.rs Cargo.toml

crates/packet/tests/proptest_codec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
