/root/repo/target/debug/deps/proptest_codec-2664fae98a8d0ecf.d: crates/openflow/tests/proptest_codec.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_codec-2664fae98a8d0ecf.rmeta: crates/openflow/tests/proptest_codec.rs Cargo.toml

crates/openflow/tests/proptest_codec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
