/root/repo/target/debug/deps/proptest_codec-3f5998b6efe4904d.d: crates/openflow/tests/proptest_codec.rs

/root/repo/target/debug/deps/proptest_codec-3f5998b6efe4904d: crates/openflow/tests/proptest_codec.rs

crates/openflow/tests/proptest_codec.rs:
