/root/repo/target/debug/deps/proptest_codec-efe41b6755b902da.d: crates/openflow/tests/proptest_codec.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_codec-efe41b6755b902da.rmeta: crates/openflow/tests/proptest_codec.rs Cargo.toml

crates/openflow/tests/proptest_codec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
