/root/repo/target/debug/deps/proptest_codec-f53b089d8a95191e.d: crates/packet/tests/proptest_codec.rs

/root/repo/target/debug/deps/proptest_codec-f53b089d8a95191e: crates/packet/tests/proptest_codec.rs

crates/packet/tests/proptest_codec.rs:
