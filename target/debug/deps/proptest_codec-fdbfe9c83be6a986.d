/root/repo/target/debug/deps/proptest_codec-fdbfe9c83be6a986.d: crates/openflow/tests/proptest_codec.rs

/root/repo/target/debug/deps/proptest_codec-fdbfe9c83be6a986: crates/openflow/tests/proptest_codec.rs

crates/openflow/tests/proptest_codec.rs:
