/root/repo/target/debug/deps/proptest_flow_table-6eed9a8c62e2dcc9.d: crates/dataplane/tests/proptest_flow_table.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_flow_table-6eed9a8c62e2dcc9.rmeta: crates/dataplane/tests/proptest_flow_table.rs Cargo.toml

crates/dataplane/tests/proptest_flow_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
