/root/repo/target/debug/deps/proptest_flow_table-7a4cc36aa71fb27c.d: crates/dataplane/tests/proptest_flow_table.rs

/root/repo/target/debug/deps/proptest_flow_table-7a4cc36aa71fb27c: crates/dataplane/tests/proptest_flow_table.rs

crates/dataplane/tests/proptest_flow_table.rs:
