/root/repo/target/debug/deps/proptest_policy-08594f73625047fd.d: crates/core/tests/proptest_policy.rs

/root/repo/target/debug/deps/proptest_policy-08594f73625047fd: crates/core/tests/proptest_policy.rs

crates/core/tests/proptest_policy.rs:
