/root/repo/target/debug/deps/proptest_policy-d2bd486fe8fde62a.d: crates/core/tests/proptest_policy.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_policy-d2bd486fe8fde62a.rmeta: crates/core/tests/proptest_policy.rs Cargo.toml

crates/core/tests/proptest_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
