/root/repo/target/debug/deps/proptest_rewrite-b89db33c0966392f.d: crates/core/tests/proptest_rewrite.rs

/root/repo/target/debug/deps/proptest_rewrite-b89db33c0966392f: crates/core/tests/proptest_rewrite.rs

crates/core/tests/proptest_rewrite.rs:
