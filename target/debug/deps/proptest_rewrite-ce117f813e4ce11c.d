/root/repo/target/debug/deps/proptest_rewrite-ce117f813e4ce11c.d: crates/core/tests/proptest_rewrite.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_rewrite-ce117f813e4ce11c.rmeta: crates/core/tests/proptest_rewrite.rs Cargo.toml

crates/core/tests/proptest_rewrite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
