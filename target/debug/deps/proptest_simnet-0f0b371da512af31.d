/root/repo/target/debug/deps/proptest_simnet-0f0b371da512af31.d: crates/simnet/tests/proptest_simnet.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_simnet-0f0b371da512af31.rmeta: crates/simnet/tests/proptest_simnet.rs Cargo.toml

crates/simnet/tests/proptest_simnet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
