/root/repo/target/debug/deps/proptest_simnet-6744c5dfd344cfe5.d: crates/simnet/tests/proptest_simnet.rs

/root/repo/target/debug/deps/proptest_simnet-6744c5dfd344cfe5: crates/simnet/tests/proptest_simnet.rs

crates/simnet/tests/proptest_simnet.rs:
