/root/repo/target/debug/deps/robustness-40b9f43ce8081c3f.d: tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-40b9f43ce8081c3f.rmeta: tests/robustness.rs Cargo.toml

tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
