/root/repo/target/debug/deps/robustness-ec574e584dfba1a4.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-ec574e584dfba1a4: tests/robustness.rs

tests/robustness.rs:
