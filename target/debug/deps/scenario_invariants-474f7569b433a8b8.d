/root/repo/target/debug/deps/scenario_invariants-474f7569b433a8b8.d: crates/worm/tests/scenario_invariants.rs

/root/repo/target/debug/deps/scenario_invariants-474f7569b433a8b8: crates/worm/tests/scenario_invariants.rs

crates/worm/tests/scenario_invariants.rs:
