/root/repo/target/debug/deps/scenario_invariants-c58b421071900af0.d: crates/worm/tests/scenario_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libscenario_invariants-c58b421071900af0.rmeta: crates/worm/tests/scenario_invariants.rs Cargo.toml

crates/worm/tests/scenario_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
