/root/repo/target/debug/deps/switch_behavior-d30326d22a3976c8.d: crates/dataplane/tests/switch_behavior.rs

/root/repo/target/debug/deps/switch_behavior-d30326d22a3976c8: crates/dataplane/tests/switch_behavior.rs

crates/dataplane/tests/switch_behavior.rs:
