/root/repo/target/debug/deps/switch_behavior-fc16f3df33b6341f.d: crates/dataplane/tests/switch_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libswitch_behavior-fc16f3df33b6341f.rmeta: crates/dataplane/tests/switch_behavior.rs Cargo.toml

crates/dataplane/tests/switch_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
