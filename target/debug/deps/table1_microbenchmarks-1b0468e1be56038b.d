/root/repo/target/debug/deps/table1_microbenchmarks-1b0468e1be56038b.d: crates/bench/benches/table1_microbenchmarks.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_microbenchmarks-1b0468e1be56038b.rmeta: crates/bench/benches/table1_microbenchmarks.rs Cargo.toml

crates/bench/benches/table1_microbenchmarks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
