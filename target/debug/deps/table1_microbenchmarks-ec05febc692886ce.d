/root/repo/target/debug/deps/table1_microbenchmarks-ec05febc692886ce.d: crates/bench/benches/table1_microbenchmarks.rs

/root/repo/target/debug/deps/table1_microbenchmarks-ec05febc692886ce: crates/bench/benches/table1_microbenchmarks.rs

crates/bench/benches/table1_microbenchmarks.rs:
