/root/repo/target/debug/deps/table2_latency_breakdown-9d351a54715af2db.d: crates/bench/benches/table2_latency_breakdown.rs

/root/repo/target/debug/deps/table2_latency_breakdown-9d351a54715af2db: crates/bench/benches/table2_latency_breakdown.rs

crates/bench/benches/table2_latency_breakdown.rs:
