/root/repo/target/debug/deps/table2_latency_breakdown-b011797737ef31bd.d: crates/bench/benches/table2_latency_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_latency_breakdown-b011797737ef31bd.rmeta: crates/bench/benches/table2_latency_breakdown.rs Cargo.toml

crates/bench/benches/table2_latency_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
