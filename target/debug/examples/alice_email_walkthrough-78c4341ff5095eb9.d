/root/repo/target/debug/examples/alice_email_walkthrough-78c4341ff5095eb9.d: examples/alice_email_walkthrough.rs Cargo.toml

/root/repo/target/debug/examples/libalice_email_walkthrough-78c4341ff5095eb9.rmeta: examples/alice_email_walkthrough.rs Cargo.toml

examples/alice_email_walkthrough.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
