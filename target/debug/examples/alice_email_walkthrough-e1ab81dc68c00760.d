/root/repo/target/debug/examples/alice_email_walkthrough-e1ab81dc68c00760.d: examples/alice_email_walkthrough.rs

/root/repo/target/debug/examples/alice_email_walkthrough-e1ab81dc68c00760: examples/alice_email_walkthrough.rs

examples/alice_email_walkthrough.rs:
