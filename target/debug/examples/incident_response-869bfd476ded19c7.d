/root/repo/target/debug/examples/incident_response-869bfd476ded19c7.d: examples/incident_response.rs Cargo.toml

/root/repo/target/debug/examples/libincident_response-869bfd476ded19c7.rmeta: examples/incident_response.rs Cargo.toml

examples/incident_response.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
