/root/repo/target/debug/examples/incident_response-ce4dc0ffe581841b.d: examples/incident_response.rs

/root/repo/target/debug/examples/incident_response-ce4dc0ffe581841b: examples/incident_response.rs

examples/incident_response.rs:
