/root/repo/target/debug/examples/malicious_controller_demo-2d12ccc1ed396bc8.d: examples/malicious_controller_demo.rs Cargo.toml

/root/repo/target/debug/examples/libmalicious_controller_demo-2d12ccc1ed396bc8.rmeta: examples/malicious_controller_demo.rs Cargo.toml

examples/malicious_controller_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
