/root/repo/target/debug/examples/malicious_controller_demo-dca8803012edd081.d: examples/malicious_controller_demo.rs

/root/repo/target/debug/examples/malicious_controller_demo-dca8803012edd081: examples/malicious_controller_demo.rs

examples/malicious_controller_demo.rs:
