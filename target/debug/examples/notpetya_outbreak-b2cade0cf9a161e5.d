/root/repo/target/debug/examples/notpetya_outbreak-b2cade0cf9a161e5.d: examples/notpetya_outbreak.rs

/root/repo/target/debug/examples/notpetya_outbreak-b2cade0cf9a161e5: examples/notpetya_outbreak.rs

examples/notpetya_outbreak.rs:
