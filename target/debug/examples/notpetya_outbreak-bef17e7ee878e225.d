/root/repo/target/debug/examples/notpetya_outbreak-bef17e7ee878e225.d: examples/notpetya_outbreak.rs Cargo.toml

/root/repo/target/debug/examples/libnotpetya_outbreak-bef17e7ee878e225.rmeta: examples/notpetya_outbreak.rs Cargo.toml

examples/notpetya_outbreak.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
