/root/repo/target/debug/examples/policy_authoring-9a43becd4b1d0fac.d: examples/policy_authoring.rs

/root/repo/target/debug/examples/policy_authoring-9a43becd4b1d0fac: examples/policy_authoring.rs

examples/policy_authoring.rs:
