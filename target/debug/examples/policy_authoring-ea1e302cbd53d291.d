/root/repo/target/debug/examples/policy_authoring-ea1e302cbd53d291.d: examples/policy_authoring.rs Cargo.toml

/root/repo/target/debug/examples/libpolicy_authoring-ea1e302cbd53d291.rmeta: examples/policy_authoring.rs Cargo.toml

examples/policy_authoring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
