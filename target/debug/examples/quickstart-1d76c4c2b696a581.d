/root/repo/target/debug/examples/quickstart-1d76c4c2b696a581.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1d76c4c2b696a581: examples/quickstart.rs

examples/quickstart.rs:
