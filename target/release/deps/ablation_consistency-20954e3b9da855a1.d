/root/repo/target/release/deps/ablation_consistency-20954e3b9da855a1.d: crates/bench/benches/ablation_consistency.rs

/root/repo/target/release/deps/ablation_consistency-20954e3b9da855a1: crates/bench/benches/ablation_consistency.rs

crates/bench/benches/ablation_consistency.rs:
