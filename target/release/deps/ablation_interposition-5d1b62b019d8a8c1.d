/root/repo/target/release/deps/ablation_interposition-5d1b62b019d8a8c1.d: crates/bench/benches/ablation_interposition.rs

/root/repo/target/release/deps/ablation_interposition-5d1b62b019d8a8c1: crates/bench/benches/ablation_interposition.rs

crates/bench/benches/ablation_interposition.rs:
