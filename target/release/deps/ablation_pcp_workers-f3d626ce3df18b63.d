/root/repo/target/release/deps/ablation_pcp_workers-f3d626ce3df18b63.d: crates/bench/benches/ablation_pcp_workers.rs

/root/repo/target/release/deps/ablation_pcp_workers-f3d626ce3df18b63: crates/bench/benches/ablation_pcp_workers.rs

crates/bench/benches/ablation_pcp_workers.rs:
