/root/repo/target/release/deps/ablation_resolution-636b469bbb01d4ff.d: crates/bench/benches/ablation_resolution.rs

/root/repo/target/release/deps/ablation_resolution-636b469bbb01d4ff: crates/bench/benches/ablation_resolution.rs

crates/bench/benches/ablation_resolution.rs:
