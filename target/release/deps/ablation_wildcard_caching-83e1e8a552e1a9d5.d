/root/repo/target/release/deps/ablation_wildcard_caching-83e1e8a552e1a9d5.d: crates/bench/benches/ablation_wildcard_caching.rs

/root/repo/target/release/deps/ablation_wildcard_caching-83e1e8a552e1a9d5: crates/bench/benches/ablation_wildcard_caching.rs

crates/bench/benches/ablation_wildcard_caching.rs:
