/root/repo/target/release/deps/dfi_bench-53b220239f1762e6.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdfi_bench-53b220239f1762e6.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdfi_bench-53b220239f1762e6.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
