/root/repo/target/release/deps/dfi_bench-c767c12bfe151319.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/dfi_bench-c767c12bfe151319: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
