/root/repo/target/release/deps/dfi_bus-4206fe31638942dc.d: crates/bus/src/lib.rs

/root/repo/target/release/deps/libdfi_bus-4206fe31638942dc.rlib: crates/bus/src/lib.rs

/root/repo/target/release/deps/libdfi_bus-4206fe31638942dc.rmeta: crates/bus/src/lib.rs

crates/bus/src/lib.rs:
