/root/repo/target/release/deps/dfi_bus-4d89228d0450f7c1.d: crates/bus/src/lib.rs

/root/repo/target/release/deps/dfi_bus-4d89228d0450f7c1: crates/bus/src/lib.rs

crates/bus/src/lib.rs:
