/root/repo/target/release/deps/dfi_cbench-e5af1a6e1d7820c1.d: crates/cbench/src/lib.rs crates/cbench/src/latency.rs crates/cbench/src/throughput.rs crates/cbench/src/ttfb.rs

/root/repo/target/release/deps/dfi_cbench-e5af1a6e1d7820c1: crates/cbench/src/lib.rs crates/cbench/src/latency.rs crates/cbench/src/throughput.rs crates/cbench/src/ttfb.rs

crates/cbench/src/lib.rs:
crates/cbench/src/latency.rs:
crates/cbench/src/throughput.rs:
crates/cbench/src/ttfb.rs:
