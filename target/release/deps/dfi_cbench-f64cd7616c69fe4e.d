/root/repo/target/release/deps/dfi_cbench-f64cd7616c69fe4e.d: crates/cbench/src/lib.rs crates/cbench/src/latency.rs crates/cbench/src/throughput.rs crates/cbench/src/ttfb.rs

/root/repo/target/release/deps/libdfi_cbench-f64cd7616c69fe4e.rlib: crates/cbench/src/lib.rs crates/cbench/src/latency.rs crates/cbench/src/throughput.rs crates/cbench/src/ttfb.rs

/root/repo/target/release/deps/libdfi_cbench-f64cd7616c69fe4e.rmeta: crates/cbench/src/lib.rs crates/cbench/src/latency.rs crates/cbench/src/throughput.rs crates/cbench/src/ttfb.rs

crates/cbench/src/lib.rs:
crates/cbench/src/latency.rs:
crates/cbench/src/throughput.rs:
crates/cbench/src/ttfb.rs:
