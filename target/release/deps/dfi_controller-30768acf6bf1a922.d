/root/repo/target/release/deps/dfi_controller-30768acf6bf1a922.d: crates/controller/src/lib.rs crates/controller/src/topo.rs

/root/repo/target/release/deps/libdfi_controller-30768acf6bf1a922.rlib: crates/controller/src/lib.rs crates/controller/src/topo.rs

/root/repo/target/release/deps/libdfi_controller-30768acf6bf1a922.rmeta: crates/controller/src/lib.rs crates/controller/src/topo.rs

crates/controller/src/lib.rs:
crates/controller/src/topo.rs:
