/root/repo/target/release/deps/dfi_controller-ebe96b681a550356.d: crates/controller/src/lib.rs crates/controller/src/topo.rs

/root/repo/target/release/deps/dfi_controller-ebe96b681a550356: crates/controller/src/lib.rs crates/controller/src/topo.rs

crates/controller/src/lib.rs:
crates/controller/src/topo.rs:
