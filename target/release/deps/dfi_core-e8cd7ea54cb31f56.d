/root/repo/target/release/deps/dfi_core-e8cd7ea54cb31f56.d: crates/core/src/lib.rs crates/core/src/dfi.rs crates/core/src/erm.rs crates/core/src/events.rs crates/core/src/pdp.rs crates/core/src/policy/mod.rs crates/core/src/policy/manager.rs crates/core/src/policy/model.rs crates/core/src/policy/roles.rs crates/core/src/rewrite.rs

/root/repo/target/release/deps/libdfi_core-e8cd7ea54cb31f56.rlib: crates/core/src/lib.rs crates/core/src/dfi.rs crates/core/src/erm.rs crates/core/src/events.rs crates/core/src/pdp.rs crates/core/src/policy/mod.rs crates/core/src/policy/manager.rs crates/core/src/policy/model.rs crates/core/src/policy/roles.rs crates/core/src/rewrite.rs

/root/repo/target/release/deps/libdfi_core-e8cd7ea54cb31f56.rmeta: crates/core/src/lib.rs crates/core/src/dfi.rs crates/core/src/erm.rs crates/core/src/events.rs crates/core/src/pdp.rs crates/core/src/policy/mod.rs crates/core/src/policy/manager.rs crates/core/src/policy/model.rs crates/core/src/policy/roles.rs crates/core/src/rewrite.rs

crates/core/src/lib.rs:
crates/core/src/dfi.rs:
crates/core/src/erm.rs:
crates/core/src/events.rs:
crates/core/src/pdp.rs:
crates/core/src/policy/mod.rs:
crates/core/src/policy/manager.rs:
crates/core/src/policy/model.rs:
crates/core/src/policy/roles.rs:
crates/core/src/rewrite.rs:
