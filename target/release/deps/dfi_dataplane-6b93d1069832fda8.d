/root/repo/target/release/deps/dfi_dataplane-6b93d1069832fda8.d: crates/dataplane/src/lib.rs crates/dataplane/src/fault.rs crates/dataplane/src/flow_table.rs crates/dataplane/src/network.rs crates/dataplane/src/switch.rs

/root/repo/target/release/deps/libdfi_dataplane-6b93d1069832fda8.rlib: crates/dataplane/src/lib.rs crates/dataplane/src/fault.rs crates/dataplane/src/flow_table.rs crates/dataplane/src/network.rs crates/dataplane/src/switch.rs

/root/repo/target/release/deps/libdfi_dataplane-6b93d1069832fda8.rmeta: crates/dataplane/src/lib.rs crates/dataplane/src/fault.rs crates/dataplane/src/flow_table.rs crates/dataplane/src/network.rs crates/dataplane/src/switch.rs

crates/dataplane/src/lib.rs:
crates/dataplane/src/fault.rs:
crates/dataplane/src/flow_table.rs:
crates/dataplane/src/network.rs:
crates/dataplane/src/switch.rs:
