/root/repo/target/release/deps/dfi_dataplane-cd8828d68513d017.d: crates/dataplane/src/lib.rs crates/dataplane/src/fault.rs crates/dataplane/src/flow_table.rs crates/dataplane/src/network.rs crates/dataplane/src/switch.rs

/root/repo/target/release/deps/dfi_dataplane-cd8828d68513d017: crates/dataplane/src/lib.rs crates/dataplane/src/fault.rs crates/dataplane/src/flow_table.rs crates/dataplane/src/network.rs crates/dataplane/src/switch.rs

crates/dataplane/src/lib.rs:
crates/dataplane/src/fault.rs:
crates/dataplane/src/flow_table.rs:
crates/dataplane/src/network.rs:
crates/dataplane/src/switch.rs:
