/root/repo/target/release/deps/dfi_openflow-1bf96cff5fa4bc25.d: crates/openflow/src/lib.rs crates/openflow/src/action.rs crates/openflow/src/flow.rs crates/openflow/src/instruction.rs crates/openflow/src/msg.rs crates/openflow/src/oxm.rs crates/openflow/src/stats.rs

/root/repo/target/release/deps/dfi_openflow-1bf96cff5fa4bc25: crates/openflow/src/lib.rs crates/openflow/src/action.rs crates/openflow/src/flow.rs crates/openflow/src/instruction.rs crates/openflow/src/msg.rs crates/openflow/src/oxm.rs crates/openflow/src/stats.rs

crates/openflow/src/lib.rs:
crates/openflow/src/action.rs:
crates/openflow/src/flow.rs:
crates/openflow/src/instruction.rs:
crates/openflow/src/msg.rs:
crates/openflow/src/oxm.rs:
crates/openflow/src/stats.rs:
