/root/repo/target/release/deps/dfi_openflow-aa8c5acf776e944f.d: crates/openflow/src/lib.rs crates/openflow/src/action.rs crates/openflow/src/flow.rs crates/openflow/src/instruction.rs crates/openflow/src/msg.rs crates/openflow/src/oxm.rs crates/openflow/src/stats.rs

/root/repo/target/release/deps/dfi_openflow-aa8c5acf776e944f: crates/openflow/src/lib.rs crates/openflow/src/action.rs crates/openflow/src/flow.rs crates/openflow/src/instruction.rs crates/openflow/src/msg.rs crates/openflow/src/oxm.rs crates/openflow/src/stats.rs

crates/openflow/src/lib.rs:
crates/openflow/src/action.rs:
crates/openflow/src/flow.rs:
crates/openflow/src/instruction.rs:
crates/openflow/src/msg.rs:
crates/openflow/src/oxm.rs:
crates/openflow/src/stats.rs:
