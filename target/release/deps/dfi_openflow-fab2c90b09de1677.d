/root/repo/target/release/deps/dfi_openflow-fab2c90b09de1677.d: crates/openflow/src/lib.rs crates/openflow/src/action.rs crates/openflow/src/flow.rs crates/openflow/src/instruction.rs crates/openflow/src/msg.rs crates/openflow/src/oxm.rs crates/openflow/src/stats.rs

/root/repo/target/release/deps/libdfi_openflow-fab2c90b09de1677.rlib: crates/openflow/src/lib.rs crates/openflow/src/action.rs crates/openflow/src/flow.rs crates/openflow/src/instruction.rs crates/openflow/src/msg.rs crates/openflow/src/oxm.rs crates/openflow/src/stats.rs

/root/repo/target/release/deps/libdfi_openflow-fab2c90b09de1677.rmeta: crates/openflow/src/lib.rs crates/openflow/src/action.rs crates/openflow/src/flow.rs crates/openflow/src/instruction.rs crates/openflow/src/msg.rs crates/openflow/src/oxm.rs crates/openflow/src/stats.rs

crates/openflow/src/lib.rs:
crates/openflow/src/action.rs:
crates/openflow/src/flow.rs:
crates/openflow/src/instruction.rs:
crates/openflow/src/msg.rs:
crates/openflow/src/oxm.rs:
crates/openflow/src/stats.rs:
