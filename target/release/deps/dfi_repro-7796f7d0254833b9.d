/root/repo/target/release/deps/dfi_repro-7796f7d0254833b9.d: src/lib.rs

/root/repo/target/release/deps/dfi_repro-7796f7d0254833b9: src/lib.rs

src/lib.rs:
