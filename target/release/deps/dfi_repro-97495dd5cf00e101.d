/root/repo/target/release/deps/dfi_repro-97495dd5cf00e101.d: src/lib.rs

/root/repo/target/release/deps/libdfi_repro-97495dd5cf00e101.rlib: src/lib.rs

/root/repo/target/release/deps/libdfi_repro-97495dd5cf00e101.rmeta: src/lib.rs

src/lib.rs:
