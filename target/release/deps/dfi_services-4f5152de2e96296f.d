/root/repo/target/release/deps/dfi_services-4f5152de2e96296f.d: crates/services/src/lib.rs crates/services/src/dhcp_server.rs crates/services/src/directory.rs crates/services/src/dns_server.rs crates/services/src/siem.rs

/root/repo/target/release/deps/libdfi_services-4f5152de2e96296f.rlib: crates/services/src/lib.rs crates/services/src/dhcp_server.rs crates/services/src/directory.rs crates/services/src/dns_server.rs crates/services/src/siem.rs

/root/repo/target/release/deps/libdfi_services-4f5152de2e96296f.rmeta: crates/services/src/lib.rs crates/services/src/dhcp_server.rs crates/services/src/directory.rs crates/services/src/dns_server.rs crates/services/src/siem.rs

crates/services/src/lib.rs:
crates/services/src/dhcp_server.rs:
crates/services/src/directory.rs:
crates/services/src/dns_server.rs:
crates/services/src/siem.rs:
