/root/repo/target/release/deps/dfi_services-68c9bc807c24c942.d: crates/services/src/lib.rs crates/services/src/dhcp_server.rs crates/services/src/directory.rs crates/services/src/dns_server.rs crates/services/src/siem.rs

/root/repo/target/release/deps/dfi_services-68c9bc807c24c942: crates/services/src/lib.rs crates/services/src/dhcp_server.rs crates/services/src/directory.rs crates/services/src/dns_server.rs crates/services/src/siem.rs

crates/services/src/lib.rs:
crates/services/src/dhcp_server.rs:
crates/services/src/directory.rs:
crates/services/src/dns_server.rs:
crates/services/src/siem.rs:
