/root/repo/target/release/deps/dfi_simnet-95822ab3035d939e.d: crates/simnet/src/lib.rs crates/simnet/src/dist.rs crates/simnet/src/fault.rs crates/simnet/src/metrics.rs crates/simnet/src/rng.rs crates/simnet/src/sim.rs crates/simnet/src/station.rs crates/simnet/src/time.rs

/root/repo/target/release/deps/dfi_simnet-95822ab3035d939e: crates/simnet/src/lib.rs crates/simnet/src/dist.rs crates/simnet/src/fault.rs crates/simnet/src/metrics.rs crates/simnet/src/rng.rs crates/simnet/src/sim.rs crates/simnet/src/station.rs crates/simnet/src/time.rs

crates/simnet/src/lib.rs:
crates/simnet/src/dist.rs:
crates/simnet/src/fault.rs:
crates/simnet/src/metrics.rs:
crates/simnet/src/rng.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/station.rs:
crates/simnet/src/time.rs:
