/root/repo/target/release/deps/dfi_worm-419787740aea7ee6.d: crates/worm/src/lib.rs crates/worm/src/host.rs crates/worm/src/scenario.rs crates/worm/src/schedule.rs crates/worm/src/testbed.rs crates/worm/src/worm.rs

/root/repo/target/release/deps/libdfi_worm-419787740aea7ee6.rlib: crates/worm/src/lib.rs crates/worm/src/host.rs crates/worm/src/scenario.rs crates/worm/src/schedule.rs crates/worm/src/testbed.rs crates/worm/src/worm.rs

/root/repo/target/release/deps/libdfi_worm-419787740aea7ee6.rmeta: crates/worm/src/lib.rs crates/worm/src/host.rs crates/worm/src/scenario.rs crates/worm/src/schedule.rs crates/worm/src/testbed.rs crates/worm/src/worm.rs

crates/worm/src/lib.rs:
crates/worm/src/host.rs:
crates/worm/src/scenario.rs:
crates/worm/src/schedule.rs:
crates/worm/src/testbed.rs:
crates/worm/src/worm.rs:
