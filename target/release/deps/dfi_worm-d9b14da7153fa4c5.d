/root/repo/target/release/deps/dfi_worm-d9b14da7153fa4c5.d: crates/worm/src/lib.rs crates/worm/src/host.rs crates/worm/src/scenario.rs crates/worm/src/schedule.rs crates/worm/src/testbed.rs crates/worm/src/worm.rs

/root/repo/target/release/deps/dfi_worm-d9b14da7153fa4c5: crates/worm/src/lib.rs crates/worm/src/host.rs crates/worm/src/scenario.rs crates/worm/src/schedule.rs crates/worm/src/testbed.rs crates/worm/src/worm.rs

crates/worm/src/lib.rs:
crates/worm/src/host.rs:
crates/worm/src/scenario.rs:
crates/worm/src/schedule.rs:
crates/worm/src/testbed.rs:
crates/worm/src/worm.rs:
