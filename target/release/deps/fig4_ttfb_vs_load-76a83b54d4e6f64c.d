/root/repo/target/release/deps/fig4_ttfb_vs_load-76a83b54d4e6f64c.d: crates/bench/benches/fig4_ttfb_vs_load.rs

/root/repo/target/release/deps/fig4_ttfb_vs_load-76a83b54d4e6f64c: crates/bench/benches/fig4_ttfb_vs_load.rs

crates/bench/benches/fig4_ttfb_vs_load.rs:
