/root/repo/target/release/deps/fig5a_infection_timeline-65a73c860177788c.d: crates/bench/benches/fig5a_infection_timeline.rs

/root/repo/target/release/deps/fig5a_infection_timeline-65a73c860177788c: crates/bench/benches/fig5a_infection_timeline.rs

crates/bench/benches/fig5a_infection_timeline.rs:
