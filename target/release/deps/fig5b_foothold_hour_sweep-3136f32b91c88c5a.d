/root/repo/target/release/deps/fig5b_foothold_hour_sweep-3136f32b91c88c5a.d: crates/bench/benches/fig5b_foothold_hour_sweep.rs

/root/repo/target/release/deps/fig5b_foothold_hour_sweep-3136f32b91c88c5a: crates/bench/benches/fig5b_foothold_hour_sweep.rs

crates/bench/benches/fig5b_foothold_hour_sweep.rs:
