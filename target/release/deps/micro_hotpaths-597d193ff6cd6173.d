/root/repo/target/release/deps/micro_hotpaths-597d193ff6cd6173.d: crates/bench/benches/micro_hotpaths.rs

/root/repo/target/release/deps/micro_hotpaths-597d193ff6cd6173: crates/bench/benches/micro_hotpaths.rs

crates/bench/benches/micro_hotpaths.rs:
