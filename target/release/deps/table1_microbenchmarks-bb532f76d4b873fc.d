/root/repo/target/release/deps/table1_microbenchmarks-bb532f76d4b873fc.d: crates/bench/benches/table1_microbenchmarks.rs

/root/repo/target/release/deps/table1_microbenchmarks-bb532f76d4b873fc: crates/bench/benches/table1_microbenchmarks.rs

crates/bench/benches/table1_microbenchmarks.rs:
