/root/repo/target/release/deps/table2_latency_breakdown-dc02ea6305aa043e.d: crates/bench/benches/table2_latency_breakdown.rs

/root/repo/target/release/deps/table2_latency_breakdown-dc02ea6305aa043e: crates/bench/benches/table2_latency_breakdown.rs

crates/bench/benches/table2_latency_breakdown.rs:
