/root/repo/target/release/examples/alice_email_walkthrough-14a41e8276753cb3.d: examples/alice_email_walkthrough.rs

/root/repo/target/release/examples/alice_email_walkthrough-14a41e8276753cb3: examples/alice_email_walkthrough.rs

examples/alice_email_walkthrough.rs:
