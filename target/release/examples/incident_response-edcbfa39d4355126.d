/root/repo/target/release/examples/incident_response-edcbfa39d4355126.d: examples/incident_response.rs

/root/repo/target/release/examples/incident_response-edcbfa39d4355126: examples/incident_response.rs

examples/incident_response.rs:
