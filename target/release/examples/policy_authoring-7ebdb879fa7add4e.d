/root/repo/target/release/examples/policy_authoring-7ebdb879fa7add4e.d: examples/policy_authoring.rs

/root/repo/target/release/examples/policy_authoring-7ebdb879fa7add4e: examples/policy_authoring.rs

examples/policy_authoring.rs:
