//! ARP through DFI: address resolution is itself traffic the access-control
//! layer sees, matches (on `arp_spa`/`arp_tpa`), and can allow or deny.

use dfi_repro::controller::Controller;
use dfi_repro::core::pdp::priority;
use dfi_repro::core::policy::{EndpointPattern, FlowProperties, PolicyRule, Wild};
use dfi_repro::core::Dfi;
use dfi_repro::dataplane::{Network, SwitchConfig, Tx};
use dfi_repro::packet::{ArpOp, ArpPacket, EthernetFrame, MacAddr, PacketHeaders};
use dfi_repro::simnet::Sim;
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;
use std::time::Duration;

const LAT: Duration = Duration::from_micros(50);

/// A host with just enough ARP: answers requests for its own IP and
/// records replies it receives.
struct ArpHost {
    mac: MacAddr,
    ip: Ipv4Addr,
    tx: Option<Tx>,
    learned: Vec<(Ipv4Addr, MacAddr)>,
    requests_seen: u32,
}

type ArpHostRef = Rc<RefCell<ArpHost>>;

fn arp_host(mac: MacAddr, ip: Ipv4Addr) -> ArpHostRef {
    Rc::new(RefCell::new(ArpHost {
        mac,
        ip,
        tx: None,
        learned: Vec::new(),
        requests_seen: 0,
    }))
}

fn rx_sink(host: ArpHostRef) -> dfi_repro::dataplane::ByteSink {
    Rc::new(move |sim, frame: &[u8]| {
        let Ok(eth) = EthernetFrame::decode(frame) else {
            return;
        };
        let Ok(arp) = ArpPacket::decode(&eth.payload) else {
            return;
        };
        let (my_mac, my_ip, tx) = {
            let h = host.borrow();
            (h.mac, h.ip, h.tx.clone())
        };
        match arp.op {
            ArpOp::Request if arp.target_ip == my_ip => {
                host.borrow_mut().requests_seen += 1;
                let reply = ArpPacket::reply_to(&arp, my_mac);
                let frame = EthernetFrame::arp(my_mac, arp.sender_mac, reply.encode());
                if let Some(tx) = tx {
                    tx.send(sim, frame.encode());
                }
            }
            ArpOp::Reply if arp.target_ip == my_ip => {
                host.borrow_mut()
                    .learned
                    .push((arp.sender_ip, arp.sender_mac));
            }
            _ => {}
        }
    })
}

fn send_arp_request(sim: &mut Sim, host: &ArpHostRef, target_ip: Ipv4Addr) {
    let (mac, ip, tx) = {
        let h = host.borrow();
        (h.mac, h.ip, h.tx.clone().expect("attached"))
    };
    let req = ArpPacket::request(mac, ip, target_ip);
    let frame = EthernetFrame::arp(mac, MacAddr::BROADCAST, req.encode());
    tx.send(sim, frame.encode());
}

struct Rig {
    sim: Sim,
    dfi: Dfi,
    a: ArpHostRef,
    b: ArpHostRef,
}

fn rig() -> Rig {
    let mut sim = Sim::new(55);
    let mut net = Network::new();
    let sw = net.add_switch(SwitchConfig::new(0xA0));
    let a = arp_host(MacAddr::from_index(1), Ipv4Addr::new(10, 0, 0, 1));
    let b = arp_host(MacAddr::from_index(2), Ipv4Addr::new(10, 0, 0, 2));
    let tx_a = net.attach_host(&sw, 1, LAT, rx_sink(a.clone()));
    let tx_b = net.attach_host(&sw, 2, LAT, rx_sink(b.clone()));
    a.borrow_mut().tx = Some(tx_a);
    b.borrow_mut().tx = Some(tx_b);
    let dfi = Dfi::with_defaults();
    let ctrl = Controller::reactive();
    let c = ctrl.clone();
    dfi.interpose(&mut sim, &sw, move |sim, sink| c.connect(sim, sink));
    sim.run();
    Rig { sim, dfi, a, b }
}

/// An ARP-only allow policy (the shape a real deployment would carry for
/// the resolution substrate).
fn allow_arp() -> PolicyRule {
    PolicyRule {
        action: dfi_repro::core::policy::PolicyAction::Allow,
        flow: FlowProperties {
            ethertype: Wild::Is(0x0806),
            ip_proto: Wild::Any,
        },
        src: EndpointPattern::any(),
        dst: EndpointPattern::any(),
    }
}

#[test]
fn default_deny_blocks_arp_resolution() {
    let mut r = rig();
    send_arp_request(&mut r.sim, &r.a, r.b.borrow().ip);
    r.sim.run();
    assert_eq!(r.b.borrow().requests_seen, 0, "ARP blocked by default deny");
    assert!(r.a.borrow().learned.is_empty());
    assert_eq!(r.dfi.metrics().denied, 1);
}

#[test]
fn arp_allow_policy_enables_resolution_both_ways() {
    let mut r = rig();
    r.dfi
        .insert_policy(&mut r.sim, allow_arp(), priority::S_RBAC, "arp");
    r.sim.run();
    let b_ip = r.b.borrow().ip;
    send_arp_request(&mut r.sim, &r.a, b_ip);
    r.sim.run();
    assert_eq!(r.b.borrow().requests_seen, 1, "request delivered");
    let learned = r.a.borrow().learned.clone();
    assert_eq!(
        learned,
        vec![(b_ip, r.b.borrow().mac)],
        "reply delivered and learned"
    );
    // Both the request and the reply were distinct flows through DFI.
    assert_eq!(r.dfi.metrics().allowed, 2);
}

#[test]
fn arp_spoofing_policy_pins_sender_address() {
    // A policy that only allows ARP whose sender protocol address matches
    // the speaker's real address — spa shows up as the flow's source IP.
    let mut r = rig();
    let a_ip = r.a.borrow().ip;
    let pinned = PolicyRule {
        src: EndpointPattern {
            ip: Wild::Is(a_ip),
            ..EndpointPattern::any()
        },
        ..allow_arp()
    };
    r.dfi
        .insert_policy(&mut r.sim, pinned, priority::S_RBAC, "arp-pinned");
    // And allow B's replies.
    let b_ip = r.b.borrow().ip;
    let reply_ok = PolicyRule {
        src: EndpointPattern {
            ip: Wild::Is(b_ip),
            ..EndpointPattern::any()
        },
        ..allow_arp()
    };
    r.dfi
        .insert_policy(&mut r.sim, reply_ok, priority::S_RBAC, "arp-replies");
    r.sim.run();

    // Legitimate request passes.
    send_arp_request(&mut r.sim, &r.a, b_ip);
    r.sim.run();
    assert_eq!(r.b.borrow().requests_seen, 1);

    // A request claiming someone else's sender address is denied.
    let forged = ArpPacket::request(
        r.a.borrow().mac,
        Ipv4Addr::new(10, 0, 0, 99), // not A's address
        b_ip,
    );
    let frame = EthernetFrame::arp(r.a.borrow().mac, MacAddr::BROADCAST, forged.encode());
    let tx = r.a.borrow().tx.clone().unwrap();
    tx.send(&mut r.sim, frame.encode());
    r.sim.run();
    assert_eq!(r.b.borrow().requests_seen, 1, "forged ARP never arrives");
    assert!(r.dfi.metrics().denied >= 1);
}

#[test]
fn arp_headers_expose_protocol_addresses_to_matching() {
    // Plumbing check: the flattened header view feeds arp_spa/arp_tpa into
    // the policy engine's IP fields.
    let req = ArpPacket::request(
        MacAddr::from_index(1),
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
    );
    let frame = EthernetFrame::arp(MacAddr::from_index(1), MacAddr::BROADCAST, req.encode());
    let h = PacketHeaders::parse(&frame.encode()).unwrap();
    assert_eq!(h.arp_spa, Some(Ipv4Addr::new(10, 0, 0, 1)));
    assert_eq!(h.ipv4_src, Some(Ipv4Addr::new(10, 0, 0, 1)));
    assert_eq!(h.ipv4_dst, Some(Ipv4Addr::new(10, 0, 0, 2)));
}
