//! Differential fault oracle: every seeded scenario is run twice — once
//! with fault injection on all switch↔DFI control channels, once
//! fault-free — and the two runs must agree on everything that matters
//! once the faults heal:
//!
//! * **Safety, at all times**: policy-forbidden traffic is never
//!   delivered in either run, under any fault interleaving.
//! * **Convergence, after healing**: post-heal probe flows see identical
//!   reachability, and the Table-0 cookie sets of every switch are
//!   identical.
//!
//! Failures print a one-line repro: the scenario is a pure function of
//! `(sim seed, fault-plan spec)`, with the spec in the exact format
//! `FaultPlan::parse` accepts via the `DFI_FAULT_SPEC` env var.

use dfi_repro::controller::Controller;
use dfi_repro::core::pdp::priority;
use dfi_repro::core::policy::{EndpointPattern, PolicyRule, Wild};
use dfi_repro::core::Dfi;
use dfi_repro::dataplane::{faulty_sink, Network, SwitchConfig};
use dfi_repro::packet::headers::build;
use dfi_repro::packet::{MacAddr, PacketHeaders};
use dfi_repro::simnet::{FaultPlan, Sim, SimTime};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;
use std::rc::Rc;
use std::time::Duration;

type RxLog = Rc<RefCell<Vec<(SimTime, Vec<u8>)>>>;

const LAT: Duration = Duration::from_micros(50);
const N_PREHEAL: u16 = 8;
const N_PROBES: u16 = 4;

fn mac(i: u32) -> MacAddr {
    MacAddr::from_index(i)
}

fn h1_ip() -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 1, 1)
}

fn h2_ip() -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 2, 1)
}

fn h3_ip() -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 3, 1)
}

/// h1 → h2: the policy below allows any flow sourced from h1's IP.
fn allowed_syn(sport: u16) -> Vec<u8> {
    build::tcp_syn(mac(1), mac(2), h1_ip(), h2_ip(), sport, 80)
}

/// h3 → h2: no policy covers h3 — default deny, forever forbidden.
fn forbidden_syn(sport: u16) -> Vec<u8> {
    build::tcp_syn(mac(3), mac(2), h3_ip(), h2_ip(), sport, 80)
}

/// What a scenario run is judged on.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    /// Frames from the forbidden source that reached the destination
    /// host, at any point in the run. The oracle requires zero.
    forbidden_deliveries: usize,
    /// Distinct post-heal allowed probe flows that were delivered.
    allowed_probes_delivered: usize,
    /// Distinct post-heal forbidden probe flows that were delivered
    /// (must be zero — and equal between runs by the first invariant).
    forbidden_probes_delivered: usize,
    /// Table-0 cookie sets per switch (core, enc1, enc2) at the end.
    table0: Vec<BTreeSet<u64>>,
}

/// Runs the star scenario: two enclave switches behind a core switch,
/// the allowed sender h1 and the forbidden sender h3 on enclave 1, the
/// destination h2 on enclave 2. With `Some(plan)`, both directions of
/// every switch↔DFI channel get an independent fault process derived
/// from the plan (distinct seeds per channel).
fn run_scenario(seed: u64, plan: Option<&FaultPlan>) -> Outcome {
    let mut sim = Sim::new(seed);
    let mut net = Network::new();
    let core = net.add_switch(SwitchConfig::new(1));
    let enc1 = net.add_switch(SwitchConfig::new(11));
    let enc2 = net.add_switch(SwitchConfig::new(12));
    net.link(&core, 101, &enc1, 100, LAT);
    net.link(&core, 102, &enc2, 100, LAT);
    let rx2: RxLog = Rc::default();
    let tx1 = net.attach_host(&enc1, 1, LAT, Rc::new(|_, _| {}));
    let tx3 = net.attach_host(&enc1, 2, LAT, Rc::new(|_, _| {}));
    let log = rx2.clone();
    let _tx2 = net.attach_host(
        &enc2,
        1,
        LAT,
        Rc::new(move |sim: &mut Sim, frame: &[u8]| {
            log.borrow_mut().push((sim.now(), frame.to_vec()));
        }),
    );

    let dfi = Dfi::with_defaults();
    let ctrl = Controller::reactive();
    let mut chan = 0u64;
    for sw in [&core, &enc1, &enc2] {
        let mut derive = |inner| match plan {
            Some(p) => {
                let per_channel = FaultPlan {
                    seed: p.seed.wrapping_add(chan),
                    ..p.clone()
                };
                chan += 1;
                faulty_sink(per_channel, inner).0
            }
            None => inner,
        };
        let to_switch = derive(sw.control_ingress());
        let conn = dfi.attach_switch_channel(to_switch, sw.dpid());
        let to_dfi = derive(dfi.from_switch_sink(conn));
        sw.connect_control(&mut sim, to_dfi);
        let c = ctrl.clone();
        let to_controller = c.connect(&mut sim, dfi.from_controller_sink(conn));
        dfi.set_controller_sink(conn, to_controller);
    }
    dfi.insert_policy(
        &mut sim,
        PolicyRule::allow(
            EndpointPattern {
                ip: Wild::Is(h1_ip()),
                ..EndpointPattern::any()
            },
            EndpointPattern::any(),
        ),
        priority::BASELINE,
        "oracle",
    );
    sim.run();

    // Pre-heal traffic, inside the fault window: interleaved allowed and
    // forbidden flows.
    for i in 0..N_PREHEAL {
        let t = tx1.clone();
        sim.schedule_in(Duration::from_millis(3 * u64::from(i) + 1), move |sim| {
            t.send(sim, allowed_syn(50_000 + i));
        });
        let t = tx3.clone();
        sim.schedule_in(Duration::from_millis(3 * u64::from(i) + 2), move |sim| {
            t.send(sim, forbidden_syn(60_000 + i));
        });
    }
    sim.run();

    // Post-heal probes: strictly after every fault process is quiescent
    // (window closed, outages over) plus slack for in-flight retries.
    let quiescent = plan.map_or(SimTime::ZERO, FaultPlan::quiescent_after);
    let start = sim.now().max(quiescent);
    let gap = (start - sim.now()) + Duration::from_millis(60);
    for i in 0..N_PROBES {
        let t = tx1.clone();
        sim.schedule_in(gap + Duration::from_millis(5 * u64::from(i)), move |sim| {
            t.send(sim, allowed_syn(51_000 + i));
        });
        let t = tx3.clone();
        sim.schedule_in(
            gap + Duration::from_millis(5 * u64::from(i) + 2),
            move |sim| t.send(sim, forbidden_syn(61_000 + i)),
        );
    }
    sim.run();

    // Judge the run from the destination host's frame log.
    let mut forbidden_deliveries = 0;
    let mut allowed_probes: BTreeSet<u16> = BTreeSet::new();
    let mut forbidden_probes: BTreeSet<u16> = BTreeSet::new();
    for (_, frame) in rx2.borrow().iter() {
        let Ok(h) = PacketHeaders::parse(frame) else {
            continue;
        };
        if h.eth_src == mac(3) {
            forbidden_deliveries += 1;
            if let Some(p) = h.tcp_src {
                if (61_000..61_000 + N_PROBES).contains(&p) {
                    forbidden_probes.insert(p);
                }
            }
        } else if h.eth_src == mac(1) {
            if let Some(p) = h.tcp_src {
                if (51_000..51_000 + N_PROBES).contains(&p) {
                    allowed_probes.insert(p);
                }
            }
        }
    }
    Outcome {
        forbidden_deliveries,
        allowed_probes_delivered: allowed_probes.len(),
        forbidden_probes_delivered: forbidden_probes.len(),
        table0: [&core, &enc1, &enc2]
            .iter()
            .map(|sw| sw.table0_cookies().into_iter().collect())
            .collect(),
    }
}

/// The oracle proper: faulted vs fault-free differential run.
fn oracle(seed: u64, spec: &str) {
    let plan = FaultPlan::parse(spec).expect("fault spec must parse");
    let line = format!(
        "repro: DFI_FAULT_SEED={seed} DFI_FAULT_SPEC='{spec}' \
         cargo test --test differential_oracle env_spec_scenario"
    );
    let faulted = run_scenario(seed, Some(&plan));
    let reference = run_scenario(seed, None);
    assert_eq!(
        reference.forbidden_deliveries, 0,
        "reference run leaked forbidden traffic: {line}"
    );
    assert_eq!(
        faulted.forbidden_deliveries, 0,
        "a fault interleaving yielded a policy-forbidden delivery: {line}"
    );
    assert_eq!(
        reference.allowed_probes_delivered,
        usize::from(N_PROBES),
        "reference probes must all deliver: {line}"
    );
    assert_eq!(
        faulted.allowed_probes_delivered, reference.allowed_probes_delivered,
        "post-heal reachability diverged from the fault-free run: {line}"
    );
    assert_eq!(
        faulted.table0, reference.table0,
        "post-heal Table-0 cookie sets diverged: {line}"
    );
}

const CHAOS_SPEC: &str = "seed=1,drop=0.1,dup=0.05,corrupt=0.05,\
delay=0.2:100us..5000us,reorder=0.1:2000us,window=0us..60000us";

#[test]
fn chaos_converges_to_reference() {
    for seed in [2024, 7, 99] {
        oracle(seed, CHAOS_SPEC);
    }
}

#[test]
fn heavy_loss_converges_to_reference() {
    for seed in [2024, 42] {
        oracle(seed, "seed=2,drop=0.4,window=0us..60000us");
    }
}

#[test]
fn outage_converges_to_reference() {
    // A hard 40 ms blackout starting mid-scenario on every channel.
    for seed in [2024, 5] {
        oracle(seed, "seed=3,outage=5000us..45000us");
    }
}

#[test]
fn corruption_is_always_detected_and_contained() {
    // Only corruption, at a high rate: corrupted control frames are
    // detectably broken (the transport models TCP/TLS integrity), so they
    // are discarded at decode, never acted on.
    for seed in [2024, 11] {
        oracle(seed, "seed=4,corrupt=0.5,window=0us..60000us");
    }
}

/// Reproduction entry point: `DFI_FAULT_SEED=… DFI_FAULT_SPEC='…'` replay
/// any failing scenario printed by the oracle. Defaults to the chaos
/// scenario so CI exercises this path too.
#[test]
fn env_spec_scenario() {
    let spec = std::env::var("DFI_FAULT_SPEC").unwrap_or_else(|_| CHAOS_SPEC.to_string());
    let seed = std::env::var("DFI_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024);
    oracle(seed, &spec);
}

#[test]
fn faulted_scenario_is_reproducible() {
    let plan = FaultPlan::parse(CHAOS_SPEC).unwrap();
    assert_eq!(
        run_scenario(2024, Some(&plan)),
        run_scenario(2024, Some(&plan)),
        "same (seed, plan) must replay identically"
    );
}
