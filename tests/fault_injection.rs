//! Fault-injection integration tests: lossy, delayed, duplicated, and
//! outaged control channels between a real switch and the DFI proxy.
//!
//! Every scenario is reproducible from `(sim seed, fault plan)`; the fault
//! plans' `Display` form is the repro spec. The invariants exercised here
//! are the two halves of the fail-closed argument:
//!
//! * **Safety** — no fault interleaving lets policy-forbidden traffic
//!   through: a lost install leaves flows punting (re-denied) or dropping
//!   at the table-miss default.
//! * **Liveness** — DFI's tracked installs (flow-mod + barrier under one
//!   xid, bounded doubling-backoff resend) restore the intended Table-0
//!   state once the channel heals.

use dfi_repro::controller::Controller;
use dfi_repro::core::events::{wire_dns_sensor, wire_siem_sensor};
use dfi_repro::core::pdp::{AtRbacPdp, BaselinePdp};
use dfi_repro::core::policy::{RbacRoles, DEFAULT_DENY_ID};
use dfi_repro::core::Dfi;
use dfi_repro::dataplane::{faulty_sink, FaultHandle, Network, Switch, SwitchConfig, Tx};
use dfi_repro::packet::headers::build;
use dfi_repro::packet::MacAddr;
use dfi_repro::services::{DnsServer, Siem};
use dfi_repro::simnet::{FaultPlan, Sim, SimTime};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;
use std::time::Duration;

type RxLog = Rc<RefCell<Vec<(SimTime, Vec<u8>)>>>;

const LAT: Duration = Duration::from_micros(50);

fn mac(i: u32) -> MacAddr {
    MacAddr::from_index(i)
}

fn h1_ip() -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 1, 1)
}

fn h2_ip() -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 2, 1)
}

fn syn(sport: u16) -> Vec<u8> {
    build::tcp_syn(mac(1), mac(2), h1_ip(), h2_ip(), sport, 80)
}

/// One switch, two hosts, DFI interposed with fault injectors on both
/// directions of the switch↔DFI control channel (`up` = switch→DFI,
/// `down` = DFI→switch).
struct Rig {
    sim: Sim,
    dfi: Dfi,
    sw: Switch,
    tx: Tx,
    rx: RxLog,
    up: FaultHandle,
    down: FaultHandle,
}

fn rig(seed: u64, up_plan: FaultPlan, down_plan: FaultPlan, with_controller: bool) -> Rig {
    let mut sim = Sim::new(seed);
    let mut net = Network::new();
    let sw = net.add_switch(SwitchConfig::new(0xA));
    let rx = Rc::new(RefCell::new(Vec::new()));
    let log = rx.clone();
    let tx = net.attach_host(&sw, 1, LAT, Rc::new(|_, _| {}));
    let _rx_tx = net.attach_host(
        &sw,
        2,
        LAT,
        Rc::new(move |sim: &mut Sim, frame: &[u8]| {
            log.borrow_mut().push((sim.now(), frame.to_vec()));
        }),
    );
    let dfi = Dfi::with_defaults();
    let (to_switch, down) = faulty_sink(down_plan, sw.control_ingress());
    let conn = dfi.attach_switch_channel(to_switch, sw.dpid());
    let (to_dfi, up) = faulty_sink(up_plan, dfi.from_switch_sink(conn));
    sw.connect_control(&mut sim, to_dfi);
    if with_controller {
        let ctrl = Controller::reactive();
        let to_controller = ctrl.connect(&mut sim, dfi.from_controller_sink(conn));
        dfi.set_controller_sink(conn, to_controller);
    }
    sim.run();
    Rig {
        sim,
        dfi,
        sw,
        tx,
        rx,
        up,
        down,
    }
}

fn repro(seed: u64, up: &FaultPlan, down: &FaultPlan) -> String {
    format!("repro: seed={seed} up='{up}' down='{down}'")
}

#[test]
fn same_seed_same_faulted_timeline() {
    // The whole faulted scenario — fault decisions, retries, decisions,
    // deliveries — replays bit-for-bit from (sim seed, fault plans).
    fn run(seed: u64) -> (u64, u64, u64, u64, u64, usize, SimTime, u64) {
        let up = FaultPlan::chaos(21).with_window(SimTime::ZERO, SimTime::from_millis(60));
        let down = FaultPlan::chaos(22).with_window(SimTime::ZERO, SimTime::from_millis(60));
        let mut r = rig(seed, up, down, true);
        let mut baseline = BaselinePdp::new();
        baseline.activate(&mut r.sim, &r.dfi);
        for i in 0..30u16 {
            let t = r.tx.clone();
            r.sim
                .schedule_in(Duration::from_millis(2 * u64::from(i)), move |sim| {
                    t.send(sim, syn(50_000 + i));
                });
        }
        r.sim.run();
        let m = r.dfi.metrics();
        assert!(r.up.stats().total_faults() + r.down.stats().total_faults() > 0);
        let delivered = r.rx.borrow().len();
        (
            m.packet_ins,
            m.allowed,
            m.denied,
            m.install_retries,
            m.install_failures,
            delivered,
            r.sim.now(),
            r.sim.events_executed(),
        )
    }
    assert_eq!(run(7), run(7), "faulted run must be deterministic");
}

#[test]
fn dropped_installs_are_retried_until_acknowledged() {
    // Every DFI→switch message vanishes for the first 10 ms: the install
    // (and the barrier that would acknowledge it) is lost. The tracked
    // resend lands once the window closes.
    let up = FaultPlan::none();
    let down = FaultPlan::lossy(5, 1.0).with_window(SimTime::ZERO, SimTime::from_millis(10));
    let line = repro(40, &up, &down);
    let mut r = rig(40, up, down, true);
    let mut baseline = BaselinePdp::new();
    baseline.activate(&mut r.sim, &r.dfi);
    r.sim.run();
    r.tx.send(&mut r.sim, syn(50_000));
    r.sim.run();
    let m = r.dfi.metrics();
    assert_eq!(m.allowed, 1, "{line}");
    assert!(
        m.install_retries >= 1,
        "lost install must be resent: {line}"
    );
    assert_eq!(m.install_failures, 0, "{line}");
    assert!(r.down.stats().dropped >= 1, "{line}");
    assert_eq!(
        r.sw.table_len(0),
        1,
        "allow rule installed after heal: {line}"
    );
    // The healed channel now carries traffic end to end: the rule matches,
    // the flow chains to the controller's tables, and delivery works.
    r.tx.send(&mut r.sim, syn(50_000));
    r.sim.run();
    assert!(
        !r.rx.borrow().is_empty(),
        "post-heal delivery must work: {line}"
    );
}

#[test]
fn outage_exhausts_retries_but_fails_closed_and_heals() {
    // A 40 ms outage swallows the install and its entire retry budget
    // (4 doubling-backoff resends span ~30 ms). The flow stays undelivered
    // — fail closed — and the next packet after the outage re-punts,
    // re-decides, and installs cleanly.
    let up = FaultPlan::none();
    let down = FaultPlan::none().with_outage(SimTime::ZERO, SimTime::from_millis(40));
    let line = repro(41, &up, &down);
    let mut r = rig(41, up, down, true);
    let mut baseline = BaselinePdp::new();
    baseline.activate(&mut r.sim, &r.dfi);
    r.sim.run();
    r.tx.send(&mut r.sim, syn(50_000));
    r.sim.run();
    let m = r.dfi.metrics();
    assert_eq!(m.allowed, 1, "{line}");
    assert!(
        m.install_failures >= 1,
        "retry budget must exhaust inside the outage: {line}"
    );
    assert_eq!(
        r.sw.table_len(0),
        0,
        "no rule can cross an outaged channel: {line}"
    );
    assert!(
        r.rx.borrow().is_empty(),
        "no delivery during the outage — fail closed: {line}"
    );
    // Heal: the same flow punts again and everything proceeds normally.
    r.tx.send(&mut r.sim, syn(50_000));
    r.sim.run();
    assert_eq!(r.sw.table_len(0), 1, "post-outage install lands: {line}");
    assert!(!r.rx.borrow().is_empty(), "post-outage delivery: {line}");
}

#[test]
fn controller_channel_loss_keeps_table0_enforcement() {
    // No controller at all, plus a lossy switch↔DFI channel: Table-0
    // access control still runs, and nothing is ever delivered for a
    // flow no policy allows.
    let up = FaultPlan::lossy(9, 0.3).with_window(SimTime::ZERO, SimTime::from_millis(30));
    let down = FaultPlan::lossy(10, 0.3).with_window(SimTime::ZERO, SimTime::from_millis(30));
    let line = repro(42, &up, &down);
    let mut r = rig(42, up, down, false);
    // No policy inserted: default deny for everything.
    for i in 0..10u16 {
        let t = r.tx.clone();
        r.sim
            .schedule_in(Duration::from_millis(5 * u64::from(i)), move |sim| {
                t.send(sim, syn(50_000 + i));
            });
    }
    r.sim.run();
    let m = r.dfi.metrics();
    assert!(m.denied >= 1, "punts that got through were denied: {line}");
    assert_eq!(m.allowed, 0, "{line}");
    assert!(
        r.rx.borrow().is_empty(),
        "forbidden traffic must never flow: {line}"
    );
    for cookie in r.sw.table0_cookies() {
        assert_eq!(
            cookie, DEFAULT_DENY_ID.0,
            "only default-deny rules may exist: {line}"
        );
    }
}

#[test]
fn duplicated_installs_are_idempotent() {
    // Every DFI→switch message is delivered twice. Flow-mod adds overwrite
    // in place and barrier replies for unknown xids are ignored, so the
    // duplicated channel converges to the same Table-0 state.
    let up = FaultPlan::none();
    let down = FaultPlan {
        seed: 11,
        duplicate: 1.0,
        ..FaultPlan::none()
    };
    let line = repro(43, &up, &down);
    let mut r = rig(43, up, down, true);
    let mut baseline = BaselinePdp::new();
    baseline.activate(&mut r.sim, &r.dfi);
    r.sim.run();
    r.tx.send(&mut r.sim, syn(50_000));
    r.sim.run();
    let m = r.dfi.metrics();
    assert_eq!(m.allowed, 1, "{line}");
    assert_eq!(m.install_failures, 0, "{line}");
    assert_eq!(
        r.sw.table_len(0),
        1,
        "duplicated adds must not multiply rules: {line}"
    );
    assert!(r.down.stats().duplicated >= 1, "{line}");
    assert!(!r.rx.borrow().is_empty(), "{line}");
}

#[test]
fn binding_expiry_beats_fault_delayed_packet_in() {
    // The stale-decision race: a flow is decided Allow and cached, but the
    // install is lost; the user then logs off (revoking the session
    // policy) while a re-punt of the same flow is *already in flight*,
    // delayed by the faulty channel. The punt was emitted before the
    // invalidating event and processed after it — the decision must still
    // be Deny, and no Allow rule (fresh or retried) may survive.
    let up = FaultPlan {
        seed: 12,
        delay: 1.0,
        delay_min: Duration::from_millis(5),
        delay_max: Duration::from_millis(5),
        ..FaultPlan::none()
    }
    .with_window(SimTime::from_millis(100), SimTime::from_millis(130));
    let down =
        FaultPlan::lossy(13, 1.0).with_window(SimTime::from_millis(100), SimTime::from_millis(130));
    let line = repro(44, &up, &down);
    let mut r = rig(44, up, down, true);

    let dns = DnsServer::new("corp.local");
    let siem = Siem::new();
    wire_dns_sensor(&dns, r.dfi.bus());
    wire_siem_sensor(&siem, r.dfi.bus());
    let mut roles = RbacRoles::new();
    roles.add_enclave("left", &["lhost"]);
    roles.add_server("rhost");
    let _pdp = AtRbacPdp::activate(&mut r.sim, &r.dfi, roles);
    dns.register(&mut r.sim, "lhost", h1_ip());
    dns.register(&mut r.sim, "rhost", h2_ip());
    siem.log_on(&mut r.sim, "lee", "lhost");
    r.sim.run();

    // t=100ms: first packet. Decided Allow (~110 ms) and memoized; the
    // install is dropped by the window and enters the retry loop.
    let t = r.tx.clone();
    r.sim.schedule_in(Duration::from_millis(100), move |sim| {
        t.send(sim, syn(50_000));
    });
    // t=116ms: same flow again — no rule landed, so the switch punts; the
    // faulty channel holds the punt until ~121 ms.
    let t = r.tx.clone();
    r.sim.schedule_in(Duration::from_millis(116), move |sim| {
        t.send(sim, syn(50_000));
    });
    // t=118ms: log-off. Revokes the session policy, invalidates the
    // memoized Allow, flushes switches, and cancels pending Allow-install
    // retries — after the punt above left the switch, before it decides.
    let s = siem.clone();
    r.sim.schedule_in(Duration::from_millis(118), move |sim| {
        s.log_off(sim, "lee", "lhost");
    });
    r.sim.run();

    let m = r.dfi.metrics();
    assert_eq!(
        m.allowed, 1,
        "only the pre-log-off decision may allow: {line}"
    );
    assert!(
        m.denied >= 1,
        "the delayed punt must be re-decided to Deny: {line}"
    );
    for cookie in r.sw.table0_cookies() {
        assert_eq!(
            cookie, DEFAULT_DENY_ID.0,
            "no Allow rule may survive the revocation — not even a \
             retried install: {line}"
        );
    }
    assert!(
        r.rx.borrow().is_empty(),
        "nothing was deliverable under the fault window: {line}"
    );
}
