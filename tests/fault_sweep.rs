//! Fault sweep: time-to-first-byte under sustained control-channel loss.
//!
//! Both directions of the switch↔DFI channel drop each message with
//! probability `p` for the whole run; hosts retransmit their SYN every
//! 10 ms (bounded), as a real TCP stack would. The proxy's bounded
//! retry/backoff turns message loss into latency, never into a policy
//! bypass — this sweep quantifies the latency side for EXPERIMENTS.md:
//!
//! ```text
//! cargo test --test fault_sweep -- --nocapture
//! ```

use dfi_repro::controller::Controller;
use dfi_repro::core::policy::PolicyRule;
use dfi_repro::core::Dfi;
use dfi_repro::dataplane::{faulty_sink, Network, SwitchConfig};
use dfi_repro::packet::headers::build;
use dfi_repro::packet::{MacAddr, PacketHeaders};
use dfi_repro::simnet::{FaultPlan, Sim, SimTime};
use std::cell::RefCell;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::Rc;
use std::time::Duration;

const LAT: Duration = Duration::from_micros(50);
const N_FLOWS: u16 = 20;
const RETRANSMIT_EVERY: Duration = Duration::from_millis(10);
const MAX_RETRANSMITS: u64 = 40;

fn syn(sport: u16) -> Vec<u8> {
    build::tcp_syn(
        MacAddr::from_index(1),
        MacAddr::from_index(2),
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
        sport,
        80,
    )
}

struct SweepPoint {
    drop: f64,
    delivered: usize,
    mean_ttfb_ms: f64,
    worst_ttfb_ms: f64,
    install_retries: u64,
}

/// One sweep point: 20 flows, 5 ms apart, each retransmitting its SYN
/// every 10 ms until first delivery. Returns per-flow TTFB statistics.
fn run_point(seed: u64, drop: f64) -> SweepPoint {
    let mut sim = Sim::new(seed);
    let mut net = Network::new();
    let sw = net.add_switch(SwitchConfig::new(1));
    let delivered: Rc<RefCell<HashMap<u16, SimTime>>> = Rc::default();
    let tx = net.attach_host(&sw, 1, LAT, Rc::new(|_, _| {}));
    let d = delivered.clone();
    let _rx = net.attach_host(
        &sw,
        2,
        LAT,
        Rc::new(move |sim: &mut Sim, frame: &[u8]| {
            if let Ok(h) = PacketHeaders::parse(frame) {
                if let Some(sport) = h.tcp_src {
                    d.borrow_mut().entry(sport).or_insert(sim.now());
                }
            }
        }),
    );

    let dfi = Dfi::with_defaults();
    let ctrl = Controller::reactive();
    let wrap = |inner| {
        if drop > 0.0 {
            faulty_sink(FaultPlan::lossy(seed ^ 0x5EED, drop), inner).0
        } else {
            inner
        }
    };
    let conn = dfi.attach_switch_channel(wrap(sw.control_ingress()), sw.dpid());
    sw.connect_control(&mut sim, wrap(dfi.from_switch_sink(conn)));
    dfi.set_controller_sink(conn, ctrl.connect(&mut sim, dfi.from_controller_sink(conn)));
    dfi.insert_policy(&mut sim, PolicyRule::allow_all(), 1, "sweep");
    sim.run();

    let mut starts: HashMap<u16, SimTime> = HashMap::new();
    for i in 0..N_FLOWS {
        let sport = 50_000 + i;
        let t0 = Duration::from_millis(5 * u64::from(i) + 1);
        starts.insert(sport, sim.now() + t0);
        // Bounded retransmission schedule, fixed up front so the run stays
        // a pure function of (seed, drop): attempt k fires only if the
        // flow has not yet been delivered.
        for k in 0..=MAX_RETRANSMITS {
            let t = tx.clone();
            let d = delivered.clone();
            sim.schedule_in(t0 + RETRANSMIT_EVERY * k as u32, move |sim| {
                if !d.borrow().contains_key(&sport) {
                    t.send(sim, syn(sport));
                }
            });
        }
    }
    sim.run();

    let delivered = delivered.borrow();
    let mut ttfbs_ms: Vec<f64> = delivered
        .iter()
        .map(|(sport, t)| (*t - starts[sport]).as_secs_f64() * 1e3)
        .collect();
    ttfbs_ms.sort_by(f64::total_cmp);
    SweepPoint {
        drop,
        delivered: ttfbs_ms.len(),
        mean_ttfb_ms: ttfbs_ms.iter().sum::<f64>() / ttfbs_ms.len().max(1) as f64,
        worst_ttfb_ms: ttfbs_ms.last().copied().unwrap_or(f64::NAN),
        install_retries: dfi.metrics().install_retries,
    }
}

#[test]
fn ttfb_degrades_gracefully_under_loss() {
    let points: Vec<SweepPoint> = [0.0, 0.05, 0.10, 0.20]
        .iter()
        .map(|&drop| run_point(2024, drop))
        .collect();

    println!("drop   delivered  mean TTFB (ms)  worst TTFB (ms)  proxy install retries");
    for p in &points {
        println!(
            "{:>4.0}%  {:>6}/{}  {:>14.2}  {:>15.2}  {:>21}",
            p.drop * 100.0,
            p.delivered,
            N_FLOWS,
            p.mean_ttfb_ms,
            p.worst_ttfb_ms,
            p.install_retries,
        );
    }

    for p in &points {
        assert_eq!(
            p.delivered,
            usize::from(N_FLOWS),
            "retransmits must push every flow through at drop={}",
            p.drop
        );
    }
    let clean = &points[0];
    let worst = &points[3];
    assert!(
        clean.install_retries == 0,
        "no proxy retries expected on a clean channel"
    );
    assert!(
        worst.mean_ttfb_ms >= clean.mean_ttfb_ms,
        "loss must not make flows faster ({} vs {})",
        worst.mean_ttfb_ms,
        clean.mean_ttfb_ms
    );
}
