//! Cross-crate integration tests: the whole system assembled through the
//! umbrella crate, exercising paths no single crate covers alone.

use dfi_repro::controller::{Controller, Misbehavior, EVIL_COOKIE};
use dfi_repro::core::events::{wire_dns_sensor, wire_siem_sensor};
use dfi_repro::core::pdp::{priority, AtRbacPdp, BaselinePdp};
use dfi_repro::core::policy::{EndpointPattern, PolicyRule, RbacRoles, DEFAULT_DENY_ID};
use dfi_repro::core::Dfi;
use dfi_repro::dataplane::{Network, SwitchConfig};
use dfi_repro::packet::headers::build;
use dfi_repro::packet::MacAddr;
use dfi_repro::services::{DnsServer, Siem};
use dfi_repro::simnet::{Sim, SimTime};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;
use std::time::Duration;

const LAT: Duration = Duration::from_micros(50);

fn mac(i: u32) -> MacAddr {
    MacAddr::from_index(i)
}

fn ip(a: u8, b: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, a, b)
}

/// Two enclave switches joined by a core switch — a miniature of the
/// testbed star — with one host on each enclave and DFI over all three
/// switches.
struct Star {
    sim: Sim,
    dfi: Dfi,
    switches: Vec<dfi_repro::dataplane::Switch>,
    tx: Vec<dfi_repro::dataplane::Tx>,
    rx: Vec<Rc<RefCell<Vec<Vec<u8>>>>>,
}

fn star() -> Star {
    let mut sim = Sim::new(2024);
    let mut net = Network::new();
    let core = net.add_switch(SwitchConfig::new(1));
    let enc1 = net.add_switch(SwitchConfig::new(11));
    let enc2 = net.add_switch(SwitchConfig::new(12));
    net.link(&core, 101, &enc1, 100, LAT);
    net.link(&core, 102, &enc2, 100, LAT);
    let mut tx = Vec::new();
    let mut rx = Vec::new();
    for (sw, mac_idx) in [(&enc1, 1u32), (&enc2, 2u32)] {
        let log = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        tx.push(net.attach_host(
            sw,
            1,
            LAT,
            Rc::new(move |_, f: &[u8]| l.borrow_mut().push(f.to_vec())),
        ));
        rx.push(log);
        let _ = mac_idx;
    }
    let dfi = Dfi::with_defaults();
    let ctrl = Controller::reactive();
    for sw in [&core, &enc1, &enc2] {
        let c = ctrl.clone();
        dfi.interpose(&mut sim, sw, move |sim, sink| c.connect(sim, sink));
    }
    sim.run();
    Star {
        sim,
        dfi,
        switches: vec![core, enc1, enc2],
        tx,
        rx,
    }
}

#[test]
fn cross_enclave_flow_is_policy_checked_at_every_hop() {
    let mut s = star();
    let mut baseline = BaselinePdp::new();
    baseline.activate(&mut s.sim, &s.dfi);
    s.sim.run();
    let syn = build::tcp_syn(mac(1), mac(2), ip(1, 1), ip(2, 1), 50_000, 80);
    s.tx[0].send(&mut s.sim, syn.clone());
    s.sim.run();
    assert_eq!(s.rx[1].borrow().len(), 1, "delivered across the star");
    // Each switch on the path (and the flooded third) evaluated the flow:
    // every switch holds at least one DFI rule for it in table 0.
    for sw in &s.switches {
        assert!(
            sw.table_len(0) >= 1,
            "switch {} has no table-0 rule",
            sw.dpid()
        );
    }
    // Well more than one packet-in was processed (one per hop).
    assert!(s.dfi.metrics().packet_ins >= 2);
}

#[test]
fn revocation_flushes_every_switch_in_the_network() {
    let mut s = star();
    let id = s
        .dfi
        .insert_policy(&mut s.sim, PolicyRule::allow_all(), priority::BASELINE, "t");
    s.sim.run();
    let syn = build::tcp_syn(mac(1), mac(2), ip(1, 1), ip(2, 1), 50_000, 80);
    s.tx[0].send(&mut s.sim, syn);
    s.sim.run();
    let rule_somewhere = s
        .switches
        .iter()
        .any(|sw| sw.table0_cookies().contains(&id.0));
    assert!(rule_somewhere, "allow rules cached before revocation");
    s.dfi.revoke_policy(&mut s.sim, id);
    s.sim.run();
    for sw in &s.switches {
        assert!(
            !sw.table0_cookies().contains(&id.0),
            "switch {} kept a revoked rule",
            sw.dpid()
        );
    }
}

#[test]
fn denied_cross_enclave_flow_dies_at_the_first_hop() {
    let mut s = star();
    // No policy at all: default deny.
    let syn = build::tcp_syn(mac(1), mac(2), ip(1, 1), ip(2, 1), 50_000, 445);
    s.tx[0].send(&mut s.sim, syn);
    s.sim.run();
    assert_eq!(s.rx[1].borrow().len(), 0);
    // Only the ingress enclave switch saw the flow.
    assert_eq!(s.dfi.metrics().packet_ins, 1);
    assert_eq!(s.switches[1].table_len(0), 1, "deny cached at first hop");
    assert_eq!(s.switches[0].table_len(0), 0, "core never consulted");
}

#[test]
fn dynamic_policy_follows_sensor_events_across_the_stack() {
    // DNS + SIEM -> bus -> ERM/PDP -> PCP decisions, across a multi-switch
    // path, with the policy written only over names.
    let mut s = star();
    let dns = DnsServer::new("corp.local");
    let siem = Siem::new();
    wire_dns_sensor(&dns, s.dfi.bus());
    wire_siem_sensor(&siem, s.dfi.bus());
    let mut roles = RbacRoles::new();
    roles.add_enclave("left", &["lhost"]);
    roles.add_server("rhost");
    let pdp = AtRbacPdp::activate(&mut s.sim, &s.dfi, roles);
    dns.register(&mut s.sim, "lhost", ip(1, 1));
    dns.register(&mut s.sim, "rhost", ip(2, 1));
    s.sim.run();

    // Nobody logged on: denied.
    let syn = |p: u16| build::tcp_syn(mac(1), mac(2), ip(1, 1), ip(2, 1), p, 8080);
    s.tx[0].send(&mut s.sim, syn(50_000));
    s.sim.run();
    assert_eq!(s.rx[1].borrow().len(), 0);

    // Log on: lhost gains its role peers (the server rhost).
    siem.log_on(&mut s.sim, "lee", "lhost");
    s.sim.run();
    assert_eq!(pdp.hosts_with_access(), 1);
    s.tx[0].send(&mut s.sim, syn(50_001));
    s.sim.run();
    assert_eq!(s.rx[1].borrow().len(), 1, "flow allowed while logged on");

    // Log off: revocation flushes the whole path; new flows denied.
    siem.log_off(&mut s.sim, "lee", "lhost");
    s.sim.run();
    s.tx[0].send(&mut s.sim, syn(50_002));
    s.sim.run();
    assert_eq!(s.rx[1].borrow().len(), 1, "no new delivery after log-off");
}

#[test]
fn malicious_controller_cannot_break_multi_switch_isolation() {
    let mut sim = Sim::new(77);
    let mut net = Network::new();
    let core = net.add_switch(SwitchConfig::new(1));
    let enc = net.add_switch(SwitchConfig::new(11));
    net.link(&core, 101, &enc, 100, LAT);
    let denied = Rc::new(RefCell::new(0u32));
    let d = denied.clone();
    let tx = net.attach_host(&enc, 1, LAT, Rc::new(|_, _| {}));
    let _rx = net.attach_host(&core, 1, LAT, Rc::new(move |_, _| *d.borrow_mut() += 1));
    let dfi = Dfi::with_defaults();
    let ctrl = Controller::malicious(vec![
        Misbehavior::DeleteAllRules,
        Misbehavior::InstallAllowAll,
    ]);
    for sw in [&core, &enc] {
        let c = ctrl.clone();
        dfi.interpose(&mut sim, sw, move |sim, sink| c.connect(sim, sink));
    }
    sim.run();
    // Default deny + attack running: traffic must still be blocked.
    let syn = build::tcp_syn(mac(1), mac(9), ip(1, 1), ip(0, 1), 50_000, 445);
    tx.send(&mut sim, syn);
    sim.run();
    assert_eq!(*denied.borrow(), 0);
    for sw in [&core, &enc] {
        assert!(!sw.table0_cookies().contains(&EVIL_COOKIE));
    }
    assert!(dfi.metrics().denied >= 1);
    assert_eq!(
        enc.table0_cookies(),
        vec![DEFAULT_DENY_ID.0],
        "deny rule survived the rule-wipe attack"
    );
}

#[test]
fn deterministic_end_to_end_replay() {
    // The same seed must reproduce the same virtual timeline bit-for-bit.
    fn run_once() -> (u64, SimTime, u64) {
        let mut s = star();
        let mut baseline = BaselinePdp::new();
        baseline.activate(&mut s.sim, &s.dfi);
        s.sim.run();
        for p in 0..20u16 {
            let syn = build::tcp_syn(mac(1), mac(2), ip(1, 1), ip(2, 1), 50_000 + p, 80);
            s.tx[0].send(&mut s.sim, syn);
        }
        s.sim.run();
        (
            s.dfi.metrics().packet_ins,
            s.sim.now(),
            s.sim.events_executed(),
        )
    }
    assert_eq!(run_once(), run_once());
}

#[test]
fn topology_controller_discovers_links_through_the_dfi_proxy() {
    // The shortest-path controller's LLDP discovery and path installation
    // must survive proxy interposition: probes are packet-outs (pass
    // through), returning probes are packet-ins (policy-checked first!),
    // and path rules land in shifted tables.
    use dfi_repro::controller::TopologyController;
    use dfi_repro::core::policy::{FlowProperties, Wild};

    let mut sim = Sim::new(31);
    let mut net = Network::new();
    let s1 = net.add_switch(SwitchConfig::new(1));
    let s2 = net.add_switch(SwitchConfig::new(2));
    net.link(&s1, 10, &s2, 11, LAT);
    let got = Rc::new(RefCell::new(0u32));
    let g = got.clone();
    let tx1 = net.attach_host(&s1, 1, LAT, Rc::new(|_, _| {}));
    // h2: one attachment point carrying both its receiver and its sender.
    let tx2 = net.attach_host(
        &s2,
        1,
        LAT,
        Rc::new(move |_, frame: &[u8]| {
            if dfi_repro::packet::PacketHeaders::parse(frame).is_ok_and(|h| h.tcp_dst.is_some()) {
                *g.borrow_mut() += 1;
            }
        }),
    );
    let dfi = Dfi::with_defaults();
    let ctrl = TopologyController::new();
    for sw in [&s1, &s2] {
        let c = ctrl.clone();
        dfi.interpose(&mut sim, sw, move |sim, sink| c.connect(sim, sink));
    }
    // LLDP is control traffic: without an explicit allow, default deny
    // would blind the discovery (worth a policy of its own).
    let mut lldp = PolicyRule::allow(EndpointPattern::any(), EndpointPattern::any());
    lldp.flow = FlowProperties {
        ethertype: Wild::Is(0x88CC),
        ip_proto: Wild::Any,
    };
    dfi.insert_policy(&mut sim, lldp, priority::QUARANTINE, "lldp-control");
    // Ordinary traffic: baseline allow.
    let mut baseline = BaselinePdp::new();
    baseline.activate(&mut sim, &dfi);
    sim.run();

    assert_eq!(
        ctrl.links().len(),
        2,
        "both link directions discovered: {:?}",
        ctrl.links()
    );

    // End-to-end forwarding across the discovered path.
    let syn = |s: u32, d: u32, p: u16| {
        build::tcp_syn(mac(s), mac(d), ip(1, s as u8), ip(2, d as u8), 40_000, p)
    };
    tx1.send(&mut sim, syn(1, 2, 80)); // flood: h2 learns nothing, ctrl learns h1
    sim.run();
    assert_eq!(*got.borrow(), 1);
    // Reverse priming: a frame from h2 teaches the controller its location.
    tx2.send(&mut sim, syn(2, 1, 80));
    sim.run();
    // Now h1 → h2 uses installed shortest-path rules in table 1 (shifted).
    tx1.send(&mut sim, syn(1, 2, 81));
    sim.run();
    assert!(
        *got.borrow() >= 2,
        "cross-switch delivery via discovered path"
    );
    // The controller's path rules live in shifted tables, never table 0.
    for sw in [&s1, &s2] {
        assert!(
            !sw.table0_cookies()
                .contains(&dfi_repro::controller::topo::TOPO_COOKIE),
            "path rules must not reach table 0"
        );
    }
}
