//! Failure-injection and robustness tests: malformed input, missing
//! components, overload, and recovery.

use dfi_repro::controller::Controller;
use dfi_repro::core::pdp::BaselinePdp;
use dfi_repro::core::policy::PolicyRule;
use dfi_repro::core::Dfi;
use dfi_repro::dataplane::{Network, SwitchConfig};
use dfi_repro::openflow::{Message, OfMessage, PacketIn};
use dfi_repro::packet::headers::build;
use dfi_repro::packet::MacAddr;
use dfi_repro::simnet::{Sim, SimRng};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;
use std::time::Duration;

const LAT: Duration = Duration::from_micros(50);

fn mac(i: u32) -> MacAddr {
    MacAddr::from_index(i)
}

fn syn(sport: u16) -> Vec<u8> {
    build::tcp_syn(
        mac(1),
        mac(2),
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
        sport,
        80,
    )
}

#[test]
fn garbage_on_every_control_channel_is_survivable() {
    let mut sim = Sim::new(13);
    let mut net = Network::new();
    let sw = net.add_switch(SwitchConfig::new(1));
    let got = Rc::new(RefCell::new(0u32));
    let g = got.clone();
    let tx = net.attach_host(&sw, 1, LAT, Rc::new(|_, _| {}));
    let _rx = net.attach_host(&sw, 2, LAT, Rc::new(move |_, _| *g.borrow_mut() += 1));
    let dfi = Dfi::with_defaults();
    let ctrl = Controller::reactive();
    let c = ctrl.clone();
    dfi.interpose(&mut sim, &sw, move |sim, sink| c.connect(sim, sink));
    sim.run();
    let mut baseline = BaselinePdp::new();
    baseline.activate(&mut sim, &dfi);
    sim.run();

    // Blast random bytes at the proxy from both sides and at the switch.
    let mut rng = SimRng::new(99);
    let from_switch = dfi.from_switch_sink(0);
    let from_controller = dfi.from_controller_sink(0);
    for len in [0usize, 1, 4, 7, 8, 9, 64, 200] {
        let mut junk = vec![0u8; len];
        rng.fill_bytes(&mut junk);
        from_switch(&mut sim, &junk);
        from_controller(&mut sim, &junk);
        sw.handle_control_bytes(&mut sim, &junk);
        sim.run();
    }
    // Adversarial framing: a valid header that lies about its length.
    let mut lying = OfMessage::new(1, Message::Hello).encode();
    lying[3] = 0xFF;
    from_switch(&mut sim, &lying);
    from_controller(&mut sim, &lying);
    sim.run();

    // The system still functions end to end.
    tx.send(&mut sim, syn(50_000));
    sim.run();
    assert_eq!(*got.borrow(), 1, "traffic still flows after garbage storm");
    assert_eq!(dfi.metrics().allowed, 1);
}

#[test]
fn dfi_without_a_controller_still_enforces_policy() {
    // The proxy is designed so DFI's access control does not depend on the
    // controller being present at all.
    let mut sim = Sim::new(14);
    let mut net = Network::new();
    let sw = net.add_switch(SwitchConfig::new(1));
    let got = Rc::new(RefCell::new(0u32));
    let g = got.clone();
    let tx = net.attach_host(&sw, 1, LAT, Rc::new(|_, _| {}));
    let _rx = net.attach_host(&sw, 2, LAT, Rc::new(move |_, _| *g.borrow_mut() += 1));
    let dfi = Dfi::with_defaults();
    // Wire the switch to DFI but never set a controller sink.
    let conn = dfi.attach_switch_channel(sw.control_ingress(), sw.dpid());
    sw.connect_control(&mut sim, dfi.from_switch_sink(conn));
    sim.run();
    let mut baseline = BaselinePdp::new();
    baseline.activate(&mut sim, &dfi);
    sim.run();

    tx.send(&mut sim, syn(50_000));
    sim.run();
    // Policy decision happened and a rule was installed (no routing without
    // a controller, but no panic and no bypass either).
    assert_eq!(dfi.metrics().allowed, 1);
    assert_eq!(sw.table_len(0), 1);
    // A denied flow is likewise decided.
    let denied = build::tcp_syn(
        mac(3),
        mac(2),
        Ipv4Addr::new(10, 9, 9, 9),
        Ipv4Addr::new(10, 0, 0, 2),
        1,
        1,
    );
    let _ = denied;
}

#[test]
fn control_plane_recovers_after_overload() {
    // Flood past the bounded queues, then verify fresh flows decide
    // normally once the storm subsides.
    let mut sim = Sim::new(15);
    let dfi = Dfi::with_defaults();
    dfi.insert_policy(&mut sim, PolicyRule::allow_all(), 1, "t");
    let responses = Rc::new(RefCell::new(0u64));
    let r = responses.clone();
    // Answer DFI's install barriers (via the cbench emulated switch) so
    // the count below sees one flow-mod per decision, not ack-less
    // retries.
    let reply_to = Rc::new(RefCell::new(None));
    let to_switch = dfi_repro::cbench::emulated_switch_sink(reply_to.clone(), move |_, _| {
        *r.borrow_mut() += 1;
    });
    let conn = dfi.attach_switch_channel(to_switch, 7);
    let from_switch = dfi.from_switch_sink(conn);
    *reply_to.borrow_mut() = Some(from_switch.clone());
    // Storm: 3000 packet-ins in one instant — far beyond any queue.
    let mut rng = SimRng::new(1);
    for i in 0..3000u32 {
        let frame = dfi_repro::cbench::random_flow_frame(&mut rng, u64::from(i));
        let pi = PacketIn::table_miss(1, 0, frame);
        from_switch(&mut sim, &OfMessage::new(i, Message::PacketIn(pi)).encode());
    }
    sim.run();
    let m = dfi.metrics();
    assert!(m.dropped > 0, "storm must overflow the bounded queues");
    assert!(*responses.borrow() > 0, "some flows still decided");
    // Recovery: a lone flow after the storm is processed promptly.
    let before = *responses.borrow();
    let frame = dfi_repro::cbench::random_flow_frame(&mut rng, 999_999);
    let pi = PacketIn::table_miss(1, 0, frame);
    from_switch(
        &mut sim,
        &OfMessage::new(0xAAAA, Message::PacketIn(pi)).encode(),
    );
    sim.run();
    assert_eq!(*responses.borrow(), before + 1, "post-storm flow decided");
}

#[test]
fn binding_churn_during_decisions_is_safe() {
    // Rapid bind/unbind while flows are in flight through the station
    // pipeline must neither panic nor corrupt decisions.
    let mut sim = Sim::new(16);
    let dfi = Dfi::with_defaults();
    dfi.insert_policy(
        &mut sim,
        PolicyRule::allow(
            dfi_repro::core::policy::EndpointPattern::user("alice"),
            dfi_repro::core::policy::EndpointPattern::any(),
        ),
        10,
        "t",
    );
    let decided = Rc::new(RefCell::new(0u64));
    let d = decided.clone();
    let conn = dfi.attach_switch_channel(
        Rc::new(move |_, _| {
            *d.borrow_mut() += 1;
        }),
        7,
    );
    let from_switch = dfi.from_switch_sink(conn);
    for i in 0..50u32 {
        // Flip the binding every iteration, interleaved with flows.
        let ip = Ipv4Addr::new(10, 0, 0, 1);
        dfi.with_erm(|erm| {
            use dfi_repro::core::erm::Binding;
            let b = Binding::HostIp {
                host: "h1".into(),
                ip,
            };
            let u = Binding::UserHost {
                user: "alice".into(),
                host: "h1".into(),
            };
            if i % 2 == 0 {
                erm.bind(b);
                erm.bind(u);
            } else {
                erm.unbind(&b);
                erm.unbind(&u);
            }
        });
        let frame = build::tcp_syn(
            mac(1),
            mac(2),
            ip,
            Ipv4Addr::new(10, 0, 0, 2),
            50_000 + i as u16,
            80,
        );
        let pi = PacketIn::table_miss(1, 0, frame);
        from_switch(&mut sim, &OfMessage::new(i, Message::PacketIn(pi)).encode());
    }
    sim.run();
    let m = dfi.metrics();
    assert_eq!(
        m.allowed + m.denied + m.spoof_denied,
        50,
        "every flow decided"
    );
}

#[test]
fn split_and_batched_frames_are_handled() {
    // Two messages delivered in one buffer must both apply; a dangling
    // partial trailer must not wedge anything.
    let mut sim = Sim::new(17);
    let mut net = Network::new();
    let sw = net.add_switch(SwitchConfig::new(1));
    let replies = Rc::new(RefCell::new(Vec::new()));
    let r = replies.clone();
    sw.connect_control(
        &mut sim,
        Rc::new(move |_, bytes: &[u8]| {
            if let Ok(m) = OfMessage::decode(bytes) {
                r.borrow_mut().push(m.body);
            }
        }),
    );
    let mut batch = OfMessage::new(1, Message::EchoRequest(b"a".to_vec())).encode();
    batch.extend(OfMessage::new(2, Message::EchoRequest(b"b".to_vec())).encode());
    batch.extend_from_slice(&[0x04, 0x02]); // dangling partial header
    sw.handle_control_bytes(&mut sim, &batch);
    sim.run();
    let echoes = replies
        .borrow()
        .iter()
        .filter(|m| matches!(m, Message::EchoReply(_)))
        .count();
    assert_eq!(echoes, 2, "both batched messages answered");
}
