//! The cross-shard binding race: PR 2's stale-decision regression
//! (`binding_expiry_beats_fault_delayed_packet_in` in
//! `fault_injection.rs`) replayed across a shard boundary.
//!
//! Two switches land on *different* shards of a 2-way [`ShardedDfi`]. A
//! flow on shard B is decided Allow but its install is lost; a re-punt of
//! the same flow is already in flight, delayed by the faulty channel, when
//! the user's session expires — the log-off and the policy revocation both
//! enter through the *front-end* (bus broadcast + fleet-wide flush
//! fanout), so shard A processes the expiry too even though the raced punt
//! sits on shard B. The delayed punt must still be re-decided Deny, no
//! Allow rule (fresh or retried) may survive on any switch, nothing is
//! delivered, and the shards end on one agreed epoch.

use dfi_repro::controller::Controller;
use dfi_repro::core::events::{topic, DfiEvent};
use dfi_repro::core::policy::{EndpointPattern, PolicyRule, DEFAULT_DENY_ID};
use dfi_repro::core::{DfiConfig, ShardedDfi};
use dfi_repro::dataplane::{faulty_sink, Network, SwitchConfig};
use dfi_repro::packet::headers::build;
use dfi_repro::packet::MacAddr;
use dfi_repro::simnet::{FaultPlan, Sim, SimTime};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;
use std::time::Duration;

const LAT: Duration = Duration::from_micros(50);
const SEED: u64 = 44;

fn h1_ip() -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 1, 1)
}

fn h2_ip() -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 2, 1)
}

fn syn(sport: u16) -> Vec<u8> {
    build::tcp_syn(
        MacAddr::from_index(1),
        MacAddr::from_index(2),
        h1_ip(),
        h2_ip(),
        sport,
        80,
    )
}

#[test]
fn cross_shard_binding_expiry_beats_fault_delayed_packet_in() {
    // Same fault plans and timeline as the unsharded regression.
    let up = FaultPlan {
        seed: 12,
        delay: 1.0,
        delay_min: Duration::from_millis(5),
        delay_max: Duration::from_millis(5),
        ..FaultPlan::none()
    }
    .with_window(SimTime::from_millis(100), SimTime::from_millis(130));
    let down =
        FaultPlan::lossy(13, 1.0).with_window(SimTime::from_millis(100), SimTime::from_millis(130));
    let line = format!("repro: seed={SEED} shards=2 up='{up}' down='{down}'");

    let mut sim = Sim::new(SEED);
    let sharded = ShardedDfi::new(2, &DfiConfig::default());

    // Two dpids owned by different shards — found, not hardcoded, so the
    // test keeps its meaning if the partition function ever changes.
    let dpid_a = 1u64;
    let dpid_b = (2..64)
        .find(|d| sharded.shard_of(*d) != sharded.shard_of(dpid_a))
        .expect("some dpid in 2..64 must land on the other shard");
    assert_ne!(sharded.shard_of(dpid_a), sharded.shard_of(dpid_b), "{line}");

    let mut net = Network::new();
    let sw_a = net.add_switch(SwitchConfig::new(dpid_a));
    let sw_b = net.add_switch(SwitchConfig::new(dpid_b));

    // Shard A's switch: clean interposition, a silent bystander host.
    let ctrl = Controller::reactive();
    let _ = net.attach_silent_host(&sw_a, 1, LAT);
    {
        let c = ctrl.clone();
        sharded.interpose(&mut sim, &sw_a, move |sim, sink| c.connect(sim, sink));
    }

    // Shard B's switch carries the raced flow, wired through the fault
    // injectors by hand (`up` = switch→shard, `down` = shard→switch).
    let rx: Rc<RefCell<Vec<Vec<u8>>>> = Rc::new(RefCell::new(Vec::new()));
    let log = rx.clone();
    let tx = net.attach_host(&sw_b, 1, LAT, Rc::new(|_, _| {}));
    let _h2 = net.attach_host(
        &sw_b,
        2,
        LAT,
        Rc::new(move |_sim: &mut Sim, frame: &[u8]| log.borrow_mut().push(frame.to_vec())),
    );
    let (to_switch, _down_handle) = faulty_sink(down, sw_b.control_ingress());
    let (shard_b, conn) = sharded.attach_switch_channel(to_switch, sw_b.dpid());
    let shard = &sharded.shards()[shard_b];
    let (to_dfi, _up_handle) = faulty_sink(up, shard.from_switch_sink(conn));
    sw_b.connect_control(&mut sim, to_dfi);
    let to_controller = ctrl.connect(&mut sim, shard.from_controller_sink(conn));
    shard.set_controller_sink(conn, to_controller);
    sim.run();

    // Bindings enter through the front-end bus, reaching both shards.
    for (topic, ev) in [
        (
            topic::LEASES,
            DfiEvent::Lease {
                mac: MacAddr::from_index(1),
                ip: h1_ip(),
                hostname: Some("lhost".into()),
                released: false,
            },
        ),
        (
            topic::LEASES,
            DfiEvent::Lease {
                mac: MacAddr::from_index(2),
                ip: h2_ip(),
                hostname: Some("rhost".into()),
                released: false,
            },
        ),
        (
            topic::NAMES,
            DfiEvent::Name {
                hostname: "lhost".into(),
                ip: h1_ip(),
                removed: false,
            },
        ),
        (
            topic::NAMES,
            DfiEvent::Name {
                hostname: "rhost".into(),
                ip: h2_ip(),
                removed: false,
            },
        ),
        (
            topic::SESSIONS,
            DfiEvent::Session {
                user: "lee".into(),
                host: "lhost".into(),
                logged_on: true,
            },
        ),
    ] {
        sharded.bus().publish(&mut sim, topic, ev);
    }
    sim.run();

    // The session-scoped allow, inserted through the front-end.
    let allow_id = sharded.insert_policy(
        &mut sim,
        PolicyRule::allow(EndpointPattern::user("lee"), EndpointPattern::any()),
        50,
        "sharded-race",
    );
    sim.run();

    // t=100ms: first packet. Decided Allow (~110 ms) and memoized on shard
    // B; the install is dropped by the window and enters the retry loop.
    let t = tx.clone();
    sim.schedule_in(Duration::from_millis(100), move |sim| {
        t.send(sim, syn(50_000));
    });
    // t=116ms: same flow again — no rule landed, so the switch punts; the
    // faulty channel holds the punt until ~121 ms.
    let t = tx.clone();
    sim.schedule_in(Duration::from_millis(116), move |sim| {
        t.send(sim, syn(50_000));
    });
    // t=118ms: the session expires. The log-off broadcast invalidates the
    // binding on BOTH shards and the revocation's flush fanout cancels the
    // pending Allow-install retries fleet-wide — after the punt above left
    // the switch, before shard B decides it.
    let s = sharded.clone();
    sim.schedule_in(Duration::from_millis(118), move |sim| {
        s.bus().publish(
            sim,
            topic::SESSIONS,
            DfiEvent::Session {
                user: "lee".into(),
                host: "lhost".into(),
                logged_on: false,
            },
        );
        s.revoke_policy(sim, allow_id);
    });
    sim.run();

    let m = sharded.metrics();
    assert_eq!(
        m.allowed, 1,
        "only the pre-log-off decision may allow: {line}"
    );
    assert!(
        m.denied >= 1,
        "the delayed punt must be re-decided to Deny: {line}"
    );
    for sw in [&sw_a, &sw_b] {
        for cookie in sw.table0_cookies() {
            assert_eq!(
                cookie,
                DEFAULT_DENY_ID.0,
                "no Allow rule may survive the cross-shard revocation on \
                 dpid {}: {line}",
                sw.dpid()
            );
        }
    }
    assert!(
        rx.borrow().is_empty(),
        "nothing was deliverable under the fault window: {line}"
    );
    assert!(
        sharded.epochs_agree(),
        "shards must agree on the served epoch {:?}: {line}",
        sharded.served_epochs()
    );
}
