//! The cross-shard binding race replayed across a **real thread
//! boundary**: PR 2's stale-decision regression
//! (`binding_expiry_beats_fault_delayed_packet_in`) with the two switches
//! owned by different worker threads of a [`ParallelShardedDfi`].
//!
//! Worker B's switch carries the raced flow, wired through the fault
//! injectors inside its own thread: a flow is decided Allow but its
//! install is lost, and a re-punt of the same flow is already sitting in
//! the delayed switch→DFI channel when the user's session expires. The
//! log-off and the revocation enter through the *front-end thread* — a
//! broadcast binding batch, a fleet-wide flush fanout, and an epoch
//! barrier all crossing the command channels — so worker A processes the
//! expiry too even though the raced punt lives entirely on worker B. The
//! delayed punt must still be re-decided Deny, no Allow rule (fresh or
//! retried) may survive on any switch, nothing is delivered, and every
//! worker ends on one agreed epoch.
//!
//! Service times are pinned to constants (means of the calibrated
//! defaults) because each worker owns an independently-seeded clock: the
//! race window must come from the fault plans, not from rng stream
//! alignment.

use dfi_repro::controller::Controller;
use dfi_repro::core::events::DfiEvent;
use dfi_repro::core::policy::{EndpointPattern, PolicyRule, DEFAULT_DENY_ID};
use dfi_repro::core::{
    binding_op_of_event, DfiConfig, ObserveFn, ParallelShardedDfi, WorkerWorld, WorldBuilder,
};
use dfi_repro::dataplane::{faulty_sink, Network, SwitchConfig};
use dfi_repro::packet::headers::build;
use dfi_repro::packet::MacAddr;
use dfi_repro::simnet::topo::shard_of;
use dfi_repro::simnet::{Dist, FaultPlan, SimTime};
use std::cell::RefCell;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::Rc;
use std::time::Duration;

const LAT: Duration = Duration::from_micros(50);
const SEED: u64 = 44;

fn h1_ip() -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 1, 1)
}

fn h2_ip() -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 2, 1)
}

fn syn(sport: u16) -> Vec<u8> {
    build::tcp_syn(
        MacAddr::from_index(1),
        MacAddr::from_index(2),
        h1_ip(),
        h2_ip(),
        sport,
        80,
    )
}

/// Constant-service-time calibration: the deterministic race timeline must
/// not depend on which worker's rng stream draws the latencies.
fn race_config() -> DfiConfig {
    DfiConfig {
        proxy_latency: Dist::constant_ms(0.16),
        pcp_service: Dist::constant_ms(0.39),
        binding_query: Dist::constant_ms(2.41),
        policy_query: Dist::constant_ms(2.52),
        bus_latency: Dist::constant_ms(0.3),
        ..DfiConfig::default()
    }
}

/// Worker A: a clean bystander switch with a silent host.
fn builder_a(dpid: u64) -> WorldBuilder {
    Box::new(move |sim, dfi, _outbox| {
        let mut net = Network::new();
        let sw = net.add_switch(SwitchConfig::new(dpid));
        let _ = net.attach_silent_host(&sw, 1, LAT);
        let ctrl = Controller::reactive();
        dfi.interpose(sim, &sw, move |sim, sink| ctrl.connect(sim, sink));
        let observe: ObserveFn = Box::new(move |_sim| {
            let mut c = sw.table0_cookies();
            c.sort_unstable();
            c.dedup();
            (Vec::new(), vec![(sw.dpid(), c)])
        });
        WorkerWorld {
            taps: Vec::new(),
            boundaries: Vec::new(),
            observe,
        }
    })
}

/// Worker B: carries the raced flow, its control channel wired through the
/// fault injectors by hand (`up` = switch→DFI, `down` = DFI→switch).
fn builder_b(dpid: u64, up: FaultPlan, down: FaultPlan) -> WorldBuilder {
    Box::new(move |sim, dfi, _outbox| {
        let mut net = Network::new();
        let sw = net.add_switch(SwitchConfig::new(dpid));
        let tx = net.attach_host(&sw, 1, LAT, Rc::new(|_, _| {}));
        let delivered = Rc::new(RefCell::new(0u64));
        let log = delivered.clone();
        let _h2 = net.attach_host(
            &sw,
            2,
            LAT,
            Rc::new(move |_sim, _frame: &[u8]| *log.borrow_mut() += 1),
        );
        let ctrl = Controller::reactive();
        let (to_switch, _down_handle) = faulty_sink(down.clone(), sw.control_ingress());
        let conn = dfi.attach_switch_channel(to_switch, sw.dpid());
        let (to_dfi, _up_handle) = faulty_sink(up.clone(), dfi.from_switch_sink(conn));
        sw.connect_control(sim, to_dfi);
        let to_controller = ctrl.connect(sim, dfi.from_controller_sink(conn));
        dfi.set_controller_sink(conn, to_controller);
        let observe: ObserveFn = Box::new(move |_sim| {
            let mut c = sw.table0_cookies();
            c.sort_unstable();
            c.dedup();
            (vec![(0, *delivered.borrow())], vec![(sw.dpid(), c)])
        });
        WorkerWorld {
            taps: vec![tx],
            boundaries: Vec::new(),
            observe,
        }
    })
}

#[test]
fn threaded_binding_expiry_beats_fault_delayed_packet_in() {
    // Same fault plans and timeline as the unsharded and cooperative
    // regressions.
    let up = FaultPlan {
        seed: 12,
        delay: 1.0,
        delay_min: Duration::from_millis(5),
        delay_max: Duration::from_millis(5),
        ..FaultPlan::none()
    }
    .with_window(SimTime::from_millis(100), SimTime::from_millis(130));
    let down =
        FaultPlan::lossy(13, 1.0).with_window(SimTime::from_millis(100), SimTime::from_millis(130));
    let line = format!("repro: seed={SEED} threads=2 up='{up}' down='{down}'");

    // Two dpids owned by different workers — found, not hardcoded.
    let dpid_a = 1u64;
    let dpid_b = (2..64)
        .find(|d| shard_of(*d, 2) != shard_of(dpid_a, 2))
        .expect("some dpid in 2..64 must land on the other shard");
    let worker_b = shard_of(dpid_b, 2);
    let mut builders: Vec<Option<WorldBuilder>> = vec![None, None];
    builders[shard_of(dpid_a, 2)] = Some(builder_a(dpid_a));
    builders[worker_b] = Some(builder_b(dpid_b, up, down));
    let builders: Vec<WorldBuilder> = builders.into_iter().map(Option::unwrap).collect();
    let mut fleet = ParallelShardedDfi::new(&race_config(), SEED, builders, HashMap::new());

    // Bindings enter through the front-end, reaching both workers.
    for ev in [
        DfiEvent::Lease {
            mac: MacAddr::from_index(1),
            ip: h1_ip(),
            hostname: Some("lhost".into()),
            released: false,
        },
        DfiEvent::Lease {
            mac: MacAddr::from_index(2),
            ip: h2_ip(),
            hostname: Some("rhost".into()),
            released: false,
        },
        DfiEvent::Name {
            hostname: "lhost".into(),
            ip: h1_ip(),
            removed: false,
        },
        DfiEvent::Name {
            hostname: "rhost".into(),
            ip: h2_ip(),
            removed: false,
        },
        DfiEvent::Session {
            user: "lee".into(),
            host: "lhost".into(),
            logged_on: true,
        },
    ] {
        let op = binding_op_of_event(&ev).expect("every boot event is a binding op");
        fleet.apply_binding_ops(vec![op]);
    }
    fleet.drain();

    // The session-scoped allow, inserted through the front-end's epoch
    // barrier.
    let allow_id = fleet.insert_policy(
        PolicyRule::allow(EndpointPattern::user("lee"), EndpointPattern::any()),
        50,
        "threaded-race",
    );

    // t=100ms: first packet. Decided Allow (~111 ms) and memoized on
    // worker B; the install is dropped by the window and enters the retry
    // loop. t=116ms: same flow again — no rule landed, so the switch
    // punts; the faulty channel holds the punt until ~121 ms.
    fleet.punt_at(worker_b, 0, syn(50_000), SimTime::from_millis(100));
    fleet.punt_at(worker_b, 0, syn(50_000), SimTime::from_millis(116));

    // Run every worker to t=118ms: the raced punt has left the switch and
    // sits in the delayed channel. Then the session expires: the log-off
    // batch invalidates the binding on BOTH workers and the revocation's
    // flush fanout + epoch barrier cancel the pending Allow-install
    // retries fleet-wide — all from the front-end thread, before worker B
    // decides the delayed punt.
    fleet.advance_all(SimTime::from_millis(118));
    let op = binding_op_of_event(&DfiEvent::Session {
        user: "lee".into(),
        host: "lhost".into(),
        logged_on: false,
    })
    .expect("a log-off is a binding op");
    fleet.apply_binding_ops(vec![op]);
    assert!(
        fleet.revoke_policy(allow_id),
        "the allow must exist: {line}"
    );

    let report = fleet.drain();
    assert_eq!(
        report.metrics.allowed, 1,
        "only the pre-log-off decision may allow: {line}"
    );
    assert!(
        report.metrics.denied >= 1,
        "the delayed punt must be re-decided to Deny: {line}"
    );
    for (dpid, cookies) in &report.cookies {
        for cookie in cookies {
            assert_eq!(
                *cookie, DEFAULT_DENY_ID.0,
                "no Allow rule may survive the cross-thread revocation on \
                 dpid {dpid}: {line}"
            );
        }
    }
    assert_eq!(
        report.deliveries.get(&0).copied().unwrap_or(0),
        0,
        "nothing was deliverable under the fault window: {line}"
    );
    assert!(
        report.epochs_agree(),
        "workers must agree on the served epoch {:?}: {line}",
        report.served_epochs
    );
    fleet.shutdown();
}
