//! Offline, API-compatible subset of [criterion](https://bheisler.github.io/criterion.rs/).
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the surface the workspace's benches use: `Criterion`,
//! `benchmark_group`/`bench_function`, `Bencher::{iter, iter_batched,
//! iter_batched_ref}`, `BatchSize`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark warms up briefly,
//! then runs timed batches until a wall-clock budget is exhausted, and
//! reports the mean and best per-iteration time in nanoseconds on stdout
//! (`bench <group>/<name> ... mean=... min=...`). There are no plots, no
//! statistics beyond mean/min, and no saved baselines — but relative
//! comparisons (the only thing the repo's EXPERIMENTS.md records) are
//! meaningful. `DFI_BENCH_QUICK=1` shrinks the budget for CI.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How per-batch setup cost relates to the routine cost (accepted for API
/// compatibility; batching is fixed-size here).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs: large batches.
    SmallInput,
    /// Large inputs: batch of one.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    measure_budget: Duration,
    warmup_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var("DFI_BENCH_QUICK").is_ok();
        Criterion {
            measure_budget: if quick {
                Duration::from_millis(200)
            } else {
                Duration::from_millis(1500)
            },
            warmup_budget: if quick {
                Duration::from_millis(50)
            } else {
                Duration::from_millis(300)
            },
        }
    }
}

impl Criterion {
    /// Configures the driver from CLI args (accepted and ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_one(self, None, &id.into(), f);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_one(self.criterion, Some(&self.name), &id.into(), f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(c: &Criterion, group: Option<&str>, id: &str, mut f: F) {
    // Warmup: repeatedly invoke with small iteration counts.
    let warm_until = Instant::now() + c.warmup_budget;
    let mut iters_per_call = 1u64;
    while Instant::now() < warm_until {
        let mut b = Bencher {
            iterations: iters_per_call,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed < Duration::from_millis(1) {
            iters_per_call = (iters_per_call * 2).min(1 << 20);
        }
    }
    // Measurement: timed batches until the budget is spent.
    let measure_until = Instant::now() + c.measure_budget;
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    let mut best = f64::INFINITY;
    while Instant::now() < measure_until || total_iters == 0 {
        let mut b = Bencher {
            iterations: iters_per_call,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += b.iterations;
        let per_iter = b.elapsed.as_secs_f64() / b.iterations as f64;
        if per_iter > 0.0 && per_iter < best {
            best = per_iter;
        }
    }
    let mean_ns = total.as_secs_f64() * 1e9 / total_iters as f64;
    let best_ns = if best.is_finite() {
        best * 1e9
    } else {
        mean_ns
    };
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    println!("bench {full:<52} mean={mean_ns:>12.1}ns min={best_ns:>12.1}ns iters={total_iters}");
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` back-to-back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on a fresh input from `setup` each iteration
    /// (setup excluded from timing).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }

    /// Like [`Bencher::iter_batched`] but passes the input by `&mut`.
    pub fn iter_batched_ref<I, O, S: FnMut() -> I, R: FnMut(&mut I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iterations {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Declares the benchmark functions a target runs.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench target's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_iterations() {
        let mut b = Bencher {
            iterations: 100,
            elapsed: Duration::ZERO,
        };
        b.iter(|| black_box(2u64 + 2));
        assert!(b.elapsed > Duration::ZERO || b.iterations == 100);
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        b.iter_batched_ref(|| vec![1u8; 16], |v| v.pop(), BatchSize::SmallInput);
    }

    #[test]
    fn group_runs_benches() {
        std::env::set_var("DFI_BENCH_QUICK", "1");
        let mut c = Criterion {
            measure_budget: Duration::from_millis(5),
            warmup_budget: Duration::from_millis(1),
        };
        let mut g = c.benchmark_group("g");
        g.bench_function("noop", |b| b.iter(|| black_box(1)));
        g.finish();
    }
}
